// Ablation A1 — is on-line error correction actually load-bearing?
//
// DESIGN.md calls out local compensation as SWEEP's central design
// choice. This ablation runs SWEEP with the compensation step disabled
// (raw answers applied as-is) across rising interference levels and shows
// the distributed anomaly of Section 3 reappear: the view diverges from
// ground truth, silently. With compensation on, the same runs are
// completely consistent at identical message cost.
//
//   $ ./ablation_compensation

#include <cstdio>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

struct Outcome {
  ConsistencyLevel level;
  bool final_correct;
  int64_t error_tuples;  // |final - expected| distinct tuples
  double msgs_per_update;
};

Outcome Run(bool local_compensation, double interarrival, uint64_t seed) {
  ScenarioConfig config;
  config.algorithm = Algorithm::kSweep;
  config.chain.num_relations = 3;
  config.chain.initial_tuples = 12;
  config.chain.join_domain = 5;
  config.chain.seed = seed;
  config.workload.total_txns = 24;
  config.workload.mean_interarrival = interarrival;
  config.workload.seed = seed + 3;
  config.latency = LatencyModel::Fixed(2000);
  config.warehouse.sweep_local_compensation = local_compensation;

  RunResult r = RunScenario(config);
  Relation diff = r.final_view;
  diff.MergeNegated(r.expected_view);
  return Outcome{r.consistency.level, r.consistency.final_state_correct,
                 static_cast<int64_t>(diff.DistinctSize()),
                 r.maintenance_msgs_per_update};
}

}  // namespace

int main() {
  std::printf(
      "Ablation: SWEEP with and without local compensation (3 sources,\n"
      "24 txns, one-way latency 2000). Error tuples = distinct tuples by\n"
      "which the final view differs from ground truth.\n\n");

  TablePrinter table({"Interference", "Compensation", "Consistency",
                      "Final correct", "Error tuples", "msgs/update"});
  for (double interarrival : {40000.0, 6000.0, 2000.0, 800.0}) {
    const char* regime = interarrival > 20000   ? "rare"
                         : interarrival > 4000  ? "light"
                         : interarrival > 1500  ? "moderate"
                                                : "heavy";
    for (bool comp : {true, false}) {
      Outcome o = Run(comp, interarrival, /*seed=*/5);
      table.AddRow({regime, comp ? "ON" : "OFF",
                    ConsistencyLevelName(o.level),
                    o.final_correct ? "yes" : "NO",
                    StrFormat("%lld", static_cast<long long>(
                                          o.error_tuples)),
                    StrFormat("%.1f", o.msgs_per_update)});
    }
    if (interarrival > 800.0) table.AddSeparator();
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: error terms exist exactly when updates race in-flight\n"
      "queries (even the sparse regime sees a couple). Where they do,\n"
      "compensation-OFF corrupts the view (and nothing signals\n"
      "it), while compensation-ON stays completely consistent at the\n"
      "same 2(n-1) messages: the compensation is free of communication,\n"
      "exactly the paper's claim.\n");
  return 0;
}
