// Ablation A3 — payload matters: the paper's introduction frames the
// design space as a spectrum from fully virtual (query everything, heavy
// communication) to fully replicated (copy everything, heavy storage).
// Under a bandwidth-limited network (per-tuple serialization cost) the
// spectrum becomes measurable: recompute ships whole relations, C-Strobe
// ships redundant compensation payloads, SWEEP ships only deltas and
// partial answers.
//
//   $ ./bandwidth_cost

#include <cstdio>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

RunResult Run(Algorithm algorithm, SimTime per_tuple) {
  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = 3;
  config.chain.initial_tuples = 48;
  config.chain.join_domain = 48;  // unit fan-out, big bases
  config.workload.total_txns = 16;
  config.workload.mean_interarrival = 25000;
  config.latency = LatencyModel::Bandwidth(500, 0, per_tuple);
  RunResult r = RunScenario(config);
  if (r.final_view != r.expected_view) {
    std::fprintf(stderr, "%s diverged!\n", AlgorithmName(algorithm));
  }
  return r;
}

}  // namespace

int main() {
  std::printf(
      "Maintenance cost under bandwidth-limited channels (one-way delay\n"
      "= 500 + per_tuple x payload; 3 sources of 48 tuples, sparse\n"
      "updates so only payload differs).\n\n");

  for (SimTime per_tuple : {0, 20, 100}) {
    std::printf("per-tuple cost = %lld ticks:\n",
                static_cast<long long>(per_tuple));
    TablePrinter table({"Algorithm", "Payload (tuples)", "Mean lag",
                        "Finish time", "Consistency"});
    for (Algorithm a :
         {Algorithm::kSweep, Algorithm::kParallelSweep,
          Algorithm::kCStrobe, Algorithm::kRecompute}) {
      RunResult r = Run(a, per_tuple);
      table.AddRow(
          {r.algorithm_name,
           StrFormat("%lld",
                     static_cast<long long>(r.net.TotalPayload())),
           StrFormat("%.0f", r.mean_incorporation_delay),
           StrFormat("%lld", static_cast<long long>(r.finish_time)),
           ConsistencyLevelName(r.consistency.level)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Reading: with free bandwidth (0) all lags are similar; as the\n"
      "per-tuple cost grows, Recompute's full-relation snapshots dominate\n"
      "its lag while SWEEP's delta-sized payloads barely move — the\n"
      "communication end of the intro's spectrum, quantified. Parallel\n"
      "SWEEP pays the same bytes as SWEEP but hides half the latency.\n");
  return 0;
}
