// Experiment E2 — compensation blow-up vs. concurrency (Section 3): the
// number of compensating queries C-Strobe needs per insert grows with the
// interference rate K (up to K^(n-2) / (n-1)! in the analysis), while
// SWEEP's cost is flat at 2(n-1) no matter how hard the updates race —
// its compensation is local.
//
// K is swept by shrinking the update inter-arrival time relative to the
// channel round trip.
//
//   $ ./concurrency_blowup

#include <cstdio>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

struct Point {
  double k_estimate = 0;  // measured interfering updates per round trip
  double sweep_msgs = 0;
  double cstrobe_msgs = 0;
  int64_t cstrobe_comp_queries = 0;
  double nested_msgs = 0;
};

Point MeasurePoint(int n, double interarrival) {
  Point p;
  const SimTime kLatency = 2000;
  p.k_estimate = 2.0 * static_cast<double>(kLatency) / interarrival;

  auto run = [&](Algorithm algorithm) {
    ScenarioConfig config;
    config.algorithm = algorithm;
    config.chain.num_relations = n;
    config.chain.initial_tuples = 14;
    config.chain.join_domain = 14;  // unit join fan-out
    config.workload.total_txns = 30;
    config.workload.mean_interarrival = interarrival;
    // Interference needs deletes racing insert queries.
    config.workload.insert_fraction = 0.55;
    config.latency = LatencyModel::Fixed(kLatency);
    RunResult r = RunScenario(config);
    if (r.final_view != r.expected_view) {
      std::fprintf(stderr, "%s diverged (n=%d, ia=%.0f)!\n",
                   AlgorithmName(algorithm), n, interarrival);
    }
    return r;
  };

  RunResult sweep = run(Algorithm::kSweep);
  RunResult cstrobe = run(Algorithm::kCStrobe);
  RunResult nested = run(Algorithm::kNestedSweep);
  p.sweep_msgs = sweep.maintenance_msgs_per_update;
  p.cstrobe_msgs = cstrobe.maintenance_msgs_per_update;
  p.cstrobe_comp_queries = cstrobe.compensating_queries;
  p.nested_msgs = nested.maintenance_msgs_per_update;
  return p;
}

}  // namespace

int main() {
  std::printf(
      "Compensation blow-up vs. concurrency level K (interfering updates\n"
      "per query round trip). Fixed one-way latency 2000 ticks; K swept\n"
      "by shrinking the mean update inter-arrival time.\n\n");

  for (int n : {3, 4, 5}) {
    std::printf("n = %d sources:\n", n);
    TablePrinter table({"~K", "SWEEP msgs/upd", "NestedSWEEP msgs/upd",
                        "C-Strobe msgs/upd", "C-Strobe comp. queries"});
    for (double interarrival : {40000.0, 8000.0, 4000.0, 2000.0, 1000.0}) {
      Point p = MeasurePoint(n, interarrival);
      table.AddRow({StrFormat("%.1f", p.k_estimate),
                    StrFormat("%.1f", p.sweep_msgs),
                    StrFormat("%.1f", p.nested_msgs),
                    StrFormat("%.1f", p.cstrobe_msgs),
                    StrFormat("%lld", static_cast<long long>(
                                          p.cstrobe_comp_queries))});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Shape check (paper): SWEEP's column is constant at 2(n-1) — "
      "local\ncompensation is free of messages. C-Strobe's compensating "
      "queries\nrise sharply with K and with n (the K^(n-2) mechanism); "
      "Nested SWEEP\nfalls *below* SWEEP as K grows (batch "
      "amortization).\n");
  return 0;
}
