// Experiment E3 — ECA's query-size growth with interfering updates
// (Section 3: "the size of query messages is quadratic in the number of
// interfering updates"). A burst of B near-simultaneous updates hits the
// single source; every update's query must carry offset terms for the
// contamination earlier answers picked up. We report the maximum and
// total number of terms per burst size, plus SWEEP's per-update message
// size for contrast (constant).
//
//   $ ./eca_query_size

#include <cstdio>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

RunResult RunBurst(Algorithm algorithm, int burst) {
  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = 3;
  config.chain.initial_tuples = 10;
  config.chain.join_domain = 4;
  config.workload.total_txns = burst;
  config.workload.mean_interarrival = 150;  // near-simultaneous
  config.workload.insert_fraction = 0.7;
  config.latency = LatencyModel::Fixed(5000);  // long round trips
  RunResult r = RunScenario(config);
  if (r.final_view != r.expected_view) {
    std::fprintf(stderr, "%s diverged at burst=%d!\n",
                 AlgorithmName(algorithm), burst);
  }
  return r;
}

}  // namespace

int main() {
  std::printf(
      "ECA query size vs. number of interfering updates (burst of B\n"
      "updates arriving within one query round trip; 3 relations at one\n"
      "source).\n\n");

  TablePrinter table({"Burst B", "ECA max terms/query",
                      "ECA total terms", "ECA terms/update",
                      "ECA msgs/update", "SWEEP msgs/update"});
  for (int burst : {1, 2, 3, 4, 6, 8, 10}) {
    RunResult eca = RunBurst(Algorithm::kEca, burst);
    RunResult sweep = RunBurst(Algorithm::kSweep, burst);
    table.AddRow(
        {StrFormat("%d", burst),
         StrFormat("%lld", static_cast<long long>(eca.max_query_terms)),
         StrFormat("%lld", static_cast<long long>(eca.total_query_terms)),
         StrFormat("%.1f", static_cast<double>(eca.total_query_terms) /
                               static_cast<double>(burst)),
         StrFormat("%.1f", eca.maintenance_msgs_per_update),
         StrFormat("%.1f", sweep.maintenance_msgs_per_update)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Shape check (paper): ECA's message *count* per update is constant\n"
      "(one query + one answer) but the query *size* (number of join\n"
      "terms) grows superlinearly with the interference burst — the\n"
      "offset terms of Section 3's Q2 formulation compounding. SWEEP's\n"
      "column is flat: compensation never leaves the warehouse.\n");
  return 0;
}
