// Experiment M2 — end-to-end maintenance throughput: full simulated runs
// (sources + FIFO network + warehouse) per algorithm and topology,
// measuring wall-clock per maintained update of the whole stack.
//
//   $ ./end_to_end_bench

#include <benchmark/benchmark.h>

#include "harness/scenario.h"

namespace sweepmv {
namespace {

void RunOnce(Algorithm algorithm, int n, int txns, bool check) {
  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = n;
  config.chain.initial_tuples = 32;
  config.chain.join_domain = 16;  // ~2x fan-out per hop
  config.workload.total_txns = txns;
  config.workload.mean_interarrival = 1500;
  config.latency = LatencyModel::Jittered(700, 400);
  config.check_consistency = check;
  config.warehouse.base.log_installs = check;
  RunResult r = RunScenario(config);
  benchmark::DoNotOptimize(r.final_view);
}

void BM_SweepEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int txns = 64;
  for (auto _ : state) {
    RunOnce(Algorithm::kSweep, n, txns, /*check=*/false);
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_SweepEndToEnd)->Arg(3)->Arg(5)->Arg(8);

void BM_NestedSweepEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int txns = 64;
  for (auto _ : state) {
    RunOnce(Algorithm::kNestedSweep, n, txns, /*check=*/false);
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_NestedSweepEndToEnd)->Arg(3)->Arg(5)->Arg(8);

void BM_StrobeEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int txns = 64;
  for (auto _ : state) {
    RunOnce(Algorithm::kStrobe, n, txns, /*check=*/false);
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_StrobeEndToEnd)->Arg(3)->Arg(5);

void BM_CStrobeEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int txns = 48;
  for (auto _ : state) {
    RunOnce(Algorithm::kCStrobe, n, txns, /*check=*/false);
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_CStrobeEndToEnd)->Arg(3)->Arg(5);

void BM_SweepWithConsistencyCheck(benchmark::State& state) {
  // The replay checker's own cost, end to end.
  for (auto _ : state) {
    RunOnce(Algorithm::kSweep, 4, 32, /*check=*/true);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SweepWithConsistencyCheck);

void BM_SweepLargeBase(benchmark::State& state) {
  // Scaling the base-relation size: sweep legs join deltas against
  // progressively larger sources.
  const int rows = static_cast<int>(state.range(0));
  const int txns = 32;
  for (auto _ : state) {
    ScenarioConfig config;
    config.algorithm = Algorithm::kSweep;
    config.chain.num_relations = 3;
    config.chain.initial_tuples = rows;
    config.chain.join_domain = rows / 4;  // fixed ~4x fan-out per hop
    config.workload.total_txns = txns;
    config.workload.mean_interarrival = 1500;
    config.latency = LatencyModel::Fixed(800);
    config.check_consistency = false;
    config.warehouse.base.log_installs = false;
    RunResult r = RunScenario(config);
    benchmark::DoNotOptimize(r.final_view);
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_SweepLargeBase)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace sweepmv
