// Schedule-space explorer throughput (src/verify/).
//
// Exhaustively enumerates every FIFO-respecting interleaving of the
// paper's Section 5.2 worked example — with sleep-set partial-order
// reduction and naively — plus a batch of seeded random walks, and
// reports schedules/second and the POR pruning factor machine-readably.
//
//   $ ./explorer_throughput [--algo=SWEEP] [--budget=500000]
//                           [--walks=500] [--out=BENCH_explorer.json]
//
// The acceptance bar (ISSUE 3): POR prunes >= 2x schedules vs. naive
// enumeration on this scenario, zero violations for SWEEP.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/str.h"
#include "common/table.h"
#include "verify/explorer.h"
#include "verify/scenarios.h"

using namespace sweepmv;

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  ExploreResult result;
  int64_t wall_ms = 0;
  double SchedulesPerSec() const {
    return wall_ms > 0 ? 1000.0 * static_cast<double>(result.schedules) /
                             static_cast<double>(wall_ms)
                       : 0.0;
  }
};

Timed RunExhaustive(const ControlledScenario& scenario,
                    ConsistencyLevel required, bool sleep_sets,
                    int64_t budget) {
  ExplorerConfig config{scenario, required, sleep_sets, budget,
                        /*max_steps_per_run=*/10'000,
                        /*stop_at_first_violation=*/false,
                        /*minimize=*/false};
  Timed timed;
  int64_t start = NowMs();
  timed.result = ExploreExhaustive(config);
  timed.wall_ms = NowMs() - start;
  return timed;
}

Algorithm ParseAlgo(const std::string& name) {
  for (Algorithm a : AllAlgorithmVariants()) {
    if (name == AlgorithmName(a)) return a;
  }
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Algorithm algo = Algorithm::kSweep;
  int64_t budget = 500'000;
  int64_t walks = 500;
  std::string out_path = "BENCH_explorer.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      algo = ParseAlgo(arg.substr(7));
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::atoll(arg.substr(9).c_str());
    } else if (arg.rfind("--walks=", 0) == 0) {
      walks = std::atoll(arg.substr(8).c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  ControlledScenario scenario = PaperExampleScenario(algo);
  ConsistencyLevel required = PromisedConsistency(algo);
  std::printf(
      "Schedule-space exploration of the Section 5.2 example under %s "
      "(required: %s).\n\n",
      AlgorithmName(algo), ConsistencyLevelName(required));

  Timed por = RunExhaustive(scenario, required, /*sleep_sets=*/true,
                            budget);
  Timed naive = RunExhaustive(scenario, required, /*sleep_sets=*/false,
                              budget);

  ExplorerConfig random_config{scenario, required, /*sleep_sets=*/true,
                               budget, /*max_steps_per_run=*/10'000,
                               /*stop_at_first_violation=*/false,
                               /*minimize=*/false};
  int64_t random_start = NowMs();
  ExploreResult random =
      ExploreRandom(random_config, walks, /*seed=*/12345);
  int64_t random_ms = NowMs() - random_start;

  TablePrinter table({"mode", "schedules", "exhausted", "violations",
                      "wall ms", "schedules/s"});
  auto add = [&](const char* mode, const ExploreResult& r, int64_t ms) {
    double per_sec = ms > 0 ? 1000.0 * static_cast<double>(r.schedules) /
                                  static_cast<double>(ms)
                            : 0.0;
    table.AddRow({mode,
                  StrFormat("%lld", static_cast<long long>(r.schedules)),
                  r.exhausted ? "yes" : "no",
                  StrFormat("%lld", static_cast<long long>(r.violations)),
                  StrFormat("%lld", static_cast<long long>(ms)),
                  StrFormat("%.0f", per_sec)});
  };
  add("sleep-set POR", por.result, por.wall_ms);
  add("naive", naive.result, naive.wall_ms);
  add("random walks", random, random_ms);
  std::printf("%s\n", table.Render().c_str());

  double reduction =
      por.result.schedules > 0
          ? static_cast<double>(naive.result.schedules) /
                static_cast<double>(por.result.schedules)
          : 0.0;
  std::printf("POR reduction: %.2fx (%lld pruned branches)\n", reduction,
              static_cast<long long>(por.result.sleep_pruned));

  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"explorer_throughput\",\n"
      "  \"algorithm\": \"%s\",\n"
      "  \"required_level\": \"%s\",\n"
      "  \"por\": {\"schedules\": %lld, \"executions\": %lld, "
      "\"exhausted\": %s, \"violations\": %lld, \"sleep_pruned\": %lld, "
      "\"wall_ms\": %lld, \"schedules_per_sec\": %.1f},\n"
      "  \"naive\": {\"schedules\": %lld, \"executions\": %lld, "
      "\"exhausted\": %s, \"violations\": %lld, \"wall_ms\": %lld, "
      "\"schedules_per_sec\": %.1f},\n"
      "  \"reduction_x\": %.2f,\n"
      "  \"random\": {\"walks\": %lld, \"violations\": %lld, "
      "\"wall_ms\": %lld}\n"
      "}\n",
      AlgorithmName(algo), ConsistencyLevelName(required),
      static_cast<long long>(por.result.schedules),
      static_cast<long long>(por.result.executions),
      por.result.exhausted ? "true" : "false",
      static_cast<long long>(por.result.violations),
      static_cast<long long>(por.result.sleep_pruned),
      static_cast<long long>(por.wall_ms), por.SchedulesPerSec(),
      static_cast<long long>(naive.result.schedules),
      static_cast<long long>(naive.result.executions),
      naive.result.exhausted ? "true" : "false",
      static_cast<long long>(naive.result.violations),
      static_cast<long long>(naive.wall_ms), naive.SchedulesPerSec(),
      reduction, static_cast<long long>(random.schedules),
      static_cast<long long>(random.violations),
      static_cast<long long>(random_ms));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
