// Schedule-space explorer throughput (src/verify/).
//
// Exhaustively enumerates every FIFO-respecting interleaving of the
// paper's Section 5.2 worked example — with sleep-set partial-order
// reduction and naively — under the explorer's execution engines:
//
//   replay    stateless baseline: every schedule re-executes its whole
//             choice prefix from a fresh system (share_prefixes=false)
//   snapshot  prefix-sharing DFS backtracking by full SaveState copy at
//             every branch (use_undo=false) — the deep-copy engine
//   undo      prefix-sharing DFS backtracking by undo-log rollback,
//             full snapshots only on the anchor cadence (use_undo=true)
//   dedup     undo engine plus the visited-state table: branches
//             reaching an already-classified state merge its cached
//             summary instead of re-exploring (dedup_states=true)
//   xN        the undo+dedup engine with the subtree frontier split
//             across N work-stealing threads
//
// plus an anchor-cadence sweep (K in {1, 8, 64}), a batch of seeded
// random walks, and the engine ladder on a generated multi-view
// fault-injected stress scenario (two warehouses, two crash choice
// points, millions of naive interleavings). Reports
// wall clock, the replay-redundancy factor (executions / schedules),
// the dedup hit rate, and mean undo entries per rollback,
// machine-readably. The bench aborts if any two engines disagree on
// schedule counts or verdicts: the speedup rows are only meaningful
// because every engine answers the identical question.
//
//   $ ./explorer_throughput [--algo=SWEEP] [--budget=500000]
//                           [--walks=500] [--large-updates=1]
//                           [--large-budget=10000000]
//                           [--out=BENCH_explorer.json]
//
// Acceptance bars: POR prunes >= 2x schedules vs. naive enumeration;
// replay redundancy <= 1.5 on the POR config; undo+dedup >= 5x
// sequential wall clock over the deep-copy snapshot engine on the
// stress scenario; zero violations for SWEEP throughout. Parallel rows
// report wall clock against the "cores" field the JSON records — on a
// single-core host they measure pool overhead, not speedup.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "verify/explorer.h"
#include "verify/scenarios.h"

using namespace sweepmv;

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineOpts {
  bool share_prefixes = true;
  int threads = 1;
  bool use_undo = false;
  int anchor_every = 8;
  bool dedup = false;
  // Refined independence: consult this effect index on top of the site
  // rule (verify/effects.h). Null = site rule only.
  const EffectsIndex* effects = nullptr;
};

struct Timed {
  std::string mode;
  bool sleep_sets = true;
  int threads = 1;
  ExploreResult result;
  int64_t wall_ms = 0;
  double SchedulesPerSec() const {
    return wall_ms > 0 ? 1000.0 * static_cast<double>(result.schedules) /
                             static_cast<double>(wall_ms)
                       : 0.0;
  }
  double Redundancy() const {
    return result.schedules > 0
               ? static_cast<double>(result.executions) /
                     static_cast<double>(result.schedules)
               : 0.0;
  }
  // Fraction of hashable node visits answered from the visited table.
  double DedupHitRate() const {
    const int64_t lookups = result.dedup_hits + result.dedup_inserts;
    return lookups > 0 ? static_cast<double>(result.dedup_hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }
  // Mean mutations unwound per watermark rollback — the O(changes) the
  // undo log replaces an O(state) snapshot restore with.
  double UndoPerRollback() const {
    return result.undo_rollbacks > 0
               ? static_cast<double>(result.undo_entries) /
                     static_cast<double>(result.undo_rollbacks)
               : 0.0;
  }
};

Timed RunExhaustive(const ControlledScenario& scenario,
                    ConsistencyLevel required, bool sleep_sets,
                    int64_t budget, const EngineOpts& engine,
                    std::string mode) {
  ExplorerConfig config{scenario, required, sleep_sets, budget,
                        /*max_steps_per_run=*/10'000,
                        /*stop_at_first_violation=*/false,
                        /*minimize=*/false};
  config.share_prefixes = engine.share_prefixes;
  config.threads = engine.threads;
  config.use_undo = engine.use_undo;
  config.snapshot_anchor_every = engine.anchor_every;
  config.dedup_states = engine.dedup;
  config.effects = engine.effects;
  Timed timed;
  timed.mode = std::move(mode);
  timed.sleep_sets = sleep_sets;
  timed.threads = engine.threads;
  int64_t start = NowMs();
  timed.result = ExploreExhaustive(config);
  timed.wall_ms = NowMs() - start;
  return timed;
}

// The refined relation explores a *smaller* representative set per
// trace class, so schedule counts legitimately differ from the
// site-rule baseline; the verdict fields must not.
void RequireSameOutcome(const Timed& baseline, const Timed& refined) {
  if (baseline.result.violations == refined.result.violations &&
      baseline.result.exhausted == refined.result.exhausted &&
      baseline.result.worst == refined.result.worst) {
    return;
  }
  std::fprintf(stderr,
               "refined independence changed the verdict: %s "
               "(%lld violations, worst %s) vs %s (%lld violations, "
               "worst %s)\n",
               baseline.mode.c_str(),
               static_cast<long long>(baseline.result.violations),
               ConsistencyLevelName(baseline.result.worst),
               refined.mode.c_str(),
               static_cast<long long>(refined.result.violations),
               ConsistencyLevelName(refined.result.worst));
  std::exit(1);
}

// All engines must agree on everything schedule-determined before any
// speedup row is worth printing.
void RequireSameVerdicts(const Timed& baseline, const Timed& other) {
  if (baseline.result.schedules == other.result.schedules &&
      baseline.result.violations == other.result.violations &&
      baseline.result.exhausted == other.result.exhausted &&
      baseline.result.worst == other.result.worst) {
    return;
  }
  std::fprintf(stderr,
               "engine disagreement: %s (%lld schedules, %lld violations) "
               "vs %s (%lld schedules, %lld violations)\n",
               baseline.mode.c_str(),
               static_cast<long long>(baseline.result.schedules),
               static_cast<long long>(baseline.result.violations),
               other.mode.c_str(),
               static_cast<long long>(other.result.schedules),
               static_cast<long long>(other.result.violations));
  std::exit(1);
}

double Speedup(const Timed& baseline, const Timed& fast) {
  // Sub-millisecond runs clamp to 1ms so ratios stay finite (and
  // conservative: the real speedup is at least what we report).
  double base = static_cast<double>(baseline.wall_ms > 0 ? baseline.wall_ms : 1);
  double ms = static_cast<double>(fast.wall_ms > 0 ? fast.wall_ms : 1);
  return base / ms;
}

Algorithm ParseAlgo(const std::string& name) {
  for (Algorithm a : AllAlgorithmVariants()) {
    if (name == AlgorithmName(a)) return a;
  }
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

std::string RowJson(const Timed& t) {
  return StrFormat(
      "{\"schedules\": %lld, \"executions\": %lld, "
      "\"replay_redundancy\": %.2f, \"threads\": %d, \"exhausted\": %s, "
      "\"violations\": %lld, \"sleep_pruned\": %lld, "
      "\"dedup_hits\": %lld, \"dedup_hit_rate\": %.3f, "
      "\"refined_grants\": %lld, "
      "\"undo_rollbacks\": %lld, \"undo_per_rollback\": %.1f, "
      "\"anchor_snapshots\": %lld, \"parallel_fallback\": %s, "
      "\"wall_ms\": %lld, \"schedules_per_sec\": %.1f}",
      static_cast<long long>(t.result.schedules),
      static_cast<long long>(t.result.executions), t.Redundancy(),
      t.threads, t.result.exhausted ? "true" : "false",
      static_cast<long long>(t.result.violations),
      static_cast<long long>(t.result.sleep_pruned),
      static_cast<long long>(t.result.dedup_hits), t.DedupHitRate(),
      static_cast<long long>(t.result.refined_grants),
      static_cast<long long>(t.result.undo_rollbacks), t.UndoPerRollback(),
      static_cast<long long>(t.result.anchor_snapshots),
      t.result.parallel_fallback ? "true" : "false",
      static_cast<long long>(t.wall_ms), t.SchedulesPerSec());
}

}  // namespace

int main(int argc, char** argv) {
  Algorithm algo = Algorithm::kSweep;
  int64_t budget = 500'000;
  int64_t walks = 500;
  int large_updates = 1;
  int64_t large_budget = 10'000'000;
  std::string out_path = "BENCH_explorer.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      algo = ParseAlgo(arg.substr(7));
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::atoll(arg.substr(9).c_str());
    } else if (arg.rfind("--walks=", 0) == 0) {
      walks = std::atoll(arg.substr(8).c_str());
    } else if (arg.rfind("--large-updates=", 0) == 0) {
      large_updates = std::atoi(arg.substr(16).c_str());
    } else if (arg.rfind("--large-budget=", 0) == 0) {
      large_budget = std::atoll(arg.substr(15).c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  ControlledScenario scenario = PaperExampleScenario(algo);
  ConsistencyLevel required = PromisedConsistency(algo);
  std::printf(
      "Schedule-space exploration of the Section 5.2 example under %s "
      "(required: %s).\n\n",
      AlgorithmName(algo), ConsistencyLevelName(required));

  const EngineOpts kReplay{/*share_prefixes=*/false, 1, false, 8, false};
  const EngineOpts kSnapshot{true, 1, /*use_undo=*/false, 8, false};
  const EngineOpts kUndo{true, 1, /*use_undo=*/true, 8, false};
  const EngineOpts kDedup{true, 1, /*use_undo=*/true, 8, /*dedup=*/true};
  auto parallel_opts = [](int threads) {
    return EngineOpts{true, threads, /*use_undo=*/true, 8, /*dedup=*/true};
  };

  auto run = [&](bool sleep_sets, const EngineOpts& engine,
                 std::string mode) {
    return RunExhaustive(scenario, required, sleep_sets, budget, engine,
                         std::move(mode));
  };

  // Stateless replay baselines (the pre-prefix-sharing engine).
  Timed por_replay = run(true, kReplay, "POR replay");
  Timed naive_replay = run(false, kReplay, "naive replay");

  // Prefix-sharing engines: deep-copy snapshot, undo-log, undo+dedup.
  // "por"/"naive" stay bound to the snapshot engine so the headline rows
  // stay comparable run over run; the undo rows carry their own keys.
  Timed por = run(true, kSnapshot, "POR snapshot");
  Timed naive = run(false, kSnapshot, "naive snapshot");
  Timed por_undo = run(true, kUndo, "POR undo");
  Timed naive_undo = run(false, kUndo, "naive undo");
  Timed por_dedup = run(true, kDedup, "POR undo+dedup");
  Timed naive_dedup = run(false, kDedup, "naive undo+dedup");

  // Refined independence on the fault-free example: the effect table has
  // nothing to add (every pair the site rule declares dependent shares a
  // FIFO channel), so this row documents the zero-gain case — identical
  // tree, zero grants — rather than a speedup.
  EffectsIndex paper_effects = EffectsIndex::ForScenario(scenario);
  EngineOpts refined_engine = kUndo;
  refined_engine.effects = &paper_effects;
  Timed por_refined = run(true, refined_engine, "POR refined");

  // Anchor cadence sweep: K=1 degenerates to a snapshot at every branch;
  // large K leans almost entirely on the undo log.
  std::vector<Timed> cadence;
  for (int k : {1, 8, 64}) {
    EngineOpts opts = kUndo;
    opts.anchor_every = k;
    cadence.push_back(run(true, opts, StrFormat("POR undo K=%d", k)));
  }

  std::vector<Timed> parallel;
  for (int threads : {2, 4, 8}) {
    parallel.push_back(run(true, parallel_opts(threads),
                           StrFormat("POR x%d", threads)));
    parallel.push_back(run(false, parallel_opts(threads),
                           StrFormat("naive x%d", threads)));
  }

  RequireSameVerdicts(por_replay, por);
  RequireSameVerdicts(por_replay, por_undo);
  RequireSameVerdicts(por_replay, por_dedup);
  // Zero gain here means byte-identical counts, not just verdicts.
  RequireSameVerdicts(por_replay, por_refined);
  RequireSameVerdicts(naive_replay, naive);
  RequireSameVerdicts(naive_replay, naive_undo);
  RequireSameVerdicts(naive_replay, naive_dedup);
  for (const Timed& t : cadence) RequireSameVerdicts(por, t);
  for (const Timed& t : parallel) {
    RequireSameVerdicts(t.sleep_sets ? por : naive, t);
  }

  ExplorerConfig random_config{scenario, required, /*sleep_sets=*/true,
                               budget, /*max_steps_per_run=*/10'000,
                               /*stop_at_first_violation=*/false,
                               /*minimize=*/false};
  int64_t random_start = NowMs();
  ExploreResult random =
      ExploreRandom(random_config, walks, /*seed=*/12345);
  int64_t random_ms = NowMs() - random_start;

  TablePrinter table({"mode", "threads", "schedules", "executions",
                      "redundancy", "dedup hits", "violations", "wall ms",
                      "schedules/s"});
  auto add = [&](const Timed& t) {
    table.AddRow({t.mode, StrFormat("%d", t.threads),
                  StrFormat("%lld", static_cast<long long>(t.result.schedules)),
                  StrFormat("%lld", static_cast<long long>(t.result.executions)),
                  StrFormat("%.2f", t.Redundancy()),
                  StrFormat("%lld", static_cast<long long>(t.result.dedup_hits)),
                  StrFormat("%lld", static_cast<long long>(t.result.violations)),
                  StrFormat("%lld", static_cast<long long>(t.wall_ms)),
                  StrFormat("%.0f", t.SchedulesPerSec())});
  };
  add(por_replay);
  add(naive_replay);
  add(por);
  add(naive);
  add(por_undo);
  add(naive_undo);
  add(por_dedup);
  add(naive_dedup);
  add(por_refined);
  for (const Timed& t : cadence) add(t);
  for (const Timed& t : parallel) add(t);
  table.AddRow({"random walks", "1",
                StrFormat("%lld", static_cast<long long>(random.schedules)),
                StrFormat("%lld", static_cast<long long>(random.executions)),
                "-", "-",
                StrFormat("%lld", static_cast<long long>(random.violations)),
                StrFormat("%lld", static_cast<long long>(random_ms)), "-"});
  std::printf("%s\n", table.Render().c_str());

  double reduction =
      por.result.schedules > 0
          ? static_cast<double>(naive.result.schedules) /
                static_cast<double>(por.result.schedules)
          : 0.0;
  double sharing_speedup = Speedup(naive_replay, naive);
  std::printf("POR reduction: %.2fx (%lld pruned branches)\n", reduction,
              static_cast<long long>(por.result.sleep_pruned));
  std::printf(
      "prefix sharing: naive redundancy %.2f -> %.2f, %.1fx faster "
      "sequential; dedup hit rate %.1f%% (POR) / %.1f%% (naive)\n",
      naive_replay.Redundancy(), naive.Redundancy(), sharing_speedup,
      100.0 * por_dedup.DedupHitRate(), 100.0 * naive_dedup.DedupHitRate());
  std::printf(
      "refined independence: %lld grants on the fault-free example "
      "(zero by construction: every site-dependent pair shares a "
      "channel)\n",
      static_cast<long long>(por_refined.result.refined_grants));

  // --- Refined independence on the crash-hardened example --------------
  // The site rule marks internal events (site -2) dependent on
  // everything, so every placement of the controlled crash against the
  // source transactions is enumerated. The effect table proves the crash
  // footprint (warehouse state + recovery counters) disjoint from a
  // source txn's, and the sleep-set search prunes those interleavings:
  // strictly fewer representative schedules, identical verdicts.
  std::printf(
      "\nRefined independence on the crash-hardened example (one "
      "warehouse crash in the schedule space).\n\n");
  ControlledScenario faulty_scenario = FaultyPaperExampleScenario(algo);
  EffectsIndex faulty_effects = EffectsIndex::ForScenario(faulty_scenario);
  EngineOpts faulty_refined_engine = kUndo;
  faulty_refined_engine.effects = &faulty_effects;
  Timed faulty_site = RunExhaustive(faulty_scenario, required,
                                    /*sleep_sets=*/true, budget, kUndo,
                                    "faulty POR");
  Timed faulty_refined =
      RunExhaustive(faulty_scenario, required, /*sleep_sets=*/true, budget,
                    faulty_refined_engine, "faulty POR refined");
  RequireSameOutcome(faulty_site, faulty_refined);
  double refined_prune_gain = 0.0;
  if (faulty_site.result.exhausted && faulty_refined.result.exhausted) {
    if (faulty_refined.result.schedules >= faulty_site.result.schedules ||
        faulty_refined.result.refined_grants <= 0) {
      std::fprintf(stderr,
                   "refined independence bought nothing on the crash "
                   "scenario: %lld -> %lld schedules, %lld grants\n",
                   static_cast<long long>(faulty_site.result.schedules),
                   static_cast<long long>(faulty_refined.result.schedules),
                   static_cast<long long>(
                       faulty_refined.result.refined_grants));
      std::exit(1);
    }
    refined_prune_gain =
        static_cast<double>(faulty_site.result.schedules) /
        static_cast<double>(faulty_refined.result.schedules);
  } else {
    std::fprintf(stderr,
                 "warning: crash-scenario runs hit the schedule budget; "
                 "refined_prune_gain not measured\n");
  }
  TablePrinter refined_table({"mode", "schedules", "executions",
                              "sleep pruned", "refined grants",
                              "violations", "wall ms"});
  auto add_refined = [&](const Timed& t) {
    refined_table.AddRow(
        {t.mode, StrFormat("%lld", static_cast<long long>(t.result.schedules)),
         StrFormat("%lld", static_cast<long long>(t.result.executions)),
         StrFormat("%lld", static_cast<long long>(t.result.sleep_pruned)),
         StrFormat("%lld", static_cast<long long>(t.result.refined_grants)),
         StrFormat("%lld", static_cast<long long>(t.result.violations)),
         StrFormat("%lld", static_cast<long long>(t.wall_ms))});
  };
  add_refined(faulty_site);
  add_refined(faulty_refined);
  std::printf("%s\n", refined_table.Render().c_str());
  std::printf(
      "refined prune gain: %.2fx fewer schedules than the site rule "
      "(%lld grants), verdicts identical\n",
      refined_prune_gain,
      static_cast<long long>(faulty_refined.result.refined_grants));

  // --- Generated multi-view fault-injected stress scenario -------------
  // Two warehouses over the same sources plus two crash choice points:
  // the space where the undo log and the visited table earn their keep.
  // Measured without sleep sets: POR removes the *syntactic* diamonds
  // (commuting independent events) and flattens this scenario to a few
  // thousand schedules, while the crash placements create *semantic*
  // confluence — different interleavings reaching identical
  // post-recovery states — that only the visited table can collapse.
  // The two reductions are orthogonal; the paper-example section above
  // measures their composition. The snapshot row is the deep-copy
  // sequential baseline the speedup bars are measured against.
  std::printf(
      "\nGenerated multi-view stress scenario: SWEEP + NESTED warehouses, "
      "%d update(s), 2 crashes.\n\n",
      large_updates);
  ControlledScenario large_scenario = GeneratedMultiViewScenario(
      Algorithm::kSweep, Algorithm::kNestedSweep, large_updates,
      /*crash=*/true);
  // Crash recovery parks SWEEP at strong consistency, not completeness;
  // certify convergence (shared with NESTED, whose promise is the same).
  ConsistencyLevel large_required = ConsistencyLevel::kStrong;
  auto run_large = [&](const EngineOpts& engine, std::string mode) {
    return RunExhaustive(large_scenario, large_required,
                         /*sleep_sets=*/false, large_budget, engine,
                         std::move(mode));
  };
  Timed large_snapshot = run_large(kSnapshot, "stress snapshot");
  Timed large_undo = run_large(kUndo, "stress undo");
  Timed large_dedup = run_large(kDedup, "stress undo+dedup");
  // Sleep-set rows, site rule vs. refined: the two crash choice points
  // against every source transaction are exactly the pairs the effect
  // table can prove independent, so this is where the refined relation
  // earns real pruning on top of POR.
  EffectsIndex large_effects = EffectsIndex::ForScenario(large_scenario);
  EngineOpts large_refined_engine = kUndo;
  large_refined_engine.effects = &large_effects;
  Timed large_por = RunExhaustive(large_scenario, large_required,
                                  /*sleep_sets=*/true, large_budget, kUndo,
                                  "stress POR");
  Timed large_refined =
      RunExhaustive(large_scenario, large_required, /*sleep_sets=*/true,
                    large_budget, large_refined_engine,
                    "stress POR refined");
  std::vector<Timed> large_parallel;
  for (int threads : {2, 4, 8}) {
    large_parallel.push_back(
        run_large(parallel_opts(threads), StrFormat("stress x%d", threads)));
  }
  // Budget-capped runs cover engine-dependent slices of the space, so
  // cross-engine equality is only meaningful when both sides exhausted.
  auto require_if_exhausted = [&](const Timed& a, const Timed& b) {
    if (a.result.exhausted && b.result.exhausted) RequireSameVerdicts(a, b);
  };
  if (!large_snapshot.result.exhausted) {
    std::fprintf(stderr,
                 "warning: stress baseline hit the schedule budget "
                 "(%lld); cross-engine equality not checked\n",
                 static_cast<long long>(large_budget));
  }
  require_if_exhausted(large_snapshot, large_undo);
  require_if_exhausted(large_snapshot, large_dedup);
  for (const Timed& t : large_parallel) {
    require_if_exhausted(large_snapshot, t);
  }
  RequireSameOutcome(large_por, large_refined);
  double stress_prune_gain = 0.0;
  if (large_por.result.exhausted && large_refined.result.exhausted) {
    if (large_refined.result.schedules >= large_por.result.schedules ||
        large_refined.result.refined_grants <= 0) {
      std::fprintf(stderr,
                   "refined independence bought nothing on the stress "
                   "scenario: %lld -> %lld schedules, %lld grants\n",
                   static_cast<long long>(large_por.result.schedules),
                   static_cast<long long>(large_refined.result.schedules),
                   static_cast<long long>(
                       large_refined.result.refined_grants));
      std::exit(1);
    }
    stress_prune_gain = static_cast<double>(large_por.result.schedules) /
                        static_cast<double>(large_refined.result.schedules);
  }

  TablePrinter large_table({"mode", "threads", "schedules", "executions",
                            "redundancy", "dedup hits", "violations",
                            "wall ms", "schedules/s"});
  auto add_large = [&](const Timed& t) {
    large_table.AddRow(
        {t.mode, StrFormat("%d", t.threads),
         StrFormat("%lld", static_cast<long long>(t.result.schedules)),
         StrFormat("%lld", static_cast<long long>(t.result.executions)),
         StrFormat("%.2f", t.Redundancy()),
         StrFormat("%lld", static_cast<long long>(t.result.dedup_hits)),
         StrFormat("%lld", static_cast<long long>(t.result.violations)),
         StrFormat("%lld", static_cast<long long>(t.wall_ms)),
         StrFormat("%.0f", t.SchedulesPerSec())});
  };
  add_large(large_snapshot);
  add_large(large_undo);
  add_large(large_dedup);
  add_large(large_por);
  add_large(large_refined);
  for (const Timed& t : large_parallel) add_large(t);
  std::printf("%s\n", large_table.Render().c_str());
  std::printf(
      "stress refined independence: %.2fx fewer schedules than the "
      "site-rule POR (%lld grants)\n",
      stress_prune_gain,
      static_cast<long long>(large_refined.result.refined_grants));

  const Timed& large_8t = large_parallel.back();
  double undo_dedup_speedup = Speedup(large_snapshot, large_dedup);
  double large_parallel_speedup = Speedup(large_dedup, large_8t);
  std::printf(
      "stress: undo+dedup %.1fx over deep-copy sequential; 8 threads "
      "%.1fx over undo+dedup sequential (fallback: %s); dedup hit rate "
      "%.1f%%, %.1f undo entries/rollback\n",
      undo_dedup_speedup, large_parallel_speedup,
      large_8t.result.parallel_fallback ? "yes" : "no",
      100.0 * large_dedup.DedupHitRate(), large_undo.UndoPerRollback());

  std::string parallel_json;
  for (size_t i = 0; i < parallel.size(); ++i) {
    const Timed& t = parallel[i];
    parallel_json += StrFormat(
        "    {\"config\": \"%s\", \"threads\": %d, \"schedules\": %lld, "
        "\"executions\": %lld, \"dedup_hits\": %lld, "
        "\"parallel_fallback\": %s, \"wall_ms\": %lld, "
        "\"schedules_per_sec\": %.1f}%s\n",
        t.sleep_sets ? "por" : "naive", t.threads,
        static_cast<long long>(t.result.schedules),
        static_cast<long long>(t.result.executions),
        static_cast<long long>(t.result.dedup_hits),
        t.result.parallel_fallback ? "true" : "false",
        static_cast<long long>(t.wall_ms), t.SchedulesPerSec(),
        i + 1 < parallel.size() ? "," : "");
  }
  std::string cadence_json;
  for (size_t i = 0; i < cadence.size(); ++i) {
    const Timed& t = cadence[i];
    cadence_json += StrFormat(
        "    {\"anchor_every\": %d, \"wall_ms\": %lld, "
        "\"anchor_snapshots\": %lld, \"undo_rollbacks\": %lld, "
        "\"undo_per_rollback\": %.1f}%s\n",
        i == 0 ? 1 : (i == 1 ? 8 : 64),
        static_cast<long long>(t.wall_ms),
        static_cast<long long>(t.result.anchor_snapshots),
        static_cast<long long>(t.result.undo_rollbacks),
        t.UndoPerRollback(), i + 1 < cadence.size() ? "," : "");
  }
  std::string large_parallel_json;
  for (size_t i = 0; i < large_parallel.size(); ++i) {
    const Timed& t = large_parallel[i];
    large_parallel_json += StrFormat(
        "      {\"threads\": %d, \"schedules\": %lld, \"wall_ms\": %lld, "
        "\"parallel_fallback\": %s, \"schedules_per_sec\": %.1f}%s\n",
        t.threads, static_cast<long long>(t.result.schedules),
        static_cast<long long>(t.wall_ms),
        t.result.parallel_fallback ? "true" : "false",
        t.SchedulesPerSec(), i + 1 < large_parallel.size() ? "," : "");
  }

  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"explorer_throughput\",\n"
      "  \"cores\": %u,\n"
      "  \"algorithm\": \"%s\",\n"
      "  \"required_level\": \"%s\",\n"
      "  \"por\": %s,\n"
      "  \"naive\": %s,\n"
      "  \"por_replay\": %s,\n"
      "  \"naive_replay\": %s,\n"
      "  \"por_undo\": %s,\n"
      "  \"naive_undo\": %s,\n"
      "  \"por_dedup\": %s,\n"
      "  \"naive_dedup\": %s,\n"
      "  \"por_refined\": %s,\n"
      "  \"refined\": {\n"
      "    \"faulty_site\": %s,\n"
      "    \"faulty_refined\": %s,\n"
      "    \"stress_site\": %s,\n"
      "    \"stress_refined\": %s,\n"
      "    \"refined_prune_gain\": %.2f,\n"
      "    \"stress_prune_gain\": %.2f\n"
      "  },\n"
      "  \"cadence\": [\n%s  ],\n"
      "  \"parallel\": [\n%s  ],\n"
      "  \"reduction_x\": %.2f,\n"
      "  \"prefix_sharing_speedup_x\": %.2f,\n"
      "  \"large\": {\n"
      "    \"updates\": %d,\n"
      "    \"snapshot\": %s,\n"
      "    \"undo\": %s,\n"
      "    \"dedup\": %s,\n"
      "    \"parallel\": [\n%s    ],\n"
      "    \"undo_dedup_speedup_x\": %.2f,\n"
      "    \"parallel_speedup_x\": %.2f\n"
      "  },\n"
      "  \"random\": {\"walks\": %lld, \"violations\": %lld, "
      "\"wall_ms\": %lld}\n"
      "}\n",
      std::thread::hardware_concurrency(), AlgorithmName(algo),
      ConsistencyLevelName(required),
      RowJson(por).c_str(), RowJson(naive).c_str(),
      RowJson(por_replay).c_str(), RowJson(naive_replay).c_str(),
      RowJson(por_undo).c_str(), RowJson(naive_undo).c_str(),
      RowJson(por_dedup).c_str(), RowJson(naive_dedup).c_str(),
      RowJson(por_refined).c_str(), RowJson(faulty_site).c_str(),
      RowJson(faulty_refined).c_str(), RowJson(large_por).c_str(),
      RowJson(large_refined).c_str(), refined_prune_gain,
      stress_prune_gain,
      cadence_json.c_str(), parallel_json.c_str(), reduction,
      sharing_speedup, large_updates, RowJson(large_snapshot).c_str(),
      RowJson(large_undo).c_str(), RowJson(large_dedup).c_str(),
      large_parallel_json.c_str(), undo_dedup_speedup,
      large_parallel_speedup, static_cast<long long>(random.schedules),
      static_cast<long long>(random.violations),
      static_cast<long long>(random_ms));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
