// Schedule-space explorer throughput (src/verify/).
//
// Exhaustively enumerates every FIFO-respecting interleaving of the
// paper's Section 5.2 worked example — with sleep-set partial-order
// reduction and naively — under three execution engines:
//
//   replay    stateless baseline: every schedule re-executes its whole
//             choice prefix from a fresh system (share_prefixes=false)
//   shared    prefix-sharing DFS: one live system, snapshot/restore at
//             decision points, ~1 execution per schedule
//   shared xN shared engine with the subtree frontier split across N
//             work-stealing threads
//
// plus a batch of seeded random walks. Reports wall clock, the
// replay-redundancy factor (executions / schedules — how many times the
// average event was re-executed), and the POR pruning factor
// machine-readably. The bench aborts if any two engines disagree on
// schedule counts or verdicts: the speedup rows are only meaningful
// because every engine answers the identical question.
//
//   $ ./explorer_throughput [--algo=SWEEP] [--budget=500000]
//                           [--walks=500] [--out=BENCH_explorer.json]
//
// Acceptance bars: POR prunes >= 2x schedules vs. naive enumeration
// (ISSUE 3); replay redundancy <= 1.5 on the POR config and >= 5x
// wall-clock speedup on the naive config vs. the replay baseline
// (ISSUE 4); zero violations for SWEEP throughout.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "verify/explorer.h"
#include "verify/scenarios.h"

using namespace sweepmv;

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  std::string mode;
  bool sleep_sets = true;
  int threads = 1;
  ExploreResult result;
  int64_t wall_ms = 0;
  double SchedulesPerSec() const {
    return wall_ms > 0 ? 1000.0 * static_cast<double>(result.schedules) /
                             static_cast<double>(wall_ms)
                       : 0.0;
  }
  double Redundancy() const {
    return result.schedules > 0
               ? static_cast<double>(result.executions) /
                     static_cast<double>(result.schedules)
               : 0.0;
  }
};

Timed RunExhaustive(const ControlledScenario& scenario,
                    ConsistencyLevel required, bool sleep_sets,
                    int64_t budget, bool share_prefixes, int threads,
                    std::string mode) {
  ExplorerConfig config{scenario, required, sleep_sets, budget,
                        /*max_steps_per_run=*/10'000,
                        /*stop_at_first_violation=*/false,
                        /*minimize=*/false};
  config.share_prefixes = share_prefixes;
  config.threads = threads;
  Timed timed;
  timed.mode = std::move(mode);
  timed.sleep_sets = sleep_sets;
  timed.threads = threads;
  int64_t start = NowMs();
  timed.result = ExploreExhaustive(config);
  timed.wall_ms = NowMs() - start;
  return timed;
}

// All engines must agree on everything schedule-determined before any
// speedup row is worth printing.
void RequireSameVerdicts(const Timed& baseline, const Timed& other) {
  if (baseline.result.schedules == other.result.schedules &&
      baseline.result.violations == other.result.violations &&
      baseline.result.exhausted == other.result.exhausted &&
      baseline.result.worst == other.result.worst) {
    return;
  }
  std::fprintf(stderr,
               "engine disagreement: %s (%lld schedules, %lld violations) "
               "vs %s (%lld schedules, %lld violations)\n",
               baseline.mode.c_str(),
               static_cast<long long>(baseline.result.schedules),
               static_cast<long long>(baseline.result.violations),
               other.mode.c_str(),
               static_cast<long long>(other.result.schedules),
               static_cast<long long>(other.result.violations));
  std::exit(1);
}

double Speedup(const Timed& baseline, const Timed& fast) {
  // Sub-millisecond runs clamp to 1ms so ratios stay finite (and
  // conservative: the real speedup is at least what we report).
  double base = static_cast<double>(baseline.wall_ms > 0 ? baseline.wall_ms : 1);
  double ms = static_cast<double>(fast.wall_ms > 0 ? fast.wall_ms : 1);
  return base / ms;
}

Algorithm ParseAlgo(const std::string& name) {
  for (Algorithm a : AllAlgorithmVariants()) {
    if (name == AlgorithmName(a)) return a;
  }
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

std::string RowJson(const Timed& t) {
  return StrFormat(
      "{\"schedules\": %lld, \"executions\": %lld, "
      "\"replay_redundancy\": %.2f, \"threads\": %d, \"exhausted\": %s, "
      "\"violations\": %lld, \"sleep_pruned\": %lld, \"wall_ms\": %lld, "
      "\"schedules_per_sec\": %.1f}",
      static_cast<long long>(t.result.schedules),
      static_cast<long long>(t.result.executions), t.Redundancy(),
      t.threads, t.result.exhausted ? "true" : "false",
      static_cast<long long>(t.result.violations),
      static_cast<long long>(t.result.sleep_pruned),
      static_cast<long long>(t.wall_ms), t.SchedulesPerSec());
}

}  // namespace

int main(int argc, char** argv) {
  Algorithm algo = Algorithm::kSweep;
  int64_t budget = 500'000;
  int64_t walks = 500;
  std::string out_path = "BENCH_explorer.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      algo = ParseAlgo(arg.substr(7));
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::atoll(arg.substr(9).c_str());
    } else if (arg.rfind("--walks=", 0) == 0) {
      walks = std::atoll(arg.substr(8).c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  ControlledScenario scenario = PaperExampleScenario(algo);
  ConsistencyLevel required = PromisedConsistency(algo);
  std::printf(
      "Schedule-space exploration of the Section 5.2 example under %s "
      "(required: %s).\n\n",
      AlgorithmName(algo), ConsistencyLevelName(required));

  auto run = [&](bool sleep_sets, bool share, int threads,
                 std::string mode) {
    return RunExhaustive(scenario, required, sleep_sets, budget, share,
                         threads, std::move(mode));
  };

  // Stateless replay baselines (the pre-prefix-sharing engine).
  Timed por_replay = run(true, false, 1, "POR replay");
  Timed naive_replay = run(false, false, 1, "naive replay");

  // Prefix-sharing engine, sequential then parallel.
  Timed por = run(true, true, 1, "POR shared");
  Timed naive = run(false, true, 1, "naive shared");
  std::vector<Timed> parallel;
  for (int threads : {2, 4, 8}) {
    parallel.push_back(run(true, true, threads,
                           StrFormat("POR shared x%d", threads)));
    parallel.push_back(run(false, true, threads,
                           StrFormat("naive shared x%d", threads)));
  }

  RequireSameVerdicts(por_replay, por);
  RequireSameVerdicts(naive_replay, naive);
  for (const Timed& t : parallel) {
    RequireSameVerdicts(t.sleep_sets ? por : naive, t);
  }

  ExplorerConfig random_config{scenario, required, /*sleep_sets=*/true,
                               budget, /*max_steps_per_run=*/10'000,
                               /*stop_at_first_violation=*/false,
                               /*minimize=*/false};
  int64_t random_start = NowMs();
  ExploreResult random =
      ExploreRandom(random_config, walks, /*seed=*/12345);
  int64_t random_ms = NowMs() - random_start;

  TablePrinter table({"mode", "threads", "schedules", "executions",
                      "redundancy", "violations", "wall ms",
                      "schedules/s"});
  auto add = [&](const Timed& t) {
    table.AddRow({t.mode, StrFormat("%d", t.threads),
                  StrFormat("%lld", static_cast<long long>(t.result.schedules)),
                  StrFormat("%lld", static_cast<long long>(t.result.executions)),
                  StrFormat("%.2f", t.Redundancy()),
                  StrFormat("%lld", static_cast<long long>(t.result.violations)),
                  StrFormat("%lld", static_cast<long long>(t.wall_ms)),
                  StrFormat("%.0f", t.SchedulesPerSec())});
  };
  add(por_replay);
  add(naive_replay);
  add(por);
  add(naive);
  for (const Timed& t : parallel) add(t);
  table.AddRow({"random walks", "1",
                StrFormat("%lld", static_cast<long long>(random.schedules)),
                StrFormat("%lld", static_cast<long long>(random.executions)),
                "-",
                StrFormat("%lld", static_cast<long long>(random.violations)),
                StrFormat("%lld", static_cast<long long>(random_ms)), "-"});
  std::printf("%s\n", table.Render().c_str());

  double reduction =
      por.result.schedules > 0
          ? static_cast<double>(naive.result.schedules) /
                static_cast<double>(por.result.schedules)
          : 0.0;
  const Timed& naive_8t = parallel.back();
  double sharing_speedup = Speedup(naive_replay, naive);
  double parallel_speedup = Speedup(naive_replay, naive_8t);
  std::printf("POR reduction: %.2fx (%lld pruned branches)\n", reduction,
              static_cast<long long>(por.result.sleep_pruned));
  std::printf(
      "prefix sharing: naive redundancy %.2f -> %.2f, %.1fx faster "
      "sequential, %.1fx at 8 threads\n",
      naive_replay.Redundancy(), naive.Redundancy(), sharing_speedup,
      parallel_speedup);

  std::string parallel_json;
  for (size_t i = 0; i < parallel.size(); ++i) {
    const Timed& t = parallel[i];
    parallel_json += StrFormat(
        "    {\"config\": \"%s\", \"threads\": %d, \"schedules\": %lld, "
        "\"executions\": %lld, \"wall_ms\": %lld, "
        "\"schedules_per_sec\": %.1f}%s\n",
        t.sleep_sets ? "por" : "naive", t.threads, static_cast<long long>(t.result.schedules),
        static_cast<long long>(t.result.executions),
        static_cast<long long>(t.wall_ms), t.SchedulesPerSec(),
        i + 1 < parallel.size() ? "," : "");
  }

  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"explorer_throughput\",\n"
      "  \"algorithm\": \"%s\",\n"
      "  \"required_level\": \"%s\",\n"
      "  \"por\": %s,\n"
      "  \"naive\": %s,\n"
      "  \"por_replay\": %s,\n"
      "  \"naive_replay\": %s,\n"
      "  \"parallel\": [\n%s  ],\n"
      "  \"reduction_x\": %.2f,\n"
      "  \"prefix_sharing_speedup_x\": %.2f,\n"
      "  \"parallel_speedup_x\": %.2f,\n"
      "  \"random\": {\"walks\": %lld, \"violations\": %lld, "
      "\"wall_ms\": %lld}\n"
      "}\n",
      AlgorithmName(algo), ConsistencyLevelName(required),
      RowJson(por).c_str(), RowJson(naive).c_str(),
      RowJson(por_replay).c_str(), RowJson(naive_replay).c_str(),
      parallel_json.c_str(), reduction, sharing_speedup, parallel_speedup,
      static_cast<long long>(random.schedules),
      static_cast<long long>(random.violations),
      static_cast<long long>(random_ms));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
