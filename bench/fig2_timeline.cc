// Experiment F2 — Figure 2, "On-line Incremental View Computation",
// rendered as a live space-time trace: the warehouse sweeps ΔR2 leftward
// to R1 and rightward to R3 while interfering updates cross the queries
// in flight, and every FIFO ordering the compensation argument leans on
// is visible in the timestamps (the interfering update's notification
// always lands before the contaminated answer).
//
//   $ ./fig2_timeline

#include <cstdio>

#include "consistency/checker.h"
#include "core/factory.h"
#include "harness/trace.h"
#include "sim/simulator.h"
#include "source/data_source.h"

using namespace sweepmv;

int main() {
  ViewDef view = ViewDef::Builder()
                     .AddRelation("R0", Schema::AllInts({"A", "B"}))
                     .AddRelation("R1", Schema::AllInts({"C", "D"}))
                     .AddRelation("R2", Schema::AllInts({"E", "F"}))
                     .JoinOn(0, 1, 0)
                     .JoinOn(1, 1, 0)
                     .Project({3, 5})
                     .Build();
  std::vector<Relation> bases = {
      Relation::OfInts(view.rel_schema(0), {{1, 3}, {2, 3}}),
      Relation::OfInts(view.rel_schema(1), {{3, 7}}),
      Relation::OfInts(view.rel_schema(2), {{5, 6}, {7, 8}}),
  };

  Simulator sim;
  Network network(&sim, LatencyModel::Fixed(1000), 1);
  TraceRecorder trace;
  trace.Attach(&network);

  UpdateIdGenerator ids;
  std::vector<std::unique_ptr<DataSource>> sources;
  for (int r = 0; r < 3; ++r) {
    sources.push_back(std::make_unique<DataSource>(
        r + 1, r, bases[static_cast<size_t>(r)], &view, &network, 0,
        &ids));
    network.RegisterSite(r + 1, sources.back().get());
  }
  std::unique_ptr<Warehouse> warehouse = MakeWarehouse(
      Algorithm::kSweep, 0, view, &network, {1, 2, 3}, WarehouseConfig{});
  network.RegisterSite(0, warehouse.get());
  std::vector<const Relation*> rels{&bases[0], &bases[1], &bases[2]};
  warehouse->InitializeView(view.EvaluateFull(rels));

  sim.ScheduleAt(0, [&] { sources[1]->ApplyInsert(IntTuple({3, 5})); });
  sim.ScheduleAt(400, [&] { sources[2]->ApplyDelete(IntTuple({7, 8})); });
  sim.ScheduleAt(500, [&] { sources[0]->ApplyDelete(IntTuple({2, 3})); });
  sim.Run();

  std::printf(
      "Figure 2 — on-line incremental view computation, traced.\n"
      "System: WH = warehouse, R0..R2 = sources (0-based relation\n"
      "indices); fixed one-way latency\n"
      "1000 ticks. Scenario: the Section 5.2 concurrent updates.\n\n");
  std::printf("%s\n",
              RenderTimeline(trace.messages(),
                             {{0, "WH"}, {1, "R0"}, {2, "R1"}, {3, "R2"}},
                             *warehouse)
                  .c_str());

  std::vector<const StateLog*> logs;
  for (const auto& s : sources) logs.push_back(&s->log());
  ConsistencyReport report = CheckConsistency(view, logs, *warehouse);
  std::printf(
      "What to look for (the paper's FIFO argument, live):\n"
      "  * WH gets 'update u1 of R2' and 'update u2 of R0' BEFORE it\n"
      "    gets the answers those updates contaminated — so both error\n"
      "    terms were subtracted locally, no compensating query appears\n"
      "    anywhere in the trace;\n"
      "  * the sweep for each update is exactly (n-1) query/answer\n"
      "    round trips, left chain then right chain;\n"
      "  * every INSTALL line is a Figure 5 state, in delivery order.\n"
      "Measured consistency: %s\n",
      ConsistencyLevelName(report.level));
  return report.level == ConsistencyLevel::kComplete ? 0 : 1;
}
