// Experiment F5 — regenerates Figure 5 (the state-transformation table of
// the worked example), executed under SWEEP with the three updates
// concurrent, per the Section 5.2 narrative. Prints paper-expected vs.
// measured warehouse states side by side and exits non-zero on any
// mismatch.
//
//   $ ./fig5_example

#include <cstdio>

#include "common/table.h"
#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "source/data_source.h"

using namespace sweepmv;

int main() {
  ViewDef view = ViewDef::Builder()
                     .AddRelation("R1", Schema::AllInts({"A", "B"}))
                     .AddRelation("R2", Schema::AllInts({"C", "D"}))
                     .AddRelation("R3", Schema::AllInts({"E", "F"}))
                     .JoinOn(0, 1, 0)
                     .JoinOn(1, 1, 0)
                     .Project({3, 5})
                     .Build();
  std::vector<Relation> bases = {
      Relation::OfInts(view.rel_schema(0), {{1, 3}, {2, 3}}),
      Relation::OfInts(view.rel_schema(1), {{3, 7}}),
      Relation::OfInts(view.rel_schema(2), {{5, 6}, {7, 8}}),
  };

  Simulator sim;
  Network network(&sim, LatencyModel::Fixed(1000), 1);
  UpdateIdGenerator ids;
  std::vector<std::unique_ptr<DataSource>> sources;
  for (int r = 0; r < 3; ++r) {
    sources.push_back(std::make_unique<DataSource>(
        r + 1, r, bases[static_cast<size_t>(r)], &view, &network, 0,
        &ids));
    network.RegisterSite(r + 1, sources.back().get());
  }
  std::unique_ptr<Warehouse> warehouse = MakeWarehouse(
      Algorithm::kSweep, 0, view, &network, {1, 2, 3}, WarehouseConfig{});
  network.RegisterSite(0, warehouse.get());
  std::vector<const Relation*> rels{&bases[0], &bases[1], &bases[2]};
  warehouse->InitializeView(view.EvaluateFull(rels));

  sim.ScheduleAt(0, [&] { sources[1]->ApplyInsert(IntTuple({3, 5})); });
  sim.ScheduleAt(400, [&] { sources[2]->ApplyDelete(IntTuple({7, 8})); });
  sim.ScheduleAt(500, [&] { sources[0]->ApplyDelete(IntTuple({2, 3})); });
  sim.Run();

  // Paper's warehouse column (counts in brackets).
  std::vector<Relation> expected = {
      Relation::OfInts(view.view_schema(),
                       {{5, 6}, {5, 6}, {7, 8}, {7, 8}}),
      Relation::OfInts(view.view_schema(), {{5, 6}, {5, 6}}),
      Relation::OfInts(view.view_schema(), {{5, 6}}),
  };
  const char* events[] = {"dR2 = +(3,5) (insert)", "dR3 = -(7,8) (delete)",
                          "dR1 = -(2,3) (delete)"};

  std::printf(
      "Figure 5 — warehouse state after each update, with the three\n"
      "updates running concurrently under SWEEP:\n\n");
  TablePrinter table(
      {"Event", "Warehouse V (paper)", "Warehouse V (measured)", "Match"});
  table.AddRow({"Initial State", "{(7,8)[2]}", "{(7,8)[2]}", "yes"});

  const auto& installs = warehouse->install_log();
  bool all_match = installs.size() == 3;
  for (size_t i = 0; i < installs.size() && i < 3; ++i) {
    bool match = installs[i].view_after == expected[i];
    all_match = all_match && match;
    table.AddRow({events[i], expected[i].ToDisplayString(),
                  installs[i].view_after.ToDisplayString(),
                  match ? "yes" : "NO"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::vector<const StateLog*> logs;
  for (const auto& s : sources) logs.push_back(&s->log());
  ConsistencyReport report = CheckConsistency(view, logs, *warehouse);
  std::printf("Consistency: %s; maintenance messages: %lld queries, %lld "
              "answers\n",
              ConsistencyLevelName(report.level),
              static_cast<long long>(
                  network.stats().Of(MessageClass::kQueryRequest).messages),
              static_cast<long long>(
                  network.stats().Of(MessageClass::kQueryAnswer).messages));
  std::printf("Figure 5 reproduced: %s\n", all_match ? "YES" : "NO");
  return all_match && report.level == ConsistencyLevel::kComplete ? 0 : 1;
}
