// Storage-engine experiment — indexed vs. scan sweep-query answering.
//
// SWEEP sends one incremental query per source per update; the source
// joins a (usually single-tuple) delta against its whole base relation.
// The scan path rebuilds a hash table over the relation per query
// (O(|R|)); the storage engine (src/storage/) probes a maintained index
// (O(|Δ| · matches)). This harness measures both across base-relation
// sizes and emits the perf trajectory machine-readably.
//
//   $ ./index_speedup [--sizes=1000,10000,100000] [--min-ms=50]
//                     [--out=BENCH_index_speedup.json]
//
// The acceptance bar (ISSUE 2): >= 5x speedup for a single-tuple delta
// against a 100k-tuple base relation.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str.h"
#include "common/table.h"
#include "relational/partial_delta.h"
#include "storage/index_catalog.h"
#include "storage/indexed_ops.h"
#include "storage/indexed_relation.h"

using namespace sweepmv;

namespace {

// R0(K0,A0,B0) ⋈ R1(K1,A1,B1) on R0.B0 = R1.A1 — the chain-link shape
// every generated scenario uses (workload/schema_gen.h).
ViewDef MakeTwoRelationView() {
  return ViewDef::Builder()
      .AddRelation("R0", Schema::AllInts({"K0", "A0", "B0"}))
      .AddRelation("R1", Schema::AllInts({"K1", "A1", "B1"}))
      .JoinOn(0, 2, 1)
      .Build();
}

Relation MakeBase(const ViewDef& view, int64_t size, int64_t join_domain,
                  uint64_t seed) {
  Rng rng(seed);
  Relation base(view.rel_schema(1));
  for (int64_t k = 0; k < size; ++k) {
    base.Add(IntTuple({k, rng.Uniform(0, join_domain - 1),
                       rng.Uniform(0, join_domain - 1)}));
  }
  return base;
}

std::vector<int64_t> ParseSizes(const std::string& csv) {
  std::vector<int64_t> sizes;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) {
      sizes.push_back(std::atoll(csv.substr(start, comma - start).c_str()));
    }
    start = comma + 1;
  }
  return sizes;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Mean ns per call of `fn`, batching calls until `min_ms` of wall time.
template <typename Fn>
double TimeNsPerOp(int64_t min_ms, Fn&& fn) {
  int64_t reps = 0;
  const int64_t start = NowNs();
  const int64_t deadline = start + min_ms * 1'000'000;
  int64_t now = start;
  do {
    fn();
    ++reps;
    now = NowNs();
  } while (now < deadline);
  return static_cast<double>(now - start) / static_cast<double>(reps);
}

struct Row {
  int64_t base_size = 0;
  double scan_ns = 0;
  double indexed_ns = 0;
  int64_t matches_per_query = 0;
  double speedup() const { return scan_ns / indexed_ns; }
};

Row RunAt(int64_t base_size, int64_t min_ms) {
  ViewDef view = MakeTwoRelationView();
  // ~4 matches per probe regardless of size, so the scan/indexed gap
  // isolates the O(|R|) table build, not the output size.
  const int64_t join_domain = std::max<int64_t>(1, base_size / 4);
  Relation base = MakeBase(view, base_size, join_domain, /*seed=*/7);

  IndexedRelation store(base);
  IndexCatalog catalog(view);
  for (const auto& key : catalog.key_sets(1)) store.EnsureIndex(key);

  // Single-tuple ΔR0 whose B0 hits the join domain.
  PartialDelta delta = PartialDelta::ForRelation(
      view, 0, Relation::OfInts(view.rel_schema(0), {{-1, 0, 1}}));

  // Answers must agree before we time anything.
  StorageStats stats;
  Relation via_scan = ExtendRight(view, delta, base).rel;
  Relation via_index = ExtendRightIndexed(view, delta, store, &stats).rel;
  if (via_scan != via_index) {
    std::fprintf(stderr, "FATAL: indexed answer diverged from scan\n");
    std::abort();
  }
  if (stats.scan_fallbacks != 0) {
    std::fprintf(stderr, "FATAL: probe fell back to a scan\n");
    std::abort();
  }

  Row row;
  row.base_size = base_size;
  row.matches_per_query = via_scan.TotalCount();
  row.scan_ns = TimeNsPerOp(min_ms, [&] {
    Relation r = ExtendRight(view, delta, base).rel;
    (void)r;
  });
  row.indexed_ns = TimeNsPerOp(min_ms, [&] {
    Relation r = ExtendRightIndexed(view, delta, store, &stats).rel;
    (void)r;
  });
  return row;
}

std::string JsonReport(const std::vector<Row>& rows) {
  std::string json = "{\n  \"bench\": \"index_speedup\",\n";
  json += "  \"delta_size\": 1,\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json += StrFormat(
        "    {\"base_size\": %lld, \"matches_per_query\": %lld, "
        "\"scan_ns_per_query\": %.1f, \"indexed_ns_per_query\": %.1f, "
        "\"speedup\": %.2f}%s\n",
        static_cast<long long>(r.base_size),
        static_cast<long long>(r.matches_per_query), r.scan_ns,
        r.indexed_ns, r.speedup(), i + 1 < rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int64_t> sizes = {1'000, 10'000, 100'000};
  int64_t min_ms = 50;
  std::string out_path = "BENCH_index_speedup.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sizes=", 0) == 0) {
      sizes = ParseSizes(arg.substr(8));
    } else if (arg.rfind("--min-ms=", 0) == 0) {
      min_ms = std::atoll(arg.substr(9).c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf(
      "Indexed vs. scan query answering, single-tuple delta "
      "(~4 matches/query).\n\n");

  std::vector<Row> rows;
  TablePrinter table(
      {"|R|", "matches", "scan ns/query", "indexed ns/query", "speedup"});
  for (int64_t size : sizes) {
    Row row = RunAt(size, min_ms);
    table.AddRow({StrFormat("%lld", static_cast<long long>(row.base_size)),
                  StrFormat("%lld",
                            static_cast<long long>(row.matches_per_query)),
                  StrFormat("%.0f", row.scan_ns),
                  StrFormat("%.0f", row.indexed_ns),
                  StrFormat("%.1fx", row.speedup())});
    rows.push_back(row);
  }
  std::printf("%s\n", table.Render().c_str());

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string json = JsonReport(rows);
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
