// Ingest-throughput experiment — the sharded + batched maintenance
// pipeline (src/shard/) against the single-warehouse per-update
// baseline.
//
// Three configurations ingest the same kind of hot-key workload
// (key_skew Zipf churn, one op per client transaction):
//
//   unbatched_single — one view, one shard, every client transaction
//                      commits individually: the paper's per-update
//                      SWEEP, router topology included.
//   batched_single   — one view, one shard, client transactions ride
//                      BatchPipelines (count + timer flush): one sweep
//                      maintains a whole submit window, and hot-key
//                      churn cancels inside the batch.
//   batched_sharded  — many views, four shards each, batching on; the
//                      full subsystem at millions of client updates.
//
// Reported per configuration: client updates ingested per wall-clock
// second (the throughput claim) and p50/p99 submit->install staleness in
// sim ticks (the latency price batching pays). Machine-readable output
// goes to --out for CI to assert on.
//
//   $ ./ingest_throughput [--smoke] [--out=BENCH_ingest.json]
//
// The full run submits >= 1M client updates in the sharded
// configuration; --smoke shrinks everything for CI.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "shard/sharded_scenario.h"

using namespace sweepmv;

namespace {

struct BenchRow {
  std::string name;
  int views = 1;
  int shards = 1;
  int batch = 0;  // 0 = unbatched
  int64_t txns = 0;
  int64_t commits = 0;   // update messages entering the system
  int64_t installs = 0;  // owned installs across shards
  int64_t noop_batches = 0;
  double wall_ms = 0.0;
  double updates_per_sec = 0.0;  // client txns / wall second
  double staleness_p50 = 0.0;    // sim ticks, submit -> install
  double staleness_p99 = 0.0;
};

ShardedScenarioConfig MakeConfig(int views, int shards, bool batching,
                                 int txns_per_view) {
  ShardedScenarioConfig config;
  config.base.algorithm = Algorithm::kSweep;
  config.base.chain.num_relations = 3;
  config.base.chain.initial_tuples = 32;
  // Moderate selectivity: ~4 view tuples per base delta, so the bench
  // measures protocol throughput, not join fan-out.
  config.base.chain.join_domain = 64;
  config.base.workload.total_txns = txns_per_view;
  // Interarrival must exceed the ~8k-tick routed sweep or the unbatched
  // baseline's queue grows without bound (compensation scans the queue).
  config.base.workload.mean_interarrival = 12'000.0;
  config.base.workload.max_ops_per_txn = 1;
  // Hot-key churn: the workload batching profits from and the skew knob
  // exists for. The live working set stays ~key_domain tuples, so sweep
  // queries stay cheap at any transaction count.
  config.base.workload.key_skew = 0.8;
  config.base.workload.key_domain = 256;
  config.base.latency = LatencyModel::Fixed(1000);
  // Throughput mode: no full install log, no replay verification — the
  // lightweight install-time log still feeds the staleness percentiles.
  config.base.warehouse.base.log_installs = false;
  config.base.check_consistency = false;
  config.base.max_events = 200'000'000;
  config.num_views = views;
  config.num_shards = shards;
  config.batching = batching;
  // The flush window scales with the shard count: a flush under
  // shard-affine routing splits into one sub-update per residue class,
  // so `64 * shards` buffered transactions keep ~64 ops in each shard's
  // sub-update — the same per-sweep amortization the single-shard
  // pipeline gets from a 64-op batch.
  config.batch.max_batch = 64 * shards;
  // Per-relation fill time for a full batch is ~max_batch * 3 *
  // interarrival; the timer is a staleness backstop above that, so most
  // flushes hit the count threshold and amortization stays at the full
  // window.
  config.batch.max_delay = 2'500'000 * shards;
  return config;
}

BenchRow RunConfig(const std::string& name, int views, int shards,
                   bool batching, int txns_per_view) {
  const ShardedScenarioConfig config =
      MakeConfig(views, shards, batching, txns_per_view);
  const auto start = std::chrono::steady_clock::now();
  const ShardedRunResult result = RunShardedScenario(config);
  const auto end = std::chrono::steady_clock::now();

  BenchRow row;
  row.name = name;
  row.views = views;
  row.shards = shards;
  row.batch = batching ? config.batch.max_batch : 0;
  row.txns = result.txns_submitted;
  row.commits = result.updates_committed;
  row.installs = result.installs;
  row.noop_batches = result.noop_batches;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  row.updates_per_sec =
      row.wall_ms > 0.0
          ? static_cast<double>(row.txns) / (row.wall_ms / 1000.0)
          : 0.0;
  row.staleness_p50 = result.staleness.p50;
  row.staleness_p99 = result.staleness.p99;
  if (!result.completed) {
    std::fprintf(stderr, "FATAL: %s did not drain\n", name.c_str());
    std::abort();
  }
  return row;
}

std::string JsonReport(const std::vector<BenchRow>& rows) {
  std::string json = "{\n  \"bench\": \"ingest_throughput\",\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    json += StrFormat(
        "    {\"config\": \"%s\", \"views\": %d, \"shards\": %d, "
        "\"batch\": %d, \"txns\": %lld, \"commits\": %lld, "
        "\"installs\": %lld, \"noop_batches\": %lld, "
        "\"wall_ms\": %.1f, \"updates_per_sec\": %.1f, "
        "\"staleness_p50\": %.1f, \"staleness_p99\": %.1f}%s\n",
        r.name.c_str(), r.views, r.shards, r.batch,
        static_cast<long long>(r.txns), static_cast<long long>(r.commits),
        static_cast<long long>(r.installs),
        static_cast<long long>(r.noop_batches), r.wall_ms,
        r.updates_per_sec, r.staleness_p50, r.staleness_p99,
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const int single_txns = smoke ? 2'000 : 100'000;
  const int sharded_views = smoke ? 4 : 40;
  const int sharded_txns_per_view = smoke ? 1'500 : 26'000;

  std::printf(
      "Ingest throughput: per-update SWEEP vs. batched vs. "
      "batched+sharded (hot-key workload).\n\n");

  std::vector<BenchRow> rows;
  rows.push_back(RunConfig("unbatched_single", /*views=*/1, /*shards=*/1,
                           /*batching=*/false, single_txns));
  rows.push_back(RunConfig("batched_single", /*views=*/1, /*shards=*/1,
                           /*batching=*/true, single_txns));
  rows.push_back(RunConfig("batched_sharded", sharded_views, /*shards=*/4,
                           /*batching=*/true, sharded_txns_per_view));

  TablePrinter table({"config", "views", "shards", "batch", "txns",
                      "commits", "wall ms", "txns/sec", "p50 stale",
                      "p99 stale"});
  for (const BenchRow& r : rows) {
    table.AddRow({r.name, StrFormat("%d", r.views),
                  StrFormat("%d", r.shards), StrFormat("%d", r.batch),
                  StrFormat("%lld", static_cast<long long>(r.txns)),
                  StrFormat("%lld", static_cast<long long>(r.commits)),
                  StrFormat("%.0f", r.wall_ms),
                  StrFormat("%.0f", r.updates_per_sec),
                  StrFormat("%.0f", r.staleness_p50),
                  StrFormat("%.0f", r.staleness_p99)});
  }
  std::printf("%s\n", table.Render().c_str());

  const double baseline = rows[0].updates_per_sec;
  const double sharded = rows[2].updates_per_sec;
  std::printf("batched+sharded vs unbatched baseline: %.2fx\n",
              baseline > 0.0 ? sharded / baseline : 0.0);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string json = JsonReport(rows);
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
