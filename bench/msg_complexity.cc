// Experiment E1 — message complexity vs. number of sources (Sections 5.3,
// 6.2): SWEEP needs exactly 2(n-1) maintenance messages per update;
// Nested SWEEP at most that (amortized below it under interference);
// Strobe ~2(n-1) per insert; C-Strobe grows past 2(n-1) with
// interference; ECA is flat (single site).
//
//   $ ./msg_complexity

#include <cstdio>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

double MsgsPerUpdate(Algorithm algorithm, int n, bool concurrent) {
  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = n;
  config.chain.initial_tuples = 12;
  // Unit join fan-out: partial deltas stay small even across 12
  // relations, so the bench measures message *counts*, not payload
  // explosions.
  config.chain.join_domain = 12;
  config.workload.total_txns = 24;
  // Concurrent: many updates per round trip; sequential: far apart.
  config.workload.mean_interarrival = concurrent ? 1500 : 60000;
  config.latency = LatencyModel::Fixed(1000);
  RunResult r = RunScenario(config);
  if (r.final_view != r.expected_view) {
    std::fprintf(stderr, "%s diverged at n=%d!\n",
                 AlgorithmName(algorithm), n);
  }
  return r.maintenance_msgs_per_update;
}

}  // namespace

int main() {
  const std::vector<int> kSources = {2, 3, 4, 6, 8, 10, 12};
  const std::vector<Algorithm> kAlgorithms = {
      Algorithm::kSweep, Algorithm::kNestedSweep, Algorithm::kStrobe,
      Algorithm::kCStrobe, Algorithm::kEca};

  for (bool concurrent : {false, true}) {
    std::printf(
        "Maintenance messages per update vs. number of sources n\n"
        "(%s updates; 2(n-1) is SWEEP's analytical cost):\n\n",
        concurrent ? "CONCURRENT" : "sequential, non-interfering");

    std::vector<std::string> headers = {"n", "2(n-1)"};
    for (Algorithm a : kAlgorithms) headers.push_back(AlgorithmName(a));
    TablePrinter table(headers);

    for (int n : kSources) {
      std::vector<std::string> row = {StrFormat("%d", n),
                                      StrFormat("%d", 2 * (n - 1))};
      for (Algorithm a : kAlgorithms) {
        row.push_back(StrFormat("%.1f", MsgsPerUpdate(a, n, concurrent)));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Shape check (paper): SWEEP tracks 2(n-1) exactly in both "
      "regimes;\nNested SWEEP drops below SWEEP once updates interfere "
      "(amortization);\nC-Strobe exceeds SWEEP under interference "
      "(compensating queries);\nECA stays flat at 2 (one query + one "
      "answer per update, single site).\n");
  return 0;
}
