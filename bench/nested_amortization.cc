// Experiment E5 — Nested SWEEP's batch amortization and its
// forced-termination switch (Section 6): the message cost of one
// composite ViewChange is shared by every concurrent update it folds in,
// so messages/update falls as the interfering batch grows; the recursion
// budget ("periodically switching to the SWEEP algorithm") bounds the
// oscillation an adversarial alternating stream can cause, trading
// amortization for complete-consistency-style installs.
//
//   $ ./nested_amortization

#include <cstdio>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

RunResult RunBatch(int batch, int depth_budget) {
  ScenarioConfig config;
  config.algorithm = Algorithm::kNestedSweep;
  config.chain.num_relations = 4;
  config.chain.initial_tuples = 12;
  config.chain.join_domain = 5;
  config.workload.total_txns = batch;
  config.workload.mean_interarrival = 200;  // all inside one sweep
  config.latency = LatencyModel::Fixed(4000);
  config.warehouse.nested_max_recursion_depth = depth_budget;
  RunResult r = RunScenario(config);
  if (r.final_view != r.expected_view) {
    std::fprintf(stderr, "diverged (batch=%d, depth=%d)!\n", batch,
                 depth_budget);
  }
  return r;
}

}  // namespace

int main() {
  std::printf(
      "Nested SWEEP amortization: B mutually concurrent updates (4 "
      "sources,\nround trip >> inter-arrival). SWEEP would pay 2(n-1)=6 "
      "msgs per\nupdate; Nested SWEEP shares one composite sweep.\n\n");

  TablePrinter amort({"Batch B", "Installs", "Nested calls",
                      "msgs/update", "SWEEP msgs/update (ref)"});
  for (int batch : {1, 2, 4, 6, 8, 12}) {
    RunResult r = RunBatch(batch, /*depth_budget=*/64);
    amort.AddRow({StrFormat("%d", batch),
                  StrFormat("%lld", static_cast<long long>(r.installs)),
                  StrFormat("%lld", static_cast<long long>(r.nested_calls)),
                  StrFormat("%.1f", r.maintenance_msgs_per_update),
                  "6.0"});
  }
  std::printf("%s\n", amort.Render().c_str());

  std::printf(
      "Forced-termination switch: the same 12-update batch under "
      "shrinking\nrecursion budgets (budget 1 = plain SWEEP):\n\n");
  TablePrinter force({"Depth budget", "Installs", "Nested calls",
                      "Forced deferrals", "msgs/update",
                      "Consistency (measured)"});
  for (int depth : {64, 8, 4, 2, 1}) {
    RunResult r = RunBatch(12, depth);
    force.AddRow(
        {StrFormat("%d", depth),
         StrFormat("%lld", static_cast<long long>(r.installs)),
         StrFormat("%lld", static_cast<long long>(r.nested_calls)),
         StrFormat("%lld", static_cast<long long>(r.forced_deferrals)),
         StrFormat("%.1f", r.maintenance_msgs_per_update),
         ConsistencyLevelName(r.consistency.level)});
  }
  std::printf("%s\n", force.Render().c_str());

  std::printf(
      "Shape check (paper): msgs/update decreases toward ~(one sweep)/B "
      "as\nthe batch grows; with budget 1 Nested SWEEP degenerates to "
      "SWEEP\n(installs == updates, complete consistency, 6 "
      "msgs/update); every\nbudget in between keeps strong consistency "
      "— the termination switch\nis safe.\n");
  return 0;
}
