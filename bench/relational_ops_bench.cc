// Experiment M1 — microbenchmarks of the relational substrate: the
// counted-bag operators every maintenance algorithm is built from.
//
//   $ ./relational_ops_bench

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "relational/operators.h"
#include "relational/partial_delta.h"
#include "workload/schema_gen.h"

namespace sweepmv {
namespace {

Relation RandomRelation(int64_t rows, int64_t join_domain, uint64_t seed) {
  Rng rng(seed);
  Relation r(Schema::AllInts({"K", "A", "B"}));
  for (int64_t i = 0; i < rows; ++i) {
    r.Add(IntTuple({i, rng.Uniform(0, join_domain - 1),
                    rng.Uniform(0, join_domain - 1)}),
          1);
  }
  return r;
}

void BM_RelationAdd(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(1);
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    tuples.push_back(IntTuple({i, rng.Uniform(0, 99), rng.Uniform(0, 99)}));
  }
  for (auto _ : state) {
    Relation r(Schema::AllInts({"K", "A", "B"}));
    for (const Tuple& t : tuples) r.Add(t, 1);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_RelationAdd)->Arg(256)->Arg(4096)->Arg(65536);

void BM_HashJoin(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const int64_t domain = state.range(1);
  Relation left = RandomRelation(rows, domain, 1);
  Relation right = RandomRelation(rows, domain, 2);
  for (auto _ : state) {
    Relation out = Join(left, right, {{2, 1}});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashJoin)
    ->Args({256, 16})
    ->Args({4096, 64})
    ->Args({4096, 1024})
    ->Args({16384, 256});

void BM_DeltaJoin(benchmark::State& state) {
  // The sweep-hot shape: a small delta joined against a large base.
  const int64_t base_rows = state.range(0);
  Relation base = RandomRelation(base_rows, 64, 3);
  Relation delta(Schema::AllInts({"K", "A", "B"}));
  Rng rng(4);
  for (int i = 0; i < 4; ++i) {
    delta.Add(IntTuple({1000000 + i, rng.Uniform(0, 63),
                        rng.Uniform(0, 63)}),
              i % 2 == 0 ? 1 : -1);
  }
  for (auto _ : state) {
    Relation out = Join(delta, base, {{2, 1}});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * base_rows);
}
BENCHMARK(BM_DeltaJoin)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_Project(benchmark::State& state) {
  Relation r = RandomRelation(state.range(0), 32, 5);
  std::vector<int> cols = {1, 2};
  for (auto _ : state) {
    Relation out = Project(r, cols);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Project)->Arg(4096)->Arg(65536);

void BM_Select(benchmark::State& state) {
  Relation r = RandomRelation(state.range(0), 32, 6);
  Predicate pred =
      Predicate::AttrCmpConst(1, CmpOp::kLt, Value(int64_t{16}));
  for (auto _ : state) {
    Relation out = Select(r, pred);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Select)->Arg(4096)->Arg(65536);

void BM_MergeDelta(benchmark::State& state) {
  Relation base = RandomRelation(state.range(0), 32, 7);
  Relation delta = RandomRelation(256, 32, 8);
  for (auto _ : state) {
    Relation v = base;
    v.Merge(delta);
    v.MergeNegated(delta);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_MergeDelta)->Arg(4096)->Arg(65536);

void BM_FullViewEvaluation(benchmark::State& state) {
  // From-scratch SPJ evaluation over a chain — what the recompute
  // baseline pays per refresh and the checker pays per replay step.
  ChainSpec spec;
  spec.num_relations = static_cast<int>(state.range(0));
  spec.initial_tuples = static_cast<int>(state.range(1));
  // Unit expected fan-out: the result scales with the base size rather
  // than exploding geometrically along the chain.
  spec.join_domain = spec.initial_tuples;
  ViewDef view = MakeChainView(spec);
  std::vector<Relation> bases = MakeInitialBases(view, spec);
  std::vector<const Relation*> rels;
  for (const Relation& b : bases) rels.push_back(&b);
  for (auto _ : state) {
    Relation v = view.EvaluateFull(rels);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FullViewEvaluation)
    ->Args({3, 128})
    ->Args({5, 128})
    ->Args({3, 1024})
    ->Args({5, 1024});

void BM_SweepExtension(benchmark::State& state) {
  // One sweep leg: extend a partial delta by one base relation.
  ChainSpec spec;
  spec.num_relations = 3;
  spec.initial_tuples = static_cast<int>(state.range(0));
  spec.join_domain = 16;
  ViewDef view = MakeChainView(spec);
  std::vector<Relation> bases = MakeInitialBases(view, spec);

  Relation delta(view.rel_schema(1));
  delta.Add(IntTuple({999999, 3, 4}), 1);
  PartialDelta pd = PartialDelta::ForRelation(view, 1, delta);
  for (auto _ : state) {
    PartialDelta left = ExtendLeft(view, bases[0], pd);
    PartialDelta both = ExtendRight(view, left, bases[2]);
    benchmark::DoNotOptimize(both);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SweepExtension)->Arg(128)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace sweepmv
