// Robustness experiment — the price of reliability: how much extra
// traffic and latency the session layer (sim/session.h) spends restoring
// the paper's reliable-FIFO channel as link quality degrades, and what
// happens to SWEEP without it.
//
//   $ ./reliability_overhead

#include <cstdio>
#include <string>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig config;
  config.algorithm = Algorithm::kSweep;
  config.chain.num_relations = 3;
  config.chain.initial_tuples = 12;
  config.chain.join_domain = 6;
  config.workload.total_txns = 40;
  config.workload.mean_interarrival = 4'000;
  config.latency = LatencyModel::Jittered(500, 1'000);
  return config;
}

struct Cell {
  RunResult result;
  bool faulty = false;
};

Cell RunAt(double drop_prob, bool reliability) {
  ScenarioConfig config = BaseConfig();
  if (drop_prob > 0 || !reliability) {
    config.fault_plan.enabled = true;
    config.fault_plan.faults.drop_prob = drop_prob;
    config.fault_plan.faults.dup_prob = drop_prob / 2;
    config.fault_plan.faults.burst_prob = drop_prob / 2;
    config.fault_plan.faults.burst_delay = 3'000;
    config.fault_plan.reliability = reliability;
    config.fault_plan.query_timeout = 60'000;
    config.fault_plan.tolerate_failure = true;
    config.max_events = 5'000'000;
  }
  Cell cell;
  cell.faulty = config.fault_plan.enabled;
  cell.result = RunScenario(config);
  return cell;
}

std::string Verdict(const RunResult& r) {
  if (!r.completed) return "WEDGED";
  if (!r.consistency.final_state_correct) return "DIVERGED";
  return ConsistencyLevelName(r.consistency.level);
}

}  // namespace

int main() {
  const std::vector<double> kDropRates = {0.0, 0.02, 0.05, 0.10, 0.20};

  std::printf(
      "Session-layer overhead vs. link fault rate (SWEEP, n=3, 40 txns).\n"
      "dup/burst rates scale with drop rate; overhead%% is total messages\n"
      "(incl. retransmits+acks) relative to the pristine run.\n\n");

  RunResult pristine = RunAt(0.0, true).result;
  const double base_msgs =
      static_cast<double>(pristine.net.TotalMessages());

  TablePrinter table({"drop", "retransmits", "acks", "dups supp.",
                      "msgs", "overhead", "finish", "outcome"});
  for (double drop : kDropRates) {
    RunResult r = RunAt(drop, true).result;
    const auto& rel = r.net.reliability;
    table.AddRow(
        {StrFormat("%2.0f%%", drop * 100),
         StrFormat("%lld", static_cast<long long>(rel.retransmissions)),
         StrFormat("%lld", static_cast<long long>(rel.acks_sent)),
         StrFormat("%lld", static_cast<long long>(rel.dups_suppressed)),
         StrFormat("%lld", static_cast<long long>(r.net.TotalMessages())),
         StrFormat("%+.0f%%",
                   100.0 * (static_cast<double>(r.net.TotalMessages()) -
                            base_msgs) /
                       base_msgs),
         StrFormat("%lld", static_cast<long long>(r.finish_time)),
         Verdict(r)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "\nThe same links without the session layer (raw faulty "
      "delivery):\n\n");
  TablePrinter raw_table({"drop", "delivered", "outcome"});
  for (double drop : kDropRates) {
    RunResult r = RunAt(drop, false).result;
    raw_table.AddRow(
        {StrFormat("%2.0f%%", drop * 100),
         StrFormat("%lld/%lld",
                   static_cast<long long>(r.updates_delivered),
                   static_cast<long long>(40)),
         Verdict(r)});
  }
  std::printf("%s\n", raw_table.Render().c_str());
  return 0;
}
