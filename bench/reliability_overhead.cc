// Robustness experiment — the price of reliability: how much extra
// traffic and latency the session layer (sim/session.h) spends restoring
// the paper's reliable-FIFO channel as link quality degrades, and what
// happens to SWEEP without it. A third section measures warehouse
// crash-recovery: checkpoint overhead and replay work across checkpoint
// cadences, against the full-rebuild alternative.
//
//   $ ./reliability_overhead [--recovery-out=BENCH_recovery.json]

#include <cstdio>
#include <string>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig config;
  config.algorithm = Algorithm::kSweep;
  config.chain.num_relations = 3;
  config.chain.initial_tuples = 12;
  config.chain.join_domain = 6;
  config.workload.total_txns = 40;
  config.workload.mean_interarrival = 4'000;
  config.latency = LatencyModel::Jittered(500, 1'000);
  return config;
}

struct Cell {
  RunResult result;
  bool faulty = false;
};

Cell RunAt(double drop_prob, bool reliability) {
  ScenarioConfig config = BaseConfig();
  if (drop_prob > 0 || !reliability) {
    config.fault_plan.enabled = true;
    config.fault_plan.faults.drop_prob = drop_prob;
    config.fault_plan.faults.dup_prob = drop_prob / 2;
    config.fault_plan.faults.burst_prob = drop_prob / 2;
    config.fault_plan.faults.burst_delay = 3'000;
    config.fault_plan.reliability = reliability;
    config.fault_plan.query_timeout = 60'000;
    config.fault_plan.tolerate_failure = true;
    config.max_events = 5'000'000;
  }
  Cell cell;
  cell.faulty = config.fault_plan.enabled;
  cell.result = RunScenario(config);
  return cell;
}

std::string Verdict(const RunResult& r) {
  if (!r.completed) return "WEDGED";
  if (!r.consistency.final_state_correct) return "DIVERGED";
  return ConsistencyLevelName(r.consistency.level);
}

// --- Warehouse crash-recovery: checkpoint overhead vs. replay work ---

// Crash/restart window placed mid-workload (arrivals span ~160k sim
// time), late enough that checkpoints exist and updates are in flight.
constexpr SimTime kCrashAt = 80'000;
constexpr SimTime kRestartAt = 100'000;

struct RecoveryRow {
  int checkpoint_every = 0;
  RunResult result;
};

RecoveryRow RunRecoveryAt(int checkpoint_every) {
  ScenarioConfig config = BaseConfig();
  config.fault_plan.enabled = true;
  config.fault_plan.reliability = true;
  config.fault_plan.checkpoint_every = checkpoint_every;
  config.fault_plan.query_timeout = 30'000;
  config.fault_plan.warehouse_crashes.push_back({kCrashAt, kRestartAt});
  RecoveryRow row;
  row.checkpoint_every = checkpoint_every;
  row.result = RunScenario(config);
  return row;
}

std::string RecoveryJsonReport(const RunResult& clean,
                               const std::vector<RecoveryRow>& rows) {
  std::string json = "{\n  \"bench\": \"recovery\",\n";
  json += StrFormat(
      "  \"total_updates\": %lld,\n  \"crash_at\": %lld,\n"
      "  \"restart_at\": %lld,\n  \"clean_finish_time\": %lld,\n",
      static_cast<long long>(clean.updates_delivered),
      static_cast<long long>(kCrashAt), static_cast<long long>(kRestartAt),
      static_cast<long long>(clean.finish_time));
  json += "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i].result;
    json += StrFormat(
        "    {\"checkpoint_every\": %d, \"recoveries\": %lld, "
        "\"checkpoints\": %lld, \"checkpoint_bytes_max\": %lld, "
        "\"wal_replayed\": %lld, \"queries_reissued\": %lld, "
        "\"stale_epoch_answers_ignored\": %lld, \"finish_time\": %lld, "
        "\"finish_lag\": %lld, \"outcome\": \"%s\"}%s\n",
        rows[i].checkpoint_every,
        static_cast<long long>(r.warehouse_recoveries),
        static_cast<long long>(r.checkpoints_taken),
        static_cast<long long>(r.checkpoint_bytes_max),
        static_cast<long long>(r.wal_updates_replayed),
        static_cast<long long>(r.queries_reissued),
        static_cast<long long>(r.pre_epoch_answers_ignored),
        static_cast<long long>(r.finish_time),
        static_cast<long long>(r.finish_time - clean.finish_time),
        Verdict(r).c_str(), i + 1 < rows.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::string recovery_out = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--recovery-out=", 0) == 0) {
      recovery_out = arg.substr(15);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<double> kDropRates = {0.0, 0.02, 0.05, 0.10, 0.20};

  std::printf(
      "Session-layer overhead vs. link fault rate (SWEEP, n=3, 40 txns).\n"
      "dup/burst rates scale with drop rate; overhead%% is total messages\n"
      "(incl. retransmits+acks) relative to the pristine run.\n\n");

  RunResult pristine = RunAt(0.0, true).result;
  const double base_msgs =
      static_cast<double>(pristine.net.TotalMessages());

  TablePrinter table({"drop", "retransmits", "acks", "dups supp.",
                      "msgs", "overhead", "finish", "outcome"});
  for (double drop : kDropRates) {
    RunResult r = RunAt(drop, true).result;
    const auto& rel = r.net.reliability;
    table.AddRow(
        {StrFormat("%2.0f%%", drop * 100),
         StrFormat("%lld", static_cast<long long>(rel.retransmissions)),
         StrFormat("%lld", static_cast<long long>(rel.acks_sent)),
         StrFormat("%lld", static_cast<long long>(rel.dups_suppressed)),
         StrFormat("%lld", static_cast<long long>(r.net.TotalMessages())),
         StrFormat("%+.0f%%",
                   100.0 * (static_cast<double>(r.net.TotalMessages()) -
                            base_msgs) /
                       base_msgs),
         StrFormat("%lld", static_cast<long long>(r.finish_time)),
         Verdict(r)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "\nThe same links without the session layer (raw faulty "
      "delivery):\n\n");
  TablePrinter raw_table({"drop", "delivered", "outcome"});
  for (double drop : kDropRates) {
    RunResult r = RunAt(drop, false).result;
    raw_table.AddRow(
        {StrFormat("%2.0f%%", drop * 100),
         StrFormat("%lld/%lld",
                   static_cast<long long>(r.updates_delivered),
                   static_cast<long long>(40)),
         Verdict(r)});
  }
  std::printf("%s\n", raw_table.Render().c_str());

  std::printf(
      "\nWarehouse crash-recovery at t=%lld..%lld (pristine links):\n"
      "checkpoint cadence vs. serialized size and WAL replay work. A\n"
      "full rebuild would reprocess every update; recovery replays only\n"
      "the WAL suffix past the last checkpoint.\n\n",
      static_cast<long long>(kCrashAt), static_cast<long long>(kRestartAt));

  std::vector<RecoveryRow> recovery_rows;
  TablePrinter rec_table({"ckpt every", "ckpts", "ckpt bytes max",
                          "wal replayed", "reissued", "finish lag",
                          "outcome"});
  for (int cadence : {1, 4, 16, 64}) {
    RecoveryRow row = RunRecoveryAt(cadence);
    const RunResult& r = row.result;
    rec_table.AddRow(
        {StrFormat("%d", cadence),
         StrFormat("%lld", static_cast<long long>(r.checkpoints_taken)),
         StrFormat("%lld", static_cast<long long>(r.checkpoint_bytes_max)),
         StrFormat("%lld",
                   static_cast<long long>(r.wal_updates_replayed)),
         StrFormat("%lld", static_cast<long long>(r.queries_reissued)),
         StrFormat("%+lld", static_cast<long long>(r.finish_time -
                                                   pristine.finish_time)),
         Verdict(r)});
    recovery_rows.push_back(std::move(row));
  }
  std::printf("%s\n", rec_table.Render().c_str());

  std::FILE* out = std::fopen(recovery_out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", recovery_out.c_str());
    return 1;
  }
  std::string json = RecoveryJsonReport(pristine, recovery_rows);
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %s\n", recovery_out.c_str());
  return 0;
}
