// Experiment E4 — quiescence and staleness (Sections 3, 5.3): under a
// continuous update stream Strobe cannot install anything ("the
// materialized view will never get updated if there is no period of
// quiescence"), while SWEEP installs a consistent state per update with
// no quiescence requirement. We run a long stream and report installs
// during the stream, time of first install relative to the stream's end,
// and the staleness integral.
//
//   $ ./staleness

#include <cstdio>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

RunResult RunStream(Algorithm algorithm, double interarrival) {
  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = 3;
  config.chain.initial_tuples = 12;
  config.chain.join_domain = 5;
  config.workload.total_txns = 40;
  config.workload.mean_interarrival = interarrival;
  config.workload.insert_fraction = 1.0;  // every update opens a query
  config.latency = LatencyModel::Fixed(800);
  RunResult r = RunScenario(config);
  if (r.final_view != r.expected_view) {
    std::fprintf(stderr, "%s diverged!\n", AlgorithmName(algorithm));
  }
  return r;
}

}  // namespace

int main() {
  std::printf(
      "View freshness under an update stream (40 inserts, one-way "
      "latency\n800 ticks). 'Installs mid-stream' counts view refreshes "
      "before the\nlast update arrived; staleness is the time integral "
      "of delivered-but-\nunincorporated updates.\n\n");

  for (double interarrival : {6000.0, 2000.0, 400.0}) {
    std::printf("Mean inter-arrival %.0f ticks (%s):\n", interarrival,
                interarrival > 4000 ? "sparse — quiescent gaps exist"
                                    : "dense — no quiescence");
    TablePrinter table({"Algorithm", "Installs", "Installs mid-stream",
                        "First install vs stream end", "Staleness",
                        "Mean lag/update"});
    for (Algorithm a :
         {Algorithm::kSweep, Algorithm::kNestedSweep, Algorithm::kStrobe,
          Algorithm::kEca}) {
      RunResult r = RunStream(a, interarrival);
      int64_t mid_stream = 0;
      // first_install_time < last_arrival_time means the view refreshed
      // while updates were still flowing.
      const char* first_vs_end =
          r.first_install_time == 0
              ? "never"
              : (r.first_install_time < r.last_arrival_time ? "during"
                                                            : "after");
      if (r.first_install_time > 0 &&
          r.first_install_time < r.last_arrival_time) {
        mid_stream = r.installs;  // upper bound display; see note below
      }
      table.AddRow({r.algorithm_name,
                    StrFormat("%lld", static_cast<long long>(r.installs)),
                    mid_stream > 0 ? "yes" : "none",
                    first_vs_end,
                    StrFormat("%.2e", r.staleness_integral),
                    StrFormat("%.0f", r.mean_incorporation_delay)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Shape check (paper): in the dense regime Strobe and ECA refresh\n"
      "the view only AFTER the stream ends (quiescence requirement);\n"
      "SWEEP refreshes throughout. Note the honest caveat: sequential\n"
      "SWEEP's service rate is one update per sweep round trip, so on a\n"
      "saturating stream its backlog (and staleness) grows too — the\n"
      "pipelining optimization of Section 5.3 is the paper's own answer;\n"
      "Nested SWEEP's batching shows the amortized effect.\n");
  return 0;
}
