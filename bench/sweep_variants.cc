// Ablation A2 — the Section 5.3 optimizations, measured: parallel
// directional sweeps (latency per ViewChange) and pipelined ViewChanges
// (throughput/staleness under saturating streams — the sequential
// bottleneck experiment E4 exposes).
//
//   $ ./sweep_variants

#include <cstdio>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

RunResult Run(Algorithm algorithm, int n, double interarrival,
              int inflight) {
  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = n;
  config.chain.initial_tuples = 12;
  config.chain.join_domain = 12;
  config.workload.total_txns = 30;
  config.workload.mean_interarrival = interarrival;
  config.latency = LatencyModel::Fixed(1000);
  config.warehouse.pipeline_max_inflight = inflight;
  RunResult r = RunScenario(config);
  if (r.final_view != r.expected_view) {
    std::fprintf(stderr, "%s diverged!\n", AlgorithmName(algorithm));
  }
  return r;
}

}  // namespace

int main() {
  std::printf(
      "Part 1 — parallel directional sweeps: per-update latency (mean\n"
      "incorporation delay) for sparse updates, n sweep. Messages are\n"
      "identical; only the critical path shrinks from (n-1) to\n"
      "ceil((n-1)/2)-ish round trips for mid-chain updates.\n\n");

  TablePrinter lat({"n", "SWEEP mean lag", "ParallelSWEEP mean lag",
                    "SWEEP msgs/upd", "Parallel msgs/upd",
                    "Consistency (both)"});
  for (int n : {3, 5, 7, 9}) {
    RunResult seq = Run(Algorithm::kSweep, n, 60000, 1);
    RunResult par = Run(Algorithm::kParallelSweep, n, 60000, 1);
    lat.AddRow({StrFormat("%d", n),
                StrFormat("%.0f", seq.mean_incorporation_delay),
                StrFormat("%.0f", par.mean_incorporation_delay),
                StrFormat("%.1f", seq.maintenance_msgs_per_update),
                StrFormat("%.1f", par.maintenance_msgs_per_update),
                StrFormat("%s / %s",
                          ConsistencyLevelName(seq.consistency.level),
                          ConsistencyLevelName(par.consistency.level))});
  }
  std::printf("%s\n", lat.Render().c_str());

  std::printf(
      "Part 2 — pipelined ViewChanges under a saturating stream (4\n"
      "sources, inter-arrival 700 << per-update sweep time 6000):\n"
      "sequential SWEEP's backlog grows; the pipeline keeps complete\n"
      "consistency while overlapping sweeps.\n\n");

  TablePrinter pipe({"Algorithm / inflight", "Staleness", "Mean lag",
                     "Finish time", "msgs/update", "Consistency"});
  {
    RunResult seq = Run(Algorithm::kSweep, 4, 700, 1);
    pipe.AddRow({"SWEEP (sequential)",
                 StrFormat("%.2e", seq.staleness_integral),
                 StrFormat("%.0f", seq.mean_incorporation_delay),
                 StrFormat("%lld", static_cast<long long>(seq.finish_time)),
                 StrFormat("%.1f", seq.maintenance_msgs_per_update),
                 ConsistencyLevelName(seq.consistency.level)});
  }
  for (int inflight : {2, 4, 16}) {
    RunResult r = Run(Algorithm::kPipelinedSweep, 4, 700, inflight);
    pipe.AddRow({StrFormat("PipelinedSWEEP x%d", inflight),
                 StrFormat("%.2e", r.staleness_integral),
                 StrFormat("%.0f", r.mean_incorporation_delay),
                 StrFormat("%lld", static_cast<long long>(r.finish_time)),
                 StrFormat("%.1f", r.maintenance_msgs_per_update),
                 ConsistencyLevelName(r.consistency.level)});
  }
  std::printf("%s\n", pipe.Render().c_str());

  std::printf(
      "Reading: pipelining recovers the staleness SWEEP loses to its\n"
      "one-update-at-a-time service loop — at identical message cost and\n"
      "still complete consistency — which is precisely why the paper\n"
      "lists it as the optimization worth the added warehouse "
      "complexity.\n");
  return 0;
}
