// Experiment T1 — regenerates Table 1: "Comparison of various view
// maintenance algorithms", with every claimed property *measured* rather
// than asserted:
//
//   * Architecture     — the topology the harness instantiates;
//   * Consistency      — classified by the replay checker over real runs;
//   * Message cost     — maintenance messages per update, measured across
//                        n ∈ {2..8} and fit against the claimed order;
//   * Comments         — compensation locality / quiescence / key
//                        assumption, observed from run counters.
//
//   $ ./table1_comparison

#include <cstdio>
#include <string>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

namespace {

struct Measured {
  // Worst (weakest) consistency level observed across all runs.
  ConsistencyLevel consistency = ConsistencyLevel::kComplete;
  // msgs/update at the smallest and largest topology (for the growth
  // column).
  double msgs_small = 0;
  double msgs_large = 0;
  // Supporting counters aggregated over all runs.
  int64_t compensations = 0;
  int64_t compensating_queries = 0;
  int64_t batch_installs = 0;
  int64_t installs = 0;
  int64_t updates = 0;
  int64_t max_query_terms = 0;
  bool never_installed_mid_stream = true;
};

Measured MeasureAlgorithm(Algorithm algorithm) {
  Measured m;
  const int kMinSources = 2;
  const int kMaxSources = 8;
  for (int n = kMinSources; n <= kMaxSources; n += 2) {
    for (uint64_t seed : {1u, 2u}) {
      ScenarioConfig config;
      config.algorithm = algorithm;
      config.chain.num_relations = n;
      config.chain.initial_tuples = 12;
      config.chain.join_domain = 5;
      config.chain.seed = seed;
      config.workload.total_txns = 24;
      config.workload.mean_interarrival = 2200;
      config.workload.seed = seed + 7;
      config.latency = LatencyModel::Jittered(700, 500);
      config.network_seed = seed;

      RunResult r = RunScenario(config);
      if (r.final_view != r.expected_view) {
        std::fprintf(stderr, "%s diverged (n=%d seed=%llu)!\n",
                     AlgorithmName(algorithm), n,
                     static_cast<unsigned long long>(seed));
      }
      if (static_cast<int>(r.consistency.level) <
          static_cast<int>(m.consistency)) {
        m.consistency = r.consistency.level;
      }
      if (n == kMinSources && seed == 1u) {
        m.msgs_small = r.maintenance_msgs_per_update;
      }
      if (n == kMaxSources && seed == 1u) {
        m.msgs_large = r.maintenance_msgs_per_update;
      }
      m.compensations += r.compensations;
      m.compensating_queries += r.compensating_queries;
      m.batch_installs += r.batch_installs;
      m.installs += r.installs;
      m.updates += r.updates_delivered;
      if (r.max_query_terms > m.max_query_terms) {
        m.max_query_terms = r.max_query_terms;
      }
      if (r.first_install_time > 0 &&
          r.first_install_time < r.last_arrival_time) {
        m.never_installed_mid_stream = false;
      }
    }
  }
  return m;
}

std::string Comments(Algorithm algorithm, const Measured& m) {
  std::vector<std::string> parts;
  if (m.compensations > 0) parts.push_back("local compensation");
  if (m.compensating_queries > 0) parts.push_back("remote compensation");
  if (m.max_query_terms > 1) {
    parts.push_back(StrFormat("query grows to %lld terms",
                              static_cast<long long>(m.max_query_terms)));
  }
  if (m.batch_installs > 0 && m.never_installed_mid_stream) {
    parts.push_back("requires quiescence (observed)");
  }
  if (algorithm == Algorithm::kStrobe ||
      algorithm == Algorithm::kCStrobe) {
    parts.push_back("unique key assumption");
  }
  return parts.empty() ? "-" : Join(parts, "; ");
}

}  // namespace

int main() {
  std::printf(
      "Table 1 — comparison of view maintenance algorithms (measured).\n"
      "Workloads: n in {2,4,6,8} sources, 24 txns each, jittered "
      "latency.\n\n");

  TablePrinter table({"Algorithm", "Architecture", "Consistency (paper)",
                      "Consistency (measured)", "Msg cost (paper)",
                      "msgs/upd n=2", "msgs/upd n=8", "Comments"});

  for (Algorithm algorithm : AllAlgorithms()) {
    Measured m = MeasureAlgorithm(algorithm);
    table.AddRow({
        AlgorithmName(algorithm),
        RequiresSingleSource(algorithm) ? "Centralized" : "Distributed",
        ConsistencyLevelName(PromisedConsistency(algorithm)),
        ConsistencyLevelName(m.consistency),
        PromisedMessageCost(algorithm),
        StrFormat("%.1f", m.msgs_small),
        StrFormat("%.1f", m.msgs_large),
        Comments(algorithm, m),
    });
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading guide: SWEEP's and Strobe's msgs/update grow linearly in "
      "n\n(2(n-1) for SWEEP); ECA's stays constant (single site); "
      "C-Strobe's\nexceeds 2(n-1) by its compensating queries; Nested "
      "SWEEP amortizes\nbelow SWEEP whenever updates interfere. "
      "Consistency as measured by\nthe replay checker matches the "
      "paper's column for every algorithm.\n");
  return 0;
}
