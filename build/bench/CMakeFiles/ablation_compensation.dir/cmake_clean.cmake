file(REMOVE_RECURSE
  "CMakeFiles/ablation_compensation.dir/ablation_compensation.cc.o"
  "CMakeFiles/ablation_compensation.dir/ablation_compensation.cc.o.d"
  "ablation_compensation"
  "ablation_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
