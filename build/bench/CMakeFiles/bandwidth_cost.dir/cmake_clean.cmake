file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_cost.dir/bandwidth_cost.cc.o"
  "CMakeFiles/bandwidth_cost.dir/bandwidth_cost.cc.o.d"
  "bandwidth_cost"
  "bandwidth_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
