# Empty dependencies file for bandwidth_cost.
# This may be replaced when dependencies are built.
