file(REMOVE_RECURSE
  "CMakeFiles/concurrency_blowup.dir/concurrency_blowup.cc.o"
  "CMakeFiles/concurrency_blowup.dir/concurrency_blowup.cc.o.d"
  "concurrency_blowup"
  "concurrency_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
