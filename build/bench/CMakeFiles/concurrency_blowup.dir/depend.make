# Empty dependencies file for concurrency_blowup.
# This may be replaced when dependencies are built.
