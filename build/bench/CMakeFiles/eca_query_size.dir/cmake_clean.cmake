file(REMOVE_RECURSE
  "CMakeFiles/eca_query_size.dir/eca_query_size.cc.o"
  "CMakeFiles/eca_query_size.dir/eca_query_size.cc.o.d"
  "eca_query_size"
  "eca_query_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_query_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
