# Empty compiler generated dependencies file for eca_query_size.
# This may be replaced when dependencies are built.
