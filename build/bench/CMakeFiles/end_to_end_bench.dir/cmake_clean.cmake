file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_bench.dir/end_to_end_bench.cc.o"
  "CMakeFiles/end_to_end_bench.dir/end_to_end_bench.cc.o.d"
  "end_to_end_bench"
  "end_to_end_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
