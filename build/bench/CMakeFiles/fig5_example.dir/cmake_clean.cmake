file(REMOVE_RECURSE
  "CMakeFiles/fig5_example.dir/fig5_example.cc.o"
  "CMakeFiles/fig5_example.dir/fig5_example.cc.o.d"
  "fig5_example"
  "fig5_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
