# Empty compiler generated dependencies file for fig5_example.
# This may be replaced when dependencies are built.
