file(REMOVE_RECURSE
  "CMakeFiles/nested_amortization.dir/nested_amortization.cc.o"
  "CMakeFiles/nested_amortization.dir/nested_amortization.cc.o.d"
  "nested_amortization"
  "nested_amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
