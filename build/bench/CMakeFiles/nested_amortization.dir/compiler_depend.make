# Empty compiler generated dependencies file for nested_amortization.
# This may be replaced when dependencies are built.
