file(REMOVE_RECURSE
  "CMakeFiles/relational_ops_bench.dir/relational_ops_bench.cc.o"
  "CMakeFiles/relational_ops_bench.dir/relational_ops_bench.cc.o.d"
  "relational_ops_bench"
  "relational_ops_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_ops_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
