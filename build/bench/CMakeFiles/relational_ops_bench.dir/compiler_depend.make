# Empty compiler generated dependencies file for relational_ops_bench.
# This may be replaced when dependencies are built.
