file(REMOVE_RECURSE
  "CMakeFiles/staleness.dir/staleness.cc.o"
  "CMakeFiles/staleness.dir/staleness.cc.o.d"
  "staleness"
  "staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
