# Empty dependencies file for staleness.
# This may be replaced when dependencies are built.
