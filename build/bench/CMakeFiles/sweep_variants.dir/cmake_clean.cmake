file(REMOVE_RECURSE
  "CMakeFiles/sweep_variants.dir/sweep_variants.cc.o"
  "CMakeFiles/sweep_variants.dir/sweep_variants.cc.o.d"
  "sweep_variants"
  "sweep_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
