# Empty compiler generated dependencies file for sweep_variants.
# This may be replaced when dependencies are built.
