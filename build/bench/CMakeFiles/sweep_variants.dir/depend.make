# Empty dependencies file for sweep_variants.
# This may be replaced when dependencies are built.
