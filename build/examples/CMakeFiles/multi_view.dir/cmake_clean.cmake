file(REMOVE_RECURSE
  "CMakeFiles/multi_view.dir/multi_view.cpp.o"
  "CMakeFiles/multi_view.dir/multi_view.cpp.o.d"
  "multi_view"
  "multi_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
