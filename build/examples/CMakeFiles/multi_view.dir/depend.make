# Empty dependencies file for multi_view.
# This may be replaced when dependencies are built.
