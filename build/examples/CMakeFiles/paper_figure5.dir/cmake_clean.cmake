file(REMOVE_RECURSE
  "CMakeFiles/paper_figure5.dir/paper_figure5.cpp.o"
  "CMakeFiles/paper_figure5.dir/paper_figure5.cpp.o.d"
  "paper_figure5"
  "paper_figure5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figure5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
