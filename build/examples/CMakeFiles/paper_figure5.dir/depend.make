# Empty dependencies file for paper_figure5.
# This may be replaced when dependencies are built.
