file(REMOVE_RECURSE
  "CMakeFiles/retail_orders.dir/retail_orders.cpp.o"
  "CMakeFiles/retail_orders.dir/retail_orders.cpp.o.d"
  "retail_orders"
  "retail_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
