# Empty compiler generated dependencies file for retail_orders.
# This may be replaced when dependencies are built.
