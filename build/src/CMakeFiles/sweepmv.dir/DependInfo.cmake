
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cc" "src/CMakeFiles/sweepmv.dir/common/log.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/sweepmv.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/common/rng.cc.o.d"
  "/root/repo/src/common/str.cc" "src/CMakeFiles/sweepmv.dir/common/str.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/common/str.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/sweepmv.dir/common/table.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/common/table.cc.o.d"
  "/root/repo/src/consistency/checker.cc" "src/CMakeFiles/sweepmv.dir/consistency/checker.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/consistency/checker.cc.o.d"
  "/root/repo/src/consistency/replay.cc" "src/CMakeFiles/sweepmv.dir/consistency/replay.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/consistency/replay.cc.o.d"
  "/root/repo/src/core/cstrobe.cc" "src/CMakeFiles/sweepmv.dir/core/cstrobe.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/cstrobe.cc.o.d"
  "/root/repo/src/core/eca.cc" "src/CMakeFiles/sweepmv.dir/core/eca.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/eca.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/CMakeFiles/sweepmv.dir/core/factory.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/factory.cc.o.d"
  "/root/repo/src/core/nested_sweep.cc" "src/CMakeFiles/sweepmv.dir/core/nested_sweep.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/nested_sweep.cc.o.d"
  "/root/repo/src/core/parallel_sweep.cc" "src/CMakeFiles/sweepmv.dir/core/parallel_sweep.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/parallel_sweep.cc.o.d"
  "/root/repo/src/core/pipelined_sweep.cc" "src/CMakeFiles/sweepmv.dir/core/pipelined_sweep.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/pipelined_sweep.cc.o.d"
  "/root/repo/src/core/recompute.cc" "src/CMakeFiles/sweepmv.dir/core/recompute.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/recompute.cc.o.d"
  "/root/repo/src/core/strobe.cc" "src/CMakeFiles/sweepmv.dir/core/strobe.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/strobe.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/CMakeFiles/sweepmv.dir/core/sweep.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/sweep.cc.o.d"
  "/root/repo/src/core/warehouse.cc" "src/CMakeFiles/sweepmv.dir/core/warehouse.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/core/warehouse.cc.o.d"
  "/root/repo/src/harness/scenario.cc" "src/CMakeFiles/sweepmv.dir/harness/scenario.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/harness/scenario.cc.o.d"
  "/root/repo/src/harness/stats.cc" "src/CMakeFiles/sweepmv.dir/harness/stats.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/harness/stats.cc.o.d"
  "/root/repo/src/harness/trace.cc" "src/CMakeFiles/sweepmv.dir/harness/trace.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/harness/trace.cc.o.d"
  "/root/repo/src/relational/aggregate.cc" "src/CMakeFiles/sweepmv.dir/relational/aggregate.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/aggregate.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/CMakeFiles/sweepmv.dir/relational/csv.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/csv.cc.o.d"
  "/root/repo/src/relational/operators.cc" "src/CMakeFiles/sweepmv.dir/relational/operators.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/operators.cc.o.d"
  "/root/repo/src/relational/partial_delta.cc" "src/CMakeFiles/sweepmv.dir/relational/partial_delta.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/partial_delta.cc.o.d"
  "/root/repo/src/relational/predicate.cc" "src/CMakeFiles/sweepmv.dir/relational/predicate.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/predicate.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/sweepmv.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/sweepmv.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/sweepmv.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/sweepmv.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/value.cc.o.d"
  "/root/repo/src/relational/view_def.cc" "src/CMakeFiles/sweepmv.dir/relational/view_def.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/relational/view_def.cc.o.d"
  "/root/repo/src/sim/channel.cc" "src/CMakeFiles/sweepmv.dir/sim/channel.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/sim/channel.cc.o.d"
  "/root/repo/src/sim/latency.cc" "src/CMakeFiles/sweepmv.dir/sim/latency.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/sim/latency.cc.o.d"
  "/root/repo/src/sim/message.cc" "src/CMakeFiles/sweepmv.dir/sim/message.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/sim/message.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/sweepmv.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/sweepmv.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/sim/simulator.cc.o.d"
  "/root/repo/src/source/data_source.cc" "src/CMakeFiles/sweepmv.dir/source/data_source.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/source/data_source.cc.o.d"
  "/root/repo/src/source/eca_source.cc" "src/CMakeFiles/sweepmv.dir/source/eca_source.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/source/eca_source.cc.o.d"
  "/root/repo/src/source/multi_source.cc" "src/CMakeFiles/sweepmv.dir/source/multi_source.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/source/multi_source.cc.o.d"
  "/root/repo/src/source/state_log.cc" "src/CMakeFiles/sweepmv.dir/source/state_log.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/source/state_log.cc.o.d"
  "/root/repo/src/source/update.cc" "src/CMakeFiles/sweepmv.dir/source/update.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/source/update.cc.o.d"
  "/root/repo/src/sql/catalog.cc" "src/CMakeFiles/sweepmv.dir/sql/catalog.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/sql/catalog.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/sweepmv.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/sql/parser.cc.o.d"
  "/root/repo/src/workload/scenario_spec.cc" "src/CMakeFiles/sweepmv.dir/workload/scenario_spec.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/workload/scenario_spec.cc.o.d"
  "/root/repo/src/workload/schema_gen.cc" "src/CMakeFiles/sweepmv.dir/workload/schema_gen.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/workload/schema_gen.cc.o.d"
  "/root/repo/src/workload/update_gen.cc" "src/CMakeFiles/sweepmv.dir/workload/update_gen.cc.o" "gcc" "src/CMakeFiles/sweepmv.dir/workload/update_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
