file(REMOVE_RECURSE
  "libsweepmv.a"
)
