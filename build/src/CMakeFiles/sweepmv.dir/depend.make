# Empty dependencies file for sweepmv.
# This may be replaced when dependencies are built.
