file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_skew_test.dir/bandwidth_skew_test.cc.o"
  "CMakeFiles/bandwidth_skew_test.dir/bandwidth_skew_test.cc.o.d"
  "bandwidth_skew_test"
  "bandwidth_skew_test.pdb"
  "bandwidth_skew_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_skew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
