# Empty dependencies file for bandwidth_skew_test.
# This may be replaced when dependencies are built.
