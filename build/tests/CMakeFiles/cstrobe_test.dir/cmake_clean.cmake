file(REMOVE_RECURSE
  "CMakeFiles/cstrobe_test.dir/cstrobe_test.cc.o"
  "CMakeFiles/cstrobe_test.dir/cstrobe_test.cc.o.d"
  "cstrobe_test"
  "cstrobe_test.pdb"
  "cstrobe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstrobe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
