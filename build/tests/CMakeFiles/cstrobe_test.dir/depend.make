# Empty dependencies file for cstrobe_test.
# This may be replaced when dependencies are built.
