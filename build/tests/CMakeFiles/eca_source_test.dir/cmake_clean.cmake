file(REMOVE_RECURSE
  "CMakeFiles/eca_source_test.dir/eca_source_test.cc.o"
  "CMakeFiles/eca_source_test.dir/eca_source_test.cc.o.d"
  "eca_source_test"
  "eca_source_test.pdb"
  "eca_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
