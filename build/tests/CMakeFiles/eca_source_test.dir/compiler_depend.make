# Empty compiler generated dependencies file for eca_source_test.
# This may be replaced when dependencies are built.
