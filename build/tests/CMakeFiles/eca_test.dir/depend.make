# Empty dependencies file for eca_test.
# This may be replaced when dependencies are built.
