# Empty dependencies file for multi_view_test.
# This may be replaced when dependencies are built.
