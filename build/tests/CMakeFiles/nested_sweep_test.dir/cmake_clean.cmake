file(REMOVE_RECURSE
  "CMakeFiles/nested_sweep_test.dir/nested_sweep_test.cc.o"
  "CMakeFiles/nested_sweep_test.dir/nested_sweep_test.cc.o.d"
  "nested_sweep_test"
  "nested_sweep_test.pdb"
  "nested_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
