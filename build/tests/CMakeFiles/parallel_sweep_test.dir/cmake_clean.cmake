file(REMOVE_RECURSE
  "CMakeFiles/parallel_sweep_test.dir/parallel_sweep_test.cc.o"
  "CMakeFiles/parallel_sweep_test.dir/parallel_sweep_test.cc.o.d"
  "parallel_sweep_test"
  "parallel_sweep_test.pdb"
  "parallel_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
