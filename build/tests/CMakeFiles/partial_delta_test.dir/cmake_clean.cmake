file(REMOVE_RECURSE
  "CMakeFiles/partial_delta_test.dir/partial_delta_test.cc.o"
  "CMakeFiles/partial_delta_test.dir/partial_delta_test.cc.o.d"
  "partial_delta_test"
  "partial_delta_test.pdb"
  "partial_delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
