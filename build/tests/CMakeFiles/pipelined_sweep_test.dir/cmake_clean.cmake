file(REMOVE_RECURSE
  "CMakeFiles/pipelined_sweep_test.dir/pipelined_sweep_test.cc.o"
  "CMakeFiles/pipelined_sweep_test.dir/pipelined_sweep_test.cc.o.d"
  "pipelined_sweep_test"
  "pipelined_sweep_test.pdb"
  "pipelined_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
