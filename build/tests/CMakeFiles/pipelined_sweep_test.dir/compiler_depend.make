# Empty compiler generated dependencies file for pipelined_sweep_test.
# This may be replaced when dependencies are built.
