file(REMOVE_RECURSE
  "CMakeFiles/strobe_test.dir/strobe_test.cc.o"
  "CMakeFiles/strobe_test.dir/strobe_test.cc.o.d"
  "strobe_test"
  "strobe_test.pdb"
  "strobe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strobe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
