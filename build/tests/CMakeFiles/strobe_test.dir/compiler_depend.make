# Empty compiler generated dependencies file for strobe_test.
# This may be replaced when dependencies are built.
