// Runs the same randomized workload under every maintenance algorithm and
// prints a side-by-side comparison: measured consistency, messages,
// payload, staleness. A working miniature of Table 1.
//
//   $ ./algorithm_comparison [num_sources] [num_txns]

#include <cstdio>
#include <cstdlib>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"

using namespace sweepmv;

int main(int argc, char** argv) {
  int num_sources = argc > 1 ? std::atoi(argv[1]) : 4;
  int num_txns = argc > 2 ? std::atoi(argv[2]) : 30;

  std::printf(
      "Workload: %d sources, %d source-local transactions, exponential\n"
      "arrivals racing jittered channels. Same seed for every "
      "algorithm.\n\n",
      num_sources, num_txns);

  TablePrinter table({"Algorithm", "Consistency", "Installs",
                      "Maint. msgs/update", "Payload (tuples)",
                      "Mean lag", "Notes"});

  for (Algorithm algorithm : AllAlgorithms()) {
    ScenarioConfig config;
    config.algorithm = algorithm;
    config.chain.num_relations = num_sources;
    config.chain.initial_tuples = 16;
    config.chain.join_domain = 6;
    config.workload.total_txns = num_txns;
    config.workload.mean_interarrival = 2500;
    config.latency = LatencyModel::Jittered(900, 600);

    RunResult r = RunScenario(config);

    std::vector<std::string> parts;
    if (r.compensations > 0) {
      parts.push_back(StrFormat("%lld local compensations",
                                static_cast<long long>(r.compensations)));
    }
    if (r.nested_calls > 0) {
      parts.push_back(StrFormat("%lld nested calls",
                                static_cast<long long>(r.nested_calls)));
    }
    if (r.compensating_queries > 0) {
      parts.push_back(
          StrFormat("%lld compensating queries",
                    static_cast<long long>(r.compensating_queries)));
    }
    if (r.max_query_terms > 1) {
      parts.push_back(
          StrFormat("max %lld terms/query",
                    static_cast<long long>(r.max_query_terms)));
    }
    if (r.batch_installs > 0) {
      parts.push_back(
          StrFormat("%lld quiescent batches",
                    static_cast<long long>(r.batch_installs)));
    }
    std::string notes = parts.empty() ? "-" : Join(parts, ", ");

    table.AddRow({r.algorithm_name,
                  ConsistencyLevelName(r.consistency.level),
                  StrFormat("%lld", static_cast<long long>(r.installs)),
                  StrFormat("%.1f", r.maintenance_msgs_per_update),
                  StrFormat("%lld", static_cast<long long>(
                                        r.net.TotalPayload())),
                  StrFormat("%.0f", r.mean_incorporation_delay), notes});

    if (r.final_view != r.expected_view) {
      std::printf("ERROR: %s diverged from ground truth!\n",
                  r.algorithm_name.c_str());
      return 1;
    }
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "All algorithms converged to the identical ground-truth view;\n"
      "they differ in which intermediate states analysts can observe\n"
      "and what the network pays for it.\n");
  return 0;
}
