// Interactive experiment explorer: run any algorithm on any generated
// topology/workload from the command line and get the full report —
// traffic, consistency classification, staleness — plus an optional
// message-level trace.
//
//   $ ./explore_cli --algo=sweep --sources=5 --txns=50
//                   --interarrival=1500 --latency=800 --jitter=400
//                   --seed=7 --relations-per-site=1 --trace
//     (one line; wrapped here for readability)
//
//   $ ./explore_cli --list        # available algorithms
//   $ ./explore_cli --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/str.h"
#include "common/table.h"
#include "harness/scenario.h"
#include "harness/trace.h"
#include "sim/simulator.h"
#include "source/data_source.h"
#include "source/multi_source.h"

using namespace sweepmv;

namespace {

struct Flags {
  std::string algo = "sweep";
  int sources = 4;
  int txns = 30;
  double interarrival = 2000;
  long latency = 800;
  long jitter = 400;
  unsigned long seed = 7;
  int relations_per_site = 1;
  double insert_fraction = 0.6;
  int max_ops = 1;
  bool trace = false;
  bool help = false;
  bool list = false;
};

const std::map<std::string, Algorithm>& AlgoNames() {
  static const auto& names = *new std::map<std::string, Algorithm>{
      {"sweep", Algorithm::kSweep},
      {"nested", Algorithm::kNestedSweep},
      {"nested-sweep", Algorithm::kNestedSweep},
      {"parallel", Algorithm::kParallelSweep},
      {"parallel-sweep", Algorithm::kParallelSweep},
      {"pipelined", Algorithm::kPipelinedSweep},
      {"pipelined-sweep", Algorithm::kPipelinedSweep},
      {"strobe", Algorithm::kStrobe},
      {"cstrobe", Algorithm::kCStrobe},
      {"c-strobe", Algorithm::kCStrobe},
      {"eca", Algorithm::kEca},
      {"recompute", Algorithm::kRecompute},
  };
  return names;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* flags, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--help") == 0) {
      flags->help = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      flags->list = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      flags->trace = true;
    } else if (ParseFlag(arg, "algo", &value)) {
      flags->algo = value;
    } else if (ParseFlag(arg, "sources", &value)) {
      flags->sources = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "txns", &value)) {
      flags->txns = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "interarrival", &value)) {
      flags->interarrival = std::atof(value.c_str());
    } else if (ParseFlag(arg, "latency", &value)) {
      flags->latency = std::atol(value.c_str());
    } else if (ParseFlag(arg, "jitter", &value)) {
      flags->jitter = std::atol(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "relations-per-site", &value)) {
      flags->relations_per_site = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "insert-fraction", &value)) {
      flags->insert_fraction = std::atof(value.c_str());
    } else if (ParseFlag(arg, "max-ops", &value)) {
      flags->max_ops = std::atoi(value.c_str());
    } else {
      *error = StrFormat("unknown flag: %s", arg);
      return false;
    }
  }
  return true;
}

void PrintHelp() {
  std::printf(
      "explore_cli — run a view-maintenance scenario and report.\n\n"
      "  --algo=NAME             sweep | nested | parallel | pipelined |\n"
      "                          strobe | cstrobe | eca | recompute\n"
      "  --sources=N             relations in the view chain (default 4)\n"
      "  --txns=N                source-local transactions (default 30)\n"
      "  --interarrival=T        mean update inter-arrival, ticks\n"
      "  --latency=T --jitter=T  one-way channel delay model\n"
      "  --seed=S                workload/schema seed\n"
      "  --relations-per-site=K  co-host K chain relations per source\n"
      "  --insert-fraction=F     insert probability (default 0.6)\n"
      "  --max-ops=K             ops per transaction, uniform 1..K\n"
      "  --trace                 print the space-time message trace\n"
      "  --list                  list algorithms and their promises\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  std::string error;
  if (!ParseFlags(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    PrintHelp();
    return 2;
  }
  if (flags.help) {
    PrintHelp();
    return 0;
  }
  if (flags.list) {
    TablePrinter table({"Name", "Algorithm", "Promised consistency",
                        "Promised msg cost"});
    for (const auto& [name, algo] : AlgoNames()) {
      table.AddRow({name, AlgorithmName(algo),
                    ConsistencyLevelName(PromisedConsistency(algo)),
                    PromisedMessageCost(algo)});
    }
    std::printf("%s", table.Render().c_str());
    return 0;
  }

  auto algo_it = AlgoNames().find(flags.algo);
  if (algo_it == AlgoNames().end()) {
    std::fprintf(stderr, "unknown algorithm '%s' (try --list)\n",
                 flags.algo.c_str());
    return 2;
  }

  ScenarioConfig config;
  config.algorithm = algo_it->second;
  config.chain.num_relations = flags.sources;
  config.chain.initial_tuples = 16;
  config.chain.join_domain = 8;
  config.chain.seed = flags.seed;
  config.workload.total_txns = flags.txns;
  config.workload.mean_interarrival = flags.interarrival;
  config.workload.insert_fraction = flags.insert_fraction;
  config.workload.max_ops_per_txn = flags.max_ops;
  config.workload.seed = flags.seed + 1;
  config.latency = LatencyModel::Jittered(flags.latency, flags.jitter);
  config.network_seed = flags.seed + 2;
  config.relations_per_site = flags.relations_per_site;

  if (flags.trace) {
    // Tracing needs access to the network, so run the explicit form.
    ViewDef view = MakeChainView(config.chain);
    std::vector<Relation> bases = MakeInitialBases(view, config.chain);
    std::vector<ScheduledTxn> txns =
        GenerateWorkload(view, bases, config.chain, config.workload);
    // Reuse the harness for the actual run but re-run traced here: build
    // a mirrored system.
    Simulator sim;
    Network network(&sim, config.latency, config.network_seed);
    TraceRecorder trace;
    trace.Attach(&network);
    UpdateIdGenerator ids;
    std::vector<std::unique_ptr<DataSource>> sources;
    std::vector<int> sites;
    std::map<int, std::string> names{{0, "WH"}};
    for (int r = 0; r < view.num_relations(); ++r) {
      sites.push_back(r + 1);
      sources.push_back(std::make_unique<DataSource>(
          r + 1, r, bases[static_cast<size_t>(r)], &view, &network, 0,
          &ids));
      network.RegisterSite(r + 1, sources.back().get());
      names[r + 1] = StrFormat("R%d", r);
    }
    auto warehouse = MakeWarehouse(config.algorithm, 0, view, &network,
                                   sites, config.warehouse);
    network.RegisterSite(0, warehouse.get());
    std::vector<const Relation*> rels;
    for (const Relation& b : bases) rels.push_back(&b);
    warehouse->InitializeView(view.EvaluateFull(rels));
    warehouse->InitializeAuxiliary(bases);
    for (const ScheduledTxn& txn : txns) {
      DataSource* src = sources[static_cast<size_t>(txn.relation)].get();
      auto ops = txn.ops;
      sim.ScheduleAt(txn.at,
                     [src, ops]() { src->ApplyTransaction(ops); });
    }
    sim.Run();
    std::printf("%s\n",
                RenderTimeline(trace.messages(), names, *warehouse)
                    .c_str());
  }

  RunResult r = RunScenario(config);

  TablePrinter report({"Metric", "Value"});
  report.AddRow({"algorithm", r.algorithm_name});
  report.AddRow({"updates delivered",
                 StrFormat("%lld",
                           static_cast<long long>(r.updates_delivered))});
  report.AddRow(
      {"view states installed",
       StrFormat("%lld", static_cast<long long>(r.installs))});
  report.AddRow({"consistency (measured)",
                 ConsistencyLevelName(r.consistency.level)});
  report.AddRow({"final view == ground truth",
                 r.final_view == r.expected_view ? "yes" : "NO"});
  report.AddRow({"maintenance msgs/update",
                 StrFormat("%.2f", r.maintenance_msgs_per_update)});
  report.AddRow(
      {"total messages",
       StrFormat("%lld",
                 static_cast<long long>(r.net.TotalMessages()))});
  report.AddRow(
      {"payload tuples",
       StrFormat("%lld", static_cast<long long>(r.net.TotalPayload()))});
  report.AddRow({"staleness integral",
                 StrFormat("%.3g", r.staleness_integral)});
  report.AddRow({"mean incorporation delay",
                 StrFormat("%.0f", r.mean_incorporation_delay)});
  report.AddRow(
      {"finish time",
       StrFormat("%lld", static_cast<long long>(r.finish_time))});
  if (!r.consistency.detail.empty()) {
    report.AddRow({"classifier note", r.consistency.detail});
  }
  std::printf("%s", report.Render().c_str());
  return r.final_view == r.expected_view ? 0 : 1;
}
