// One set of sources, several materialized views: each warehouse runs its
// own maintenance algorithm over the same update stream. The views share
// the join chain (so the sources' incremental-join service works for
// both) but differ in selection and projection — the common real-world
// shape of "many analyst views over the same operational systems".
//
//   $ ./multi_view

#include <cstdio>

#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "source/data_source.h"

using namespace sweepmv;

namespace {

// Shared chain: shipments(route, lane) ⋈ lanes(lane, hub) ⋈
// hubs(hub, region).
ViewDef::Builder ChainBuilder() {
  ViewDef::Builder builder;
  builder.AddRelation("shipments", Schema::AllInts({"route", "lane"}))
      .AddRelation("lanes", Schema::AllInts({"lane", "hub"}))
      .AddRelation("hubs", Schema::AllInts({"hub", "region"}))
      .JoinOn(0, 1, 0)
      .JoinOn(1, 1, 0);
  return builder;
}

}  // namespace

int main() {
  // Two views over the same chain: ops wants (route, hub); finance wants
  // (region) for premium regions only.
  ViewDef ops_view = ChainBuilder().Project({0, 3}).Build();
  ViewDef finance_view =
      ChainBuilder()
          .Select(Predicate::AttrCmpConst(5, CmpOp::kGe,
                                          Value(int64_t{2})))
          .Project({5})
          .Build();

  std::vector<Relation> bases = {
      Relation::OfInts(ops_view.rel_schema(0), {{1, 10}, {2, 11}}),
      Relation::OfInts(ops_view.rel_schema(1), {{10, 100}, {11, 101}}),
      Relation::OfInts(ops_view.rel_schema(2), {{100, 1}, {101, 2}}),
  };

  Simulator sim;
  Network network(&sim, LatencyModel::Jittered(700, 300), 5);
  UpdateIdGenerator ids;

  constexpr int kOpsWarehouse = 0;
  constexpr int kFinanceWarehouse = 10;

  std::vector<std::unique_ptr<DataSource>> sources;
  std::vector<int> sites;
  for (int r = 0; r < 3; ++r) {
    sites.push_back(r + 1);
    // Sources answer queries with chain joins, which both views share, so
    // one ViewDef (either) serves; updates are broadcast to both
    // warehouses.
    sources.push_back(std::make_unique<DataSource>(
        r + 1, r, bases[static_cast<size_t>(r)], &ops_view, &network,
        kOpsWarehouse, &ids));
    sources.back()->AddWarehouse(kFinanceWarehouse);
    network.RegisterSite(r + 1, sources.back().get());
  }

  auto ops_wh = MakeWarehouse(Algorithm::kSweep, kOpsWarehouse, ops_view,
                              &network, sites, WarehouseConfig{});
  auto fin_wh =
      MakeWarehouse(Algorithm::kNestedSweep, kFinanceWarehouse,
                    finance_view, &network, sites, WarehouseConfig{});
  network.RegisterSite(kOpsWarehouse, ops_wh.get());
  network.RegisterSite(kFinanceWarehouse, fin_wh.get());

  std::vector<const Relation*> rels;
  for (const Relation& b : bases) rels.push_back(&b);
  ops_wh->InitializeView(ops_view.EvaluateFull(rels));
  fin_wh->InitializeView(finance_view.EvaluateFull(rels));

  // Shared concurrent update stream.
  sim.ScheduleAt(0, [&] { sources[0]->ApplyInsert(IntTuple({3, 10})); });
  sim.ScheduleAt(200, [&] { sources[2]->ApplyDelete(IntTuple({100, 1})); });
  sim.ScheduleAt(400, [&] { sources[1]->ApplyInsert(IntTuple({10, 101})); });
  sim.ScheduleAt(600, [&] { sources[0]->ApplyInsert(IntTuple({4, 11})); });
  sim.Run();

  std::printf("Ops view     (route, hub), SWEEP:        %s\n",
              ops_wh->view().ToDisplayString().c_str());
  std::printf("Finance view (region>=2),  NestedSWEEP:  %s\n\n",
              fin_wh->view().ToDisplayString().c_str());

  std::vector<const StateLog*> logs;
  for (const auto& s : sources) logs.push_back(&s->log());
  ConsistencyReport ops_report =
      CheckConsistency(ops_view, logs, *ops_wh);
  ConsistencyReport fin_report =
      CheckConsistency(finance_view, logs, *fin_wh);
  std::printf("Ops warehouse consistency:     %s\n",
              ConsistencyLevelName(ops_report.level));
  std::printf("Finance warehouse consistency: %s\n",
              ConsistencyLevelName(fin_report.level));

  bool ok = static_cast<int>(ops_report.level) >=
                static_cast<int>(ConsistencyLevel::kComplete) &&
            static_cast<int>(fin_report.level) >=
                static_cast<int>(ConsistencyLevel::kStrong);
  std::printf("\nBoth views maintained correctly from one shared update "
              "stream: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
