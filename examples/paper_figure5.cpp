// Reproduces the paper's Figure 5 / Section 5.2 walk-through, printing
// the state-transformation table with the three updates running
// *concurrently* under SWEEP — the scenario the narrative steps through.
//
//   $ ./paper_figure5

#include <cstdio>

#include "common/table.h"
#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "source/data_source.h"

using namespace sweepmv;

int main() {
  // V(R1,R2,R3) = Π[D,F] (R1[A,B] ⋈(B=C) R2[C,D] ⋈(D=E) R3[E,F])
  ViewDef view = ViewDef::Builder()
                     .AddRelation("R1", Schema::AllInts({"A", "B"}))
                     .AddRelation("R2", Schema::AllInts({"C", "D"}))
                     .AddRelation("R3", Schema::AllInts({"E", "F"}))
                     .JoinOn(0, 1, 0)
                     .JoinOn(1, 1, 0)
                     .Project({3, 5})
                     .Build();

  std::vector<Relation> bases = {
      Relation::OfInts(view.rel_schema(0), {{1, 3}, {2, 3}}),
      Relation::OfInts(view.rel_schema(1), {{3, 7}}),
      Relation::OfInts(view.rel_schema(2), {{5, 6}, {7, 8}}),
  };

  Simulator sim;
  Network network(&sim, LatencyModel::Fixed(1000), 1);
  UpdateIdGenerator ids;
  std::vector<std::unique_ptr<DataSource>> sources;
  for (int r = 0; r < 3; ++r) {
    sources.push_back(std::make_unique<DataSource>(
        r + 1, r, bases[static_cast<size_t>(r)], &view, &network, 0,
        &ids));
    network.RegisterSite(r + 1, sources.back().get());
  }
  std::unique_ptr<Warehouse> warehouse = MakeWarehouse(
      Algorithm::kSweep, 0, view, &network, {1, 2, 3}, WarehouseConfig{});
  network.RegisterSite(0, warehouse.get());
  std::vector<const Relation*> rels{&bases[0], &bases[1], &bases[2]};
  warehouse->InitializeView(view.EvaluateFull(rels));

  // The three updates of Figure 5, concurrent: ΔR2 arrives first; ΔR3 and
  // ΔR1 land while ΔR2's incremental query is still in flight, exactly as
  // in the Section 5.2 narrative.
  sim.ScheduleAt(0, [&] { sources[1]->ApplyInsert(IntTuple({3, 5})); });
  sim.ScheduleAt(400, [&] { sources[2]->ApplyDelete(IntTuple({7, 8})); });
  sim.ScheduleAt(500, [&] { sources[0]->ApplyDelete(IntTuple({2, 3})); });
  sim.Run();

  std::printf(
      "Figure 5 — effects of updates on the data sources and the\n"
      "materialized view (updates executed CONCURRENTLY under SWEEP;\n"
      "[k] is the tuple's derivation count):\n\n");

  TablePrinter table({"Event", "Source 1 R1[A,B]", "Source 2 R2[C,D]",
                      "Source 3 R3[E,F]", "Warehouse V(R1,R2,R3)"});
  table.AddRow({"Initial State", "{(1,3)[1], (2,3)[1]}", "{(3,7)[1]}",
                "{(5,6)[1], (7,8)[1]}", "{(7,8)[2]}"});
  const char* events[] = {"dR2 = +(3,5)", "dR3 = -(7,8)", "dR1 = -(2,3)"};
  const char* r1_states[] = {"{(1,3)[1], (2,3)[1]}",
                             "{(1,3)[1], (2,3)[1]}", "{(1,3)[1]}"};
  const char* r2_states[] = {"{(3,5)[1], (3,7)[1]}",
                             "{(3,5)[1], (3,7)[1]}",
                             "{(3,5)[1], (3,7)[1]}"};
  const char* r3_states[] = {"{(5,6)[1], (7,8)[1]}", "{(5,6)[1]}",
                             "{(5,6)[1]}"};
  const auto& installs = warehouse->install_log();
  for (size_t i = 0; i < installs.size() && i < 3; ++i) {
    table.AddRow({events[i], r1_states[i], r2_states[i], r3_states[i],
                  installs[i].view_after.ToDisplayString()});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Paper's expected warehouse column:\n"
      "  {(7,8)[2]}  ->  {(5,6)[2], (7,8)[2]}  ->  {(5,6)[2]}  ->  "
      "{(5,6)[1]}\n\n");

  std::vector<const StateLog*> logs;
  for (const auto& s : sources) logs.push_back(&s->log());
  ConsistencyReport report = CheckConsistency(view, logs, *warehouse);
  std::printf("Measured consistency: %s (%zu installs for %zu updates)\n",
              ConsistencyLevelName(report.level), report.installs,
              report.updates);

  bool ok =
      installs.size() == 3 &&
      installs[0].view_after ==
          Relation::OfInts(view.view_schema(), {{5, 6}, {5, 6}, {7, 8},
                                                {7, 8}}) &&
      installs[2].view_after ==
          Relation::OfInts(view.view_schema(), {{5, 6}}) &&
      report.level == ConsistencyLevel::kComplete;
  std::printf("Figure 5 reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
