// Quickstart: build a three-source warehouse, maintain an SPJ view with
// SWEEP, and watch complete consistency hold while updates race.
//
//   $ ./quickstart
//
// Walks through the public API top to bottom: define a view, seed the
// sources, wire the simulated network, run concurrent updates, inspect
// the result.

#include <cstdio>

#include "common/str.h"
#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "source/data_source.h"

using namespace sweepmv;

int main() {
  // 1. Define the materialized view: an SPJ expression over a chain of
  //    base relations, one per data source.
  //      V = Π[product, region] (orders ⋈ items ⋈ fulfillment)
  ViewDef view =
      ViewDef::Builder()
          .AddRelation("orders", Schema::AllInts({"order_id", "item_id"}))
          .AddRelation("items", Schema::AllInts({"item_id", "product"}))
          .AddRelation("fulfillment",
                       Schema::AllInts({"product", "region"}))
          .JoinOn(0, 1, 0)  // orders.item_id = items.item_id
          .JoinOn(1, 1, 0)  // items.product  = fulfillment.product
          .Project({3, 5})  // (product, region)
          .Build();
  std::printf("View: %s\n\n", view.ToDisplayString().c_str());

  // 2. Seed the base relations.
  std::vector<Relation> bases = {
      Relation::OfInts(view.rel_schema(0), {{100, 1}, {101, 2}}),
      Relation::OfInts(view.rel_schema(1), {{1, 7}, {2, 8}}),
      Relation::OfInts(view.rel_schema(2), {{7, 1}, {8, 2}}),
  };

  // 3. Wire the simulated distributed system: one FIFO-channel network,
  //    one DataSource site per base relation, one SWEEP warehouse.
  Simulator sim;
  Network network(&sim, LatencyModel::Jittered(800, 400), /*seed=*/7);
  UpdateIdGenerator ids;

  std::vector<std::unique_ptr<DataSource>> sources;
  std::vector<int> source_sites;
  for (int r = 0; r < view.num_relations(); ++r) {
    source_sites.push_back(r + 1);
    sources.push_back(std::make_unique<DataSource>(
        r + 1, r, bases[static_cast<size_t>(r)], &view, &network,
        /*warehouse_site=*/0, &ids));
    network.RegisterSite(r + 1, sources.back().get());
  }

  std::unique_ptr<Warehouse> warehouse = MakeWarehouse(
      Algorithm::kSweep, /*site_id=*/0, view, &network, source_sites,
      WarehouseConfig{});
  network.RegisterSite(0, warehouse.get());

  // 4. Initialize the materialized view to the correct starting value.
  std::vector<const Relation*> rels;
  for (const Relation& b : bases) rels.push_back(&b);
  warehouse->InitializeView(view.EvaluateFull(rels));
  std::printf("Initial view: %s\n\n",
              warehouse->view().ToDisplayString().c_str());

  // 5. Fire concurrent updates at different sources. Their notifications
  //    and the incremental queries race on the network; SWEEP's on-line
  //    error correction sorts it out locally.
  sim.ScheduleAt(0, [&] { sources[0]->ApplyInsert(IntTuple({102, 1})); });
  sim.ScheduleAt(120, [&] { sources[1]->ApplyInsert(IntTuple({3, 7})); });
  sim.ScheduleAt(250, [&] { sources[2]->ApplyDelete(IntTuple({8, 2})); });
  sim.ScheduleAt(380, [&] {
    // A source-local transaction: executed atomically, shipped as one
    // unit.
    sources[1]->ApplyTransaction({UpdateOp::Delete(IntTuple({2, 8})),
                                  UpdateOp::Insert(IntTuple({2, 7}))});
  });

  sim.Run();

  // 6. Inspect the maintained view and each installed state.
  std::printf("View states installed by SWEEP (one per update):\n");
  for (const InstallRecord& install : warehouse->install_log()) {
    std::printf("  t=%-7lld %s\n", static_cast<long long>(install.time),
                install.view_after.ToDisplayString().c_str());
  }
  std::printf("\nFinal view:    %s\n",
              warehouse->view().ToDisplayString().c_str());

  // 7. Verify against ground truth with the replay checker.
  std::vector<const StateLog*> logs;
  for (const auto& s : sources) logs.push_back(&s->log());
  ConsistencyReport report = CheckConsistency(view, logs, *warehouse);
  std::printf("Consistency:   %s\n", ConsistencyLevelName(report.level));
  std::printf("Messages:      %s\n",
              network.stats().ToDisplayString().c_str());
  return report.level == ConsistencyLevel::kComplete ? 0 : 1;
}
