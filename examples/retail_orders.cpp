// A realistic decision-support scenario — the kind of workload the
// paper's introduction motivates: a retailer's warehouse materializes a
// revenue view joining four autonomous operational systems (customers,
// orders, line items, catalog), each updating independently, while
// analysts read the view continuously.
//
//   $ ./retail_orders
//
// Runs a day of simulated activity under SWEEP and reports the view's
// freshness and the network bill.

#include <cstdio>

#include "common/str.h"
#include "harness/scenario.h"
#include "harness/stats.h"
#include "sim/simulator.h"
#include "source/data_source.h"

using namespace sweepmv;

namespace {

// customers(cust, segment) ⋈ orders(cust', order) ⋈
// lineitems(order', sku) ⋈ catalog(sku', price_band),
// selecting the "premium" segment (segment >= 2), projected to
// (segment, price_band).
ViewDef RevenueView() {
  return ViewDef::Builder()
      .AddRelation("customers", Schema::AllInts({"cust", "segment"}))
      .AddRelation("orders", Schema::AllInts({"cust", "order"}))
      .AddRelation("lineitems", Schema::AllInts({"order", "sku"}))
      .AddRelation("catalog", Schema::AllInts({"sku", "price_band"}))
      .JoinOn(0, 0, 0)  // customers.cust = orders.cust
      .JoinOn(1, 1, 0)  // orders.order = lineitems.order
      .JoinOn(2, 1, 0)  // lineitems.sku = catalog.sku
      .Select(Predicate::AttrCmpConst(1, CmpOp::kGe, Value(int64_t{2})))
      .Project({1, 7})
      .Build();
}

}  // namespace

int main() {
  ViewDef view = RevenueView();
  std::printf("Revenue view: %s\n\n", view.ToDisplayString().c_str());

  // Seed the operational systems.
  std::vector<Relation> bases = {
      Relation::OfInts(view.rel_schema(0),
                       {{1, 1}, {2, 2}, {3, 3}, {4, 2}}),
      Relation::OfInts(view.rel_schema(1),
                       {{1, 10}, {2, 11}, {3, 12}, {4, 13}}),
      Relation::OfInts(view.rel_schema(2),
                       {{10, 100}, {11, 101}, {12, 102}, {13, 100}}),
      Relation::OfInts(view.rel_schema(3),
                       {{100, 1}, {101, 2}, {102, 3}}),
  };

  Simulator sim;
  Network network(&sim, LatencyModel::Jittered(1500, 1000), 21);
  UpdateIdGenerator ids;
  std::vector<std::unique_ptr<DataSource>> sources;
  std::vector<int> sites;
  for (int r = 0; r < view.num_relations(); ++r) {
    sites.push_back(r + 1);
    sources.push_back(std::make_unique<DataSource>(
        r + 1, r, bases[static_cast<size_t>(r)], &view, &network, 0,
        &ids));
    network.RegisterSite(r + 1, sources.back().get());
  }
  std::unique_ptr<Warehouse> warehouse = MakeWarehouse(
      Algorithm::kSweep, 0, view, &network, sites, WarehouseConfig{});
  network.RegisterSite(0, warehouse.get());
  std::vector<const Relation*> rels;
  for (const Relation& b : bases) rels.push_back(&b);
  warehouse->InitializeView(view.EvaluateFull(rels));
  std::printf("Opening view: %s\n\n",
              warehouse->view().ToDisplayString().c_str());

  // A burst of independent operational activity.
  // New premium customer signs up and orders immediately.
  sim.ScheduleAt(0, [&] { sources[0]->ApplyInsert(IntTuple({5, 2})); });
  sim.ScheduleAt(300, [&] { sources[1]->ApplyInsert(IntTuple({5, 14})); });
  sim.ScheduleAt(600,
                 [&] { sources[2]->ApplyInsert(IntTuple({14, 101})); });
  // Catalog reprices SKU 100 (modify = delete + insert, atomic).
  sim.ScheduleAt(900, [&] {
    sources[3]->ApplyTransaction({UpdateOp::Delete(IntTuple({100, 1})),
                                  UpdateOp::Insert(IntTuple({100, 2}))});
  });
  // Customer 3 churns: account closed, order cancelled — two systems,
  // independent transactions.
  sim.ScheduleAt(1200, [&] { sources[0]->ApplyDelete(IntTuple({3, 3})); });
  sim.ScheduleAt(1500, [&] { sources[1]->ApplyDelete(IntTuple({3, 12})); });
  // Basket edits racing everything above.
  sim.ScheduleAt(1800,
                 [&] { sources[2]->ApplyInsert(IntTuple({11, 102})); });
  sim.ScheduleAt(2100,
                 [&] { sources[2]->ApplyDelete(IntTuple({13, 100})); });

  sim.Run();

  std::printf("View states the analysts saw (every one consistent):\n");
  for (const InstallRecord& install : warehouse->install_log()) {
    std::printf("  t=%-7lld %s\n", static_cast<long long>(install.time),
                install.view_after.ToDisplayString().c_str());
  }

  std::vector<const StateLog*> logs;
  for (const auto& s : sources) logs.push_back(&s->log());
  ConsistencyReport report = CheckConsistency(view, logs, *warehouse);

  std::printf("\nFinal view:           %s\n",
              warehouse->view().ToDisplayString().c_str());
  std::printf("Consistency achieved: %s\n",
              ConsistencyLevelName(report.level));
  std::printf("Mean freshness lag:   %.0f ticks\n",
              MeanIncorporationDelay(*warehouse));
  std::printf("Network bill:         %s\n",
              network.stats().ToDisplayString().c_str());
  return report.level == ConsistencyLevel::kComplete ? 0 : 1;
}
