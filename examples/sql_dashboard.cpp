// Defining the warehouse view in SQL and keeping live aggregates over it.
//
//   $ ./sql_dashboard
//
// Shows the full front-to-back path a downstream user takes: register
// source schemas in a catalog, write the view as SQL (the paper's own
// notation), maintain it with SWEEP, and hang incrementally-maintained
// COUNT/SUM dashboards off the warehouse's install observer.

#include <cstdio>

#include "common/table.h"
#include "consistency/checker.h"
#include "core/factory.h"
#include "relational/aggregate.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "source/data_source.h"
#include "sql/parser.h"

using namespace sweepmv;

int main() {
  // 1. Catalog the sources' schemas.
  Catalog catalog;
  catalog.AddTable("stores", Schema::AllInts({"store", "region"}));
  catalog.AddTable("sales", Schema::AllInts({"store", "sku", "amount"}));
  catalog.AddTable("products", Schema::AllInts({"sku", "category"}));

  // 2. The view, in SQL — region/category/amount of every sale, premium
  //    regions only.
  const char* kSql =
      "SELECT stores.region, products.category, sales.amount "
      "FROM stores, sales, products "
      "WHERE stores.store = sales.store "
      "AND sales.sku = products.sku "
      "AND stores.region >= 2";
  ParseViewResult parsed = ParseView(kSql, catalog);
  if (!parsed.ok) {
    std::fprintf(stderr, "SQL error: %s\n", parsed.error.c_str());
    return 1;
  }
  const ViewDef& view = parsed.view();
  std::printf("SQL:  %s\nView: %s\n\n", kSql,
              view.ToDisplayString().c_str());

  // 3. Seed and wire the distributed system.
  std::vector<Relation> bases = {
      Relation::OfInts(view.rel_schema(0), {{1, 1}, {2, 2}, {3, 3}}),
      Relation::OfInts(view.rel_schema(1),
                       {{2, 10, 5}, {3, 11, 8}, {3, 10, 2}}),
      Relation::OfInts(view.rel_schema(2), {{10, 100}, {11, 200}}),
  };
  Simulator sim;
  Network network(&sim, LatencyModel::Jittered(900, 500), 3);
  UpdateIdGenerator ids;
  std::vector<std::unique_ptr<DataSource>> sources;
  std::vector<int> sites;
  for (int r = 0; r < view.num_relations(); ++r) {
    sites.push_back(r + 1);
    sources.push_back(std::make_unique<DataSource>(
        r + 1, r, bases[static_cast<size_t>(r)], &view, &network, 0,
        &ids));
    network.RegisterSite(r + 1, sources.back().get());
  }
  std::unique_ptr<Warehouse> warehouse = MakeWarehouse(
      Algorithm::kSweep, 0, view, &network, sites, WarehouseConfig{});
  network.RegisterSite(0, warehouse.get());
  std::vector<const Relation*> rels;
  for (const Relation& b : bases) rels.push_back(&b);
  warehouse->InitializeView(view.EvaluateFull(rels));

  // 4. Dashboards: sales count per region, revenue per category — both
  //    maintained from the warehouse's view deltas, never rescanned.
  MaintainedAggregate sales_by_region(view.view_schema(),
                                      AggSpec{{0}, AggFn::kCount, -1});
  MaintainedAggregate revenue_by_category(view.view_schema(),
                                          AggSpec{{1}, AggFn::kSum, 2});
  sales_by_region.Initialize(warehouse->view());
  revenue_by_category.Initialize(warehouse->view());
  warehouse->SetInstallObserver(
      [&](const Relation& delta, const std::vector<int64_t>& ids_seen) {
        (void)ids_seen;
        sales_by_region.ApplyDelta(delta);
        revenue_by_category.ApplyDelta(delta);
      });

  // 5. A day of concurrent operational activity.
  sim.ScheduleAt(0, [&] { sources[1]->ApplyInsert(IntTuple({2, 11, 9})); });
  sim.ScheduleAt(250,
                 [&] { sources[1]->ApplyInsert(IntTuple({3, 10, 4})); });
  sim.ScheduleAt(500, [&] { sources[0]->ApplyInsert(IntTuple({4, 2})); });
  sim.ScheduleAt(750,
                 [&] { sources[1]->ApplyInsert(IntTuple({4, 11, 7})); });
  sim.ScheduleAt(1000,
                 [&] { sources[1]->ApplyDelete(IntTuple({3, 11, 8})); });
  sim.ScheduleAt(1250, [&] {
    // Product 10 recategorized (atomic modify).
    sources[2]->ApplyTransaction({UpdateOp::Delete(IntTuple({10, 100})),
                                  UpdateOp::Insert(IntTuple({10, 300}))});
  });
  sim.Run();

  // 6. Print the dashboards and cross-check against recomputation.
  auto print_agg = [](const char* title, const MaintainedAggregate& agg) {
    std::printf("%s\n", title);
    TablePrinter table({"group", "value"});
    for (const auto& [t, c] : agg.Result().SortedEntries()) {
      (void)c;
      table.AddRow({t.at(0).ToDisplayString(),
                    t.at(1).ToDisplayString()});
    }
    std::printf("%s\n", table.Render().c_str());
  };
  print_agg("Sales count by region:", sales_by_region);
  print_agg("Revenue by category:", revenue_by_category);

  MaintainedAggregate check(view.view_schema(),
                            AggSpec{{1}, AggFn::kSum, 2});
  check.Initialize(warehouse->view());
  bool agg_ok = check.Result() == revenue_by_category.Result();

  std::vector<const StateLog*> logs;
  for (const auto& s : sources) logs.push_back(&s->log());
  ConsistencyReport report = CheckConsistency(view, logs, *warehouse);
  std::printf("View consistency: %s; dashboards match recomputation: %s\n",
              ConsistencyLevelName(report.level), agg_ok ? "yes" : "NO");
  return report.level == ConsistencyLevel::kComplete && agg_ok ? 0 : 1;
}
