// Invariant-checking macros.
//
// The library does not use exceptions for control flow (fallible public APIs
// return values or Status). SWEEP_CHECK guards *internal invariants*: a
// failure indicates a bug in the library or misuse of an API whose contract
// is documented, and aborts with a diagnostic.

#ifndef SWEEPMV_COMMON_CHECK_H_
#define SWEEPMV_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sweepmv {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "SWEEP_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace internal_check
}  // namespace sweepmv

// Aborts with a diagnostic if `cond` is false. Always on (also in release
// builds): view-maintenance correctness bugs are silent data corruption, and
// the checks are off hot paths or cheap.
#define SWEEP_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::sweepmv::internal_check::CheckFailed(#cond, __FILE__, __LINE__,   \
                                             "");                         \
    }                                                                     \
  } while (0)

// SWEEP_CHECK with an explanatory message (plain C string).
#define SWEEP_CHECK_MSG(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::sweepmv::internal_check::CheckFailed(#cond, __FILE__, __LINE__,   \
                                             (msg));                      \
    }                                                                     \
  } while (0)

#endif  // SWEEPMV_COMMON_CHECK_H_
