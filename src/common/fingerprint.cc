#include "common/fingerprint.h"

#include <cstring>

#include "common/str.h"

namespace sweepmv {

namespace {

uint64_t SplitMixLane(uint64_t x, uint64_t salt) {
  x += salt;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void StateHasher::Mix(uint64_t value) {
  lo_ = SplitMixLane(lo_ ^ value, 0x9e3779b97f4a7c15ull);
  hi_ = SplitMixLane(hi_ + value, 0xd1b54a32d192ed03ull);
}

void StateHasher::U64(const char* tag, uint64_t value) {
  for (const char* c = tag; *c != '\0'; ++c) {
    Mix(static_cast<uint64_t>(static_cast<unsigned char>(*c)) | 0x100u);
  }
  Mix(value);
  if (keep_text_) {
    text_ += tag;
    text_ += StrFormat("=%llu\n", static_cast<unsigned long long>(value));
  }
}

void StateHasher::Bytes(const char* tag, const void* data, size_t size) {
  U64(tag, static_cast<uint64_t>(size));
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t chunk = 0;
    std::memcpy(&chunk, bytes + i, 8);
    Mix(chunk);
  }
  if (i < size) {
    uint64_t chunk = 0;
    std::memcpy(&chunk, bytes + i, size - i);
    Mix(chunk);
  }
  if (keep_text_) {
    // The size line above already carries the tag; append the payload as
    // hex so dump diffs show content, not just lengths.
    text_ += "  bytes:";
    for (size_t k = 0; k < size; ++k) {
      text_ += StrFormat("%02x", static_cast<unsigned>(bytes[k]));
    }
    text_ += "\n";
  }
}

}  // namespace sweepmv
