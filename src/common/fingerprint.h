// Canonical 128-bit state fingerprints for the schedule explorer.
//
// StateHasher absorbs a tagged stream of integers/bytes into two
// independently mixed 64-bit lanes (splitmix64-style finalizers with
// distinct odd multipliers). Every component of the controlled system
// exposes DescribeState(StateHasher&, exact) feeding this stream from
// *sorted or keyed* iteration only — never from unordered-container
// visit order — so the digest of a logical state is identical no matter
// which interleaving reached it. The explorer keys its visited table on
// the resulting Fp128 (see docs/verification.md, "State-space
// deduplication": collision policy and the verify_on_hit debug mode).
//
// The optional text mode additionally records "tag=value" lines for every
// absorbed datum; the undo-log round-trip oracle byte-compares these
// dumps, so a divergence names the first mismatching member instead of
// just flipping a hash bit.

#ifndef SWEEPMV_COMMON_FINGERPRINT_H_
#define SWEEPMV_COMMON_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>

namespace sweepmv {

struct Fp128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Fp128& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const Fp128& other) const { return !(*this == other); }
  bool operator<(const Fp128& other) const {
    return std::tie(hi, lo) < std::tie(other.hi, other.lo);
  }
};

class StateHasher {
 public:
  // `keep_text` additionally accumulates a human-readable dump of every
  // absorbed datum (the round-trip oracle's byte-compare format).
  explicit StateHasher(bool keep_text = false) : keep_text_(keep_text) {}

  void U64(const char* tag, uint64_t value);
  void I64(const char* tag, int64_t value) {
    U64(tag, static_cast<uint64_t>(value));
  }
  void Bool(const char* tag, bool value) {
    U64(tag, value ? 1 : 0);
  }
  void Bytes(const char* tag, const void* data, size_t size);
  void Str(const char* tag, const std::string& value) {
    Bytes(tag, value.data(), value.size());
  }

  Fp128 Digest() const { return Fp128{lo_, hi_}; }
  // Empty unless constructed with keep_text.
  const std::string& Text() const { return text_; }

 private:
  void Mix(uint64_t value);

  uint64_t lo_ = 0x9e3779b97f4a7c15ull;
  uint64_t hi_ = 0xbf58476d1ce4e5b9ull;
  bool keep_text_ = false;
  std::string text_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_COMMON_FINGERPRINT_H_
