#include "common/log.h"

#include <cstdio>

namespace sweepmv {

namespace {
LogLevel g_level = LogLevel::kNone;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kNone:
      return "NONE";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) <= static_cast<int>(g_level)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal_log
}  // namespace sweepmv
