// Minimal leveled logging to stderr.
//
// Intended for tracing simulator runs and debugging algorithm state
// machines. Logging is off by default; tests and benches can raise the
// level to watch a run unfold. Not thread-safe by design: the simulator is
// single-threaded.

#ifndef SWEEPMV_COMMON_LOG_H_
#define SWEEPMV_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace sweepmv {

enum class LogLevel : int {
  kNone = 0,
  kInfo = 1,
  kDebug = 2,
  kTrace = 3,
};

// Process-wide log threshold. Messages with a level above it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_log {

// Stream-style collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace sweepmv

#define SWEEP_LOG(level)                                      \
  ::sweepmv::internal_log::LogMessage(                        \
      ::sweepmv::LogLevel::k##level, __FILE__, __LINE__)

#endif  // SWEEPMV_COMMON_LOG_H_
