// Minimal leveled logging to stderr.
//
// Intended for tracing simulator runs and debugging algorithm state
// machines. Logging is off by default; tests and benches can raise the
// level to watch a run unfold. Not thread-safe by design: the simulator is
// single-threaded.

#ifndef SWEEPMV_COMMON_LOG_H_
#define SWEEPMV_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace sweepmv {

enum class LogLevel : int {
  kNone = 0,
  kInfo = 1,
  kDebug = 2,
  kTrace = 3,
};

// Process-wide log threshold. Messages with a level above it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_log {

inline bool Enabled(LogLevel level) { return level <= GetLogLevel(); }

// Stream-style collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the LogMessage in the enabled branch of SWEEP_LOG so both
// arms of the ternary have type void.
class Voidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal_log
}  // namespace sweepmv

// Short-circuits when the level is disabled: the streamed expressions
// are never evaluated, so hot paths may log expensive renderings
// (Relation::ToDisplayString sorts the whole relation) for free.
// operator& binds looser than << and tighter than ?:, which makes the
// whole streaming chain the right-hand operand.
#define SWEEP_LOG(level)                                             \
  (!::sweepmv::internal_log::Enabled(::sweepmv::LogLevel::k##level)) \
      ? (void)0                                                      \
      : ::sweepmv::internal_log::Voidify() &                         \
            ::sweepmv::internal_log::LogMessage(                     \
                ::sweepmv::LogLevel::k##level, __FILE__, __LINE__)

#endif  // SWEEPMV_COMMON_LOG_H_
