#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace sweepmv {

uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014). Public-domain reference constants.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  SWEEP_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  SWEEP_CHECK(mean > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

int64_t Rng::Zipf(int64_t n, double theta) {
  SWEEP_CHECK(n > 0);
  SWEEP_CHECK(theta > 0.0 && theta < 1.0);
  // Inverse-CDF approximation of the continuous Zipf-like distribution:
  // rank ~ n * u^(1/(1-theta)) concentrates mass on low ranks.
  double u = NextDouble();
  double r = std::pow(u, 1.0 / (1.0 - theta));
  int64_t rank = static_cast<int64_t>(r * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return rank;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a55a5a5a5aULL); }

}  // namespace sweepmv
