// Deterministic pseudo-random number generation.
//
// All randomness in the library (workload generation, channel latency
// jitter) flows through Rng so that every simulation run is reproducible
// from a single seed. The generator is SplitMix64: tiny, fast, and good
// enough for workload shaping (we are not doing cryptography or Monte
// Carlo integration).

#ifndef SWEEPMV_COMMON_RNG_H_
#define SWEEPMV_COMMON_RNG_H_

#include <cstdint>

namespace sweepmv {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0). Used for
  // Poisson-process inter-arrival times of source updates.
  double Exponential(double mean);

  // Zipf-distributed value in [0, n-1] with exponent theta in (0, 1).
  // Approximation suitable for skewed key popularity in workloads.
  int64_t Zipf(int64_t n, double theta);

  // Derives an independent child generator; convenient for giving each
  // source its own stream while keeping a single top-level seed.
  Rng Fork();

  // Raw generator state, exposed for state fingerprinting (the explorer
  // hashes it so two system states with diverged RNG streams never alias).
  uint64_t state() const { return state_; }

  bool operator==(const Rng&) const = default;

 private:
  uint64_t state_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_COMMON_RNG_H_
