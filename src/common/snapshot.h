// Snapshot-exemption annotation for sweeplint (tools/sweeplint/).
//
// The schedule-space explorer's prefix-sharing rests on Save*/Restore*
// capturing *every* mutable member of every snapshotted class; a member
// that is silently left out corrupts verdicts after the first backtrack.
// sweeplint machine-checks that invariant: each non-static data member of
// a class exposing SaveState/RestoreState (or SaveAlgState/RestoreAlgState)
// must either be captured by both sides or carry this macro with a
// rationale of at least 8 characters.
//
//   SWEEP_SNAPSHOT_EXEMPT("immutable topology, fixed at construction")
//   const std::vector<int>& source_sites_;
//
// Use it only for members that genuinely need no capture: immutable
// configuration, wiring to other snapshotted components (each of which
// owns its own state), or observers that outlive the exploration. A
// member that mutates during a controlled run must be captured — the
// rationale is reviewed by humans, not by the tool, so say why restoring
// without it is sound, not just what the member is.
//
// Under clang the macro expands to a [[clang::annotate]] attribute so the
// libclang frontend sees the exemption in the AST after preprocessing;
// under other compilers it expands to nothing and sweeplint's bundled
// micro frontend reads the macro spelling from the source instead. The
// two frontends agree on the model by construction (see
// tools/sweeplint/model.py).

#ifndef SWEEPMV_COMMON_SNAPSHOT_H_
#define SWEEPMV_COMMON_SNAPSHOT_H_

#if defined(__clang__)
#define SWEEP_SNAPSHOT_EXEMPT(why) \
  [[clang::annotate("sweeplint:snapshot-exempt:" why)]]
#else
#define SWEEP_SNAPSHOT_EXEMPT(why)
#endif

#endif  // SWEEPMV_COMMON_SNAPSHOT_H_
