// Snapshot-exemption annotation for sweeplint (tools/sweeplint/).
//
// The schedule-space explorer's prefix-sharing rests on Save*/Restore*
// capturing *every* mutable member of every snapshotted class; a member
// that is silently left out corrupts verdicts after the first backtrack.
// sweeplint machine-checks that invariant: each non-static data member of
// a class exposing SaveState/RestoreState (or SaveAlgState/RestoreAlgState)
// must either be captured by both sides or carry this macro with a
// rationale of at least 8 characters.
//
//   SWEEP_SNAPSHOT_EXEMPT("immutable topology, fixed at construction")
//   const std::vector<int>& source_sites_;
//
// Use it only for members that genuinely need no capture: immutable
// configuration, wiring to other snapshotted components (each of which
// owns its own state), or observers that outlive the exploration. A
// member that mutates during a controlled run must be captured — the
// rationale is reviewed by humans, not by the tool, so say why restoring
// without it is sound, not just what the member is.
//
// Under clang the macro expands to a [[clang::annotate]] attribute so the
// libclang frontend sees the exemption in the AST after preprocessing;
// under other compilers it expands to nothing and sweeplint's bundled
// micro frontend reads the macro spelling from the source instead. The
// two frontends agree on the model by construction (see
// tools/sweeplint/model.py).

#ifndef SWEEPMV_COMMON_SNAPSHOT_H_
#define SWEEPMV_COMMON_SNAPSHOT_H_

#if defined(__clang__)
#define SWEEP_SNAPSHOT_EXEMPT(why) \
  [[clang::annotate("sweeplint:snapshot-exempt:" why)]]
#else
#define SWEEP_SNAPSHOT_EXEMPT(why)
#endif

// Undo-exemption twin, for the undo-log backtracking engine: in a class
// that defines CaptureUndo (or CaptureUndoAlgState), every member the
// Save*/Restore* pair captures must also be value- or tail-captured by
// the undo recorder — a member the recorder skips silently survives
// rollback with a corrupted value, the exact failure mode snapshot
// completeness guards against, one engine over. sweeplint's
// undo-coverage check enforces it; this macro records the deliberate
// exceptions:
//
//   SWEEP_UNDO_EXEMPT("captured wholesale by the enclosing full-state "
//                     "anchor; never mutated between anchors")
//   std::vector<int> rebuilt_cache_;
//
// The rationale bar is the same as above: say why a rollback that skips
// this member is sound. Both annotations may appear on one member (a
// member can be outside the snapshot for one reason and outside the
// undo log for another).
#if defined(__clang__)
#define SWEEP_UNDO_EXEMPT(why) \
  [[clang::annotate("sweeplint:undo-exempt:" why)]]
#else
#define SWEEP_UNDO_EXEMPT(why)
#endif

#endif  // SWEEPMV_COMMON_SNAPSHOT_H_
