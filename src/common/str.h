// Small string helpers used across the library (formatting, joining).

#ifndef SWEEPMV_COMMON_STR_H_
#define SWEEPMV_COMMON_STR_H_

#include <sstream>
#include <string>
#include <vector>

namespace sweepmv {

// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Streams any << -able value into a string.
template <typename T>
std::string ToString(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace sweepmv

#endif  // SWEEPMV_COMMON_STR_H_
