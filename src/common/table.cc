#include "common/table.h"

#include <algorithm>

#include "common/check.h"

namespace sweepmv {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SWEEP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SWEEP_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule();
  out += render_row(headers_);
  out += rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule();
    } else {
      out += render_row(row);
    }
  }
  out += rule();
  return out;
}

}  // namespace sweepmv
