// ASCII table rendering for bench harnesses and examples.
//
// The benchmark binaries regenerate the paper's tables; TablePrinter gives
// them a uniform, column-aligned text rendering.

#ifndef SWEEPMV_COMMON_TABLE_H_
#define SWEEPMV_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace sweepmv {

class TablePrinter {
 public:
  // Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; the row must have exactly as many cells as there are
  // headers.
  void AddRow(std::vector<std::string> row);

  // Inserts a horizontal separator line before the next row.
  void AddSeparator();

  // Renders the table, including a header rule, to a string.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  // A row that is empty represents a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_COMMON_TABLE_H_
