// Per-step undo log: O(changes) backtracking for the schedule explorer.
//
// The prefix-sharing explorer (PR 4) backtracks by restoring a
// ControlledSystem::SavedState — a deep copy of *everything*, including
// the warehouse's whole install history and every source relation, taken
// at every branching decision point. This log replaces that with
// mutation-granular entries: every component, at each controlled-step
// entry point, records how to undo what the step is about to change, and
// backtracking pops entries back to the parent's watermark. Branch cost
// becomes proportional to the events executed since the parent instead of
// the total state size. SaveState/RestoreState survive as the periodic
// safety anchor (ExplorerConfig::snapshot_anchor_every) and as the oracle
// the round-trip tests compare against.
//
// Capture discipline (the correctness contract, pinned by
// tests/undo_log_test.cc and machine-checked by sweeplint's
// undo-coverage rule):
//
//   * An *era* is the span between two watermarks (MarkPoint /
//     RollbackTo / DiscardTo each open a new one). The explorer marks
//     before every controlled step, so one era = one executed event.
//   * Hooks run at the *top* of each mutation entry point, before any
//     member changes. The first capture of a member per era therefore
//     stores its watermark value; later captures of the same member in
//     the same era are deduplicated (first-touch-per-era), keyed on
//     (address, capture kind).
//   * CaptureValue restores by whole-value assignment — always sound.
//     CaptureTail records only the length of an append-only container
//     and restores by truncation — sound as long as every *non-append*
//     mutation of that container happens in an era that value-captures
//     it instead (the warehouse's crash/recovery path does exactly
//     this). Mixed eras compose because entries apply in reverse order:
//     a newer value-capture first restores the full container (whose
//     prefix up to the older era's length is untouched history), then
//     the older truncation cuts it back.

#ifndef SWEEPMV_COMMON_UNDO_H_
#define SWEEPMV_COMMON_UNDO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <algorithm>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace sweepmv {

// Identity of one state member for the effect-set soundness oracle:
// (declaring class, member name, site). `site == -1` means global (one
// instance, e.g. UpdateIdGenerator::next_). The strings are expected to
// be string literals; comparisons go through strcmp so distinct literals
// with equal text compare equal.
struct EffectAtom {
  const char* cls = "";
  const char* member = "";
  int site = -1;
};

class UndoLog {
 public:
  using Mark = size_t;

  // Opens a new era and returns the current watermark.
  Mark MarkPoint() {
    OpenEra();
    return entries_.size();
  }

  // Applies every entry above `mark` in reverse recording order, then
  // opens a new era.
  void RollbackTo(Mark mark) {
    while (entries_.size() > mark) {
      entries_.back()();
      entries_.pop_back();
    }
    ++rollbacks_;
    OpenEra();
  }

  // Drops entries above `mark` without applying them — used after the
  // explorer restores a full snapshot anchor instead of unwinding.
  void DiscardTo(Mark mark) {
    entries_.resize(mark);
    OpenEra();
  }

  // Whole-value restore; first touch per era wins. The tagged overload
  // names the member for the effect oracle: while observing, a probe
  // compares the pre-step value against the current one at drain time
  // and reports the atom only if the member actually changed.
  // Incomparable types degrade to "always changed" (conservative).
  template <typename T>
  void CaptureValue(T* target, EffectAtom atom) {
    if (!FirstTouch(target, kValue)) return;
    if (observing_) {
      if constexpr (requires(const T& a, const T& b) { a == b; }) {
        probes_.push_back(
            [target, atom, saved = *target](std::vector<EffectAtom>& out) {
              if (!(saved == *target)) out.push_back(atom);
            });
      } else {
        probes_.push_back([atom](std::vector<EffectAtom>& out) {
          out.push_back(atom);
        });
      }
    }
    entries_.push_back([target, saved = *target]() mutable {
      *target = std::move(saved);
    });
  }

  template <typename T>
  void CaptureValue(T* target) {
    CaptureValue(target, EffectAtom{"<untagged>", "", -1});
  }

  // Truncate-only restore for append-only containers; first touch per
  // era wins. See the capture discipline above for when this is sound.
  // The observation probe compares lengths: for an append-only container
  // "size changed" is exactly "mutated this era".
  template <typename Container>
  void CaptureTail(Container* target, EffectAtom atom) {
    if (!FirstTouch(target, kTail)) return;
    if (observing_) {
      probes_.push_back(
          [target, atom, length = target->size()](std::vector<EffectAtom>& out) {
            if (target->size() != length) out.push_back(atom);
          });
    }
    entries_.push_back([target, length = target->size()]() {
      if (target->size() > length) {
        target->erase(
            target->begin() + static_cast<std::ptrdiff_t>(length),
            target->end());
      }
    });
  }

  template <typename Container>
  void CaptureTail(Container* target) {
    CaptureTail(target, EffectAtom{"<untagged>", "", -1});
  }

  // Custom deduplicated restore (e.g. "restore this relation and rebuild
  // its indexes"). `key` identifies the captured object for the
  // first-touch-per-era rule. The probe overload supplies change
  // detection for state that needs hand-rolled comparison (per-link
  // network channels, indexed relations); a probe appends one atom per
  // member it finds changed.
  void Capture(const void* key, std::function<void()> undo,
               std::function<void(std::vector<EffectAtom>&)> probe) {
    if (!FirstTouch(key, kCustom)) return;
    if (observing_ && probe) probes_.push_back(std::move(probe));
    entries_.push_back(std::move(undo));
  }

  void Capture(const void* key, std::function<void()> undo) {
    if (!FirstTouch(key, kCustom)) return;
    if (observing_) {
      probes_.push_back([](std::vector<EffectAtom>& out) {
        out.push_back(EffectAtom{"<untagged>", "", -1});
      });
    }
    entries_.push_back(std::move(undo));
  }

  // Exact inverse of one operation; never deduplicated.
  void Push(std::function<void()> undo) {
    ++recorded_;
    entries_.push_back(std::move(undo));
  }

  size_t size() const { return entries_.size(); }
  // Lifetime counters for the bench's undo-entries-per-backtrack row.
  int64_t entries_recorded() const { return recorded_; }
  int64_t rollbacks() const { return rollbacks_; }

  // --- effect observation (soundness oracle support) ---------------------
  //
  // While observing, each first-touch capture also registers a *probe*
  // that, at drain time, decides whether the captured member actually
  // changed since the era opened. One era = one controlled step, so
  // DrainObserved() right after a step yields the step's true write set.
  void SetObserve(bool on) {
    observing_ = on;
    if (!on) probes_.clear();
  }
  bool observing() const { return observing_; }

  // Runs all registered probes, returns the deduplicated set of atoms
  // observed changed this era, and clears the probes.
  std::vector<EffectAtom> DrainObserved() {
    std::vector<EffectAtom> out;
    for (auto& probe : probes_) probe(out);
    probes_.clear();
    auto less = [](const EffectAtom& a, const EffectAtom& b) {
      int c = std::strcmp(a.cls, b.cls);
      if (c != 0) return c < 0;
      c = std::strcmp(a.member, b.member);
      if (c != 0) return c < 0;
      return a.site < b.site;
    };
    std::sort(out.begin(), out.end(), less);
    out.erase(std::unique(out.begin(), out.end(),
                          [&](const EffectAtom& a, const EffectAtom& b) {
                            return !less(a, b) && !less(b, a);
                          }),
              out.end());
    return out;
  }

 private:
  enum Kind { kValue = 0, kTail = 1, kCustom = 2 };

  void OpenEra() {
    for (auto& seen : seen_) seen.clear();
    probes_.clear();
    ++eras_;
  }

  bool FirstTouch(const void* addr, Kind kind) {
    if (!seen_[kind].insert(addr).second) return false;
    ++recorded_;
    return true;
  }

  std::vector<std::function<void()>> entries_;
  std::vector<std::function<void(std::vector<EffectAtom>&)>> probes_;
  bool observing_ = false;
  std::unordered_set<const void*> seen_[3];
  int64_t recorded_ = 0;
  int64_t rollbacks_ = 0;
  int64_t eras_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_COMMON_UNDO_H_
