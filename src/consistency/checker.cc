#include "consistency/checker.h"

#include <map>
#include <set>

#include "common/str.h"
#include "consistency/replay.h"

namespace sweepmv {

namespace {

// Verifies the strong-consistency conditions; fills `detail` with the
// first violation. Also decides completeness (the same walk with extra
// conditions) to avoid replaying twice.
struct WalkResult {
  bool strong = false;
  bool complete = false;
  std::string detail;
};

WalkResult WalkInstalls(const ViewDef& view,
                        const std::vector<const StateLog*>& source_logs,
                        const Warehouse& warehouse) {
  WalkResult result;
  Replayer replay(&view, source_logs);

  const auto& installs = warehouse.install_log();
  const auto& arrivals = warehouse.arrival_log();

  // Candidate for completeness until proven otherwise.
  bool complete = installs.size() == arrivals.size();
  if (!complete) {
    result.detail = StrFormat(
        "%zu installs for %zu updates (complete consistency needs one "
        "view state per update)",
        installs.size(), arrivals.size());
  }

  std::set<int64_t> incorporated;
  std::vector<size_t> versions(
      static_cast<size_t>(view.num_relations()), 0);
  size_t arrival_cursor = 0;

  for (size_t k = 0; k < installs.size(); ++k) {
    const InstallRecord& install = installs[k];

    if (install.update_ids.empty()) {
      result.detail = StrFormat("install %zu incorporated no updates", k);
      return result;
    }

    // Complete consistency additionally requires delivery order, one
    // update per install.
    if (complete) {
      if (install.update_ids.size() != 1 ||
          install.update_ids[0] != arrivals[k].first) {
        complete = false;
        if (result.detail.empty()) {
          result.detail = StrFormat(
              "install %zu does not match delivery order one-to-one", k);
        }
      }
    }

    // A batch install is atomic: its ids are a set. Per relation they
    // must extend that relation's source order by a contiguous block
    // starting at the current version (prefix rule), but the enumeration
    // order within the batch carries no meaning.
    std::map<int, std::set<size_t>> batch_positions;
    for (int64_t id : install.update_ids) {
      if (!incorporated.insert(id).second) {
        result.detail =
            StrFormat("update %lld incorporated twice",
                      static_cast<long long>(id));
        return result;
      }
      auto [rel, pos] = replay.Locate(id);
      batch_positions[rel].insert(pos);
    }
    for (const auto& [rel, positions] : batch_positions) {
      size_t expected = versions[static_cast<size_t>(rel)];
      for (size_t pos : positions) {  // std::set iterates in order
        if (pos != expected) {
          result.detail = StrFormat(
              "install %zu: R%d updates do not extend the source order "
              "contiguously (position %zu, expected %zu)",
              k, rel, pos, expected);
          return result;
        }
        ++expected;
      }
      versions[static_cast<size_t>(rel)] = expected;
    }

    // Strong consistency also demands the batch not run ahead of
    // delivery: every incorporated update must have arrived by now. (It
    // has, trivially, since the warehouse only sees arrived updates; we
    // keep the cursor to validate the log's internal order.)
    while (arrival_cursor < arrivals.size() &&
           incorporated.count(arrivals[arrival_cursor].first) != 0) {
      ++arrival_cursor;
    }

    replay.AdvanceTo(versions);
    Relation expected = replay.CurrentView();
    if (install.view_after != expected) {
      result.detail = StrFormat(
          "install %zu view does not match the replayed view (%zu vs %zu "
          "tuples)",
          k, install.view_after.DistinctSize(), expected.DistinctSize());
      return result;
    }
  }

  // Every update must eventually be incorporated.
  for (int rel = 0; rel < view.num_relations(); ++rel) {
    if (versions[static_cast<size_t>(rel)] !=
        replay.TotalUpdates(rel)) {
      result.detail = StrFormat(
          "R%d: only %zu of %zu updates were incorporated", rel,
          versions[static_cast<size_t>(rel)], replay.TotalUpdates(rel));
      return result;
    }
  }

  result.strong = true;
  result.complete = complete;
  return result;
}

}  // namespace

ConsistencyReport CheckConsistency(
    const ViewDef& view, const std::vector<const StateLog*>& source_logs,
    const Warehouse& warehouse) {
  ConsistencyReport report;
  report.installs = warehouse.install_log().size();
  report.updates = warehouse.arrival_log().size();

  // Final-state correctness first: replay everything.
  Replayer final_replay(&view, source_logs);
  std::vector<size_t> final_versions;
  for (int rel = 0; rel < view.num_relations(); ++rel) {
    final_versions.push_back(final_replay.TotalUpdates(rel));
  }
  final_replay.AdvanceTo(final_versions);
  Relation expected_final = final_replay.CurrentView();
  report.final_state_correct = warehouse.view() == expected_final;

  if (!report.final_state_correct) {
    report.level = ConsistencyLevel::kInconsistent;
    report.detail = "final view does not match the replayed final view";
    return report;
  }

  WalkResult walk = WalkInstalls(view, source_logs, warehouse);
  if (walk.complete) {
    report.level = ConsistencyLevel::kComplete;
  } else if (walk.strong) {
    report.level = ConsistencyLevel::kStrong;
    report.detail = walk.detail;
  } else {
    report.level = ConsistencyLevel::kConvergent;
    report.detail = walk.detail;
  }
  return report;
}

}  // namespace sweepmv
