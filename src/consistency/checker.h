// Consistency classification (Section 2's levels, checked by replay).
//
// Given the sources' ground-truth logs and the warehouse's delivery and
// install logs, classifies a finished run as:
//
//   * complete   — the view stepped through *every* source state exactly
//                  once, in warehouse delivery order (one install per
//                  update, views equal to the replayed prefix views);
//   * strong     — each installed view equals the replayed view at some
//                  consistent version vector, version vectors grow
//                  monotonically (each relation's incorporated updates
//                  form a prefix of its source order), and the final state
//                  is reached;
//   * convergent — only the final state matches;
//   * inconsistent — not even that.
//
// The checker trusts nothing but the logs: every expected view is
// recomputed from scratch from the initial snapshots and deltas.

#ifndef SWEEPMV_CONSISTENCY_CHECKER_H_
#define SWEEPMV_CONSISTENCY_CHECKER_H_

#include <string>
#include <vector>

#include "core/factory.h"
#include "core/warehouse.h"
#include "source/state_log.h"

namespace sweepmv {

struct ConsistencyReport {
  ConsistencyLevel level = ConsistencyLevel::kInconsistent;
  // Human-readable reason the next-stricter level was not reached.
  std::string detail;
  bool final_state_correct = false;
  size_t installs = 0;
  size_t updates = 0;
};

ConsistencyReport CheckConsistency(
    const ViewDef& view, const std::vector<const StateLog*>& source_logs,
    const Warehouse& warehouse);

}  // namespace sweepmv

#endif  // SWEEPMV_CONSISTENCY_CHECKER_H_
