#include "consistency/replay.h"

#include "common/check.h"

namespace sweepmv {

Replayer::Replayer(const ViewDef* view,
                   std::vector<const StateLog*> source_logs)
    : view_(view), logs_(std::move(source_logs)) {
  SWEEP_CHECK(view != nullptr);
  SWEEP_CHECK(static_cast<int>(logs_.size()) == view->num_relations());
  states_.reserve(logs_.size());
  versions_.assign(logs_.size(), 0);
  for (size_t r = 0; r < logs_.size(); ++r) {
    SWEEP_CHECK(logs_[r] != nullptr);
    states_.push_back(logs_[r]->initial());
    for (size_t i = 0; i < logs_[r]->updates().size(); ++i) {
      int64_t id = logs_[r]->updates()[i].id;
      auto [it, inserted] =
          index_.emplace(id, std::make_pair(static_cast<int>(r), i));
      SWEEP_CHECK_MSG(inserted, "duplicate update id across source logs");
      (void)it;
    }
  }
}

size_t Replayer::TotalUpdates(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < num_relations());
  return logs_[static_cast<size_t>(rel)]->updates().size();
}

std::pair<int, size_t> Replayer::Locate(int64_t update_id) const {
  auto it = index_.find(update_id);
  SWEEP_CHECK_MSG(it != index_.end(), "unknown update id");
  return it->second;
}

const Relation& Replayer::DeltaOf(int64_t update_id) const {
  auto [rel, pos] = Locate(update_id);
  return logs_[static_cast<size_t>(rel)]->updates()[pos].delta;
}

void Replayer::AdvanceTo(const std::vector<size_t>& versions) {
  SWEEP_CHECK(versions.size() == versions_.size());
  for (size_t r = 0; r < versions.size(); ++r) {
    SWEEP_CHECK_MSG(versions[r] >= versions_[r],
                    "version vectors must be non-decreasing");
    SWEEP_CHECK(versions[r] <= logs_[r]->updates().size());
    while (versions_[r] < versions[r]) {
      states_[r].Merge(logs_[r]->updates()[versions_[r]].delta);
      ++versions_[r];
    }
  }
}

Relation Replayer::CurrentView() const {
  std::vector<const Relation*> rels;
  rels.reserve(states_.size());
  for (const Relation& s : states_) rels.push_back(&s);
  return view_->EvaluateFull(rels);
}

}  // namespace sweepmv
