// Replay machinery shared by the consistency checker.
//
// Rebuilds base-relation states from the sources' update logs so that the
// checker can ask "what should the view have been at this version vector?"
// without trusting anything the warehouse computed.

#ifndef SWEEPMV_CONSISTENCY_REPLAY_H_
#define SWEEPMV_CONSISTENCY_REPLAY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "relational/relation.h"
#include "relational/view_def.h"
#include "source/state_log.h"

namespace sweepmv {

class Replayer {
 public:
  // `source_logs[r]` is the log of relation r (initial snapshot + applied
  // deltas in source order).
  Replayer(const ViewDef* view, std::vector<const StateLog*> source_logs);

  int num_relations() const { return static_cast<int>(logs_.size()); }

  // Number of updates relation r executed in total.
  size_t TotalUpdates(int rel) const;

  // Looks up an update id: returns (relation, position in that relation's
  // source order). Aborts if the id is unknown.
  std::pair<int, size_t> Locate(int64_t update_id) const;

  const Relation& DeltaOf(int64_t update_id) const;

  // Advances the maintained base states to the given version vector
  // (versions[r] = number of relation-r updates applied). Versions must be
  // non-decreasing across calls.
  void AdvanceTo(const std::vector<size_t>& versions);

  // Evaluates the view at the current version vector.
  Relation CurrentView() const;

  const std::vector<size_t>& versions() const { return versions_; }

 private:
  const ViewDef* view_;
  std::vector<const StateLog*> logs_;
  std::vector<Relation> states_;
  std::vector<size_t> versions_;
  // update id -> (relation, index in source order)
  std::map<int64_t, std::pair<int, size_t>> index_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CONSISTENCY_REPLAY_H_
