#include "consistency/shard_check.h"

#include <map>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/str.h"
#include "consistency/replay.h"
#include "shard/sharded_view.h"

namespace sweepmv {

namespace {

// The ids of `log` in first-arrival order (the warehouse appends before
// dedup would ever see a second copy, so ids are unique).
std::set<int64_t> IdSet(
    const std::vector<std::pair<int64_t, SimTime>>& log) {
  std::set<int64_t> ids;
  for (const auto& [id, at] : log) {
    (void)at;
    ids.insert(id);
  }
  return ids;
}

}  // namespace

ShardConsistencyReport CheckShardedConsistency(
    const ViewDef& view, const std::vector<const StateLog*>& source_logs,
    const Relation& initial_view,
    const std::vector<const Warehouse*>& shards) {
  SWEEP_CHECK(!shards.empty());
  SWEEP_CHECK(static_cast<int>(source_logs.size()) ==
              view.num_relations());

  ShardConsistencyReport report;

  // Ground truth: id -> (relation, position in source commit order).
  Replayer replay(&view, source_logs);
  std::map<int64_t, std::pair<int, size_t>> located;
  int64_t total_updates = 0;
  for (size_t r = 0; r < source_logs.size(); ++r) {
    const auto& updates = source_logs[r]->updates();
    for (size_t k = 0; k < updates.size(); ++k) {
      located.emplace(updates[k].id,
                      std::make_pair(static_cast<int>(r), k));
      ++total_updates;
    }
  }
  report.updates = total_updates;

  // Convergence: merged fragments vs. the replayed final state.
  ShardedView merged_view(initial_view);
  for (const Warehouse* shard : shards) merged_view.AddShard(shard);
  std::vector<size_t> final_versions;
  for (int r = 0; r < view.num_relations(); ++r) {
    final_versions.push_back(replay.TotalUpdates(r));
  }
  replay.AdvanceTo(final_versions);
  report.final_state_correct = merged_view.Merged() == replay.CurrentView();
  report.version_vectors = merged_view.VersionVectors(source_logs);

  // Ownership partition: each committed update installed by exactly one
  // shard; no shard both installed and discarded the same id.
  std::map<int64_t, int> installers;  // id -> count of installing shards
  bool partition_ok = true;
  std::string partition_detail;
  for (size_t s = 0; s < shards.size(); ++s) {
    const std::set<int64_t> installed =
        IdSet(shards[s]->install_time_log());
    const std::set<int64_t> skipped = IdSet(shards[s]->foreign_skip_log());
    report.installs += static_cast<int64_t>(installed.size());
    report.foreign_discards += static_cast<int64_t>(skipped.size());
    for (int64_t id : installed) {
      SWEEP_CHECK_MSG(located.count(id) != 0,
                      "shard installed an update no source committed");
      if (skipped.count(id) != 0 && partition_ok) {
        partition_ok = false;
        partition_detail = StrFormat(
            "shard %d both installed and discarded update %lld",
            static_cast<int>(s), static_cast<long long>(id));
      }
      ++installers[id];
    }
  }
  for (const auto& [id, entry] : located) {
    (void)entry;
    const auto it = installers.find(id);
    const int count = it == installers.end() ? 0 : it->second;
    if (count != 1 && partition_ok) {
      partition_ok = false;
      partition_detail =
          StrFormat("update %lld installed by %d shards (want exactly 1)",
                    static_cast<long long>(id), count);
    }
  }
  report.ownership_partition = partition_ok;

  // Retire order: within each shard, each relation's retired updates
  // must be a prefix of that relation's source commit order, retired in
  // that order. Retires (install or discard) happen strictly at the
  // queue head, so the shard's arrival order restricted to its retired
  // set IS its retire order — no timestamp tie-breaking needed.
  bool order_ok = true;
  std::string order_detail;
  for (size_t s = 0; s < shards.size() && order_ok; ++s) {
    std::set<int64_t> retired = IdSet(shards[s]->install_time_log());
    for (int64_t id : IdSet(shards[s]->foreign_skip_log())) {
      retired.insert(id);
    }
    std::vector<size_t> next_pos(source_logs.size(), 0);
    for (const auto& [id, at] : shards[s]->arrival_log()) {
      (void)at;
      if (retired.count(id) == 0) continue;
      const auto& [rel, pos] = located.at(id);
      if (pos != next_pos[static_cast<size_t>(rel)]) {
        order_ok = false;
        order_detail = StrFormat(
            "shard %d retired update %lld of R%d at source position %zu "
            "but position %zu was next",
            static_cast<int>(s), static_cast<long long>(id), rel, pos,
            next_pos[static_cast<size_t>(rel)]);
        break;
      }
      ++next_pos[static_cast<size_t>(rel)];
    }
  }
  report.retire_order_monotone = order_ok;

  // Per-shard completeness: every arrival retired, owned installs in
  // arrival order (one ViewChange per owned update, no reordering).
  bool complete = partition_ok && order_ok;
  std::string complete_detail;
  for (size_t s = 0; s < shards.size() && complete; ++s) {
    const Warehouse& shard = *shards[s];
    const std::set<int64_t> installed = IdSet(shard.install_time_log());
    const std::set<int64_t> skipped = IdSet(shard.foreign_skip_log());
    if (installed.size() + skipped.size() != shard.arrival_log().size()) {
      complete = false;
      complete_detail = StrFormat(
          "shard %d retired %zu of %zu arrivals", static_cast<int>(s),
          installed.size() + skipped.size(), shard.arrival_log().size());
      break;
    }
    // Owned installs must follow the arrival order.
    size_t next = 0;
    std::vector<int64_t> arrivals_installed;
    for (const auto& [id, at] : shard.arrival_log()) {
      (void)at;
      if (installed.count(id) != 0) arrivals_installed.push_back(id);
    }
    for (const auto& [id, at] : shard.install_time_log()) {
      (void)at;
      if (next >= arrivals_installed.size() ||
          arrivals_installed[next] != id) {
        complete = false;
        complete_detail = StrFormat(
            "shard %d installed update %lld out of arrival order",
            static_cast<int>(s), static_cast<long long>(id));
        break;
      }
      ++next;
    }
  }

  if (!report.final_state_correct) {
    report.level = ConsistencyLevel::kInconsistent;
    report.detail = "merged fragments diverge from the replayed final view";
  } else if (!partition_ok) {
    report.level = ConsistencyLevel::kConvergent;
    report.detail = partition_detail;
  } else if (!order_ok) {
    report.level = ConsistencyLevel::kConvergent;
    report.detail = order_detail;
  } else if (!complete) {
    report.level = ConsistencyLevel::kStrong;
    report.detail = complete_detail;
  } else {
    report.level = ConsistencyLevel::kComplete;
    report.detail =
        "every shard retired its full arrival sequence in order";
  }
  return report;
}

}  // namespace sweepmv
