// Cross-shard consistency classification (docs/sharding.md).
//
// The single-warehouse checker (checker.h) replays install logs against
// the sources' ground truth. A sharded deployment has no single install
// log — each shard installs only the updates it owns — so the levels are
// re-derived from per-shard retire logs and the merged view:
//
//   * convergent — the merged view (V_initial + Σ fragments) equals the
//     view replayed at the sources' final states;
//   * strong     — additionally, ownership is a genuine partition (every
//     committed update installed by exactly one shard, never both
//     installed and discarded by the same shard) and every shard retired
//     each relation's updates in source commit order, so each shard's
//     version vector grows monotonically through consistent states;
//   * complete (per shard) — additionally, every shard retired its whole
//     arrival sequence in arrival order, installing its owned slice
//     one update at a time. Each FRAGMENT then steps through every
//     state of its owned sub-stream in the global arrival order — the
//     per-shard projection of SWEEP's complete consistency. (The MERGED
//     view is only sampled between concurrent installs, which is the
//     coordination sharding deliberately gives up; see docs/sharding.md
//     for why cross-shard completeness would need a global barrier.)

#ifndef SWEEPMV_CONSISTENCY_SHARD_CHECK_H_
#define SWEEPMV_CONSISTENCY_SHARD_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/warehouse.h"
#include "relational/relation.h"
#include "relational/view_def.h"
#include "source/state_log.h"

namespace sweepmv {

struct ShardConsistencyReport {
  ConsistencyLevel level = ConsistencyLevel::kInconsistent;
  // Reason the next-stricter level was not reached.
  std::string detail;
  bool final_state_correct = false;
  // Every committed update installed by exactly one shard, and no shard
  // both installed and discarded the same update.
  bool ownership_partition = false;
  // Every shard retired each relation's updates in source commit order.
  bool retire_order_monotone = false;
  int64_t updates = 0;
  int64_t installs = 0;           // summed over shards
  int64_t foreign_discards = 0;   // summed over shards
  // Final per-shard version vectors (ShardedView::VersionVectors).
  std::vector<std::vector<int64_t>> version_vectors;
};

// `initial_view` is the view over the initial base relations (what every
// fragment is a delta against); `shards` are the drained warehouses.
ShardConsistencyReport CheckShardedConsistency(
    const ViewDef& view, const std::vector<const StateLog*>& source_logs,
    const Relation& initial_view,
    const std::vector<const Warehouse*>& shards);

}  // namespace sweepmv

#endif  // SWEEPMV_CONSISTENCY_SHARD_CHECK_H_
