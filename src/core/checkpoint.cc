#include "core/checkpoint.h"

#include <cstring>

#include "common/check.h"

namespace sweepmv {

namespace {

// Request-message tags (the three query kinds a PendingQuery can hold).
constexpr uint8_t kTagQueryRequest = 0;
constexpr uint8_t kTagEcaQueryRequest = 1;
constexpr uint8_t kTagSnapshotRequest = 2;

}  // namespace

void CheckpointWriter::WriteU8(uint8_t v) {
  bytes_.push_back(static_cast<char>(v));
}

void CheckpointWriter::WriteI32(int32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(
        static_cast<char>((static_cast<uint32_t>(v) >> shift) & 0xff));
  }
}

void CheckpointWriter::WriteI64(int64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(
        static_cast<char>((static_cast<uint64_t>(v) >> shift) & 0xff));
  }
}

void CheckpointWriter::WriteF64(double v) {
  int64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteI64(bits);
}

void CheckpointWriter::WriteString(const std::string& s) {
  WriteI64(static_cast<int64_t>(s.size()));
  bytes_.append(s);
}

void CheckpointWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      WriteI64(v.AsInt());
      return;
    case ValueType::kDouble:
      WriteF64(v.AsDouble());
      return;
    case ValueType::kString:
      WriteString(v.AsString());
      return;
  }
  SWEEP_CHECK_MSG(false, "unknown value type in checkpoint");
}

void CheckpointWriter::WriteTuple(const Tuple& t) {
  WriteI64(static_cast<int64_t>(t.arity()));
  for (const Value& v : t.values()) WriteValue(v);
}

void CheckpointWriter::WriteSchema(const Schema& s) {
  WriteI64(static_cast<int64_t>(s.arity()));
  for (const Attribute& a : s.attrs()) {
    WriteString(a.name);
    WriteU8(static_cast<uint8_t>(a.type));
  }
}

void CheckpointWriter::WriteRelation(const Relation& r) {
  WriteSchema(r.schema());
  const auto entries = r.SortedEntries();
  WriteI64(static_cast<int64_t>(entries.size()));
  for (const auto& [tuple, count] : entries) {
    WriteTuple(tuple);
    WriteI64(count);
  }
}

void CheckpointWriter::WritePartialDelta(const PartialDelta& pd) {
  WriteI32(pd.lo);
  WriteI32(pd.hi);
  WriteRelation(pd.rel);
}

void CheckpointWriter::WriteUpdate(const Update& u) {
  WriteI64(u.id);
  WriteI32(u.relation);
  WriteRelation(u.delta);
  WriteI64(u.applied_at);
}

void CheckpointWriter::WriteRequest(const Message& msg) {
  if (const auto* query = std::get_if<QueryRequest>(&msg)) {
    WriteU8(kTagQueryRequest);
    WriteI64(query->query_id);
    WriteI64(query->epoch);
    WriteI32(query->target_rel);
    WriteBool(query->extend_left);
    WritePartialDelta(query->partial);
    return;
  }
  if (const auto* eca = std::get_if<EcaQueryRequest>(&msg)) {
    WriteU8(kTagEcaQueryRequest);
    WriteI64(eca->query_id);
    WriteI64(eca->epoch);
    WriteI64(static_cast<int64_t>(eca->terms.size()));
    for (const EcaTerm& term : eca->terms) {
      WriteI32(term.sign);
      WriteI64(static_cast<int64_t>(term.fixed.size()));
      for (const auto& slot : term.fixed) {
        WriteBool(slot.has_value());
        if (slot.has_value()) WriteRelation(*slot);
      }
    }
    return;
  }
  if (const auto* snap = std::get_if<SnapshotRequest>(&msg)) {
    WriteU8(kTagSnapshotRequest);
    WriteI64(snap->query_id);
    WriteI64(snap->epoch);
    return;
  }
  SWEEP_CHECK_MSG(false,
                  "only query requests are checkpointed (pending queries)");
}

uint8_t CheckpointReader::ReadU8() {
  SWEEP_CHECK_MSG(pos_ < bytes_.size(), "checkpoint truncated");
  return static_cast<uint8_t>(bytes_[pos_++]);
}

int32_t CheckpointReader::ReadI32() {
  uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<uint32_t>(ReadU8()) << shift;
  }
  return static_cast<int32_t>(v);
}

int64_t CheckpointReader::ReadI64() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<uint64_t>(ReadU8()) << shift;
  }
  return static_cast<int64_t>(v);
}

double CheckpointReader::ReadF64() {
  int64_t bits = ReadI64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::ReadString() {
  const int64_t size = ReadI64();
  SWEEP_CHECK(size >= 0 &&
              pos_ + static_cast<size_t>(size) <= bytes_.size());
  std::string s = bytes_.substr(pos_, static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return s;
}

Value CheckpointReader::ReadValue() {
  const auto type = static_cast<ValueType>(ReadU8());
  switch (type) {
    case ValueType::kInt:
      return Value(ReadI64());
    case ValueType::kDouble:
      return Value(ReadF64());
    case ValueType::kString:
      // Re-interning restores the shared-buffer invariant of the pool.
      return Value(ReadString());
  }
  SWEEP_CHECK_MSG(false, "unknown value type in checkpoint");
  return Value();
}

Tuple CheckpointReader::ReadTuple() {
  const int64_t arity = ReadI64();
  SWEEP_CHECK(arity >= 0);
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(arity));
  for (int64_t i = 0; i < arity; ++i) values.push_back(ReadValue());
  return Tuple(std::move(values));
}

Schema CheckpointReader::ReadSchema() {
  const int64_t arity = ReadI64();
  SWEEP_CHECK(arity >= 0);
  std::vector<Attribute> attrs;
  attrs.reserve(static_cast<size_t>(arity));
  for (int64_t i = 0; i < arity; ++i) {
    Attribute a;
    a.name = ReadString();
    a.type = static_cast<ValueType>(ReadU8());
    attrs.push_back(std::move(a));
  }
  return Schema(std::move(attrs));
}

Relation CheckpointReader::ReadRelation() {
  Relation r(ReadSchema());
  const int64_t entries = ReadI64();
  SWEEP_CHECK(entries >= 0);
  for (int64_t i = 0; i < entries; ++i) {
    Tuple t = ReadTuple();
    const int64_t count = ReadI64();
    r.Add(t, count);
  }
  return r;
}

PartialDelta CheckpointReader::ReadPartialDelta() {
  PartialDelta pd;
  pd.lo = ReadI32();
  pd.hi = ReadI32();
  pd.rel = ReadRelation();
  return pd;
}

Update CheckpointReader::ReadUpdate() {
  Update u;
  u.id = ReadI64();
  u.relation = ReadI32();
  u.delta = ReadRelation();
  u.applied_at = ReadI64();
  return u;
}

Message CheckpointReader::ReadRequest() {
  const uint8_t tag = ReadU8();
  if (tag == kTagQueryRequest) {
    QueryRequest query;
    query.query_id = ReadI64();
    query.epoch = ReadI64();
    query.target_rel = ReadI32();
    query.extend_left = ReadBool();
    query.partial = ReadPartialDelta();
    return query;
  }
  if (tag == kTagEcaQueryRequest) {
    EcaQueryRequest eca;
    eca.query_id = ReadI64();
    eca.epoch = ReadI64();
    const int64_t terms = ReadI64();
    SWEEP_CHECK(terms >= 0);
    for (int64_t i = 0; i < terms; ++i) {
      EcaTerm term;
      term.sign = ReadI32();
      const int64_t slots = ReadI64();
      SWEEP_CHECK(slots >= 0);
      for (int64_t s = 0; s < slots; ++s) {
        if (ReadBool()) {
          term.fixed.push_back(ReadRelation());
        } else {
          term.fixed.push_back(std::nullopt);
        }
      }
      eca.terms.push_back(std::move(term));
    }
    return eca;
  }
  if (tag == kTagSnapshotRequest) {
    SnapshotRequest snap;
    snap.query_id = ReadI64();
    snap.epoch = ReadI64();
    return snap;
  }
  SWEEP_CHECK_MSG(false, "unknown request tag in checkpoint");
  return SnapshotRequest{};
}

}  // namespace sweepmv
