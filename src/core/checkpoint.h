// Byte codec for the warehouse's durable checkpoint.
//
// Crash recovery (docs/fault_model.md) restores the warehouse from an
// in-sim durable store: a checkpoint — the serialized protocol state,
// exactly the member set Warehouse::SaveState captures plus each
// algorithm's SaveAlgState members — and a WAL of update messages that
// arrived after the checkpoint was cut. The codec is deliberately dumb:
// fixed-width little-endian primitives, length-prefixed containers, no
// schema evolution (a checkpoint never outlives the simulated run that
// wrote it). What matters is that it is *total* over the snapshot member
// sets (lint_invariants.py's checkpoint-coverage rule enforces this
// against the Save bodies) and *deterministic*: unordered containers are
// serialized in sorted order, so identical states produce identical
// bytes and checkpoint size is a stable bench metric.

#ifndef SWEEPMV_CORE_CHECKPOINT_H_
#define SWEEPMV_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/partial_delta.h"
#include "relational/relation.h"
#include "sim/message.h"
#include "source/update.h"

namespace sweepmv {

class CheckpointWriter {
 public:
  CheckpointWriter() = default;

  void WriteU8(uint8_t v);
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteI32(int32_t v);
  void WriteI64(int64_t v);
  void WriteF64(double v);
  void WriteString(const std::string& s);

  void WriteValue(const Value& v);
  void WriteTuple(const Tuple& t);
  void WriteSchema(const Schema& s);
  void WriteRelation(const Relation& r);
  void WritePartialDelta(const PartialDelta& pd);
  void WriteUpdate(const Update& u);
  // Only the request messages a pending query can hold (QueryRequest,
  // EcaQueryRequest, SnapshotRequest); anything else is a CHECK failure.
  void WriteRequest(const Message& msg);

  // Hands the accumulated bytes over; the writer is spent afterwards.
  std::string Take() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

class CheckpointReader {
 public:
  // `bytes` must outlive the reader.
  explicit CheckpointReader(const std::string& bytes) : bytes_(bytes) {}

  uint8_t ReadU8();
  bool ReadBool() { return ReadU8() != 0; }
  int32_t ReadI32();
  int64_t ReadI64();
  double ReadF64();
  std::string ReadString();

  Value ReadValue();
  Tuple ReadTuple();
  Schema ReadSchema();
  Relation ReadRelation();
  PartialDelta ReadPartialDelta();
  Update ReadUpdate();
  Message ReadRequest();

  // True once every byte has been consumed; restore paths CHECK this so a
  // serializer/deserializer mismatch fails loudly instead of silently
  // truncating state.
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_CHECKPOINT_H_
