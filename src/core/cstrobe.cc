#include "core/cstrobe.h"

#include "common/check.h"
#include "common/log.h"
#include "relational/operators.h"

namespace sweepmv {

CStrobeWarehouse::CStrobeWarehouse(int site_id, ViewDef view_def,
                                   Network* network,
                                   std::vector<int> source_sites,
                                   Options options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options) {}

void CStrobeWarehouse::InitializeAuxiliary(
    const std::vector<Relation>& initial_bases) {
  SWEEP_CHECK(static_cast<int>(initial_bases.size()) ==
              view_def().num_relations());
  Relation acc = initial_bases[0];
  for (int rel = 1; rel < view_def().num_relations(); ++rel) {
    acc = Join(acc, initial_bases[static_cast<size_t>(rel)],
               view_def().ExtendRightKeys(0, rel));
  }
  internal_view_ = Select(acc, view_def().selection());
  internal_view_.ClampToSet();
}

void CStrobeWarehouse::HandleUpdateArrival() {
  if (active_.has_value()) {
    // The newest queued update interferes with the batch in flight
    // (conservative rule: received while any query is outstanding).
    HandleInterference(mutable_queue().back());
    StartUnsentTasks();
    return;
  }
  MaybeStartNext();
}

void CStrobeWarehouse::MaybeStartNext() {
  while (!active_.has_value() && !mutable_queue().empty()) {
    Update update = std::move(mutable_queue().front());
    mutable_queue().pop_front();

    Relation inserts(view_def().rel_schema(update.relation));
    std::vector<Tuple> deletes;
    for (const auto& [t, c] : update.delta.entries()) {
      if (c > 0) {
        inserts.Add(t, c);
      } else {
        deletes.push_back(t);
      }
    }

    // Initial deletes: incorporated locally via key-deletes (zero
    // messages — the unique-key assumption at work).
    for (const Tuple& t : deletes) {
      internal_view_.EraseMatching(
          view_def().RelPositionsInJoined(update.relation), t);
    }

    if (inserts.Empty()) {
      InstallAbsoluteView(Project(internal_view_, view_def().projection()),
                          {update.id});
      continue;
    }

    // Single-relation views need no remote evaluation.
    if (view_def().num_relations() == 1) {
      Relation sel = Select(inserts, view_def().selection());
      sel.ClampToSet();
      for (const auto& [t, c] : sel.entries()) {
        (void)c;
        if (internal_view_.CountOf(t) == 0) internal_view_.Add(t, 1);
      }
      InstallAbsoluteView(Project(internal_view_, view_def().projection()),
                          {update.id});
      continue;
    }

    ActiveUpdate batch;
    batch.update_id = update.id;
    batch.src_rel = update.relation;
    batch.answer = Relation(view_def().joined_schema());
    active_ = std::move(batch);
    observed_deletes_.clear();
    spawned_.clear();
    root_delta_ = std::move(inserts);

    // Conservatively treat everything already queued as concurrent.
    for (const Update& w : mutable_queue()) HandleInterference(w);

    SpawnTask(Signature{});
    StartUnsentTasks();
  }
}

void CStrobeWarehouse::SpawnTask(const Signature& sig) {
  SWEEP_CHECK(active_.has_value());
  if (!spawned_.insert(sig).second) return;  // already covered

  Task task;
  task.local_id = active_->tasks_created++;
  task.pd = PartialDelta::ForRelation(view_def(), active_->src_rel,
                                      root_delta_);
  for (const auto& [rel, tuple] : sig) {
    Relation pinned(view_def().rel_schema(rel));
    pinned.Add(tuple, 1);
    task.fixed.emplace(rel, std::move(pinned));
  }
  task.left_phase = true;
  task.j = active_->src_rel - 1;
  if (!sig.empty()) ++compensating_queries_;
  active_->tasks.push_back(std::move(task));
  if (active_->tasks_created > max_tasks_per_update_) {
    max_tasks_per_update_ = active_->tasks_created;
  }

  // Close over every already-observed concurrent delete this task does
  // not pin yet.
  for (size_t i = 0; i < observed_deletes_.size(); ++i) {
    const auto [rel, tuple] = observed_deletes_[i];
    if (rel == active_->src_rel || sig.count(rel) != 0) continue;
    Signature wider = sig;
    wider.emplace(rel, tuple);
    SpawnTask(wider);
  }
}

void CStrobeWarehouse::StartUnsentTasks() {
  if (!active_.has_value()) return;
  // Collect ids first: AdvanceTask can erase tasks (fully pinned sweeps
  // complete without any query) and, in principle, finalize the batch.
  std::vector<int64_t> unsent;
  for (const Task& task : active_->tasks) {
    if (task.outstanding_query == -1) unsent.push_back(task.local_id);
  }
  for (int64_t id : unsent) {
    if (!active_.has_value()) return;  // batch finalized mid-loop
    if (AdvanceTask(id)) return;
  }
}

bool CStrobeWarehouse::AdvanceTask(int64_t local_id) {
  SWEEP_CHECK(active_.has_value());
  size_t index = active_->tasks.size();
  for (size_t i = 0; i < active_->tasks.size(); ++i) {
    if (active_->tasks[i].local_id == local_id) {
      index = i;
      break;
    }
  }
  SWEEP_CHECK_MSG(index < active_->tasks.size(), "unknown C-Strobe task");

  while (true) {
    Task& task = active_->tasks[index];
    if (task.left_phase && task.j < 0) {
      task.left_phase = false;
      task.j = active_->src_rel + 1;
    }
    if (!task.left_phase && task.j >= view_def().num_relations()) {
      // Task complete: fold its (selection-filtered) result into the
      // batch answer with duplicate suppression.
      SWEEP_CHECK(task.pd.SpansAll(view_def()));
      Relation result = Select(task.pd.rel, view_def().selection());
      for (const auto& [t, c] : result.entries()) {
        (void)c;
        if (active_->answer.CountOf(t) == 0) active_->answer.Add(t, 1);
      }
      active_->tasks.erase(active_->tasks.begin() +
                           static_cast<std::ptrdiff_t>(index));
      if (active_->tasks.empty()) {
        FinalizeActive();
        return true;
      }
      return false;
    }

    auto fixed_it = task.fixed.find(task.j);
    if (fixed_it != task.fixed.end()) {
      // Pinned position: extend locally with the pinned tuple.
      task.pd = task.left_phase
                    ? ExtendLeft(view_def(), fixed_it->second, task.pd)
                    : ExtendRight(view_def(), task.pd, fixed_it->second);
      task.j += task.left_phase ? -1 : 1;
      continue;
    }

    task.outstanding_query =
        SendSweepQuery(task.j, /*extend_left=*/task.left_phase, task.pd);
    return false;
  }
}

void CStrobeWarehouse::HandleQueryAnswer(QueryAnswer answer) {
  SWEEP_CHECK(active_.has_value());
  for (Task& task : active_->tasks) {
    if (task.outstanding_query == answer.query_id) {
      task.outstanding_query = -1;
      task.pd = std::move(answer.partial);
      task.j += task.left_phase ? -1 : 1;
      AdvanceTask(task.local_id);
      return;
    }
  }
  SWEEP_CHECK_MSG(false, "answer does not match any C-Strobe task");
}

void CStrobeWarehouse::HandleInterference(const Update& update) {
  SWEEP_CHECK(active_.has_value());
  // Sorted: the iteration order decides the order of local_removals /
  // observed_deletes_ (both checkpoint-serialized) and the signature
  // widening sequence, so an unordered walk would leak hash-table order
  // into checkpoint bytes and task-spawn order.
  for (const auto& [t, c] : update.delta.SortedEntries()) {
    if (c > 0) {
      // Concurrent insert: offset locally at finalize time by deleting
      // the matching tuples from the accumulated answer.
      active_->local_removals.emplace_back(update.relation, t);
    } else if (update.relation != active_->src_rel) {
      // Concurrent delete: in-flight answers may be missing this tuple's
      // contribution; widen every known pin signature with it (the new
      // tasks are started by the caller via StartUnsentTasks).
      observed_deletes_.emplace_back(update.relation, t);
      std::vector<Signature> existing(spawned_.begin(), spawned_.end());
      for (const Signature& sig : existing) {
        if (sig.count(update.relation) != 0) continue;
        Signature wider = sig;
        wider.emplace(update.relation, t);
        SpawnTask(wider);
      }
    }
  }
}

void CStrobeWarehouse::FinalizeActive() {
  SWEEP_CHECK(active_.has_value());
  for (const auto& [rel, key] : active_->local_removals) {
    active_->answer.EraseMatching(view_def().RelPositionsInJoined(rel),
                                  key);
  }
  for (const auto& [t, c] : active_->answer.entries()) {
    (void)c;
    if (internal_view_.CountOf(t) == 0) internal_view_.Add(t, 1);
  }
  int64_t id = active_->update_id;
  active_.reset();
  observed_deletes_.clear();
  spawned_.clear();
  InstallAbsoluteView(Project(internal_view_, view_def().projection()),
                      {id});
  MaybeStartNext();
}

std::shared_ptr<const Warehouse::AlgState> CStrobeWarehouse::SaveAlgState()
    const {
  Saved s;
  s.internal_view = internal_view_;
  s.root_delta = root_delta_;
  s.active = active_;
  s.observed_deletes = observed_deletes_;
  s.spawned = spawned_;
  s.compensating_queries = compensating_queries_;
  s.max_tasks_per_update = max_tasks_per_update_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void CStrobeWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  internal_view_ = s.internal_view;
  root_delta_ = s.root_delta;
  active_ = s.active;
  observed_deletes_ = s.observed_deletes;
  spawned_ = s.spawned;
  compensating_queries_ = s.compensating_queries;
  max_tasks_per_update_ = s.max_tasks_per_update;
}

void CStrobeWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&internal_view_,
                    {"CStrobeWarehouse", "internal_view_", site_id()});
  undo.CaptureValue(&root_delta_,
                    {"CStrobeWarehouse", "root_delta_", site_id()});
  undo.CaptureValue(&active_, {"CStrobeWarehouse", "active_", site_id()});
  undo.CaptureValue(&observed_deletes_,
                    {"CStrobeWarehouse", "observed_deletes_", site_id()});
  undo.CaptureValue(&spawned_, {"CStrobeWarehouse", "spawned_", site_id()});
  undo.CaptureValue(&compensating_queries_,
                    {"CStrobeWarehouse", "compensating_queries_", site_id()});
  undo.CaptureValue(&max_tasks_per_update_,
                    {"CStrobeWarehouse", "max_tasks_per_update_", site_id()});
}

namespace {

void WriteSignature(CheckpointWriter& w,
                    const std::map<int, Tuple>& signature) {
  w.WriteI64(static_cast<int64_t>(signature.size()));
  for (const auto& [rel, tuple] : signature) {
    w.WriteI32(rel);
    w.WriteTuple(tuple);
  }
}

std::map<int, Tuple> ReadSignature(CheckpointReader& r) {
  std::map<int, Tuple> signature;
  const int64_t entries = r.ReadI64();
  for (int64_t i = 0; i < entries; ++i) {
    const int rel = r.ReadI32();
    signature.emplace(rel, r.ReadTuple());
  }
  return signature;
}

}  // namespace

void CStrobeWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  w.WriteRelation(internal_view_);
  w.WriteRelation(root_delta_);
  w.WriteBool(active_.has_value());
  if (active_.has_value()) {
    w.WriteI64(active_->update_id);
    w.WriteI32(active_->src_rel);
    w.WriteRelation(active_->answer);
    w.WriteI64(static_cast<int64_t>(active_->tasks.size()));
    for (const Task& task : active_->tasks) {
      w.WriteI64(task.local_id);
      w.WritePartialDelta(task.pd);
      w.WriteI64(static_cast<int64_t>(task.fixed.size()));
      for (const auto& [rel, relation] : task.fixed) {
        w.WriteI32(rel);
        w.WriteRelation(relation);
      }
      w.WriteBool(task.left_phase);
      w.WriteI32(task.j);
      w.WriteI64(task.outstanding_query);
    }
    w.WriteI64(static_cast<int64_t>(active_->local_removals.size()));
    for (const auto& [rel, tuple] : active_->local_removals) {
      w.WriteI32(rel);
      w.WriteTuple(tuple);
    }
    w.WriteI64(active_->tasks_created);
  }
  w.WriteI64(static_cast<int64_t>(observed_deletes_.size()));
  for (const auto& [rel, tuple] : observed_deletes_) {
    w.WriteI32(rel);
    w.WriteTuple(tuple);
  }
  w.WriteI64(static_cast<int64_t>(spawned_.size()));
  for (const Signature& signature : spawned_) WriteSignature(w, signature);
  w.WriteI64(compensating_queries_);
  w.WriteI64(max_tasks_per_update_);
}

void CStrobeWarehouse::DeserializeAlgState(CheckpointReader& r) {
  internal_view_ = r.ReadRelation();
  root_delta_ = r.ReadRelation();
  active_.reset();
  if (r.ReadBool()) {
    ActiveUpdate active;
    active.update_id = r.ReadI64();
    active.src_rel = r.ReadI32();
    active.answer = r.ReadRelation();
    const int64_t tasks = r.ReadI64();
    for (int64_t i = 0; i < tasks; ++i) {
      Task task;
      task.local_id = r.ReadI64();
      task.pd = r.ReadPartialDelta();
      const int64_t fixed = r.ReadI64();
      for (int64_t j = 0; j < fixed; ++j) {
        const int rel = r.ReadI32();
        task.fixed.emplace(rel, r.ReadRelation());
      }
      task.left_phase = r.ReadBool();
      task.j = r.ReadI32();
      task.outstanding_query = r.ReadI64();
      active.tasks.push_back(std::move(task));
    }
    const int64_t removals = r.ReadI64();
    for (int64_t i = 0; i < removals; ++i) {
      const int rel = r.ReadI32();
      active.local_removals.emplace_back(rel, r.ReadTuple());
    }
    active.tasks_created = r.ReadI64();
    active_ = std::move(active);
  }
  observed_deletes_.clear();
  const int64_t deletes = r.ReadI64();
  for (int64_t i = 0; i < deletes; ++i) {
    const int rel = r.ReadI32();
    observed_deletes_.emplace_back(rel, r.ReadTuple());
  }
  spawned_.clear();
  const int64_t spawned = r.ReadI64();
  for (int64_t i = 0; i < spawned; ++i) spawned_.insert(ReadSignature(r));
  compensating_queries_ = r.ReadI64();
  max_tasks_per_update_ = r.ReadI64();
}

}  // namespace sweepmv
