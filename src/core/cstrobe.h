// C-Strobe — baseline [ZGMW96], as characterized in Sections 3-4.
//
// C-Strobe restores complete consistency to Strobe by handling each update
// completely, in arrival order, before touching the next:
//   * an initial delete is applied locally (key-delete on the view, zero
//     messages — the unique-key assumption at work);
//   * an initial insert launches a sweep query; every concurrent update
//     that could have contaminated an in-flight answer is compensated:
//       - a concurrent *insert* is offset locally by deleting matching
//         tuples from the accumulated answer (duplicate suppression);
//       - a concurrent *delete* may have removed tuples the answer should
//         contain, so a *compensating query* is dispatched to re-fetch the
//         missing term (the deleted tuple pinned at its position); those
//         queries are themselves subject to interference and recurse.
// Because compensation is remote, the number of queries per update grows
// combinatorially with the interference rate — the K^(n-2) / (n-1)! blow-up
// of Section 3 that motivates SWEEP's local compensation. C-Strobe follows
// the conservative interference rule the paper criticizes in Section 4:
// every update received while any query of the batch is outstanding is
// treated as interfering; the key assumption makes over-compensation
// harmless (suppressed duplicates), never incorrect.

#ifndef SWEEPMV_CORE_CSTROBE_H_
#define SWEEPMV_CORE_CSTROBE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/warehouse.h"

namespace sweepmv {

class CStrobeWarehouse : public Warehouse {
 public:
  CStrobeWarehouse(int site_id, ViewDef view_def, Network* network,
                   std::vector<int> source_sites,
                   Options options = Options{});

  void InitializeAuxiliary(
      const std::vector<Relation>& initial_bases) override;

  bool Busy() const override { return active_.has_value(); }
  std::string name() const override { return "C-Strobe"; }

  // Compensating queries dispatched over the whole run.
  int64_t compensating_queries() const { return compensating_queries_; }
  // Largest number of sweep tasks a single update required.
  int64_t max_tasks_per_update() const { return max_tasks_per_update_; }

 protected:
  void HandleUpdateArrival() override;
  void HandleQueryAnswer(QueryAnswer answer) override;

 private:
  // A pin set: positions resolved from pinned deleted tuples instead of
  // queried. Tasks are identified by their pin signature.
  using Signature = std::map<int, Tuple>;

  // One sweep across the chain; `fixed` positions (the update's own
  // relation plus any pinned deleted tuples) are joined locally instead of
  // queried.
  struct Task {
    int64_t local_id = -1;
    PartialDelta pd;
    std::map<int, Relation> fixed;
    bool left_phase = true;
    int j = -1;
    int64_t outstanding_query = -1;

    bool operator==(const Task&) const = default;
  };

  struct ActiveUpdate {
    int64_t update_id = -1;
    int src_rel = -1;
    Relation answer;  // accumulated full-span result (set semantics)
    std::vector<Task> tasks;
    // Concurrent inserts to be offset locally at finalize: (rel, tuple).
    std::vector<std::pair<int, Tuple>> local_removals;
    int64_t tasks_created = 0;

    bool operator==(const ActiveUpdate&) const = default;
  };

  void MaybeStartNext();
  // Creates a task with the given pin signature (if not already spawned)
  // and, per the conservative rule, recursively pairs it with every
  // already-known concurrent delete it does not pin yet. Queries are not
  // sent here; StartUnsentTasks does that once the closure is complete.
  void SpawnTask(const Signature& sig);
  void StartUnsentTasks();
  // Runs the task until it blocks on a query or completes. Returns true
  // if the whole batch finalized (active_ was consumed).
  bool AdvanceTask(int64_t local_id);
  // Reacts to an update arriving while a batch is being evaluated.
  void HandleInterference(const Update& update);
  void FinalizeActive();

  // Snapshot/restore: everything mutable below.
  struct Saved {
    Relation internal_view;
    Relation root_delta;
    std::optional<ActiveUpdate> active;
    std::vector<std::pair<int, Tuple>> observed_deletes;
    std::set<Signature> spawned;
    int64_t compensating_queries = 0;
    int64_t max_tasks_per_update = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  Relation internal_view_;  // full-span, selection applied, set semantics
  Relation root_delta_;     // insert part of the update being processed
  std::optional<ActiveUpdate> active_;
  // Deletes observed while the current batch is active: (rel, tuple).
  std::vector<std::pair<int, Tuple>> observed_deletes_;
  std::set<Signature> spawned_;
  int64_t compensating_queries_ = 0;
  int64_t max_tasks_per_update_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_CSTROBE_H_
