#include "core/eca.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

EcaWarehouse::EcaWarehouse(int site_id, ViewDef view_def, Network* network,
                           std::vector<int> source_sites,
                           EcaOptions options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options.base),
      compensation_(options.compensation),
      pending_delta_(this->view_def().view_schema()) {}

EcaWarehouse::EcaWarehouse(int site_id, ViewDef view_def, Network* network,
                           std::vector<int> source_sites, Options options)
    : EcaWarehouse(site_id, std::move(view_def), network,
                   std::move(source_sites), EcaOptions{options, true}) {}

void EcaWarehouse::HandleUpdateArrival() { MaybeStartNext(); }

void EcaWarehouse::MaybeStartNext() {
  if (active_.has_value() || mutable_queue().empty()) return;

  Update update = std::move(mutable_queue().front());
  mutable_queue().pop_front();

  ActiveQuery query;
  query.update_id = update.id;
  query.rel = update.relation;
  query.delta = std::move(update.delta);

  const int n = view_def().num_relations();
  std::vector<EcaTerm> terms;

  // Base term: Δ_u ⋈ (everything else from the source's current state).
  EcaTerm base;
  base.sign = 1;
  base.fixed.resize(static_cast<size_t>(n));
  base.fixed[static_cast<size_t>(query.rel)] = query.delta;
  terms.push_back(base);
  query.sent_terms.push_back(
      OffsetTerm{1, {{query.rel, query.delta}}});

  // Offset terms: one per recorded contamination of this update by a
  // previous answer, with the opposite sign.
  auto it = offsets_.find(query.update_id);
  if (compensation_ && it != offsets_.end()) {
    for (const OffsetTerm& offset : it->second) {
      EcaTerm term;
      term.sign = -offset.sign;
      term.fixed.resize(static_cast<size_t>(n));
      OffsetTerm sent{-offset.sign, offset.deltas};
      for (const auto& [rel, delta] : offset.deltas) {
        SWEEP_CHECK(rel != query.rel);
        term.fixed[static_cast<size_t>(rel)] = delta;
      }
      term.fixed[static_cast<size_t>(query.rel)] = query.delta;
      sent.deltas.emplace(query.rel, query.delta);
      terms.push_back(std::move(term));
      query.sent_terms.push_back(std::move(sent));
    }
    offsets_.erase(it);
  }

  int64_t term_count = static_cast<int64_t>(terms.size());
  total_query_terms_ += term_count;
  max_query_terms_ = std::max(max_query_terms_, term_count);

  query.query_id = SendEcaQuery(std::move(terms));
  active_ = std::move(query);
}

void EcaWarehouse::HandleEcaAnswer(EcaQueryAnswer answer) {
  SWEEP_CHECK(active_.has_value());
  SWEEP_CHECK_MSG(answer.query_id == active_->query_id,
                  "answer does not match the outstanding ECA query");

  // Accumulate the finished view delta in the action list.
  pending_delta_.Merge(view_def().FinishFullSpan(answer.result));
  pending_ids_.push_back(active_->update_id);

  // Contamination propagation: every update still queued now was, by
  // FIFO, applied at the source before our query evaluated, so each term
  // we shipped picked up an error component with that update's delta.
  if (compensation_) {
    for (const Update& w : mutable_queue()) {
      for (const OffsetTerm& sent : active_->sent_terms) {
        if (sent.deltas.count(w.relation) != 0) continue;
        offsets_[w.id].push_back(sent);
      }
    }
  }

  active_.reset();
  TryInstall();
  MaybeStartNext();
}

void EcaWarehouse::TryInstall() {
  if (active_.has_value() || !mutable_queue().empty()) return;
  if (pending_ids_.empty()) return;
  InstallViewDelta(pending_delta_, std::move(pending_ids_));
  pending_delta_ = Relation(view_def().view_schema());
  pending_ids_.clear();
  ++batch_installs_;
  SWEEP_LOG(Debug) << "ECA installed a quiescent batch";
}

std::shared_ptr<const Warehouse::AlgState> EcaWarehouse::SaveAlgState()
    const {
  Saved s;
  s.active = active_;
  s.offsets = offsets_;
  s.pending_delta = pending_delta_;
  s.pending_ids = pending_ids_;
  s.max_query_terms = max_query_terms_;
  s.total_query_terms = total_query_terms_;
  s.batch_installs = batch_installs_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void EcaWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  active_ = s.active;
  offsets_ = s.offsets;
  pending_delta_ = s.pending_delta;
  pending_ids_ = s.pending_ids;
  max_query_terms_ = s.max_query_terms;
  total_query_terms_ = s.total_query_terms;
  batch_installs_ = s.batch_installs;
}

void EcaWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&active_, {"EcaWarehouse", "active_", site_id()});
  undo.CaptureValue(&offsets_, {"EcaWarehouse", "offsets_", site_id()});
  undo.CaptureValue(&pending_delta_,
                    {"EcaWarehouse", "pending_delta_", site_id()});
  undo.CaptureValue(&pending_ids_,
                    {"EcaWarehouse", "pending_ids_", site_id()});
  undo.CaptureValue(&max_query_terms_,
                    {"EcaWarehouse", "max_query_terms_", site_id()});
  undo.CaptureValue(&total_query_terms_,
                    {"EcaWarehouse", "total_query_terms_", site_id()});
  undo.CaptureValue(&batch_installs_,
                    {"EcaWarehouse", "batch_installs_", site_id()});
}

void EcaWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  auto write_term = [&w](const OffsetTerm& term) {
    w.WriteI32(term.sign);
    w.WriteI64(static_cast<int64_t>(term.deltas.size()));
    for (const auto& [rel, relation] : term.deltas) {
      w.WriteI32(rel);
      w.WriteRelation(relation);
    }
  };
  w.WriteBool(active_.has_value());
  if (active_.has_value()) {
    w.WriteI64(active_->query_id);
    w.WriteI64(active_->update_id);
    w.WriteI32(active_->rel);
    w.WriteRelation(active_->delta);
    w.WriteI64(static_cast<int64_t>(active_->sent_terms.size()));
    for (const OffsetTerm& term : active_->sent_terms) write_term(term);
  }
  w.WriteI64(static_cast<int64_t>(offsets_.size()));
  for (const auto& [update_id, terms] : offsets_) {
    w.WriteI64(update_id);
    w.WriteI64(static_cast<int64_t>(terms.size()));
    for (const OffsetTerm& term : terms) write_term(term);
  }
  w.WriteRelation(pending_delta_);
  w.WriteI64(static_cast<int64_t>(pending_ids_.size()));
  for (int64_t id : pending_ids_) w.WriteI64(id);
  w.WriteI64(max_query_terms_);
  w.WriteI64(total_query_terms_);
  w.WriteI64(batch_installs_);
}

void EcaWarehouse::DeserializeAlgState(CheckpointReader& r) {
  auto read_term = [&r]() {
    OffsetTerm term;
    term.sign = r.ReadI32();
    const int64_t deltas = r.ReadI64();
    for (int64_t i = 0; i < deltas; ++i) {
      const int rel = r.ReadI32();
      term.deltas.emplace(rel, r.ReadRelation());
    }
    return term;
  };
  active_.reset();
  if (r.ReadBool()) {
    ActiveQuery active;
    active.query_id = r.ReadI64();
    active.update_id = r.ReadI64();
    active.rel = r.ReadI32();
    active.delta = r.ReadRelation();
    const int64_t terms = r.ReadI64();
    for (int64_t i = 0; i < terms; ++i) {
      active.sent_terms.push_back(read_term());
    }
    active_ = std::move(active);
  }
  offsets_.clear();
  const int64_t offset_entries = r.ReadI64();
  for (int64_t i = 0; i < offset_entries; ++i) {
    const int64_t update_id = r.ReadI64();
    std::vector<OffsetTerm>& terms = offsets_[update_id];
    const int64_t count = r.ReadI64();
    for (int64_t j = 0; j < count; ++j) terms.push_back(read_term());
  }
  pending_delta_ = r.ReadRelation();
  pending_ids_.clear();
  const int64_t ids = r.ReadI64();
  for (int64_t i = 0; i < ids; ++i) pending_ids_.push_back(r.ReadI64());
  max_query_terms_ = r.ReadI64();
  total_query_terms_ = r.ReadI64();
  batch_installs_ = r.ReadI64();
}

}  // namespace sweepmv
