// ECA — baseline [ZGMHW95], the single-source algorithm of Section 3.
//
// Architecture: one data source holds every base relation, so a whole
// incremental query is evaluated atomically against one consistent state;
// the only anomaly left is updates racing the query on the wire. ECA
// compensates *in the query formulation*: the query for update ΔR_k
// carries, besides the base term ΔR_k ⋈ (other relations), a signed offset
// term for every contamination a previous answer is known to have
// introduced — e.g. Q2 = (R1 ⋈ ΔR2 ⋈ R3) − (ΔR1 ⋈ ΔR2 ⋈ R3) in the paper's
// example. The warehouse tracks, per queued update w, the signed delta
// products P whose terms were evaluated while w was already applied at the
// source (detectable by FIFO: w's notification is in the queue when the
// answer arrives); Q_w then subtracts s·(P ∪ {Δ_w} ⋈ rest) for each. This
// generalizes the paper's two-update example by inclusion–exclusion; the
// query *size* grows with the number of interfering updates — the paper
// calls it quadratic; bench E3 measures the actual growth — while the
// message *count* stays O(1) per update (Table 1). Answers accumulate in
// an action list installed at quiescence: strong consistency, quiescence
// required.

#ifndef SWEEPMV_CORE_ECA_H_
#define SWEEPMV_CORE_ECA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/snapshot.h"
#include "core/warehouse.h"

namespace sweepmv {

class EcaWarehouse : public Warehouse {
 public:
  struct EcaOptions {
    Options base;
    // Ablation switch: with the compensating offset terms off, queries
    // carry only the base term and answers contaminated by concurrent
    // updates are applied raw — the update-anomaly ECA was invented to
    // fix, and the naive maintenance the schedule-space explorer
    // (src/verify/) exhibits a counterexample for. Never disable in real
    // use.
    bool compensation = true;
  };

  EcaWarehouse(int site_id, ViewDef view_def, Network* network,
               std::vector<int> source_sites, EcaOptions options);

  EcaWarehouse(int site_id, ViewDef view_def, Network* network,
               std::vector<int> source_sites, Options options = Options{});

  bool Busy() const override { return active_.has_value(); }
  std::string name() const override { return "ECA"; }

  // Largest number of terms a single query carried.
  int64_t max_query_terms() const { return max_query_terms_; }
  // Total terms shipped across all queries.
  int64_t total_query_terms() const { return total_query_terms_; }
  int64_t batch_installs() const { return batch_installs_; }

 protected:
  void HandleUpdateArrival() override;
  void HandleEcaAnswer(EcaQueryAnswer answer) override;

 private:
  // A signed product of deltas pinned at their positions.
  struct OffsetTerm {
    int sign = 1;
    std::map<int, Relation> deltas;

    bool operator==(const OffsetTerm&) const = default;
  };

  struct ActiveQuery {
    int64_t query_id = -1;
    int64_t update_id = -1;
    int rel = -1;
    Relation delta;
    // The signed pin sets of the terms we shipped (each includes Δ_u);
    // used to propagate contamination records onto still-queued updates.
    std::vector<OffsetTerm> sent_terms;

    bool operator==(const ActiveQuery&) const = default;
  };

  void MaybeStartNext();
  void TryInstall();

  // Snapshot/restore: everything mutable below (compensation_ is config).
  struct Saved {
    std::optional<ActiveQuery> active;
    std::map<int64_t, std::vector<OffsetTerm>> offsets;
    Relation pending_delta;
    std::vector<int64_t> pending_ids;
    int64_t max_query_terms = 0;
    int64_t total_query_terms = 0;
    int64_t batch_installs = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  SWEEP_SNAPSHOT_EXEMPT(
      "compensation on/off is an experiment knob, fixed at construction")
  bool compensation_ = true;
  std::optional<ActiveQuery> active_;
  // Contamination records per queued update id.
  std::map<int64_t, std::vector<OffsetTerm>> offsets_;
  // Action list: finished view deltas awaiting a quiescent install.
  Relation pending_delta_;
  std::vector<int64_t> pending_ids_;
  int64_t max_query_terms_ = 0;
  int64_t total_query_terms_ = 0;
  int64_t batch_installs_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_ECA_H_
