#include "core/factory.h"

#include "common/check.h"
#include "core/cstrobe.h"
#include "core/parallel_sweep.h"
#include "core/pipelined_sweep.h"
#include "core/eca.h"
#include "core/nested_sweep.h"
#include "core/recompute.h"
#include "core/strobe.h"
#include "core/sweep.h"

namespace sweepmv {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSweep:
      return "SWEEP";
    case Algorithm::kNestedSweep:
      return "NestedSWEEP";
    case Algorithm::kStrobe:
      return "Strobe";
    case Algorithm::kCStrobe:
      return "C-Strobe";
    case Algorithm::kEca:
      return "ECA";
    case Algorithm::kRecompute:
      return "Recompute";
    case Algorithm::kParallelSweep:
      return "ParallelSWEEP";
    case Algorithm::kPipelinedSweep:
      return "PipelinedSWEEP";
  }
  return "?";
}

const char* AlgorithmClassName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSweep:
      return "SweepWarehouse";
    case Algorithm::kNestedSweep:
      return "NestedSweepWarehouse";
    case Algorithm::kStrobe:
      return "StrobeWarehouse";
    case Algorithm::kCStrobe:
      return "CStrobeWarehouse";
    case Algorithm::kEca:
      return "EcaWarehouse";
    case Algorithm::kRecompute:
      return "RecomputeWarehouse";
    case Algorithm::kParallelSweep:
      return "ParallelSweepWarehouse";
    case Algorithm::kPipelinedSweep:
      return "PipelinedSweepWarehouse";
  }
  return "?";
}

const char* ConsistencyLevelName(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kInconsistent:
      return "inconsistent";
    case ConsistencyLevel::kConvergent:
      return "convergent";
    case ConsistencyLevel::kStrong:
      return "strong";
    case ConsistencyLevel::kComplete:
      return "complete";
  }
  return "?";
}

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kSweep,   Algorithm::kNestedSweep,
          Algorithm::kStrobe,  Algorithm::kCStrobe,
          Algorithm::kEca,     Algorithm::kRecompute};
}

std::vector<Algorithm> AllAlgorithmVariants() {
  std::vector<Algorithm> all = AllAlgorithms();
  all.push_back(Algorithm::kParallelSweep);
  all.push_back(Algorithm::kPipelinedSweep);
  return all;
}

bool RequiresSingleSource(Algorithm algorithm) {
  return algorithm == Algorithm::kEca;
}

ConsistencyLevel PromisedConsistency(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSweep:
    case Algorithm::kCStrobe:
    case Algorithm::kParallelSweep:
    case Algorithm::kPipelinedSweep:
      return ConsistencyLevel::kComplete;
    case Algorithm::kNestedSweep:
    case Algorithm::kStrobe:
    case Algorithm::kEca:
      return ConsistencyLevel::kStrong;
    case Algorithm::kRecompute:
      return ConsistencyLevel::kConvergent;
  }
  return ConsistencyLevel::kInconsistent;
}

const char* PromisedMessageCost(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSweep:
    case Algorithm::kNestedSweep:
    case Algorithm::kStrobe:
    case Algorithm::kParallelSweep:
    case Algorithm::kPipelinedSweep:
      return "O(n)";
    case Algorithm::kCStrobe:
      return "O(n!)";
    case Algorithm::kEca:
      return "O(1)";
    case Algorithm::kRecompute:
      return "O(n) bulk";
  }
  return "?";
}

std::unique_ptr<Warehouse> MakeWarehouse(Algorithm algorithm, int site_id,
                                         ViewDef view_def, Network* network,
                                         std::vector<int> source_sites,
                                         const WarehouseConfig& config) {
  switch (algorithm) {
    case Algorithm::kSweep: {
      SweepWarehouse::SweepOptions options;
      options.base = config.base;
      options.local_compensation = config.sweep_local_compensation;
      return std::make_unique<SweepWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          options);
    }
    case Algorithm::kParallelSweep:
      return std::make_unique<ParallelSweepWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          config.base);
    case Algorithm::kPipelinedSweep: {
      PipelinedSweepWarehouse::PipelineOptions options;
      options.base = config.base;
      options.max_inflight = config.pipeline_max_inflight;
      return std::make_unique<PipelinedSweepWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          options);
    }
    case Algorithm::kNestedSweep: {
      NestedSweepWarehouse::NestedOptions options;
      options.base = config.base;
      options.max_recursion_depth = config.nested_max_recursion_depth;
      return std::make_unique<NestedSweepWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          options);
    }
    case Algorithm::kStrobe:
      return std::make_unique<StrobeWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          config.base);
    case Algorithm::kCStrobe:
      return std::make_unique<CStrobeWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          config.base);
    case Algorithm::kEca: {
      EcaWarehouse::EcaOptions options;
      options.base = config.base;
      options.compensation = config.eca_compensation;
      return std::make_unique<EcaWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          options);
    }
    case Algorithm::kRecompute:
      return std::make_unique<RecomputeWarehouse>(
          site_id, std::move(view_def), network, std::move(source_sites),
          config.base);
  }
  SWEEP_CHECK_MSG(false, "unknown algorithm");
  return nullptr;
}

}  // namespace sweepmv
