// Algorithm registry and warehouse factory.

#ifndef SWEEPMV_CORE_FACTORY_H_
#define SWEEPMV_CORE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/warehouse.h"

namespace sweepmv {

enum class Algorithm : int {
  kSweep = 0,
  kNestedSweep = 1,
  kStrobe = 2,
  kCStrobe = 3,
  kEca = 4,
  kRecompute = 5,
  // Section 5.3's optimizations, implemented as first-class variants:
  kParallelSweep = 6,   // left/right sweeps overlap; merged by join
  kPipelinedSweep = 7,  // multiple ViewChanges in flight, ordered installs
};

// The consistency levels of Section 2, ordered from weakest to strongest.
enum class ConsistencyLevel : int {
  kInconsistent = 0,
  kConvergent = 1,
  kStrong = 2,
  kComplete = 3,
};

const char* AlgorithmName(Algorithm algorithm);
const char* ConsistencyLevelName(ConsistencyLevel level);

// The C++ class implementing the algorithm's warehouse, exactly as it
// appears in the generated effect table (src/verify/effects_table.h) and
// in the undo log's EffectAtom tags.
const char* AlgorithmClassName(Algorithm algorithm);

// Every algorithm listed in Table 1 plus the recompute baseline.
std::vector<Algorithm> AllAlgorithms();

// AllAlgorithms plus the SWEEP variants of Section 5.3.
std::vector<Algorithm> AllAlgorithmVariants();

// True for algorithms designed for a single multi-relation source (ECA).
bool RequiresSingleSource(Algorithm algorithm);

// The consistency level Table 1 promises — the benches compare this
// against what the checker actually measures.
ConsistencyLevel PromisedConsistency(Algorithm algorithm);

// Table 1's "Message Cost per Update" column, verbatim.
const char* PromisedMessageCost(Algorithm algorithm);

struct WarehouseConfig {
  Warehouse::Options base;
  // Nested SWEEP's forced-termination budget (see NestedOptions).
  int nested_max_recursion_depth = 64;
  // SWEEP ablation switch (see SweepOptions) — leave true outside of the
  // ablation bench.
  bool sweep_local_compensation = true;
  // ECA ablation switch (see EcaWarehouse::EcaOptions) — with it off, ECA
  // degenerates to naive maintenance and the schedule-space explorer can
  // exhibit the classic update anomaly. Leave true in real use.
  bool eca_compensation = true;
  // Pipelined SWEEP's in-flight ViewChange cap (see PipelineOptions).
  int pipeline_max_inflight = 16;
};

std::unique_ptr<Warehouse> MakeWarehouse(Algorithm algorithm, int site_id,
                                         ViewDef view_def, Network* network,
                                         std::vector<int> source_sites,
                                         const WarehouseConfig& config);

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_FACTORY_H_
