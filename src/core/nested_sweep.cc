#include "core/nested_sweep.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

NestedSweepWarehouse::NestedSweepWarehouse(int site_id, ViewDef view_def,
                                           Network* network,
                                           std::vector<int> source_sites,
                                           NestedOptions options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options.base),
      options_(options) {
  SWEEP_CHECK(options_.max_recursion_depth >= 1);
}

void NestedSweepWarehouse::HandleUpdateArrival() { MaybeStartNext(); }

void NestedSweepWarehouse::MaybeStartNext() {
  if (!stack_.empty() || mutable_queue().empty()) return;

  Update update = std::move(mutable_queue().front());
  mutable_queue().pop_front();

  batch_ids_ = {update.id};
  Frame root;
  root.left = 0;
  root.src = update.relation;
  root.right = view_def().num_relations() - 1;
  root.dv = PartialDelta::ForRelation(view_def(), update.relation,
                                      std::move(update.delta));
  root.left_phase = true;
  root.j = root.src - 1;
  stack_.push_back(std::move(root));
  max_depth_seen_ = std::max(max_depth_seen_, 1);
  SWEEP_LOG(Debug) << "NestedSWEEP starts root ViewChange for u"
                   << batch_ids_.front();
  Advance();
}

void NestedSweepWarehouse::Advance() {
  SWEEP_CHECK(!stack_.empty());
  Frame& frame = stack_.back();

  if (frame.left_phase && frame.j < frame.left) {
    frame.left_phase = false;
    frame.j = frame.src + 1;
  }
  if (!frame.left_phase && frame.j > frame.right) {
    CompleteTopFrame();
    return;
  }

  frame.temp = frame.dv;
  frame.outstanding_query = SendSweepQuery(
      frame.j, /*extend_left=*/frame.left_phase, frame.dv);
}

void NestedSweepWarehouse::HandleQueryAnswer(QueryAnswer answer) {
  SWEEP_CHECK(!stack_.empty());
  Frame& frame = stack_.back();
  SWEEP_CHECK_MSG(answer.query_id == frame.outstanding_query,
                  "answer does not match the outstanding query");
  frame.outstanding_query = -1;
  frame.dv = std::move(answer.partial);

  const int detected_at = frame.j;
  const bool was_left_phase = frame.left_phase;
  const int frame_left = frame.left;
  const int frame_src = frame.src;

  // Compensate exactly as SWEEP does (on-line error correction)...
  Relation interfering = MergedQueueDeltaFor(detected_at);
  bool spawn_child = false;
  if (!interfering.Empty()) {
    PartialDelta error =
        was_left_phase ? ExtendLeft(view_def(), interfering, frame.temp)
                       : ExtendRight(view_def(), frame.temp, interfering);
    frame.dv.rel.MergeNegated(error.rel);
    ++compensations_;

    // ... then, budget permitting, fold the concurrent update(s) into the
    // composite delta via a recursive ViewChange instead of deferring.
    if (static_cast<int>(stack_.size()) < options_.max_recursion_depth) {
      spawn_child = true;
    } else {
      ++forced_deferrals_;
      SWEEP_LOG(Debug) << "NestedSWEEP recursion budget hit; deferring ΔR"
                       << detected_at;
    }
  }

  // The frame resumes at the next position once any child completes.
  frame.j += was_left_phase ? -1 : 1;

  if (spawn_child) {
    // Remove the incorporated update(s) from the queue.
    auto& queue = mutable_queue();
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->relation == detected_at) {
        batch_ids_.push_back(it->id);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }

    Frame child;
    if (was_left_phase) {
      // ViewChange(ΔR_j, j, j, UpdateSource): right sweep j+1..src.
      child.left = detected_at;
      child.src = detected_at;
      child.right = frame_src;
    } else {
      // ViewChange(ΔR_j, Left, j, j): left sweep j-1..Left.
      child.left = frame_left;
      child.src = detected_at;
      child.right = detected_at;
    }
    child.dv = PartialDelta::ForRelation(view_def(), detected_at,
                                         std::move(interfering));
    child.left_phase = true;
    child.j = child.src - 1;
    stack_.push_back(std::move(child));  // invalidates `frame`
    ++nested_calls_;
    max_depth_seen_ =
        std::max(max_depth_seen_, static_cast<int>(stack_.size()));
    SWEEP_LOG(Debug) << "NestedSWEEP recurses on ΔR" << detected_at
                     << " (depth " << stack_.size() << ")";
  }

  Advance();
}

void NestedSweepWarehouse::CompleteTopFrame() {
  SWEEP_CHECK(!stack_.empty());
  Frame done = std::move(stack_.back());
  stack_.pop_back();

  if (stack_.empty()) {
    SWEEP_CHECK(done.dv.SpansAll(view_def()));
    Relation view_delta = view_def().FinishFullSpan(done.dv.rel);
    InstallViewDelta(view_delta, std::move(batch_ids_));
    batch_ids_.clear();
    MaybeStartNext();
    return;
  }

  // Fold the nested result into the suspended parent: both deltas span the
  // same relation range by construction.
  Frame& parent = stack_.back();
  SWEEP_CHECK(done.dv.lo == parent.dv.lo && done.dv.hi == parent.dv.hi);
  parent.dv.rel.Merge(done.dv.rel);
  Advance();
}

std::shared_ptr<const Warehouse::AlgState>
NestedSweepWarehouse::SaveAlgState() const {
  Saved s;
  s.stack = stack_;
  s.batch_ids = batch_ids_;
  s.compensations = compensations_;
  s.nested_calls = nested_calls_;
  s.forced_deferrals = forced_deferrals_;
  s.max_depth_seen = max_depth_seen_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void NestedSweepWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  stack_ = s.stack;
  batch_ids_ = s.batch_ids;
  compensations_ = s.compensations;
  nested_calls_ = s.nested_calls;
  forced_deferrals_ = s.forced_deferrals;
  max_depth_seen_ = s.max_depth_seen;
}

void NestedSweepWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&stack_, {"NestedSweepWarehouse", "stack_", site_id()});
  undo.CaptureValue(&batch_ids_,
                    {"NestedSweepWarehouse", "batch_ids_", site_id()});
  undo.CaptureValue(&compensations_,
                    {"NestedSweepWarehouse", "compensations_", site_id()});
  undo.CaptureValue(&nested_calls_,
                    {"NestedSweepWarehouse", "nested_calls_", site_id()});
  undo.CaptureValue(&forced_deferrals_,
                    {"NestedSweepWarehouse", "forced_deferrals_", site_id()});
  undo.CaptureValue(&max_depth_seen_,
                    {"NestedSweepWarehouse", "max_depth_seen_", site_id()});
}

void NestedSweepWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  w.WriteI64(static_cast<int64_t>(stack_.size()));
  for (const Frame& frame : stack_) {
    w.WriteI32(frame.left);
    w.WriteI32(frame.src);
    w.WriteI32(frame.right);
    w.WritePartialDelta(frame.dv);
    w.WritePartialDelta(frame.temp);
    w.WriteBool(frame.left_phase);
    w.WriteI32(frame.j);
    w.WriteI64(frame.outstanding_query);
  }
  w.WriteI64(static_cast<int64_t>(batch_ids_.size()));
  for (int64_t id : batch_ids_) w.WriteI64(id);
  w.WriteI64(compensations_);
  w.WriteI64(nested_calls_);
  w.WriteI64(forced_deferrals_);
  w.WriteI32(max_depth_seen_);
}

void NestedSweepWarehouse::DeserializeAlgState(CheckpointReader& r) {
  stack_.clear();
  const int64_t frames = r.ReadI64();
  for (int64_t i = 0; i < frames; ++i) {
    Frame frame;
    frame.left = r.ReadI32();
    frame.src = r.ReadI32();
    frame.right = r.ReadI32();
    frame.dv = r.ReadPartialDelta();
    frame.temp = r.ReadPartialDelta();
    frame.left_phase = r.ReadBool();
    frame.j = r.ReadI32();
    frame.outstanding_query = r.ReadI64();
    stack_.push_back(std::move(frame));
  }
  batch_ids_.clear();
  const int64_t ids = r.ReadI64();
  for (int64_t i = 0; i < ids; ++i) batch_ids_.push_back(r.ReadI64());
  compensations_ = r.ReadI64();
  nested_calls_ = r.ReadI64();
  forced_deferrals_ = r.ReadI64();
  max_depth_seen_ = r.ReadI32();
}

}  // namespace sweepmv
