// Nested SWEEP — cumulative updates (Section 6, Fig. 6).
//
// Like SWEEP, but when the sweep for ΔR_i detects a concurrent update ΔR_j
// it does not merely compensate and defer: it removes ΔR_j from the queue,
// subtracts the error term, then *recursively* computes ΔR_j's missing
// view-change components and folds them into the in-progress ΔV, so one
// composite delta serves the whole batch of interfering updates:
//
//   left sweep, at j:   ΔV −= ΔR_j ⋈ TempView
//                       ΔV += ViewChange(ΔR_j, j, j, UpdateSource)
//   right sweep, at j:  ΔV −= TempView ⋈ ΔR_j
//                       ΔV += ViewChange(ΔR_j, Left, j, j)
//
// The result is strong (not complete) consistency — several source states
// collapse into one warehouse state — with the message cost amortized over
// the batch. A pathological alternating sequence of mutually interfering
// updates can recurse forever; the paper notes the algorithm "can be
// easily modified to force termination", which we implement as a recursion
// budget: past `max_recursion_depth`, concurrent updates are compensated
// and left queued (plain SWEEP behaviour).

#ifndef SWEEPMV_CORE_NESTED_SWEEP_H_
#define SWEEPMV_CORE_NESTED_SWEEP_H_

#include <string>
#include <vector>

#include "common/snapshot.h"
#include "core/warehouse.h"

namespace sweepmv {

class NestedSweepWarehouse : public Warehouse {
 public:
  struct NestedOptions {
    Options base;
    // Maximum recursion depth before falling back to SWEEP-style deferral
    // (Section 6.2's forced-termination switch). Depth 1 is the root call,
    // so a value of 1 degenerates to plain SWEEP.
    int max_recursion_depth = 64;
  };

  NestedSweepWarehouse(int site_id, ViewDef view_def, Network* network,
                       std::vector<int> source_sites,
                       NestedOptions options);

  bool Busy() const override { return !stack_.empty(); }
  std::string name() const override { return "NestedSWEEP"; }

  int64_t compensations() const { return compensations_; }
  // Number of recursive ViewChange invocations (excluding roots).
  int64_t nested_calls() const { return nested_calls_; }
  // Times the recursion budget forced SWEEP-style deferral.
  int64_t forced_deferrals() const { return forced_deferrals_; }
  int max_depth_seen() const { return max_depth_seen_; }

 protected:
  void HandleUpdateArrival() override;
  void HandleQueryAnswer(QueryAnswer answer) override;

 private:
  // One ViewChange(ΔR, left, src, right) activation record.
  struct Frame {
    int left = 0;
    int src = -1;
    int right = -1;
    PartialDelta dv;
    PartialDelta temp;
    bool left_phase = true;
    int j = -1;
    int64_t outstanding_query = -1;

    bool operator==(const Frame&) const = default;
  };

  void MaybeStartNext();
  void Advance();
  // Completes the top frame: merge into the parent, or install at root.
  void CompleteTopFrame();

  // Snapshot/restore: everything mutable below (options_ is immutable).
  struct Saved {
    std::vector<Frame> stack;
    std::vector<int64_t> batch_ids;
    int64_t compensations = 0;
    int64_t nested_calls = 0;
    int64_t forced_deferrals = 0;
    int max_depth_seen = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  std::vector<Frame> stack_;
  // Ids of every update folded into the current composite ΔV.
  std::vector<int64_t> batch_ids_;
  SWEEP_SNAPSHOT_EXEMPT("tuning knobs, fixed at construction")
  NestedOptions options_;
  int64_t compensations_ = 0;
  int64_t nested_calls_ = 0;
  int64_t forced_deferrals_ = 0;
  int max_depth_seen_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_NESTED_SWEEP_H_
