#include "core/parallel_sweep.h"

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

ParallelSweepWarehouse::ParallelSweepWarehouse(
    int site_id, ViewDef view_def, Network* network,
    std::vector<int> source_sites, Options options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options) {}

void ParallelSweepWarehouse::HandleUpdateArrival() { MaybeStartNext(); }

void ParallelSweepWarehouse::MaybeStartNext() {
  if (active_.has_value() || mutable_queue().empty()) return;

  Update update = std::move(mutable_queue().front());
  mutable_queue().pop_front();

  const int i = update.relation;
  const int n = view_def().num_relations();

  ActiveSweep sweep;
  sweep.update_id = update.id;
  sweep.update_source = i;

  // The left side carries the true signed delta counts; the right side is
  // seeded at +1 per distinct tuple so the rendezvous join neither
  // squares multiplicities nor squares the sign away (the join pairs rows
  // per seed tuple, multiplying c · left-matches · right-matches). When
  // one direction is empty, the other carries the true counts and no
  // merge is needed.
  Relation abs_seed(update.delta.schema());
  for (const auto& [t, c] : update.delta.entries()) {
    (void)c;
    abs_seed.Add(t, 1);
  }

  const bool has_left = i > 0;
  const bool has_right = i < n - 1;

  sweep.left.extend_left = true;
  sweep.left.dv = PartialDelta::ForRelation(view_def(), i, update.delta);
  sweep.left.j = i - 1;
  sweep.left.done = !has_left;

  sweep.right.extend_left = false;
  sweep.right.dv = PartialDelta::ForRelation(
      view_def(), i, has_left ? abs_seed : update.delta);
  sweep.right.j = i + 1;
  sweep.right.done = !has_right;

  active_ = std::move(sweep);
  if (has_left) AdvanceSide(active_->left);
  if (has_right) AdvanceSide(active_->right);
  MaybeFinish();
}

void ParallelSweepWarehouse::AdvanceSide(Side& side) {
  SWEEP_CHECK(active_.has_value());
  if (side.extend_left ? side.j < 0
                       : side.j >= view_def().num_relations()) {
    side.done = true;
    return;
  }
  side.temp = side.dv;
  side.outstanding_query =
      SendSweepQuery(side.j, side.extend_left, side.dv);
}

void ParallelSweepWarehouse::HandleQueryAnswer(QueryAnswer answer) {
  SWEEP_CHECK(active_.has_value());
  Side* side = nullptr;
  if (active_->left.outstanding_query == answer.query_id) {
    side = &active_->left;
  } else if (active_->right.outstanding_query == answer.query_id) {
    side = &active_->right;
  }
  SWEEP_CHECK_MSG(side != nullptr,
                  "answer does not match either directional sweep");
  side->outstanding_query = -1;
  side->dv = std::move(answer.partial);

  // On-line error correction, per side — the rule and its FIFO argument
  // are unchanged from sequential SWEEP.
  Relation interfering = MergedQueueDeltaFor(side->j);
  if (!interfering.Empty()) {
    PartialDelta error =
        side->extend_left
            ? ExtendLeft(view_def(), interfering, side->temp)
            : ExtendRight(view_def(), side->temp, interfering);
    side->dv.rel.MergeNegated(error.rel);
    ++compensations_;
  }

  side->j += side->extend_left ? -1 : 1;
  AdvanceSide(*side);
  MaybeFinish();
}

void ParallelSweepWarehouse::MaybeFinish() {
  SWEEP_CHECK(active_.has_value());
  if (!active_->left.done || !active_->right.done) return;

  const int i = active_->update_source;
  const int n = view_def().num_relations();
  PartialDelta full;
  if (i == 0) {
    full = std::move(active_->right.dv);
  } else if (i == n - 1) {
    full = std::move(active_->left.dv);
  } else {
    full = MergeParallelSweeps(view_def(), i, active_->left.dv,
                               active_->right.dv);
  }
  SWEEP_CHECK(full.SpansAll(view_def()));
  InstallViewDelta(view_def().FinishFullSpan(full.rel),
                   {active_->update_id});
  active_.reset();
  MaybeStartNext();
}

std::shared_ptr<const Warehouse::AlgState>
ParallelSweepWarehouse::SaveAlgState() const {
  Saved s;
  s.active = active_;
  s.compensations = compensations_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void ParallelSweepWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  active_ = s.active;
  compensations_ = s.compensations;
}

void ParallelSweepWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&active_,
                    {"ParallelSweepWarehouse", "active_", site_id()});
  undo.CaptureValue(&compensations_,
                    {"ParallelSweepWarehouse", "compensations_", site_id()});
}

void ParallelSweepWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  auto write_side = [&w](const Side& side) {
    w.WriteBool(side.extend_left);
    w.WritePartialDelta(side.dv);
    w.WritePartialDelta(side.temp);
    w.WriteI32(side.j);
    w.WriteBool(side.done);
    w.WriteI64(side.outstanding_query);
  };
  w.WriteBool(active_.has_value());
  if (active_.has_value()) {
    w.WriteI64(active_->update_id);
    w.WriteI32(active_->update_source);
    write_side(active_->left);
    write_side(active_->right);
  }
  w.WriteI64(compensations_);
}

void ParallelSweepWarehouse::DeserializeAlgState(CheckpointReader& r) {
  auto read_side = [&r]() {
    Side side;
    side.extend_left = r.ReadBool();
    side.dv = r.ReadPartialDelta();
    side.temp = r.ReadPartialDelta();
    side.j = r.ReadI32();
    side.done = r.ReadBool();
    side.outstanding_query = r.ReadI64();
    return side;
  };
  active_.reset();
  if (r.ReadBool()) {
    ActiveSweep active;
    active.update_id = r.ReadI64();
    active.update_source = r.ReadI32();
    active.left = read_side();
    active.right = read_side();
    active_ = std::move(active);
  }
  compensations_ = r.ReadI64();
}

}  // namespace sweepmv
