// Parallel SWEEP — Section 5.3's first optimization.
//
// "The two for loops, i.e., the left and right sweeps, in the ViewChange
// function are independent and therefore can be executed in parallel. The
// only requirement will be that the two partial views obtained after the
// two sweeps complete should be merged, i.e., ΔV = ΔV_left ⋈ ΔV_right."
//
// Identical message count and consistency guarantee (complete) as SWEEP;
// the win is latency: the two directional query chains overlap, so a
// ViewChange completes in max(i, n-1-i) round trips instead of n-1. The
// right sweep is seeded with the update's tuples at unit count so the
// rendezvous join does not square the multiplicities; on-line error
// correction applies per side exactly as in SWEEP.

#ifndef SWEEPMV_CORE_PARALLEL_SWEEP_H_
#define SWEEPMV_CORE_PARALLEL_SWEEP_H_

#include <optional>
#include <string>
#include <vector>

#include "core/warehouse.h"

namespace sweepmv {

class ParallelSweepWarehouse : public Warehouse {
 public:
  ParallelSweepWarehouse(int site_id, ViewDef view_def, Network* network,
                         std::vector<int> source_sites,
                         Options options = Options{});

  bool Busy() const override { return active_.has_value(); }
  std::string name() const override { return "ParallelSWEEP"; }

  int64_t compensations() const { return compensations_; }

 protected:
  void HandleUpdateArrival() override;
  void HandleQueryAnswer(QueryAnswer answer) override;

 private:
  struct Side {
    bool extend_left = true;  // direction of this sweep
    PartialDelta dv;
    PartialDelta temp;
    int j = -1;
    bool done = false;
    int64_t outstanding_query = -1;

    bool operator==(const Side&) const = default;
  };

  struct ActiveSweep {
    int64_t update_id = -1;
    int update_source = -1;
    Side left;
    Side right;

    bool operator==(const ActiveSweep&) const = default;
  };

  void MaybeStartNext();
  // Sends the side's next query or marks it done. Returns true if the
  // whole ViewChange finished (both sides done and installed).
  void AdvanceSide(Side& side);
  void MaybeFinish();

  // Snapshot/restore: everything mutable above.
  struct Saved {
    std::optional<ActiveSweep> active;
    int64_t compensations = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  std::optional<ActiveSweep> active_;
  int64_t compensations_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_PARALLEL_SWEEP_H_
