#include "core/pipelined_sweep.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

PipelinedSweepWarehouse::PipelinedSweepWarehouse(
    int site_id, ViewDef view_def, Network* network,
    std::vector<int> source_sites, PipelineOptions options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options.base),
      options_(options) {
  SWEEP_CHECK(options_.max_inflight >= 1);
}

void PipelinedSweepWarehouse::HandleUpdateArrival() {
  // Drain the base queue into the receive log immediately; the pipeline
  // tracks its own progress through the log.
  auto& queue = mutable_queue();
  while (!queue.empty()) {
    received_.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  StartPending();
}

void PipelinedSweepWarehouse::StartPending() {
  while (static_cast<int>(inflight_.size()) < options_.max_inflight &&
         started_ < received_.size()) {
    const Update& update = received_[started_];
    Sweep sweep;
    sweep.arrival_index = started_;
    sweep.update_id = update.id;
    sweep.update_source = update.relation;
    sweep.dv = PartialDelta::ForRelation(view_def(), update.relation,
                                         update.delta);
    sweep.left_phase = true;
    sweep.j = update.relation - 1;
    ++started_;
    inflight_.push_back(std::move(sweep));
    max_observed_inflight_ = std::max(
        max_observed_inflight_, static_cast<int>(inflight_.size()));
    Advance(inflight_.back());
  }
  TryInstallInOrder();
}

void PipelinedSweepWarehouse::Advance(Sweep& sweep) {
  if (sweep.left_phase && sweep.j < 0) {
    sweep.left_phase = false;
    sweep.j = sweep.update_source + 1;
  }
  if (!sweep.left_phase && sweep.j >= view_def().num_relations()) {
    SWEEP_CHECK(sweep.dv.SpansAll(view_def()));
    sweep.final_delta = view_def().FinishFullSpan(sweep.dv.rel);
    sweep.complete = true;
    return;
  }
  sweep.temp = sweep.dv;
  sweep.outstanding_query =
      SendSweepQuery(sweep.j, /*extend_left=*/sweep.left_phase, sweep.dv);
}

Relation PipelinedSweepWarehouse::InterferingDelta(int rel,
                                                   size_t after) const {
  Relation merged(view_def().rel_schema(rel));
  for (size_t idx = after + 1; idx < received_.size(); ++idx) {
    if (received_[idx].relation == rel) {
      merged.Merge(received_[idx].delta);
    }
  }
  return merged;
}

void PipelinedSweepWarehouse::HandleQueryAnswer(QueryAnswer answer) {
  Sweep* sweep = nullptr;
  for (Sweep& s : inflight_) {
    if (s.outstanding_query == answer.query_id) {
      sweep = &s;
      break;
    }
  }
  SWEEP_CHECK_MSG(sweep != nullptr,
                  "answer does not match any in-flight sweep");
  // Validate the answer's shape before adopting it: the outstanding query
  // extends temp by exactly relation j, so any other span is an answer
  // this sweep never asked for. (Reachable when the recovery epoch filter
  // is off: the crash rewinds the query-id counter, and with several
  // sweeps in flight a dead incarnation's answer for a *different* hop
  // can arrive under a re-used id. Adopting it would emit a malformed
  // follow-up query; rejecting it stalls this sweep instead, which the
  // schedule explorer reports as a non-draining run.)
  const int want_lo = sweep->left_phase ? sweep->j : sweep->temp.lo;
  const int want_hi = sweep->left_phase ? sweep->temp.hi : sweep->j;
  if (answer.partial.lo != want_lo || answer.partial.hi != want_hi) {
    ++malformed_answers_rejected_;
    SWEEP_LOG(Debug) << name() << " rejected answer #" << answer.query_id
                     << " spanning [" << answer.partial.lo << ","
                     << answer.partial.hi << "], expected [" << want_lo
                     << "," << want_hi << "]";
    return;
  }
  sweep->outstanding_query = -1;
  sweep->dv = std::move(answer.partial);

  // Pipelined interference rule: compensate for every received update of
  // relation j that is later than this sweep's update in arrival order,
  // regardless of its own processing state.
  Relation interfering =
      InterferingDelta(sweep->j, sweep->arrival_index);
  if (!interfering.Empty()) {
    PartialDelta error =
        sweep->left_phase
            ? ExtendLeft(view_def(), interfering, sweep->temp)
            : ExtendRight(view_def(), sweep->temp, interfering);
    sweep->dv.rel.MergeNegated(error.rel);
    ++compensations_;
  }

  sweep->j += sweep->left_phase ? -1 : 1;
  Advance(*sweep);
  TryInstallInOrder();
  StartPending();
}

void PipelinedSweepWarehouse::TryInstallInOrder() {
  while (!inflight_.empty() && inflight_.front().complete) {
    Sweep done = std::move(inflight_.front());
    inflight_.pop_front();
    InstallViewDelta(done.final_delta, {done.update_id});
  }
}

std::shared_ptr<const Warehouse::AlgState>
PipelinedSweepWarehouse::SaveAlgState() const {
  Saved s;
  s.received = received_;
  s.started = started_;
  s.inflight = inflight_;
  s.compensations = compensations_;
  s.max_observed_inflight = max_observed_inflight_;
  s.malformed_answers_rejected = malformed_answers_rejected_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void PipelinedSweepWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  received_ = s.received;
  started_ = s.started;
  inflight_ = s.inflight;
  compensations_ = s.compensations;
  max_observed_inflight_ = s.max_observed_inflight;
  malformed_answers_rejected_ = s.malformed_answers_rejected;
}

void PipelinedSweepWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&received_,
                    {"PipelinedSweepWarehouse", "received_", site_id()});
  undo.CaptureValue(&started_,
                    {"PipelinedSweepWarehouse", "started_", site_id()});
  undo.CaptureValue(&inflight_,
                    {"PipelinedSweepWarehouse", "inflight_", site_id()});
  undo.CaptureValue(&compensations_,
                    {"PipelinedSweepWarehouse", "compensations_", site_id()});
  undo.CaptureValue(
      &max_observed_inflight_,
      {"PipelinedSweepWarehouse", "max_observed_inflight_", site_id()});
  undo.CaptureValue(
      &malformed_answers_rejected_,
      {"PipelinedSweepWarehouse", "malformed_answers_rejected_", site_id()});
}

void PipelinedSweepWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  w.WriteI64(static_cast<int64_t>(received_.size()));
  for (const Update& update : received_) w.WriteUpdate(update);
  w.WriteI64(static_cast<int64_t>(started_));
  w.WriteI64(static_cast<int64_t>(inflight_.size()));
  for (const Sweep& sweep : inflight_) {
    w.WriteI64(static_cast<int64_t>(sweep.arrival_index));
    w.WriteI64(sweep.update_id);
    w.WriteI32(sweep.update_source);
    w.WritePartialDelta(sweep.dv);
    w.WritePartialDelta(sweep.temp);
    w.WriteBool(sweep.left_phase);
    w.WriteI32(sweep.j);
    w.WriteI64(sweep.outstanding_query);
    w.WriteBool(sweep.complete);
    w.WriteRelation(sweep.final_delta);
  }
  w.WriteI64(compensations_);
  w.WriteI32(max_observed_inflight_);
  w.WriteI64(malformed_answers_rejected_);
}

void PipelinedSweepWarehouse::DeserializeAlgState(CheckpointReader& r) {
  received_.clear();
  const int64_t received = r.ReadI64();
  for (int64_t i = 0; i < received; ++i) {
    received_.push_back(r.ReadUpdate());
  }
  started_ = static_cast<size_t>(r.ReadI64());
  inflight_.clear();
  const int64_t sweeps = r.ReadI64();
  for (int64_t i = 0; i < sweeps; ++i) {
    Sweep sweep;
    sweep.arrival_index = static_cast<size_t>(r.ReadI64());
    sweep.update_id = r.ReadI64();
    sweep.update_source = r.ReadI32();
    sweep.dv = r.ReadPartialDelta();
    sweep.temp = r.ReadPartialDelta();
    sweep.left_phase = r.ReadBool();
    sweep.j = r.ReadI32();
    sweep.outstanding_query = r.ReadI64();
    sweep.complete = r.ReadBool();
    sweep.final_delta = r.ReadRelation();
    inflight_.push_back(std::move(sweep));
  }
  compensations_ = r.ReadI64();
  max_observed_inflight_ = r.ReadI32();
  malformed_answers_rejected_ = r.ReadI64();
}

}  // namespace sweepmv
