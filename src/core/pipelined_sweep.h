// Pipelined SWEEP — Section 5.3's second optimization.
//
// "Another optimization ... is to pipeline the view construction for
// multiple updates. This will introduce some complexity in the data
// warehouse software module but will result in a rapid installation of
// view changes ... To maintain consistency, the view changes should be
// incorporated in the order of the arrival of the updates and a more
// elaborate mechanism will be needed to detect concurrent updates."
//
// The elaborate mechanism: with several ViewChanges in flight, the update
// message queue no longer contains exactly the updates later than the one
// being processed, so interference is decided against the *full receive
// log*: when the sweep for update u receives an answer from source j, it
// compensates for every received update w of relation j whose arrival
// index exceeds u's — whether w is queued, in flight, or not yet started.
// (The FIFO argument is unchanged: any ΔR_j applied before the query
// evaluated has been delivered by answer time, hence is in the log.)
// Completed deltas are buffered and installed strictly in arrival order,
// preserving complete consistency while the sweeps overlap: throughput is
// no longer bounded by one update per (n-1) round trips — the saturation
// the staleness experiment (E4) exposes for sequential SWEEP.

#ifndef SWEEPMV_CORE_PIPELINED_SWEEP_H_
#define SWEEPMV_CORE_PIPELINED_SWEEP_H_

#include <deque>
#include <string>
#include <vector>

#include "common/snapshot.h"
#include "core/warehouse.h"

namespace sweepmv {

class PipelinedSweepWarehouse : public Warehouse {
 public:
  struct PipelineOptions {
    Options base;
    // Maximum ViewChanges in flight. 1 degenerates to sequential SWEEP.
    int max_inflight = 16;
  };

  PipelinedSweepWarehouse(int site_id, ViewDef view_def, Network* network,
                          std::vector<int> source_sites,
                          PipelineOptions options);

  bool Busy() const override {
    return !inflight_.empty() || started_ < received_.size();
  }
  std::string name() const override { return "PipelinedSWEEP"; }

  int64_t compensations() const { return compensations_; }
  int max_observed_inflight() const { return max_observed_inflight_; }
  int64_t malformed_answers_rejected() const {
    return malformed_answers_rejected_;
  }

 protected:
  void HandleUpdateArrival() override;
  void HandleQueryAnswer(QueryAnswer answer) override;

 private:
  struct Sweep {
    size_t arrival_index = 0;
    int64_t update_id = -1;
    int update_source = -1;
    PartialDelta dv;
    PartialDelta temp;
    bool left_phase = true;
    int j = -1;
    int64_t outstanding_query = -1;
    bool complete = false;
    Relation final_delta;  // view-schema delta, once complete

    bool operator==(const Sweep&) const = default;
  };

  void StartPending();
  void Advance(Sweep& sweep);
  // Merged deltas of every received update of `rel` with arrival index
  // greater than `after` (the pipelined interference rule).
  Relation InterferingDelta(int rel, size_t after) const;
  void TryInstallInOrder();

  // Snapshot/restore: everything mutable below (options_ is immutable).
  struct Saved {
    std::vector<Update> received;
    size_t started = 0;
    std::deque<Sweep> inflight;
    int64_t compensations = 0;
    int max_observed_inflight = 0;
    int64_t malformed_answers_rejected = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  SWEEP_SNAPSHOT_EXEMPT("tuning knobs, fixed at construction")
  PipelineOptions options_;
  // Every update ever received, in arrival order (the receive log the
  // interference rule consults).
  std::vector<Update> received_;
  size_t started_ = 0;  // prefix of received_ whose sweeps have begun
  std::deque<Sweep> inflight_;  // ordered by arrival index
  int64_t compensations_ = 0;
  int max_observed_inflight_ = 0;
  int64_t malformed_answers_rejected_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_PIPELINED_SWEEP_H_
