#include "core/recompute.h"

#include <set>

#include "common/check.h"

namespace sweepmv {

RecomputeWarehouse::RecomputeWarehouse(int site_id, ViewDef view_def,
                                       Network* network,
                                       std::vector<int> source_sites,
                                       Options options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options) {}

void RecomputeWarehouse::HandleUpdateArrival() { MaybeStartNext(); }

void RecomputeWarehouse::MaybeStartNext() {
  if (active_.has_value() || mutable_queue().empty()) return;

  ActiveRecompute batch;
  while (!mutable_queue().empty()) {
    batch.update_ids.push_back(mutable_queue().front().id);
    mutable_queue().pop_front();
  }
  active_ = std::move(batch);

  // One request per distinct source site (a single multi-relation site
  // answers for every relation it hosts).
  std::set<int> sites;
  for (int rel = 0; rel < view_def().num_relations(); ++rel) {
    sites.insert(source_site(rel));
  }
  for (int rel = 0; rel < view_def().num_relations(); ++rel) {
    if (sites.erase(source_site(rel)) > 0) {
      SendSnapshotRequest(rel);
    }
  }
}

void RecomputeWarehouse::HandleSnapshotAnswer(SnapshotAnswer answer) {
  SWEEP_CHECK(active_.has_value());
  active_->snapshots[answer.relation] = std::move(answer.snapshot);
  if (static_cast<int>(active_->snapshots.size()) <
      view_def().num_relations()) {
    return;
  }

  std::vector<const Relation*> rels;
  rels.reserve(active_->snapshots.size());
  for (int rel = 0; rel < view_def().num_relations(); ++rel) {
    rels.push_back(&active_->snapshots.at(rel));
  }
  Relation view = view_def().EvaluateFull(rels);
  InstallAbsoluteView(std::move(view), std::move(active_->update_ids));
  ++recomputations_;
  active_.reset();
  MaybeStartNext();
}

std::shared_ptr<const Warehouse::AlgState>
RecomputeWarehouse::SaveAlgState() const {
  Saved s;
  s.active = active_;
  s.recomputations = recomputations_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void RecomputeWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  active_ = s.active;
  recomputations_ = s.recomputations;
}

void RecomputeWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&active_, {"RecomputeWarehouse", "active_", site_id()});
  undo.CaptureValue(&recomputations_,
                    {"RecomputeWarehouse", "recomputations_", site_id()});
}

void RecomputeWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  w.WriteBool(active_.has_value());
  if (active_.has_value()) {
    w.WriteI64(static_cast<int64_t>(active_->update_ids.size()));
    for (int64_t id : active_->update_ids) w.WriteI64(id);
    w.WriteI64(static_cast<int64_t>(active_->snapshots.size()));
    for (const auto& [rel, snapshot] : active_->snapshots) {
      w.WriteI32(rel);
      w.WriteRelation(snapshot);
    }
  }
  w.WriteI64(recomputations_);
}

void RecomputeWarehouse::DeserializeAlgState(CheckpointReader& r) {
  active_.reset();
  if (r.ReadBool()) {
    ActiveRecompute active;
    const int64_t ids = r.ReadI64();
    for (int64_t i = 0; i < ids; ++i) {
      active.update_ids.push_back(r.ReadI64());
    }
    const int64_t snapshots = r.ReadI64();
    for (int64_t i = 0; i < snapshots; ++i) {
      const int rel = r.ReadI32();
      active.snapshots.emplace(rel, r.ReadRelation());
    }
    active_ = std::move(active);
  }
  recomputations_ = r.ReadI64();
}

}  // namespace sweepmv
