// Recompute — the convergence-only baseline.
//
// Stands in for commercial refresh-style products (the paper cites Red
// Brick [RBS96] as ensuring convergence only): on update arrival the
// warehouse drains its queue, pulls a fresh snapshot of every base
// relation, recomputes the view from scratch and installs it. Because the
// snapshots race ongoing updates, intermediate installed states need not
// correspond to any delivery-order prefix — only the final state (after
// quiescence) is guaranteed correct. Message cost is n snapshot round
// trips per batch, payload the entire database.

#ifndef SWEEPMV_CORE_RECOMPUTE_H_
#define SWEEPMV_CORE_RECOMPUTE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/warehouse.h"

namespace sweepmv {

class RecomputeWarehouse : public Warehouse {
 public:
  RecomputeWarehouse(int site_id, ViewDef view_def, Network* network,
                     std::vector<int> source_sites,
                     Options options = Options{});

  bool Busy() const override { return active_.has_value(); }
  std::string name() const override { return "Recompute"; }

  int64_t recomputations() const { return recomputations_; }

 protected:
  void HandleUpdateArrival() override;
  void HandleSnapshotAnswer(SnapshotAnswer answer) override;

 private:
  struct ActiveRecompute {
    std::vector<int64_t> update_ids;
    std::map<int, Relation> snapshots;  // relation index -> snapshot

    bool operator==(const ActiveRecompute&) const = default;
  };

  void MaybeStartNext();

  // Snapshot/restore: everything mutable above.
  struct Saved {
    std::optional<ActiveRecompute> active;
    int64_t recomputations = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  std::optional<ActiveRecompute> active_;
  int64_t recomputations_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_RECOMPUTE_H_
