#include "core/strobe.h"

#include <set>

#include "common/check.h"
#include "common/log.h"
#include "relational/operators.h"

namespace sweepmv {

StrobeWarehouse::StrobeWarehouse(int site_id, ViewDef view_def,
                                 Network* network,
                                 std::vector<int> source_sites,
                                 Options options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options) {}

void StrobeWarehouse::InitializeAuxiliary(
    const std::vector<Relation>& initial_bases) {
  SWEEP_CHECK(static_cast<int>(initial_bases.size()) ==
              view_def().num_relations());
  Relation acc = initial_bases[0];
  for (int rel = 1; rel < view_def().num_relations(); ++rel) {
    acc = Join(acc, initial_bases[static_cast<size_t>(rel)],
               view_def().ExtendRightKeys(0, rel));
  }
  internal_view_ = Select(acc, view_def().selection());
  internal_view_.ClampToSet();
}

void StrobeWarehouse::HandleUpdateArrival() {
  ProcessArrivals();
  TryInstall();
}

void StrobeWarehouse::ProcessArrivals() {
  auto& queue = mutable_queue();
  while (!queue.empty()) {
    Update update = std::move(queue.front());
    queue.pop_front();

    // Split the transaction into its delete and insert parts.
    Relation inserts(view_def().rel_schema(update.relation));
    std::vector<Tuple> deletes;
    for (const auto& [t, c] : update.delta.entries()) {
      if (c > 0) {
        inserts.Add(t, c);
      } else {
        deletes.push_back(t);
      }
    }

    // Deletes: handled locally — mark every in-flight query and append a
    // key-delete action.
    for (const Tuple& t : deletes) {
      for (PendingQuery& q : pending_) {
        q.pending_deletes.emplace_back(update.relation, t);
      }
      Action action;
      action.kind = Action::Kind::kDeleteKey;
      action.rel = update.relation;
      action.key = t;
      action.update_id = update.id;
      action_list_.push_back(std::move(action));
    }

    // Inserts: launch a sweep query over the other sources.
    if (!inserts.Empty()) {
      PendingQuery query;
      query.update_id = update.id;
      query.src_rel = update.relation;
      query.pd = PartialDelta::ForRelation(view_def(), update.relation,
                                           std::move(inserts));
      query.left_phase = true;
      query.j = update.relation - 1;
      pending_.push_back(std::move(query));
      AdvanceQuery(pending_.back());
    } else if (deletes.empty()) {
      // Net no-op transaction: nothing to do (sources do not ship these).
      SWEEP_CHECK(false);
    }
  }
}

void StrobeWarehouse::AdvanceQuery(PendingQuery& query) {
  if (query.left_phase && query.j < 0) {
    query.left_phase = false;
    query.j = query.src_rel + 1;
  }
  if (!query.left_phase && query.j >= view_def().num_relations()) {
    // Finished: locate the index and finalize (the reference stays valid —
    // no reallocation happens between the caller and here).
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (&pending_[i] == &query) {
        FinalizeQuery(i);
        return;
      }
    }
    SWEEP_CHECK_MSG(false, "pending query not found");
  }
  query.outstanding_query =
      SendSweepQuery(query.j, /*extend_left=*/query.left_phase, query.pd);
}

void StrobeWarehouse::HandleQueryAnswer(QueryAnswer answer) {
  for (PendingQuery& query : pending_) {
    if (query.outstanding_query == answer.query_id) {
      query.outstanding_query = -1;
      query.pd = std::move(answer.partial);
      query.j += query.left_phase ? -1 : 1;
      AdvanceQuery(query);
      TryInstall();
      return;
    }
  }
  SWEEP_CHECK_MSG(false, "answer does not match any pending Strobe query");
}

void StrobeWarehouse::FinalizeQuery(size_t index) {
  PendingQuery query = std::move(pending_[index]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
  SWEEP_CHECK(query.pd.SpansAll(view_def()));

  Relation result = Select(query.pd.rel, view_def().selection());
  result.ClampToSet();
  // Remove tuples invalidated by deletes that raced this query.
  for (const auto& [rel, key] : query.pending_deletes) {
    result.EraseMatching(view_def().RelPositionsInJoined(rel), key);
  }

  Action action;
  action.kind = Action::Kind::kInsert;
  action.tuples = std::move(result);
  action.update_id = query.update_id;
  action_list_.push_back(std::move(action));
}

void StrobeWarehouse::TryInstall() {
  // Quiescence test: no unprocessed updates and no unanswered queries.
  if (!pending_.empty() || !mutable_queue().empty()) return;
  if (action_list_.empty()) return;

  std::vector<int64_t> ids;
  std::set<int64_t> seen;
  for (const Action& action : action_list_) {
    if (seen.insert(action.update_id).second) {
      ids.push_back(action.update_id);
    }
    if (action.kind == Action::Kind::kDeleteKey) {
      internal_view_.EraseMatching(
          view_def().RelPositionsInJoined(action.rel), action.key);
    } else {
      // Duplicate suppression: insert only tuples not already present
      // (sound because the view retains every base relation's key).
      for (const auto& [t, c] : action.tuples.entries()) {
        (void)c;
        if (internal_view_.CountOf(t) == 0) internal_view_.Add(t, 1);
      }
    }
  }
  action_list_.clear();

  InstallAbsoluteView(Project(internal_view_, view_def().projection()),
                      std::move(ids));
  ++batch_installs_;
  SWEEP_LOG(Debug) << "Strobe installed a quiescent batch";
}

std::shared_ptr<const Warehouse::AlgState> StrobeWarehouse::SaveAlgState()
    const {
  Saved s;
  s.internal_view = internal_view_;
  s.pending = pending_;
  s.action_list = action_list_;
  s.batch_installs = batch_installs_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void StrobeWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  internal_view_ = s.internal_view;
  pending_ = s.pending;
  action_list_ = s.action_list;
  batch_installs_ = s.batch_installs;
}

void StrobeWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&internal_view_,
                    {"StrobeWarehouse", "internal_view_", site_id()});
  undo.CaptureValue(&pending_, {"StrobeWarehouse", "pending_", site_id()});
  undo.CaptureValue(&action_list_,
                    {"StrobeWarehouse", "action_list_", site_id()});
  undo.CaptureValue(&batch_installs_,
                    {"StrobeWarehouse", "batch_installs_", site_id()});
}

void StrobeWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  w.WriteRelation(internal_view_);
  w.WriteI64(static_cast<int64_t>(pending_.size()));
  for (const PendingQuery& query : pending_) {
    w.WriteI64(query.update_id);
    w.WriteI32(query.src_rel);
    w.WritePartialDelta(query.pd);
    w.WriteBool(query.left_phase);
    w.WriteI32(query.j);
    w.WriteI64(query.outstanding_query);
    w.WriteI64(static_cast<int64_t>(query.pending_deletes.size()));
    for (const auto& [rel, tuple] : query.pending_deletes) {
      w.WriteI32(rel);
      w.WriteTuple(tuple);
    }
  }
  w.WriteI64(static_cast<int64_t>(action_list_.size()));
  for (const Action& action : action_list_) {
    w.WriteU8(action.kind == Action::Kind::kDeleteKey ? 0 : 1);
    w.WriteI32(action.rel);
    w.WriteTuple(action.key);
    w.WriteRelation(action.tuples);
    w.WriteI64(action.update_id);
  }
  w.WriteI64(batch_installs_);
}

void StrobeWarehouse::DeserializeAlgState(CheckpointReader& r) {
  internal_view_ = r.ReadRelation();
  pending_.clear();
  const int64_t pending_count = r.ReadI64();
  for (int64_t i = 0; i < pending_count; ++i) {
    PendingQuery query;
    query.update_id = r.ReadI64();
    query.src_rel = r.ReadI32();
    query.pd = r.ReadPartialDelta();
    query.left_phase = r.ReadBool();
    query.j = r.ReadI32();
    query.outstanding_query = r.ReadI64();
    const int64_t deletes = r.ReadI64();
    for (int64_t j = 0; j < deletes; ++j) {
      const int rel = r.ReadI32();
      query.pending_deletes.emplace_back(rel, r.ReadTuple());
    }
    pending_.push_back(std::move(query));
  }
  action_list_.clear();
  const int64_t actions = r.ReadI64();
  for (int64_t i = 0; i < actions; ++i) {
    Action action;
    action.kind = r.ReadU8() == 0 ? Action::Kind::kDeleteKey
                                  : Action::Kind::kInsert;
    action.rel = r.ReadI32();
    action.key = r.ReadTuple();
    action.tuples = r.ReadRelation();
    action.update_id = r.ReadI64();
    action_list_.push_back(std::move(action));
  }
  batch_installs_ = r.ReadI64();
}

}  // namespace sweepmv
