// Strobe — baseline [ZGMW96], as characterized in Sections 3-4 of the
// paper.
//
// Strobe assumes the view retains the key attributes of every base
// relation (here: the full base tuples — the view is maintained
// un-projected internally and projected on export). Updates are handled as
// they arrive:
//   * a delete is appended to the action list AL as a key-delete and also
//     queued against every in-flight query;
//   * an insert launches a sweep query across the other sources (no
//     compensation); when the answer completes, tuples matching queued
//     deletes are removed and the answer is appended to AL as an insert.
// AL is applied to the view only when the system is quiescent (no pending
// queries, no unprocessed updates) — the paper's central criticism: under
// a continuous update stream the materialized view is never refreshed and
// trails the sources arbitrarily. Error terms caused by concurrent inserts
// are neutralized by duplicate suppression at install time (set semantics
// justified by the key assumption). Consistency: strong.

#ifndef SWEEPMV_CORE_STROBE_H_
#define SWEEPMV_CORE_STROBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/warehouse.h"

namespace sweepmv {

class StrobeWarehouse : public Warehouse {
 public:
  StrobeWarehouse(int site_id, ViewDef view_def, Network* network,
                  std::vector<int> source_sites,
                  Options options = Options{});

  void InitializeAuxiliary(
      const std::vector<Relation>& initial_bases) override;

  bool Busy() const override { return !pending_.empty(); }
  std::string name() const override { return "Strobe"; }

  // Installs performed (each covers a whole quiescent batch).
  int64_t batch_installs() const { return batch_installs_; }

 protected:
  void HandleUpdateArrival() override;
  void HandleQueryAnswer(QueryAnswer answer) override;

 private:
  struct PendingQuery {
    int64_t update_id = -1;
    int src_rel = -1;
    PartialDelta pd;
    bool left_phase = true;
    int j = -1;
    int64_t outstanding_query = -1;
    // Deletes that arrived while this query was in flight: (relation,
    // deleted base tuple).
    std::vector<std::pair<int, Tuple>> pending_deletes;

    bool operator==(const PendingQuery&) const = default;
  };

  struct Action {
    enum class Kind { kDeleteKey, kInsert };
    Kind kind = Kind::kInsert;
    int rel = -1;       // kDeleteKey
    Tuple key;          // kDeleteKey
    Relation tuples;    // kInsert: full-span set of view tuples
    int64_t update_id = -1;

    bool operator==(const Action&) const = default;
  };

  void ProcessArrivals();
  void AdvanceQuery(PendingQuery& query);
  void FinalizeQuery(size_t index);
  void TryInstall();

  // Snapshot/restore: everything mutable above.
  struct Saved {
    Relation internal_view;
    std::vector<PendingQuery> pending;
    std::vector<Action> action_list;
    int64_t batch_installs = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  // Full-span, selection-applied, set-semantics view (keys preserved).
  Relation internal_view_;
  std::vector<PendingQuery> pending_;
  std::vector<Action> action_list_;
  int64_t batch_installs_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_STROBE_H_
