#include "core/sweep.h"

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

SweepWarehouse::SweepWarehouse(int site_id, ViewDef view_def,
                               Network* network,
                               std::vector<int> source_sites,
                               SweepOptions options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options.base),
      local_compensation_(options.local_compensation) {}

SweepWarehouse::SweepWarehouse(int site_id, ViewDef view_def,
                               Network* network,
                               std::vector<int> source_sites,
                               Options options)
    : Warehouse(site_id, std::move(view_def), network,
                std::move(source_sites), options) {}

void SweepWarehouse::HandleUpdateArrival() { MaybeStartNext(); }

void SweepWarehouse::MaybeStartNext() {
  if (active_.has_value()) return;
  // Sharded operation: foreign updates ride the queue only so a running
  // sweep's compensation can observe them; with no sweep active any run
  // of them at the head has served its purpose and is discarded (the
  // owning shard maintains the view against them).
  DiscardForeignQueueHead();
  if (mutable_queue().empty()) return;

  Update update = std::move(mutable_queue().front());
  mutable_queue().pop_front();

  ActiveSweep sweep;
  sweep.update_id = update.id;
  sweep.update_source = update.relation;
  sweep.dv = PartialDelta::ForRelation(view_def(), update.relation,
                                       std::move(update.delta));
  sweep.left_phase = true;
  sweep.j = update.relation - 1;
  active_ = std::move(sweep);
  SWEEP_LOG(Debug) << "SWEEP starts ViewChange for u" << active_->update_id
                   << " at R" << active_->update_source;
  Advance();
}

void SweepWarehouse::Advance() {
  SWEEP_CHECK(active_.has_value());
  ActiveSweep& sweep = *active_;

  if (sweep.left_phase && sweep.j < 0) {
    // Left sweep exhausted; begin the right sweep.
    sweep.left_phase = false;
    sweep.j = sweep.update_source + 1;
  }
  if (!sweep.left_phase && sweep.j >= view_def().num_relations()) {
    Finish();
    return;
  }

  // While the query is in flight `dv` is dead: HandleQueryAnswer
  // overwrites it before any read, and recovery re-issues the query from
  // the pending-query request, not from algorithm state. So the pre-send
  // partial lives only in `temp` (compensation needs it) and the single
  // remaining copy per hop is the query payload itself. `dv` is reset to
  // a defined empty value so checkpoints of an in-flight sweep stay
  // deterministic.
  sweep.temp = std::move(sweep.dv);
  sweep.dv = PartialDelta();
  sweep.outstanding_query =
      SendSweepQuery(sweep.j, /*extend_left=*/sweep.left_phase, sweep.temp);
}

void SweepWarehouse::HandleQueryAnswer(QueryAnswer answer) {
  SWEEP_CHECK(active_.has_value());
  ActiveSweep& sweep = *active_;
  SWEEP_CHECK_MSG(answer.query_id == sweep.outstanding_query,
                  "answer does not match the outstanding query");
  sweep.outstanding_query = -1;
  sweep.dv = std::move(answer.partial);

  // On-line error correction: every ΔR_j now sitting in the update message
  // queue was, by FIFO, applied at source j before our query evaluated, so
  // the answer includes the error term ΔR_j ⋈ TempView. Both factors are
  // local; subtract. Multiple interfering updates merge into one ΔR_j.
  Relation interfering = local_compensation_
                             ? MergedQueueDeltaFor(sweep.j)
                             : Relation(view_def().rel_schema(sweep.j));
  if (!interfering.Empty()) {
    PartialDelta error =
        sweep.left_phase ? ExtendLeft(view_def(), interfering, sweep.temp)
                         : ExtendRight(view_def(), sweep.temp, interfering);
    sweep.dv.rel.MergeNegated(error.rel);
    ++compensations_;
    SWEEP_LOG(Debug) << "SWEEP compensated for concurrent ΔR" << sweep.j
                     << ": " << error.rel.ToDisplayString();
  }

  sweep.j += sweep.left_phase ? -1 : 1;
  Advance();
}

void SweepWarehouse::Finish() {
  SWEEP_CHECK(active_.has_value());
  ActiveSweep& sweep = *active_;
  SWEEP_CHECK(sweep.dv.SpansAll(view_def()));
  Relation view_delta = view_def().FinishFullSpan(sweep.dv.rel);
  InstallViewDelta(view_delta, {sweep.update_id});
  active_.reset();
  MaybeStartNext();
}

std::shared_ptr<const Warehouse::AlgState> SweepWarehouse::SaveAlgState()
    const {
  Saved s;
  s.active = active_;
  s.compensations = compensations_;
  return std::make_shared<TypedAlgState<Saved>>(std::move(s));
}

void SweepWarehouse::RestoreAlgState(const AlgState& state) {
  const Saved& s = AlgStateAs<Saved>(state);
  active_ = s.active;
  compensations_ = s.compensations;
}

void SweepWarehouse::CaptureUndoAlgState(UndoLog& undo) {
  undo.CaptureValue(&active_, {"SweepWarehouse", "active_", site_id()});
  undo.CaptureValue(&compensations_,
                    {"SweepWarehouse", "compensations_", site_id()});
}

void SweepWarehouse::SerializeAlgState(CheckpointWriter& w) const {
  w.WriteBool(active_.has_value());
  if (active_.has_value()) {
    w.WriteI64(active_->update_id);
    w.WriteI32(active_->update_source);
    w.WritePartialDelta(active_->dv);
    w.WritePartialDelta(active_->temp);
    w.WriteBool(active_->left_phase);
    w.WriteI32(active_->j);
    w.WriteI64(active_->outstanding_query);
  }
  w.WriteI64(compensations_);
}

void SweepWarehouse::DeserializeAlgState(CheckpointReader& r) {
  active_.reset();
  if (r.ReadBool()) {
    ActiveSweep sweep;
    sweep.update_id = r.ReadI64();
    sweep.update_source = r.ReadI32();
    sweep.dv = r.ReadPartialDelta();
    sweep.temp = r.ReadPartialDelta();
    sweep.left_phase = r.ReadBool();
    sweep.j = r.ReadI32();
    sweep.outstanding_query = r.ReadI64();
    active_ = std::move(sweep);
  }
  compensations_ = r.ReadI64();
}

}  // namespace sweepmv
