// SWEEP — the paper's complete-consistency algorithm (Section 5, Fig. 4).
//
// One update at a time, in warehouse arrival order:
//
//   ΔV = ΔR_i
//   for j = i-1 .. 1:  (left sweep)            for j = i+1 .. n: (right)
//     TempView = ΔV                                ... symmetric ...
//     send ΔV to source j; receive ΔV
//     if ∃ ΔR_j ∈ UpdateMessageQueue:
//       ΔV = ΔV − ΔR_j ⋈ TempView          // local on-line error correction
//   V = V + Π σ (ΔV)
//
// The compensation rule is sound because channels are FIFO: an update of
// R_j applied before source j evaluated our query necessarily has its
// notification delivered *before* the answer, so at answer time it sits in
// the update message queue; conversely an update applied after the
// evaluation cannot have arrived yet. Both components of the error term —
// ΔR_j and TempView (the partial answer before the query) — are already at
// the warehouse, so no compensating queries are needed: n-1 query/answer
// round trips per update, linear in the number of sources, and the
// materialized view steps through *every* source state in delivery order
// (complete consistency) without ever waiting for quiescence.

#ifndef SWEEPMV_CORE_SWEEP_H_
#define SWEEPMV_CORE_SWEEP_H_

#include <optional>
#include <string>
#include <vector>

#include "common/snapshot.h"
#include "core/warehouse.h"

namespace sweepmv {

class SweepWarehouse : public Warehouse {
 public:
  struct SweepOptions {
    Options base;
    // Ablation switch: with local compensation off, the algorithm applies
    // raw answers, re-introducing the distributed anomaly of Section 3 —
    // the view silently diverges under interference. Used by the
    // ablation bench to demonstrate the error terms are real; never
    // disable in real use.
    bool local_compensation = true;
  };

  SweepWarehouse(int site_id, ViewDef view_def, Network* network,
                 std::vector<int> source_sites, SweepOptions options);

  SweepWarehouse(int site_id, ViewDef view_def, Network* network,
                 std::vector<int> source_sites,
                 Options options = Options{});

  bool Busy() const override { return active_.has_value(); }
  std::string name() const override { return "SWEEP"; }

  // Number of local compensations performed (error terms subtracted).
  int64_t compensations() const { return compensations_; }

 protected:
  void HandleUpdateArrival() override;
  void HandleQueryAnswer(QueryAnswer answer) override;

 private:
  // State of the ViewChange invocation in progress.
  struct ActiveSweep {
    int64_t update_id = -1;
    int update_source = -1;   // i — relation of the initiating update
    PartialDelta dv;          // ΔV
    PartialDelta temp;        // TempView (ΔV before the outstanding query)
    bool left_phase = true;
    int j = -1;               // relation currently being queried
    int64_t outstanding_query = -1;

    bool operator==(const ActiveSweep&) const = default;
  };

  // Pops the next update and starts its ViewChange if idle.
  void MaybeStartNext();
  // Sends the next query of the sweep, or installs if both phases done.
  void Advance();
  void Finish();

  // Snapshot/restore: everything mutable above (options are immutable).
  struct Saved {
    std::optional<ActiveSweep> active;
    int64_t compensations = 0;
  };
  std::shared_ptr<const AlgState> SaveAlgState() const override;
  void RestoreAlgState(const AlgState& state) override;
  void CaptureUndoAlgState(UndoLog& undo) override;
  void SerializeAlgState(CheckpointWriter& w) const override;
  void DeserializeAlgState(CheckpointReader& r) override;

  std::optional<ActiveSweep> active_;
  SWEEP_SNAPSHOT_EXEMPT(
      "compensation on/off is an experiment knob, fixed at construction")
  bool local_compensation_ = true;
  int64_t compensations_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_SWEEP_H_
