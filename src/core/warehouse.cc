#include "core/warehouse.h"

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

Warehouse::Warehouse(int site_id, ViewDef view_def, Network* network,
                     std::vector<int> source_sites, Options options)
    : site_id_(site_id),
      view_def_(std::move(view_def)),
      network_(network),
      source_sites_(std::move(source_sites)),
      options_(options),
      view_(view_def_.view_schema()) {
  SWEEP_CHECK(network != nullptr);
  SWEEP_CHECK(static_cast<int>(source_sites_.size()) ==
              view_def_.num_relations());
}

void Warehouse::InitializeView(Relation initial_view) {
  SWEEP_CHECK_MSG(arrival_log_.empty() && installs_.empty(),
                  "InitializeView must precede the first update");
  view_ = std::move(initial_view);
}

void Warehouse::OnMessage(int from, Message msg) {
  (void)from;
  if (auto* update = std::get_if<UpdateMessage>(&msg)) {
    arrival_log_.emplace_back(update->update.id,
                              network_->simulator()->now());
    SWEEP_LOG(Debug) << name() << " received "
                     << update->update.ToDisplayString();
    queue_.push_back(std::move(update->update));
    HandleUpdateArrival();
    return;
  }
  if (auto* answer = std::get_if<QueryAnswer>(&msg)) {
    HandleQueryAnswer(std::move(*answer));
    return;
  }
  if (auto* answer = std::get_if<EcaQueryAnswer>(&msg)) {
    HandleEcaAnswer(std::move(*answer));
    return;
  }
  if (auto* answer = std::get_if<SnapshotAnswer>(&msg)) {
    HandleSnapshotAnswer(std::move(*answer));
    return;
  }
  SWEEP_CHECK_MSG(false, "warehouse received an unexpected message type");
}

void Warehouse::HandleQueryAnswer(QueryAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use sweep queries");
}

void Warehouse::HandleEcaAnswer(EcaQueryAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use ECA queries");
}

void Warehouse::HandleSnapshotAnswer(SnapshotAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use snapshots");
}

int64_t Warehouse::SendSweepQuery(int target_rel, bool extend_left,
                                  PartialDelta partial) {
  int64_t id = next_query_id_++;
  ++queries_sent_;
  QueryRequest request;
  request.query_id = id;
  request.target_rel = target_rel;
  request.extend_left = extend_left;
  request.partial = std::move(partial);
  network_->Send(site_id_, source_site(target_rel), std::move(request));
  return id;
}

int64_t Warehouse::SendEcaQuery(std::vector<EcaTerm> terms) {
  int64_t id = next_query_id_++;
  ++queries_sent_;
  network_->Send(site_id_, source_site(0),
                 EcaQueryRequest{id, std::move(terms)});
  return id;
}

int64_t Warehouse::SendSnapshotRequest(int target_rel) {
  int64_t id = next_query_id_++;
  ++queries_sent_;
  network_->Send(site_id_, source_site(target_rel), SnapshotRequest{id});
  return id;
}

void Warehouse::InstallViewDelta(const Relation& view_delta,
                                 std::vector<int64_t> update_ids) {
  view_.Merge(view_delta);
  SWEEP_LOG(Debug) << name() << " installed delta "
                   << view_delta.ToDisplayString() << " -> "
                   << view_.ToDisplayString();
  if (observer_) observer_(view_delta, update_ids);
  RecordInstall(std::move(update_ids));
}

void Warehouse::InstallAbsoluteView(Relation new_view,
                                    std::vector<int64_t> update_ids) {
  if (observer_) {
    Relation delta = new_view;
    delta.MergeNegated(view_);
    observer_(delta, update_ids);
  }
  view_ = std::move(new_view);
  RecordInstall(std::move(update_ids));
}

void Warehouse::RecordInstall(std::vector<int64_t> update_ids) {
  updates_incorporated_ += static_cast<int64_t>(update_ids.size());
  if (!options_.log_installs) return;
  InstallRecord record;
  record.time = network_->simulator()->now();
  record.update_ids = std::move(update_ids);
  record.view_after = view_;
  record.negative_counts = view_.HasNegative();
  installs_.push_back(std::move(record));
}

Relation Warehouse::MergedQueueDeltaFor(int rel) const {
  Relation merged(view_def_.rel_schema(rel));
  for (const Update& u : queue_) {
    if (u.relation == rel) merged.Merge(u.delta);
  }
  return merged;
}

int Warehouse::source_site(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < static_cast<int>(source_sites_.size()));
  return source_sites_[static_cast<size_t>(rel)];
}

}  // namespace sweepmv
