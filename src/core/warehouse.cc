#include "core/warehouse.h"

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

Warehouse::Warehouse(int site_id, ViewDef view_def, Network* network,
                     std::vector<int> source_sites, Options options)
    : site_id_(site_id),
      view_def_(std::move(view_def)),
      network_(network),
      source_sites_(std::move(source_sites)),
      options_(options),
      view_(view_def_.view_schema()),
      update_watermarks_(
          static_cast<size_t>(view_def_.num_relations()), -1) {
  SWEEP_CHECK(network != nullptr);
  SWEEP_CHECK(static_cast<int>(source_sites_.size()) ==
              view_def_.num_relations());
  SWEEP_CHECK(options_.query_id_stride >= 1);
  SWEEP_CHECK(options_.query_id_origin >= 0 &&
              options_.query_id_origin < options_.query_id_stride);
  next_query_id_ = options_.query_id_origin;
}

bool Warehouse::IsDuplicateUpdate(const Update& update) {
  if (options_.fifo_update_streams) {
    SWEEP_CHECK(update.relation >= 0 &&
                update.relation <
                    static_cast<int>(update_watermarks_.size()));
    int64_t& watermark =
        update_watermarks_[static_cast<size_t>(update.relation)];
    if (update.id <= watermark) return true;
    watermark = update.id;
    return false;
  }
  return !seen_update_ids_.insert(update.id).second;
}

void Warehouse::InitializeView(Relation initial_view) {
  SWEEP_CHECK_MSG(arrival_log_.empty() && installs_.empty(),
                  "InitializeView must precede the first update");
  view_ = std::move(initial_view);
}

void Warehouse::CaptureUndo(bool full) {
  if (undo_ == nullptr) return;
  // Effect atoms name the *declaring* class — the same resolution the
  // static effects pass uses — so the soundness oracle compares like with
  // like (src/verify/effects.h, tools/sweeplint/effects.py).
  const int s = site_id_;
  undo_->CaptureValue(&view_, {"Warehouse", "view_", s});
  undo_->CaptureValue(&queue_, {"Warehouse", "queue_", s});
  if (full) {
    // Crash/recovery clears and rebuilds the logs from the checkpoint, so
    // truncate-to-length would restore the wrong content.
    undo_->CaptureValue(&arrival_log_, {"Warehouse", "arrival_log_", s});
    undo_->CaptureValue(&installs_, {"Warehouse", "installs_", s});
    undo_->CaptureValue(&install_time_log_,
                        {"Warehouse", "install_time_log_", s});
    undo_->CaptureValue(&foreign_skip_log_,
                        {"Warehouse", "foreign_skip_log_", s});
  } else {
    undo_->CaptureTail(&arrival_log_, {"Warehouse", "arrival_log_", s});
    undo_->CaptureTail(&installs_, {"Warehouse", "installs_", s});
    undo_->CaptureTail(&install_time_log_,
                       {"Warehouse", "install_time_log_", s});
    undo_->CaptureTail(&foreign_skip_log_,
                       {"Warehouse", "foreign_skip_log_", s});
  }
  undo_->CaptureValue(&updates_incorporated_,
                      {"Warehouse", "updates_incorporated_", s});
  undo_->CaptureValue(&queries_sent_, {"Warehouse", "queries_sent_", s});
  undo_->CaptureValue(&next_query_id_, {"Warehouse", "next_query_id_", s});
  undo_->CaptureValue(&update_watermarks_,
                      {"Warehouse", "update_watermarks_", s});
  undo_->CaptureValue(&seen_update_ids_,
                      {"Warehouse", "seen_update_ids_", s});
  undo_->CaptureValue(&pending_queries_,
                      {"Warehouse", "pending_queries_", s});
  undo_->CaptureValue(&duplicate_updates_ignored_,
                      {"Warehouse", "duplicate_updates_ignored_", s});
  undo_->CaptureValue(&stale_answers_ignored_,
                      {"Warehouse", "stale_answers_ignored_", s});
  undo_->CaptureValue(&queries_reissued_,
                      {"Warehouse", "queries_reissued_", s});
  undo_->CaptureValue(&foreign_updates_discarded_,
                      {"Warehouse", "foreign_updates_discarded_", s});
  undo_->CaptureValue(&durable_checkpoint_,
                      {"Warehouse", "durable_checkpoint_", s});
  undo_->CaptureValue(&durable_wal_, {"Warehouse", "durable_wal_", s});
  undo_->CaptureValue(&durable_epoch_, {"Warehouse", "durable_epoch_", s});
  undo_->CaptureValue(&epoch_, {"Warehouse", "epoch_", s});
  undo_->CaptureValue(&crashed_, {"Warehouse", "crashed_", s});
  undo_->CaptureValue(&recovering_, {"Warehouse", "recovering_", s});
  undo_->CaptureValue(&timer_gen_, {"Warehouse", "timer_gen_", s});
  undo_->CaptureValue(&recoveries_, {"Warehouse", "recoveries_", s});
  undo_->CaptureValue(&wal_replayed_, {"Warehouse", "wal_replayed_", s});
  undo_->CaptureValue(&checkpoints_taken_,
                      {"Warehouse", "checkpoints_taken_", s});
  undo_->CaptureValue(&checkpoint_bytes_max_,
                      {"Warehouse", "checkpoint_bytes_max_", s});
  undo_->CaptureValue(&pre_epoch_answers_ignored_,
                      {"Warehouse", "pre_epoch_answers_ignored_", s});
  undo_->CaptureValue(&max_query_attempts_,
                      {"Warehouse", "max_query_attempts_", s});
  CaptureUndoAlgState(*undo_);
}

void Warehouse::CaptureUndoAlgState(UndoLog&) {
  SWEEP_CHECK_MSG(false, "this warehouse does not implement undo-log "
                         "backtracking (CaptureUndoAlgState)");
}

void Warehouse::DescribeState(StateHasher& h) const {
  h.I64("wh.site", site_id_);
  const std::string protocol = SerializeCheckpoint();
  h.Bytes("wh.protocol", protocol.data(), protocol.size());
  h.Bytes("wh.durable_ckpt", durable_checkpoint_.data(),
          durable_checkpoint_.size());
  h.U64("wh.wal", durable_wal_.size());
  for (const Update& u : durable_wal_) {
    h.I64("wal.id", u.id);
    h.I64("wal.rel", u.relation);
    h.I64("wal.at", u.applied_at);
    AbsorbRelation(h, "wal.delta", u.delta);
  }
  h.I64("wh.durable_epoch", durable_epoch_);
  h.I64("wh.epoch", epoch_);
  h.Bool("wh.crashed", crashed_);
  h.Bool("wh.recovering", recovering_);
  h.I64("wh.timer_gen", timer_gen_);
  h.I64("wh.recoveries", recoveries_);
  h.I64("wh.wal_replayed", wal_replayed_);
  h.I64("wh.checkpoints", checkpoints_taken_);
  h.I64("wh.ckpt_bytes_max", checkpoint_bytes_max_);
  h.I64("wh.pre_epoch_ignored", pre_epoch_answers_ignored_);
  h.I64("wh.max_attempts", max_query_attempts_);
}

void Warehouse::OnMessage(int from, Message msg) {
  (void)from;
  CaptureUndo(/*full=*/false);
  // Defense in depth: the network already drops deliveries to a crashed
  // site, so nothing should reach a dead warehouse.
  if (crashed_) return;
  if (auto* update = std::get_if<UpdateMessage>(&msg)) {
    AcceptUpdate(std::move(*update));
    return;
  }
  // Answers carrying a dead incarnation's epoch are discarded before the
  // pending-query bookkeeping sees them: recovery re-issued those queries
  // with the current epoch, and resolving a re-issued query with a
  // pre-crash answer would hand the restored algorithm state a result
  // computed against bases it has not caught up with (the anomaly the
  // explorer's UnfilteredRecoveryScenario demonstrates).
  if (auto* answer = std::get_if<QueryAnswer>(&msg)) {
    if (options_.filter_stale_epochs && answer->epoch != epoch_) {
      ++pre_epoch_answers_ignored_;
      SWEEP_LOG(Debug) << name() << " ignored pre-epoch answer #"
                       << answer->query_id;
      return;
    }
    if (!ResolveQuery(answer->query_id)) return;
    HandleQueryAnswer(std::move(*answer));
    return;
  }
  if (auto* answer = std::get_if<EcaQueryAnswer>(&msg)) {
    if (options_.filter_stale_epochs && answer->epoch != epoch_) {
      ++pre_epoch_answers_ignored_;
      return;
    }
    if (!ResolveQuery(answer->query_id)) return;
    HandleEcaAnswer(std::move(*answer));
    return;
  }
  if (auto* answer = std::get_if<SnapshotAnswer>(&msg)) {
    if (options_.filter_stale_epochs && answer->epoch != epoch_) {
      ++pre_epoch_answers_ignored_;
      return;
    }
    if (!ResolveSnapshotPart(answer->query_id, answer->relation)) return;
    HandleSnapshotAnswer(std::move(*answer));
    return;
  }
  SWEEP_CHECK_MSG(false, "warehouse received an unexpected message type");
}

void Warehouse::AcceptUpdate(UpdateMessage update) {
  const bool durable = DurabilityOn() && !recovering_;
  // The initial checkpoint is cut lazily, right before the first arrival
  // mutates anything: between construction and this point the only state
  // transitions were InitializeView/InitializeAuxiliary, so "no
  // checkpoint yet" always means "the checkpoint would be this state".
  if (durable && durable_checkpoint_.empty()) TakeCheckpoint();
  if (IsDuplicateUpdate(update.update)) {
    // Redundant notification — a restarted source replaying its log, or
    // at-least-once delivery without the session layer. The arrival
    // order that defines consistency is the order of *first* arrivals.
    ++duplicate_updates_ignored_;
    SWEEP_LOG(Debug) << name() << " ignored duplicate "
                     << update.update.ToDisplayString();
    return;
  }
  if (durable) durable_wal_.push_back(update.update);
  arrival_log_.emplace_back(update.update.id,
                            network_->simulator()->now());
  SWEEP_LOG(Debug) << name() << " received "
                   << update.update.ToDisplayString();
  queue_.push_back(std::move(update.update));
  HandleUpdateArrival();
  if (durable && static_cast<int>(durable_wal_.size()) >=
                     options_.checkpoint_every) {
    TakeCheckpoint();
  }
}

void Warehouse::RegisterQuery(int64_t query_id, int target_site,
                              const Message& request, int expected_answers) {
  PendingQuery pending;
  pending.target_site = target_site;
  pending.expected_answers = expected_answers;
  // The request copy feeds timeout re-issue, recovery's re-issue of
  // restored in-flight queries, and the checkpoint serializer (which is
  // public API and must work regardless of the options in force).
  pending.request = request;
  pending_queries_.emplace(query_id, std::move(pending));
  if (max_query_attempts_ < 1) max_query_attempts_ = 1;
  if (options_.query_timeout > 0) ArmQueryTimer(query_id);
}

bool Warehouse::ResolveQuery(int64_t query_id) {
  if (pending_queries_.erase(query_id) == 0) {
    // A duplicate answer (query re-issue raced the original answer) or an
    // answer from a dead incarnation. The first answer won; drop this one.
    ++stale_answers_ignored_;
    SWEEP_LOG(Debug) << name() << " dropped stale answer #" << query_id;
    return false;
  }
  return true;
}

bool Warehouse::ResolveSnapshotPart(int64_t query_id, int relation) {
  auto it = pending_queries_.find(query_id);
  if (it == pending_queries_.end()) {
    ++stale_answers_ignored_;
    SWEEP_LOG(Debug) << name() << " dropped stale snapshot part #"
                     << query_id << " R" << relation;
    return false;
  }
  PendingQuery& pending = it->second;
  if (!pending.relations_seen.insert(relation).second) {
    ++stale_answers_ignored_;
    SWEEP_LOG(Debug) << name() << " dropped re-delivered snapshot part #"
                     << query_id << " R" << relation;
    return false;
  }
  if (static_cast<int>(pending.relations_seen.size()) >=
      pending.expected_answers) {
    pending_queries_.erase(it);
  }
  return true;
}

Warehouse::SavedState Warehouse::SaveState() const {
  SavedState state;
  state.view = view_;
  state.queue = queue_;
  state.arrival_log = arrival_log_;
  state.installs = installs_;
  state.updates_incorporated = updates_incorporated_;
  state.queries_sent = queries_sent_;
  state.next_query_id = next_query_id_;
  state.update_watermarks = update_watermarks_;
  state.seen_update_ids = seen_update_ids_;
  state.pending_queries = pending_queries_;
  state.duplicate_updates_ignored = duplicate_updates_ignored_;
  state.stale_answers_ignored = stale_answers_ignored_;
  state.queries_reissued = queries_reissued_;
  state.foreign_skip_log = foreign_skip_log_;
  state.foreign_updates_discarded = foreign_updates_discarded_;
  state.install_time_log = install_time_log_;
  state.durable_checkpoint = durable_checkpoint_;
  state.durable_wal = durable_wal_;
  state.durable_epoch = durable_epoch_;
  state.epoch = epoch_;
  state.crashed = crashed_;
  state.recovering = recovering_;
  state.timer_gen = timer_gen_;
  state.recoveries = recoveries_;
  state.wal_replayed = wal_replayed_;
  state.checkpoints_taken = checkpoints_taken_;
  state.checkpoint_bytes_max = checkpoint_bytes_max_;
  state.pre_epoch_answers_ignored = pre_epoch_answers_ignored_;
  state.max_query_attempts = max_query_attempts_;
  state.alg = SaveAlgState();
  return state;
}

void Warehouse::RestoreState(const SavedState& state) {
  view_ = state.view;
  queue_ = state.queue;
  arrival_log_ = state.arrival_log;
  installs_ = state.installs;
  updates_incorporated_ = state.updates_incorporated;
  queries_sent_ = state.queries_sent;
  next_query_id_ = state.next_query_id;
  update_watermarks_ = state.update_watermarks;
  seen_update_ids_ = state.seen_update_ids;
  pending_queries_ = state.pending_queries;
  duplicate_updates_ignored_ = state.duplicate_updates_ignored;
  stale_answers_ignored_ = state.stale_answers_ignored;
  queries_reissued_ = state.queries_reissued;
  foreign_skip_log_ = state.foreign_skip_log;
  foreign_updates_discarded_ = state.foreign_updates_discarded;
  install_time_log_ = state.install_time_log;
  durable_checkpoint_ = state.durable_checkpoint;
  durable_wal_ = state.durable_wal;
  durable_epoch_ = state.durable_epoch;
  epoch_ = state.epoch;
  crashed_ = state.crashed;
  recovering_ = state.recovering;
  timer_gen_ = state.timer_gen;
  recoveries_ = state.recoveries;
  wal_replayed_ = state.wal_replayed;
  checkpoints_taken_ = state.checkpoints_taken;
  checkpoint_bytes_max_ = state.checkpoint_bytes_max;
  pre_epoch_answers_ignored_ = state.pre_epoch_answers_ignored;
  max_query_attempts_ = state.max_query_attempts;
  SWEEP_CHECK(state.alg != nullptr);
  RestoreAlgState(*state.alg);
}

std::shared_ptr<const Warehouse::AlgState> Warehouse::SaveAlgState() const {
  SWEEP_CHECK_MSG(false, "this warehouse does not implement snapshot/"
                         "restore (SaveAlgState)");
  return nullptr;
}

void Warehouse::RestoreAlgState(const AlgState&) {
  SWEEP_CHECK_MSG(false, "this warehouse does not implement snapshot/"
                         "restore (RestoreAlgState)");
}

void Warehouse::SerializeAlgState(CheckpointWriter&) const {
  SWEEP_CHECK_MSG(false, "this warehouse does not implement durable "
                         "checkpoints (SerializeAlgState)");
}

void Warehouse::DeserializeAlgState(CheckpointReader&) {
  SWEEP_CHECK_MSG(false, "this warehouse does not implement durable "
                         "checkpoints (DeserializeAlgState)");
}

// checkpoint-exempt: durable_checkpoint_ durable_wal_ durable_epoch_
// epoch_ crashed_ recovering_ timer_gen_ recoveries_ wal_replayed_
// checkpoints_taken_ checkpoint_bytes_max_ pre_epoch_answers_ignored_
// max_query_attempts_ — the durable store and the recovery machinery's
// instrumentation survive a crash by definition: a checkpoint captures
// the protocol state, not the substrate it is stored in or the counters
// that report on it.
std::string Warehouse::SerializeCheckpoint() const {
  CheckpointWriter w;
  w.WriteRelation(view_);
  w.WriteI64(static_cast<int64_t>(queue_.size()));
  for (const Update& u : queue_) w.WriteUpdate(u);
  w.WriteI64(static_cast<int64_t>(arrival_log_.size()));
  for (const auto& [id, at] : arrival_log_) {
    w.WriteI64(id);
    w.WriteI64(at);
  }
  w.WriteI64(static_cast<int64_t>(installs_.size()));
  for (const InstallRecord& record : installs_) {
    w.WriteI64(record.time);
    w.WriteI64(static_cast<int64_t>(record.update_ids.size()));
    for (int64_t id : record.update_ids) w.WriteI64(id);
    w.WriteRelation(record.view_after);
    w.WriteBool(record.negative_counts);
  }
  w.WriteI64(updates_incorporated_);
  w.WriteI64(queries_sent_);
  w.WriteI64(next_query_id_);
  w.WriteI64(static_cast<int64_t>(update_watermarks_.size()));
  for (int64_t mark : update_watermarks_) w.WriteI64(mark);
  // Sorted so identical states serialize to identical bytes.
  std::vector<int64_t> seen(seen_update_ids_.begin(),
                            seen_update_ids_.end());
  std::sort(seen.begin(), seen.end());
  w.WriteI64(static_cast<int64_t>(seen.size()));
  for (int64_t id : seen) w.WriteI64(id);
  w.WriteI64(static_cast<int64_t>(pending_queries_.size()));
  for (const auto& [query_id, pending] : pending_queries_) {
    w.WriteI64(query_id);
    w.WriteRequest(pending.request);
    w.WriteI32(pending.target_site);
    w.WriteI32(pending.attempts);
    w.WriteI32(pending.expected_answers);
    std::vector<int32_t> parts(pending.relations_seen.begin(),
                               pending.relations_seen.end());
    std::sort(parts.begin(), parts.end());
    w.WriteI64(static_cast<int64_t>(parts.size()));
    for (int32_t rel : parts) w.WriteI32(rel);
  }
  w.WriteI64(duplicate_updates_ignored_);
  w.WriteI64(stale_answers_ignored_);
  w.WriteI64(queries_reissued_);
  w.WriteI64(static_cast<int64_t>(foreign_skip_log_.size()));
  for (const auto& [id, at] : foreign_skip_log_) {
    w.WriteI64(id);
    w.WriteI64(at);
  }
  w.WriteI64(foreign_updates_discarded_);
  w.WriteI64(static_cast<int64_t>(install_time_log_.size()));
  for (const auto& [id, at] : install_time_log_) {
    w.WriteI64(id);
    w.WriteI64(at);
  }
  SerializeAlgState(w);
  return w.Take();
}

void Warehouse::RestoreFromCheckpoint(const std::string& bytes) {
  CheckpointReader r(bytes);
  view_ = r.ReadRelation();
  queue_.clear();
  const int64_t queued = r.ReadI64();
  for (int64_t i = 0; i < queued; ++i) queue_.push_back(r.ReadUpdate());
  arrival_log_.clear();
  const int64_t arrivals = r.ReadI64();
  for (int64_t i = 0; i < arrivals; ++i) {
    const int64_t id = r.ReadI64();
    const SimTime at = r.ReadI64();
    arrival_log_.emplace_back(id, at);
  }
  installs_.clear();
  const int64_t installed = r.ReadI64();
  for (int64_t i = 0; i < installed; ++i) {
    InstallRecord record;
    record.time = r.ReadI64();
    const int64_t ids = r.ReadI64();
    for (int64_t j = 0; j < ids; ++j) {
      record.update_ids.push_back(r.ReadI64());
    }
    record.view_after = r.ReadRelation();
    record.negative_counts = r.ReadBool();
    installs_.push_back(std::move(record));
  }
  updates_incorporated_ = r.ReadI64();
  queries_sent_ = r.ReadI64();
  next_query_id_ = r.ReadI64();
  update_watermarks_.clear();
  const int64_t marks = r.ReadI64();
  for (int64_t i = 0; i < marks; ++i) {
    update_watermarks_.push_back(r.ReadI64());
  }
  seen_update_ids_.clear();
  const int64_t seen = r.ReadI64();
  for (int64_t i = 0; i < seen; ++i) seen_update_ids_.insert(r.ReadI64());
  pending_queries_.clear();
  const int64_t pending_count = r.ReadI64();
  for (int64_t i = 0; i < pending_count; ++i) {
    const int64_t query_id = r.ReadI64();
    PendingQuery pending;
    pending.request = r.ReadRequest();
    pending.target_site = r.ReadI32();
    pending.attempts = r.ReadI32();
    pending.expected_answers = r.ReadI32();
    const int64_t parts = r.ReadI64();
    for (int64_t j = 0; j < parts; ++j) {
      pending.relations_seen.insert(r.ReadI32());
    }
    pending_queries_.emplace(query_id, std::move(pending));
  }
  duplicate_updates_ignored_ = r.ReadI64();
  stale_answers_ignored_ = r.ReadI64();
  queries_reissued_ = r.ReadI64();
  foreign_skip_log_.clear();
  const int64_t skips = r.ReadI64();
  for (int64_t i = 0; i < skips; ++i) {
    const int64_t id = r.ReadI64();
    const SimTime at = r.ReadI64();
    foreign_skip_log_.emplace_back(id, at);
  }
  foreign_updates_discarded_ = r.ReadI64();
  install_time_log_.clear();
  const int64_t install_times = r.ReadI64();
  for (int64_t i = 0; i < install_times; ++i) {
    const int64_t id = r.ReadI64();
    const SimTime at = r.ReadI64();
    install_time_log_.emplace_back(id, at);
  }
  DeserializeAlgState(r);
  SWEEP_CHECK_MSG(r.AtEnd(),
                  "checkpoint not fully consumed on restore — the "
                  "serializer and deserializer disagree");
}

void Warehouse::TakeCheckpoint() {
  durable_checkpoint_ = SerializeCheckpoint();
  durable_wal_.clear();
  ++checkpoints_taken_;
  const auto size = static_cast<int64_t>(durable_checkpoint_.size());
  if (size > checkpoint_bytes_max_) checkpoint_bytes_max_ = size;
}

void Warehouse::StampEpoch(Message* request, int64_t epoch) {
  if (auto* query = std::get_if<QueryRequest>(request)) {
    query->epoch = epoch;
    return;
  }
  if (auto* eca = std::get_if<EcaQueryRequest>(request)) {
    eca->epoch = epoch;
    return;
  }
  if (auto* snap = std::get_if<SnapshotRequest>(request)) {
    snap->epoch = epoch;
    return;
  }
  SWEEP_CHECK_MSG(false, "pending query holds a non-query request");
}

void Warehouse::Crash() {
  CaptureUndo(/*full=*/true);
  SWEEP_CHECK_MSG(DurabilityOn(),
                  "warehouse crash without a durable store (set "
                  "Options::checkpoint_every)");
  SWEEP_CHECK_MSG(!crashed_, "warehouse crashed while already down");
  SWEEP_LOG(Info) << name() << " crashed";
  crashed_ = true;
  network_->CrashSite(site_id_);
}

void Warehouse::Restart() {
  CaptureUndo(/*full=*/true);
  SWEEP_CHECK_MSG(crashed_, "warehouse restarted while up");
  network_->RestartSite(site_id_);
  crashed_ = false;
  Recover();
}

void Warehouse::CrashAndRecover() {
  CaptureUndo(/*full=*/true);
  SWEEP_CHECK_MSG(DurabilityOn(),
                  "warehouse crash without a durable store (set "
                  "Options::checkpoint_every)");
  SWEEP_CHECK(!crashed_);
  SWEEP_LOG(Info) << name() << " crash+recover (controlled)";
  Recover();
}

void Warehouse::Recover() {
  ++recoveries_;
  // Timers armed by the dead incarnation must not fire for the new one.
  ++timer_gen_;
  ++durable_epoch_;
  epoch_ = durable_epoch_;
  if (!durable_checkpoint_.empty()) {
    RestoreFromCheckpoint(durable_checkpoint_);
  }
  SWEEP_LOG(Info) << name() << " recovering under epoch " << epoch_
                  << ": " << pending_queries_.size()
                  << " in-flight queries, " << durable_wal_.size()
                  << " WAL updates";
  // Re-issue every restored in-flight query under the new epoch. Answers
  // consumed between the checkpoint and the crash were consumed by state
  // the restore just discarded, so the restored algorithm state is again
  // waiting on all of them; the fresh epoch stamp separates the answers
  // these re-issues produce from anything the dead incarnation left in
  // flight. relations_seen restarts empty so multi-part snapshots are
  // re-collected whole (fresher parts simply overwrite).
  for (auto& [query_id, pending] : pending_queries_) {
    StampEpoch(&pending.request, epoch_);
    pending.attempts = 1;
    pending.relations_seen.clear();
    ++queries_reissued_;
    network_->Send(site_id_, pending.target_site, pending.request);
    if (options_.query_timeout > 0) ArmQueryTimer(query_id);
  }
  // Replay the WAL through the normal arrival path — this is the
  // "replay logged updates instead of rebuilding the view" half of
  // recovery. recovering_ keeps the replay from re-appending to the WAL
  // it is draining (the entries stay put: they are still the
  // post-checkpoint suffix afterwards).
  recovering_ = true;
  const std::vector<Update> wal = durable_wal_;
  for (const Update& u : wal) {
    ++wal_replayed_;
    AcceptUpdate(UpdateMessage{u});
  }
  recovering_ = false;
}

SimTime Warehouse::BackoffDelay(int64_t query_id, int attempt) const {
  // Capped exponential backoff: attempt n waits base * 2^(n-1), clamped
  // at base * query_backoff_cap, plus jitter. The jitter is a hash of
  // (query id, attempt) — splitmix64's finalizer — so it de-synchronizes
  // re-issue bursts without introducing any state the replay/snapshot
  // machinery would have to capture: the same query re-issued on the
  // same attempt always waits exactly as long.
  const SimTime base = options_.query_timeout;
  const SimTime cap = base * options_.query_backoff_cap;
  SimTime delay = base;
  for (int i = 1; i < attempt && delay < cap; ++i) delay *= 2;
  if (delay > cap) delay = cap;
  uint64_t mix = static_cast<uint64_t>(query_id) * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(attempt);
  mix ^= mix >> 30;
  mix *= 0xbf58476d1ce4e5b9ull;
  mix ^= mix >> 27;
  mix *= 0x94d049bb133111ebull;
  mix ^= mix >> 31;
  const SimTime span = delay / 4 + 1;
  return delay + static_cast<SimTime>(mix % static_cast<uint64_t>(span));
}

void Warehouse::ArmQueryTimer(int64_t query_id) {
  auto armed = pending_queries_.find(query_id);
  SWEEP_CHECK(armed != pending_queries_.end());
  const SimTime delay = BackoffDelay(query_id, armed->second.attempts);
  const int64_t gen = timer_gen_;
  // Content digest so the explorer's canonical fingerprint can identify
  // the pending timer: which query, which incarnation, which attempt.
  StateHasher timer_hash;
  timer_hash.I64("timer.query", query_id);
  timer_hash.I64("timer.gen", gen);
  timer_hash.I64("timer.attempt", armed->second.attempts);
  const Fp128 t = timer_hash.Digest();
  const uint64_t timer_digest = (t.lo ^ t.hi) == 0 ? 1 : (t.lo ^ t.hi);
  // lint:allow direct-schedule local timer, not a protocol message: fires
  // at this site only, sends nothing itself, so it needs no EventLabel
  // channel and cannot perturb per-link FIFO order.
  network_->simulator()->Schedule(
      delay, EventLabel{}, timer_digest, [this, query_id, gen]() {
    CaptureUndo(/*full=*/false);
    // A crashed warehouse sends nothing; a timer armed by a dead
    // incarnation stays dead (recovery re-armed its own).
    if (crashed_ || gen != timer_gen_) return;
    auto it = pending_queries_.find(query_id);
    if (it == pending_queries_.end()) return;  // answered meanwhile
    PendingQuery& pending = it->second;
    if (pending.attempts > options_.query_retry_limit) {
      SWEEP_LOG(Info) << name() << " gave up on query #" << query_id
                      << " after " << options_.query_retry_limit
                      << " re-issues";
      return;
    }
    ++pending.attempts;
    if (max_query_attempts_ < pending.attempts) {
      max_query_attempts_ = pending.attempts;
    }
    ++queries_reissued_;
    SWEEP_LOG(Debug) << name() << " re-issuing query #" << query_id
                     << " (attempt " << pending.attempts << ")";
    network_->Send(site_id_, pending.target_site, pending.request);
    ArmQueryTimer(query_id);
  });
}

void Warehouse::HandleQueryAnswer(QueryAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use sweep queries");
}

void Warehouse::HandleEcaAnswer(EcaQueryAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use ECA queries");
}

void Warehouse::HandleSnapshotAnswer(SnapshotAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use snapshots");
}

int64_t Warehouse::SendSweepQuery(int target_rel, bool extend_left,
                                  PartialDelta partial) {
  int64_t id = NextQueryId();
  ++queries_sent_;
  QueryRequest request;
  request.query_id = id;
  request.target_rel = target_rel;
  request.extend_left = extend_left;
  request.epoch = epoch_;
  request.partial = std::move(partial);
  RegisterQuery(id, source_site(target_rel), request);
  network_->Send(site_id_, source_site(target_rel), std::move(request));
  return id;
}

int64_t Warehouse::SendEcaQuery(std::vector<EcaTerm> terms) {
  int64_t id = NextQueryId();
  ++queries_sent_;
  EcaQueryRequest request{id, std::move(terms), epoch_};
  RegisterQuery(id, source_site(0), request);
  network_->Send(site_id_, source_site(0), std::move(request));
  return id;
}

int64_t Warehouse::SendSnapshotRequest(int target_rel) {
  int64_t id = NextQueryId();
  ++queries_sent_;
  int target = source_site(target_rel);
  // A multi-relation site answers one snapshot request with one
  // SnapshotAnswer per relation it hosts.
  int expected = 0;
  for (int rel = 0; rel < view_def_.num_relations(); ++rel) {
    if (source_site(rel) == target) ++expected;
  }
  SnapshotRequest request{id, epoch_};
  RegisterQuery(id, target, request, expected);
  network_->Send(site_id_, target, request);
  return id;
}

void Warehouse::InstallViewDelta(const Relation& view_delta,
                                 std::vector<int64_t> update_ids) {
  view_.Merge(view_delta);
  SWEEP_LOG(Debug) << name() << " installed delta "
                   << view_delta.ToDisplayString() << " -> "
                   << view_.ToDisplayString();
  // sweeplint:allow effect-bounds observer_ is wiring-time instrumentation
  // (sharded-view fragment sums, bench taps); controlled explorations
  // never install one, and the dynamic oracle enforces that.
  if (observer_) observer_(view_delta, update_ids);
  RecordInstall(std::move(update_ids));
}

void Warehouse::InstallAbsoluteView(Relation new_view,
                                    std::vector<int64_t> update_ids) {
  if (observer_) {
    Relation delta = new_view;
    delta.MergeNegated(view_);
    // sweeplint:allow effect-bounds observer_ is wiring-time
    // instrumentation; controlled explorations never install one, and
    // the dynamic oracle enforces that.
    observer_(delta, update_ids);
  }
  view_ = std::move(new_view);
  RecordInstall(std::move(update_ids));
}

void Warehouse::RecordInstall(std::vector<int64_t> update_ids) {
  updates_incorporated_ += static_cast<int64_t>(update_ids.size());
  const SimTime now = network_->simulator()->now();
  for (int64_t id : update_ids) install_time_log_.emplace_back(id, now);
  if (!options_.log_installs) return;
  InstallRecord record;
  record.time = network_->simulator()->now();
  record.update_ids = std::move(update_ids);
  record.view_after = view_;
  record.negative_counts = view_.HasNegative();
  installs_.push_back(std::move(record));
}

void Warehouse::DiscardForeignQueueHead() {
  while (!queue_.empty() && !OwnsUpdate(queue_.front())) {
    foreign_skip_log_.emplace_back(queue_.front().id,
                                   network_->simulator()->now());
    ++foreign_updates_discarded_;
    SWEEP_LOG(Debug) << name() << " discarded foreign update #"
                     << queue_.front().id;
    queue_.pop_front();
  }
}

Relation Warehouse::MergedQueueDeltaFor(int rel) const {
  Relation merged(view_def_.rel_schema(rel));
  for (const Update& u : queue_) {
    if (u.relation == rel) merged.Merge(u.delta);
  }
  return merged;
}

int Warehouse::source_site(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < static_cast<int>(source_sites_.size()));
  return source_sites_[static_cast<size_t>(rel)];
}

}  // namespace sweepmv
