#include "core/warehouse.h"

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

Warehouse::Warehouse(int site_id, ViewDef view_def, Network* network,
                     std::vector<int> source_sites, Options options)
    : site_id_(site_id),
      view_def_(std::move(view_def)),
      network_(network),
      source_sites_(std::move(source_sites)),
      options_(options),
      view_(view_def_.view_schema()),
      update_watermarks_(
          static_cast<size_t>(view_def_.num_relations()), -1) {
  SWEEP_CHECK(network != nullptr);
  SWEEP_CHECK(static_cast<int>(source_sites_.size()) ==
              view_def_.num_relations());
}

bool Warehouse::IsDuplicateUpdate(const Update& update) {
  if (options_.fifo_update_streams) {
    SWEEP_CHECK(update.relation >= 0 &&
                update.relation <
                    static_cast<int>(update_watermarks_.size()));
    int64_t& watermark =
        update_watermarks_[static_cast<size_t>(update.relation)];
    if (update.id <= watermark) return true;
    watermark = update.id;
    return false;
  }
  return !seen_update_ids_.insert(update.id).second;
}

void Warehouse::InitializeView(Relation initial_view) {
  SWEEP_CHECK_MSG(arrival_log_.empty() && installs_.empty(),
                  "InitializeView must precede the first update");
  view_ = std::move(initial_view);
}

void Warehouse::OnMessage(int from, Message msg) {
  (void)from;
  if (auto* update = std::get_if<UpdateMessage>(&msg)) {
    if (IsDuplicateUpdate(update->update)) {
      // Redundant notification — a restarted source replaying its log, or
      // at-least-once delivery without the session layer. The arrival
      // order that defines consistency is the order of *first* arrivals.
      ++duplicate_updates_ignored_;
      SWEEP_LOG(Debug) << name() << " ignored duplicate "
                       << update->update.ToDisplayString();
      return;
    }
    arrival_log_.emplace_back(update->update.id,
                              network_->simulator()->now());
    SWEEP_LOG(Debug) << name() << " received "
                     << update->update.ToDisplayString();
    queue_.push_back(std::move(update->update));
    HandleUpdateArrival();
    return;
  }
  if (auto* answer = std::get_if<QueryAnswer>(&msg)) {
    if (!ResolveQuery(answer->query_id)) return;
    HandleQueryAnswer(std::move(*answer));
    return;
  }
  if (auto* answer = std::get_if<EcaQueryAnswer>(&msg)) {
    if (!ResolveQuery(answer->query_id)) return;
    HandleEcaAnswer(std::move(*answer));
    return;
  }
  if (auto* answer = std::get_if<SnapshotAnswer>(&msg)) {
    if (!ResolveSnapshotPart(answer->query_id, answer->relation)) return;
    HandleSnapshotAnswer(std::move(*answer));
    return;
  }
  SWEEP_CHECK_MSG(false, "warehouse received an unexpected message type");
}

void Warehouse::RegisterQuery(int64_t query_id, int target_site,
                              const Message& request, int expected_answers) {
  PendingQuery pending;
  pending.target_site = target_site;
  pending.expected_answers = expected_answers;
  if (options_.query_timeout > 0) pending.request = request;
  pending_queries_.emplace(query_id, std::move(pending));
  if (options_.query_timeout > 0) {
    ArmQueryTimer(query_id, options_.query_timeout);
  }
}

bool Warehouse::ResolveQuery(int64_t query_id) {
  if (pending_queries_.erase(query_id) == 0) {
    // A duplicate answer (query re-issue raced the original answer) or an
    // answer from a dead incarnation. The first answer won; drop this one.
    ++stale_answers_ignored_;
    SWEEP_LOG(Debug) << name() << " dropped stale answer #" << query_id;
    return false;
  }
  return true;
}

bool Warehouse::ResolveSnapshotPart(int64_t query_id, int relation) {
  auto it = pending_queries_.find(query_id);
  if (it == pending_queries_.end()) {
    ++stale_answers_ignored_;
    SWEEP_LOG(Debug) << name() << " dropped stale snapshot part #"
                     << query_id << " R" << relation;
    return false;
  }
  PendingQuery& pending = it->second;
  if (!pending.relations_seen.insert(relation).second) {
    ++stale_answers_ignored_;
    SWEEP_LOG(Debug) << name() << " dropped re-delivered snapshot part #"
                     << query_id << " R" << relation;
    return false;
  }
  if (static_cast<int>(pending.relations_seen.size()) >=
      pending.expected_answers) {
    pending_queries_.erase(it);
  }
  return true;
}

Warehouse::SavedState Warehouse::SaveState() const {
  SavedState state;
  state.view = view_;
  state.queue = queue_;
  state.arrival_log = arrival_log_;
  state.installs = installs_;
  state.updates_incorporated = updates_incorporated_;
  state.queries_sent = queries_sent_;
  state.next_query_id = next_query_id_;
  state.update_watermarks = update_watermarks_;
  state.seen_update_ids = seen_update_ids_;
  state.pending_queries = pending_queries_;
  state.duplicate_updates_ignored = duplicate_updates_ignored_;
  state.stale_answers_ignored = stale_answers_ignored_;
  state.queries_reissued = queries_reissued_;
  state.alg = SaveAlgState();
  return state;
}

void Warehouse::RestoreState(const SavedState& state) {
  view_ = state.view;
  queue_ = state.queue;
  arrival_log_ = state.arrival_log;
  installs_ = state.installs;
  updates_incorporated_ = state.updates_incorporated;
  queries_sent_ = state.queries_sent;
  next_query_id_ = state.next_query_id;
  update_watermarks_ = state.update_watermarks;
  seen_update_ids_ = state.seen_update_ids;
  pending_queries_ = state.pending_queries;
  duplicate_updates_ignored_ = state.duplicate_updates_ignored;
  stale_answers_ignored_ = state.stale_answers_ignored;
  queries_reissued_ = state.queries_reissued;
  SWEEP_CHECK(state.alg != nullptr);
  RestoreAlgState(*state.alg);
}

std::shared_ptr<const Warehouse::AlgState> Warehouse::SaveAlgState() const {
  SWEEP_CHECK_MSG(false, "this warehouse does not implement snapshot/"
                         "restore (SaveAlgState)");
  return nullptr;
}

void Warehouse::RestoreAlgState(const AlgState&) {
  SWEEP_CHECK_MSG(false, "this warehouse does not implement snapshot/"
                         "restore (RestoreAlgState)");
}

void Warehouse::ArmQueryTimer(int64_t query_id, SimTime delay) {
  // lint:allow direct-schedule local timer, not a protocol message: fires
  // at this site only, sends nothing itself, so it needs no EventLabel
  // channel and cannot perturb per-link FIFO order.
  network_->simulator()->Schedule(delay, [this, query_id, delay]() {
    auto it = pending_queries_.find(query_id);
    if (it == pending_queries_.end()) return;  // answered meanwhile
    PendingQuery& pending = it->second;
    if (pending.attempts > options_.query_retry_limit) {
      SWEEP_LOG(Info) << name() << " gave up on query #" << query_id
                      << " after " << options_.query_retry_limit
                      << " re-issues";
      return;
    }
    ++pending.attempts;
    ++queries_reissued_;
    SWEEP_LOG(Debug) << name() << " re-issuing query #" << query_id
                     << " (attempt " << pending.attempts << ")";
    network_->Send(site_id_, pending.target_site, pending.request);
    ArmQueryTimer(query_id, delay * 2);
  });
}

void Warehouse::HandleQueryAnswer(QueryAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use sweep queries");
}

void Warehouse::HandleEcaAnswer(EcaQueryAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use ECA queries");
}

void Warehouse::HandleSnapshotAnswer(SnapshotAnswer) {
  SWEEP_CHECK_MSG(false, "this algorithm does not use snapshots");
}

int64_t Warehouse::SendSweepQuery(int target_rel, bool extend_left,
                                  PartialDelta partial) {
  int64_t id = next_query_id_++;
  ++queries_sent_;
  QueryRequest request;
  request.query_id = id;
  request.target_rel = target_rel;
  request.extend_left = extend_left;
  request.partial = std::move(partial);
  RegisterQuery(id, source_site(target_rel), request);
  network_->Send(site_id_, source_site(target_rel), std::move(request));
  return id;
}

int64_t Warehouse::SendEcaQuery(std::vector<EcaTerm> terms) {
  int64_t id = next_query_id_++;
  ++queries_sent_;
  EcaQueryRequest request{id, std::move(terms)};
  RegisterQuery(id, source_site(0), request);
  network_->Send(site_id_, source_site(0), std::move(request));
  return id;
}

int64_t Warehouse::SendSnapshotRequest(int target_rel) {
  int64_t id = next_query_id_++;
  ++queries_sent_;
  int target = source_site(target_rel);
  // A multi-relation site answers one snapshot request with one
  // SnapshotAnswer per relation it hosts.
  int expected = 0;
  for (int rel = 0; rel < view_def_.num_relations(); ++rel) {
    if (source_site(rel) == target) ++expected;
  }
  RegisterQuery(id, target, SnapshotRequest{id}, expected);
  network_->Send(site_id_, target, SnapshotRequest{id});
  return id;
}

void Warehouse::InstallViewDelta(const Relation& view_delta,
                                 std::vector<int64_t> update_ids) {
  view_.Merge(view_delta);
  SWEEP_LOG(Debug) << name() << " installed delta "
                   << view_delta.ToDisplayString() << " -> "
                   << view_.ToDisplayString();
  if (observer_) observer_(view_delta, update_ids);
  RecordInstall(std::move(update_ids));
}

void Warehouse::InstallAbsoluteView(Relation new_view,
                                    std::vector<int64_t> update_ids) {
  if (observer_) {
    Relation delta = new_view;
    delta.MergeNegated(view_);
    observer_(delta, update_ids);
  }
  view_ = std::move(new_view);
  RecordInstall(std::move(update_ids));
}

void Warehouse::RecordInstall(std::vector<int64_t> update_ids) {
  updates_incorporated_ += static_cast<int64_t>(update_ids.size());
  if (!options_.log_installs) return;
  InstallRecord record;
  record.time = network_->simulator()->now();
  record.update_ids = std::move(update_ids);
  record.view_after = view_;
  record.negative_counts = view_.HasNegative();
  installs_.push_back(std::move(record));
}

Relation Warehouse::MergedQueueDeltaFor(int rel) const {
  Relation merged(view_def_.rel_schema(rel));
  for (const Update& u : queue_) {
    if (u.relation == rel) merged.Merge(u.delta);
  }
  return merged;
}

int Warehouse::source_site(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < static_cast<int>(source_sites_.size()));
  return source_sites_[static_cast<size_t>(rel)];
}

}  // namespace sweepmv
