// Warehouse base: shared infrastructure of every maintenance algorithm.
//
// Figure 4's DataWarehouse module splits into two concerns. This class
// provides the algorithm-independent half:
//   * the LogUpdates process — arriving UpdateMessages are appended to the
//     UpdateMessageQueue and timestamped (the arrival order *defines* the
//     total order complete consistency must preserve);
//   * the materialized view with multiplicity counts, and an install log
//     recording, for every view transition, which update ids it
//     incorporated (instrumentation for the consistency checker);
//   * query plumbing toward the sources.
// Subclasses implement the UpdateView / ViewChange logic of a specific
// algorithm as an event-driven state machine.
//
// Robustness (docs/fault_model.md): the base class also makes the
// warehouse idempotent under at-least-once delivery — duplicate update
// notifications (e.g. a restarted source replaying its committed log) are
// discarded by id before they reach the queue, answers to queries that
// are no longer outstanding are dropped before they reach the algorithm,
// and an optional timeout re-issues unanswered queries verbatim so a
// source crash cannot wedge a sweep.

#ifndef SWEEPMV_CORE_WAREHOUSE_H_
#define SWEEPMV_CORE_WAREHOUSE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include <memory>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/snapshot.h"
#include "common/undo.h"
#include "core/checkpoint.h"
#include "relational/partial_delta.h"
#include "relational/relation.h"
#include "relational/view_def.h"
#include "sim/network.h"
#include "sim/site.h"
#include "source/update.h"

namespace sweepmv {

// One view transition.
struct InstallRecord {
  SimTime time = 0;
  // Updates newly incorporated by this transition (empty only for the
  // recompute baseline's absolute installs, which list ids separately).
  std::vector<int64_t> update_ids;
  // Snapshot of the view after the transition.
  Relation view_after;
  // True if the view held a negative count after the install — a
  // correctness red flag the checker also looks at.
  bool negative_counts = false;

  bool operator==(const InstallRecord&) const = default;
};

class Warehouse : public Site {
 public:
  struct Options {
    // Record a full view snapshot per install (consistency checking).
    // Disable for large throughput benches.
    bool log_installs = true;
    // When > 0: an outstanding query unanswered for this many ticks is
    // re-issued verbatim (same query_id — sources answer idempotently and
    // stale/duplicate answers are discarded here), under capped
    // exponential backoff with deterministic per-(query, attempt) jitter
    // (see Warehouse::BackoffDelay). Heals queries lost to a source
    // crash. 0 disables the timer entirely (no behavioural or
    // event-count change).
    SimTime query_timeout = 0;
    // Re-issue attempts per query before giving up.
    int query_retry_limit = 8;
    // Backoff ceiling as a multiple of query_timeout: attempt n waits
    // min(query_timeout * 2^(n-1), query_timeout * cap) plus jitter.
    int query_backoff_cap = 16;
    // Durability (docs/fault_model.md §6). When > 0 the warehouse keeps
    // an in-sim durable store — a serialized checkpoint of the full
    // protocol state plus a WAL of post-checkpoint update messages — and
    // cuts a fresh checkpoint once the WAL holds this many updates.
    // Crash/recovery requires it; 0 (the default) keeps the warehouse
    // volatile with zero overhead.
    int checkpoint_every = 0;
    // Discard query answers stamped with a recovery epoch other than the
    // current one. This is what makes recovery sound in the presence of
    // in-flight pre-crash answers; the switch exists only so the
    // explorer's negative scenario can demonstrate the anomaly
    // (verify/scenarios.h). Never disable it otherwise.
    bool filter_stale_epochs = true;
    // Duplicate-update detection strategy. True (the default) assumes
    // each relation's update notifications arrive in id order — which
    // holds on pristine links and on faulty links under the session
    // layer, since ids are assigned in source commit order, crash
    // replays resend the log in order, and delivery is FIFO per link.
    // Dedup state is then one high-water id per relation (bounded
    // forever) instead of a grow-only id set: an arriving id at or below
    // its relation's watermark was, by the FIFO argument, already
    // delivered — the cumulative-ack reasoning of the session layer
    // lifted to update ids. Set false only when updates can genuinely
    // reorder (faulty links with the reliability layer disabled); the
    // warehouse then falls back to remembering every id.
    bool fifo_update_streams = true;
    // --- Sharded operation (src/shard/, docs/sharding.md) ---------------
    // A sharded deployment runs several Warehouse instances over the same
    // update stream, each owning a disjoint slice of it. Every shard sees
    // every update (the router broadcasts in arrival order, so queue
    // compensation still observes all interfering updates), but only the
    // owner runs a sweep and installs the delta; foreign updates are
    // discarded when they reach the queue head with no sweep active.
    // `shard_of` maps an update to its owning shard index; null (the
    // default) means "own everything" — bit-for-bit the unsharded
    // behaviour.
    int shard_index = 0;
    std::function<int(const Update&)> shard_of;
    // Query-id striping: shard s draws ids s, s+stride, 2*stride+s, ...
    // so ids are disjoint across shards and the router can route a
    // QueryAnswer back to its shard as query_id % stride. The defaults
    // (0, 1) reproduce the unsharded sequence 0, 1, 2, ...
    int64_t query_id_origin = 0;
    int64_t query_id_stride = 1;
  };

  // `source_sites[r]` is the site id serving queries for relation r (all
  // entries alias the same site for ECA's single-source architecture).
  Warehouse(int site_id, ViewDef view_def, Network* network,
            std::vector<int> source_sites, Options options);

  ~Warehouse() override = default;

  // Sets the initial materialized view ("V is initialized to the correct
  // value", Figure 4). Must be called before any update arrives.
  void InitializeView(Relation initial_view);

  // Algorithm-specific initial state derived from the initial base
  // relations (e.g. the Strobe family's full-span key-preserving view).
  // Called by the scenario harness right after InitializeView.
  virtual void InitializeAuxiliary(
      const std::vector<Relation>& initial_bases) {
    (void)initial_bases;
  }

  void OnMessage(int from, Message msg) final;

  // True while the warehouse has in-flight work beyond queued updates
  // (outstanding queries, an active sweep, a pending action list...).
  virtual bool Busy() const = 0;

  // Algorithm name for reports.
  virtual std::string name() const = 0;

  const ViewDef& view_def() const { return view_def_; }
  const Relation& view() const { return view_; }
  const std::deque<Update>& update_queue() const { return queue_; }
  const std::vector<InstallRecord>& install_log() const { return installs_; }

  // Delivery log: (update id, arrival time) in warehouse arrival order.
  const std::vector<std::pair<int64_t, SimTime>>& arrival_log() const {
    return arrival_log_;
  }

  // Observer invoked on every view transition with the signed view delta
  // and the ids it incorporated — the hook downstream incremental
  // consumers (e.g. MaintainedAggregate) attach to.
  using InstallObserver = std::function<void(
      const Relation& view_delta, const std::vector<int64_t>& ids)>;
  void SetInstallObserver(InstallObserver observer) {
    observer_ = std::move(observer);
  }

  int64_t updates_received() const {
    return static_cast<int64_t>(arrival_log_.size());
  }
  int64_t updates_incorporated() const { return updates_incorporated_; }
  int64_t queries_sent() const { return queries_sent_; }
  // Robustness counters: redundant update notifications discarded (crash
  // replays / at-least-once delivery), answers for no-longer-outstanding
  // queries discarded, and queries re-issued after a timeout.
  int64_t duplicate_updates_ignored() const {
    return duplicate_updates_ignored_;
  }
  int64_t stale_answers_ignored() const { return stale_answers_ignored_; }
  int64_t queries_reissued() const { return queries_reissued_; }
  // Sharding counters: updates another shard owned, discarded at the
  // queue head without maintenance here. (id, discard time) pairs in
  // discard order — the cross-shard checker merges these with the
  // install log to recover each shard's per-relation retire order.
  int64_t foreign_updates_discarded() const {
    return foreign_updates_discarded_;
  }
  const std::vector<std::pair<int64_t, SimTime>>& foreign_skip_log() const {
    return foreign_skip_log_;
  }
  // (update id, install time) per incorporated update, kept even with
  // log_installs off — the lightweight trace staleness percentiles are
  // computed from at bench scale (the full InstallRecord log would hold
  // a view snapshot per transition).
  const std::vector<std::pair<int64_t, SimTime>>& install_time_log() const {
    return install_time_log_;
  }

  // --- Crash/recovery (docs/fault_model.md §6) --------------------------
  //
  // The warehouse is fail-stop like the sources: a crash loses all
  // volatile state; recovery rebuilds it from the durable store (the last
  // checkpoint plus the update WAL) instead of recomputing the view, then
  // re-issues every restored in-flight query stamped with a bumped
  // recovery epoch so answers addressed to the dead incarnation are
  // discarded on arrival. Requires Options::checkpoint_every > 0.

  // Harness-mode fail-stop: the site goes dark (network drops traffic to
  // and from it) until Restart(). Messages sent during the downtime are
  // healed by the session layer, so this is only sound on faulty links
  // with reliability enabled — the harness CHECKs that wiring.
  void Crash();
  // Returns under a new incarnation and runs recovery.
  void Restart();
  // Controlled-mode atomic crash+recovery in one explorable event. The
  // network is deliberately untouched: pre-crash messages stay in flight
  // on their FIFO channels, which is exactly the stale-answer hazard the
  // recovery epoch neutralizes (the explorer certifies this).
  void CrashAndRecover();

  bool crashed() const { return crashed_; }
  int64_t epoch() const { return epoch_; }
  // Recovery instrumentation: completed recoveries, WAL updates replayed
  // through the normal arrival path (the recovery-beats-recompute bench
  // metric), checkpoints cut, the largest checkpoint in bytes, answers
  // discarded for carrying a dead incarnation's epoch, and the maximum
  // send attempts any single query needed (1 = no re-issue ever).
  int64_t recoveries() const { return recoveries_; }
  int64_t wal_replayed() const { return wal_replayed_; }
  int64_t checkpoints_taken() const { return checkpoints_taken_; }
  int64_t checkpoint_bytes_max() const { return checkpoint_bytes_max_; }
  int64_t pre_epoch_answers_ignored() const {
    return pre_epoch_answers_ignored_;
  }
  int64_t max_query_attempts() const { return max_query_attempts_; }

  // The serialized-protocol-state half of the durable store; public so
  // tests can round-trip it. Covers exactly the SaveState member set
  // (lint_invariants.py's checkpoint-coverage rule keeps it that way)
  // plus the algorithm's SerializeAlgState half.
  std::string SerializeCheckpoint() const;
  void RestoreFromCheckpoint(const std::string& bytes);

  // Entries of duplicate-detection state that can still grow with the run
  // (the fallback id set; the per-relation watermarks are fixed-size and
  // not counted). Stays 0 under fifo_update_streams — the bound the
  // chaos tests assert.
  size_t dedup_state_size() const { return seen_update_ids_.size(); }

  // --- Snapshot/restore (schedule-space explorer) -----------------------
  //
  // SaveState copies the algorithm-independent state (view, queues, logs,
  // dedup and query bookkeeping) and delegates the algorithm-specific
  // half to the Save/RestoreAlgState virtuals each maintenance algorithm
  // implements. Restoring rewinds the warehouse to the save point;
  // combined with the simulator/network/source snapshots this lets the
  // explorer backtrack to a decision point without replaying the prefix.

 private:
  // Bookkeeping for idempotent query re-issue: remembers the request and
  // its target site until the answer arrives. The request copy is only
  // kept when timeouts are enabled. Snapshot requests to a multi-relation
  // site are answered by several SnapshotAnswers sharing the query id
  // (one per hosted relation); such a query stays pending until every
  // expected relation has answered, and `relations_seen` detects
  // re-delivered parts when a re-issue races the original answers.
  // (Defined here, ahead of the private section, so SavedState below can
  // hold a map of them.)
  struct PendingQuery {
    Message request;
    int target_site = -1;
    int attempts = 1;
    int expected_answers = 1;
    std::unordered_set<int> relations_seen;

    bool operator==(const PendingQuery&) const = default;
  };

 public:
  // Type-erased algorithm-specific half of a warehouse snapshot.
  struct AlgState {
    virtual ~AlgState() = default;
  };

  class SavedState {
   public:
    SavedState() = default;

   private:
    friend class Warehouse;
    Relation view;
    std::deque<Update> queue;
    std::vector<std::pair<int64_t, SimTime>> arrival_log;
    std::vector<InstallRecord> installs;
    int64_t updates_incorporated = 0;
    int64_t queries_sent = 0;
    int64_t next_query_id = 0;
    std::vector<int64_t> update_watermarks;
    std::unordered_set<int64_t> seen_update_ids;
    std::map<int64_t, PendingQuery> pending_queries;
    int64_t duplicate_updates_ignored = 0;
    int64_t stale_answers_ignored = 0;
    int64_t queries_reissued = 0;
    std::vector<std::pair<int64_t, SimTime>> foreign_skip_log;
    int64_t foreign_updates_discarded = 0;
    std::vector<std::pair<int64_t, SimTime>> install_time_log;
    std::string durable_checkpoint;
    std::vector<Update> durable_wal;
    int64_t durable_epoch = 0;
    int64_t epoch = 0;
    bool crashed = false;
    bool recovering = false;
    int64_t timer_gen = 0;
    int64_t recoveries = 0;
    int64_t wal_replayed = 0;
    int64_t checkpoints_taken = 0;
    int64_t checkpoint_bytes_max = 0;
    int64_t pre_epoch_answers_ignored = 0;
    int64_t max_query_attempts = 0;
    std::shared_ptr<const AlgState> alg;
  };
  SavedState SaveState() const;
  void RestoreState(const SavedState& state);

  // --- Undo log + fingerprint (schedule-space explorer) -----------------

  // Installs the undo log the mutation entry points capture into (see
  // common/undo.h). Null detaches.
  void AttachUndo(UndoLog* undo) { undo_ = undo; }

  // Absorbs the warehouse state into `h`: the canonical checkpoint bytes
  // (which cover the SaveState member set plus the algorithm half, with
  // sorted iteration everywhere) and the checkpoint-exempt durability /
  // recovery members. Identical in exact and canonical mode.
  void DescribeState(StateHasher& h) const;

 protected:
  // Algorithm-specific undo hook: value-captures exactly the members
  // SaveAlgState copies (sweeplint's undo-coverage rule keeps the sets in
  // sync). The default fails loudly, like SaveAlgState.
  virtual void CaptureUndoAlgState(UndoLog& undo);

  // Algorithm-specific snapshot hooks. Every maintenance algorithm in
  // src/core overrides both; the defaults fail loudly so a new algorithm
  // cannot silently explore with half-restored state. (Restores receive
  // only AlgState objects their own SaveAlgState produced.)
  virtual std::shared_ptr<const AlgState> SaveAlgState() const;
  virtual void RestoreAlgState(const AlgState& state);

  // Durable-checkpoint hooks: the byte-codec counterparts of
  // Save/RestoreAlgState, covering the same member sets (enforced by
  // lint_invariants.py's checkpoint-coverage rule). The defaults fail
  // loudly so an algorithm cannot silently run with a half-durable
  // warehouse.
  virtual void SerializeAlgState(CheckpointWriter& w) const;
  virtual void DeserializeAlgState(CheckpointReader& r);

  // Convenience holder for a subclass's saved members.
  template <typename T>
  struct TypedAlgState : AlgState {
    explicit TypedAlgState(T d) : data(std::move(d)) {}
    T data;
  };
  // Downcast helper for RestoreAlgState implementations.
  template <typename T>
  static const T& AlgStateAs(const AlgState& state) {
    const auto* typed = dynamic_cast<const TypedAlgState<T>*>(&state);
    SWEEP_CHECK_MSG(typed != nullptr,
                    "algorithm snapshot type mismatch on restore");
    return typed->data;
  }

  // Invoked after an update was appended to the queue.
  virtual void HandleUpdateArrival() = 0;
  virtual void HandleQueryAnswer(QueryAnswer answer);
  virtual void HandleEcaAnswer(EcaQueryAnswer answer);
  virtual void HandleSnapshotAnswer(SnapshotAnswer answer);

  // Sends a sweep-style incremental query asking the source of
  // `target_rel` to widen `partial` on the given side. Returns the query
  // id.
  int64_t SendSweepQuery(int target_rel, bool extend_left,
                         PartialDelta partial);

  // Sends an ECA signed-term query to the (single) source site.
  int64_t SendEcaQuery(std::vector<EcaTerm> terms);

  // Asks the source of `target_rel` for a full snapshot (recompute
  // baseline).
  int64_t SendSnapshotRequest(int target_rel);

  // Merges `view_delta` (over the view's output schema) into the
  // materialized view and logs the transition.
  void InstallViewDelta(const Relation& view_delta,
                        std::vector<int64_t> update_ids);

  // Replaces the view wholesale (recompute baseline) and logs.
  void InstallAbsoluteView(Relation new_view,
                           std::vector<int64_t> update_ids);

  // Merges every queued update of relation `rel` into one delta (the
  // paper's "multiple interfering updates ... merged into a single ΔRj").
  Relation MergedQueueDeltaFor(int rel) const;

  // True if this warehouse is responsible for maintaining the view
  // against `update` (always true unless Options::shard_of is set).
  bool OwnsUpdate(const Update& update) const {
    // sweeplint:allow effect-bounds shard_of is a pure content hash fixed
    // at wiring time (shard/router.cc); it reads no mutable state.
    return !options_.shard_of ||
           options_.shard_of(update) == options_.shard_index;
  }

  // Pops foreign updates off the queue head, logging each discard. Only
  // legal while no sweep is active: a running sweep's compensation needs
  // every queued interfering update, owned or not, so algorithms call
  // this exactly at the start-next-sweep decision point.
  void DiscardForeignQueueHead();

  std::deque<Update>& mutable_queue() { return queue_; }
  Network* network() { return network_; }
  int site_id() const { return site_id_; }
  int source_site(int rel) const;

 private:
  // Records the SaveState member set into the attached undo log; called
  // at the top of every mutation entry point. Normal eras record the
  // append-only logs as truncate-to-length tails; `full` eras (the
  // crash/recovery path, whose RestoreFromCheckpoint clears and rebuilds
  // them) value-capture everything. The durable store is always
  // value-captured: TakeCheckpoint truncates the WAL mid-event.
  void CaptureUndo(bool full);

  void RecordInstall(std::vector<int64_t> update_ids);

  // Draws the next query id under the shard stripe (origin + n * stride).
  int64_t NextQueryId() {
    int64_t id = next_query_id_;
    next_query_id_ += options_.query_id_stride;
    return id;
  }

  void RegisterQuery(int64_t query_id, int target_site,
                     const Message& request, int expected_answers = 1);
  // Removes the entry; false if the id is not outstanding (stale answer).
  bool ResolveQuery(int64_t query_id);
  // Consumes one relation's part of a multi-answer snapshot query; false
  // if the id is not outstanding or this relation already answered.
  bool ResolveSnapshotPart(int64_t query_id, int relation);
  void ArmQueryTimer(int64_t query_id);
  // Delay before re-issue attempt `attempt` of `query_id`: capped
  // exponential backoff plus deterministic jitter.
  SimTime BackoffDelay(int64_t query_id, int attempt) const;

  // --- Durability internals ---------------------------------------------
  bool DurabilityOn() const { return options_.checkpoint_every > 0; }
  // The shared arrival path: dedup, WAL append, queue, algorithm dispatch
  // and checkpoint cadence. Both live deliveries and recovery's WAL
  // replay flow through it (recovering_ suppresses the WAL/checkpoint
  // steps during the replay itself).
  void AcceptUpdate(UpdateMessage update);
  // Serializes the full protocol state into durable_.checkpoint and
  // truncates the WAL.
  void TakeCheckpoint();
  // Rebuilds volatile state from the durable store: bump the epoch,
  // restore the last checkpoint, re-issue restored in-flight queries
  // under the new epoch, replay the WAL.
  void Recover();
  // Overwrites the epoch stamp of a stored query request.
  static void StampEpoch(Message* request, int64_t epoch);

  SWEEP_SNAPSHOT_EXEMPT("site identity, fixed at construction")
  int site_id_;
  SWEEP_SNAPSHOT_EXEMPT("view definition is immutable configuration")
  ViewDef view_def_;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring to the network, which snapshots its own channel state")
  Network* network_;
  SWEEP_SNAPSHOT_EXEMPT("topology (which sites host base relations), fixed "
                        "at construction")
  std::vector<int> source_sites_;
  SWEEP_SNAPSHOT_EXEMPT("tuning knobs, fixed at construction")
  Options options_;

  Relation view_;
  std::deque<Update> queue_;
  std::vector<std::pair<int64_t, SimTime>> arrival_log_;
  std::vector<InstallRecord> installs_;
  int64_t updates_incorporated_ = 0;
  int64_t queries_sent_ = 0;
  int64_t next_query_id_ = 0;
  // True if the arriving update is a redundant notification; records it
  // as seen otherwise. Watermark-based under fifo_update_streams,
  // id-set-based otherwise.
  bool IsDuplicateUpdate(const Update& update);
  // Highest update id seen per relation (-1 = none); the bounded dedup
  // state under fifo_update_streams.
  std::vector<int64_t> update_watermarks_;
  // Fallback dedup state when update streams may reorder.
  std::unordered_set<int64_t> seen_update_ids_;
  std::map<int64_t, PendingQuery> pending_queries_;
  int64_t duplicate_updates_ignored_ = 0;
  int64_t stale_answers_ignored_ = 0;
  int64_t queries_reissued_ = 0;
  // Sharding: (id, time) of foreign updates discarded at the queue head,
  // and their count (equal to the log's size, kept separately so the
  // counter survives a hypothetical log trim).
  std::vector<std::pair<int64_t, SimTime>> foreign_skip_log_;
  int64_t foreign_updates_discarded_ = 0;
  // (id, install time) per incorporated update; see install_time_log().
  std::vector<std::pair<int64_t, SimTime>> install_time_log_;
  // The in-sim durable store: what survives a warehouse crash. The
  // checkpoint is cut lazily before the first arrival, then re-cut every
  // checkpoint_every WAL appends; the WAL holds the updates accepted
  // since. durable_epoch_ lives here conceptually too (it must survive
  // repeated crashes) but is kept as a plain member for the snapshot
  // macro's benefit.
  std::string durable_checkpoint_;
  std::vector<Update> durable_wal_;
  int64_t durable_epoch_ = 0;
  // Current incarnation: stamped on every outgoing query, bumped by
  // Recover(). Always equals durable_epoch_ between events.
  int64_t epoch_ = 0;
  // Harness-mode fail-stop flag (controlled-mode recovery never sets it).
  bool crashed_ = false;
  // True only inside Recover()'s WAL replay.
  bool recovering_ = false;
  // Bumped on recovery so query timers armed by a dead incarnation
  // disarm themselves.
  int64_t timer_gen_ = 0;
  int64_t recoveries_ = 0;
  int64_t wal_replayed_ = 0;
  int64_t checkpoints_taken_ = 0;
  int64_t checkpoint_bytes_max_ = 0;
  int64_t pre_epoch_answers_ignored_ = 0;
  int64_t max_query_attempts_ = 0;
  SWEEP_SNAPSHOT_EXEMPT(
      "observer hook owned by the harness; consumers that accumulate "
      "state from it (e.g. MaintainedAggregate) are outside the explored "
      "system by design")
  InstallObserver observer_;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring, not state: the explorer owns the undo log and manages its "
      "watermarks across backtracks")
  UndoLog* undo_ = nullptr;
};

}  // namespace sweepmv

#endif  // SWEEPMV_CORE_WAREHOUSE_H_
