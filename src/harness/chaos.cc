#include "harness/chaos.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace sweepmv {

FaultPlan MakeChaosPlan(const ChaosSpec& spec) {
  SWEEP_CHECK(spec.horizon > 0 && spec.num_relations > 0);
  SWEEP_CHECK(spec.num_crashes <= spec.num_relations);
  Rng rng(spec.seed);

  FaultPlan plan;
  plan.enabled = true;
  plan.faults.drop_prob = spec.drop_prob;
  plan.faults.dup_prob = spec.dup_prob;
  plan.faults.burst_prob = spec.burst_prob;
  plan.faults.burst_delay = spec.burst_delay;

  for (int i = 0; i < spec.num_partitions; ++i) {
    FaultModel::Partition window;
    window.start = rng.Uniform(0, spec.horizon - 1);
    window.end = window.start + spec.partition_len;
    plan.faults.partitions.push_back(window);
  }

  // Crash victims without replacement so two crashes of the same source
  // cannot overlap (DataSource::Crash CHECKs against double crashes).
  std::vector<int> victims(static_cast<size_t>(spec.num_relations));
  for (int r = 0; r < spec.num_relations; ++r) {
    victims[static_cast<size_t>(r)] = r;
  }
  for (int i = 0; i < spec.num_crashes; ++i) {
    int64_t pick =
        rng.Uniform(i, static_cast<int64_t>(victims.size()) - 1);
    std::swap(victims[static_cast<size_t>(i)],
              victims[static_cast<size_t>(pick)]);
    FaultPlan::CrashEvent crash;
    crash.relation = victims[static_cast<size_t>(i)];
    // Crashes land in the later three quarters of the horizon, after the
    // victim has (almost surely) committed something — a crash before the
    // first transaction exercises nothing.
    crash.crash_at = rng.Uniform(spec.horizon / 4, spec.horizon - 1);
    crash.restart_at = crash.crash_at + spec.crash_len;
    plan.crashes.push_back(crash);
  }

  // Warehouse crash windows: drawn uniformly like source crashes, then
  // sorted and pushed apart so consecutive windows never overlap (a down
  // warehouse cannot crash again until it restarts).
  if (spec.num_warehouse_crashes > 0) {
    plan.checkpoint_every = spec.warehouse_checkpoint_every;
    std::vector<SimTime> starts;
    for (int i = 0; i < spec.num_warehouse_crashes; ++i) {
      starts.push_back(rng.Uniform(spec.horizon / 4, spec.horizon - 1));
    }
    std::sort(starts.begin(), starts.end());
    SimTime min_start = 0;
    for (SimTime start : starts) {
      start = std::max(start, min_start);
      FaultPlan::WarehouseCrashEvent crash;
      crash.crash_at = start;
      crash.restart_at = start + spec.warehouse_crash_len;
      plan.warehouse_crashes.push_back(crash);
      min_start = crash.restart_at + 1;
    }
  }

  plan.query_timeout = spec.query_timeout;
  plan.query_retry_limit = spec.query_retry_limit;
  return plan;
}

}  // namespace sweepmv
