// Chaos harness: turns a seed into a randomized fault schedule.
//
// A ChaosSpec describes the *intensity* of the chaos (drop/dup/burst
// probabilities, how many partition windows and source crashes to place);
// MakeChaosPlan places the actual windows and crash times deterministically
// from the seed, so a failing schedule is reproducible by seed alone. The
// chaos tests sweep seeds through this and assert that every SWEEP-family
// run under the session layer still meets its consistency promise.

#ifndef SWEEPMV_HARNESS_CHAOS_H_
#define SWEEPMV_HARNESS_CHAOS_H_

#include <cstdint>

#include "harness/scenario.h"

namespace sweepmv {

struct ChaosSpec {
  uint64_t seed = 1;

  // Per-transmission fault intensities (see FaultModel).
  double drop_prob = 0.05;
  double dup_prob = 0.02;
  double burst_prob = 0.02;
  SimTime burst_delay = 5'000;

  // Partition windows placed uniformly in [0, horizon); each lasts
  // partition_len. 0 windows is allowed.
  int num_partitions = 1;
  SimTime partition_len = 8'000;

  // Source crashes placed uniformly in [horizon/4, horizon), so the
  // victim has work in its log to replay; each victim relation is drawn
  // uniformly and restarts crash_len later. At most one crash per
  // relation (victims are drawn without replacement).
  int num_crashes = 1;
  SimTime crash_len = 10'000;
  int num_relations = 2;

  // Warehouse crash/restart windows, placed like source crashes but
  // disjoint from each other (the warehouse cannot crash while down).
  // Each enables the durable store via warehouse_checkpoint_every.
  int num_warehouse_crashes = 0;
  SimTime warehouse_crash_len = 10'000;
  int warehouse_checkpoint_every = 4;

  // The workload time span the windows and crashes are placed in.
  SimTime horizon = 100'000;

  // Warehouse query re-issue defenses for the generated plan.
  SimTime query_timeout = 30'000;
  int query_retry_limit = 10;
};

// Deterministically expands the spec into a concrete FaultPlan (session
// layer enabled; flip .reliability off to study the unprotected system).
FaultPlan MakeChaosPlan(const ChaosSpec& spec);

}  // namespace sweepmv

#endif  // SWEEPMV_HARNESS_CHAOS_H_
