#include "harness/scenario.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "consistency/replay.h"
#include "core/cstrobe.h"
#include "core/eca.h"
#include "core/nested_sweep.h"
#include "core/strobe.h"
#include "core/sweep.h"
#include "harness/stats.h"
#include "sim/simulator.h"
#include "source/data_source.h"
#include "source/eca_source.h"
#include "source/multi_source.h"

namespace sweepmv {

namespace {

constexpr int kWarehouseSite = 0;

void ExtractAlgorithmCounters(const Warehouse& warehouse,
                              RunResult* result) {
  if (auto* sweep = dynamic_cast<const SweepWarehouse*>(&warehouse)) {
    result->compensations = sweep->compensations();
  } else if (auto* nested =
                 dynamic_cast<const NestedSweepWarehouse*>(&warehouse)) {
    result->compensations = nested->compensations();
    result->nested_calls = nested->nested_calls();
    result->forced_deferrals = nested->forced_deferrals();
  } else if (auto* strobe =
                 dynamic_cast<const StrobeWarehouse*>(&warehouse)) {
    result->batch_installs = strobe->batch_installs();
  } else if (auto* cstrobe =
                 dynamic_cast<const CStrobeWarehouse*>(&warehouse)) {
    result->compensating_queries = cstrobe->compensating_queries();
  } else if (auto* eca = dynamic_cast<const EcaWarehouse*>(&warehouse)) {
    result->batch_installs = eca->batch_installs();
    result->max_query_terms = eca->max_query_terms();
    result->total_query_terms = eca->total_query_terms();
  }
}

}  // namespace

RunResult RunExplicitScenario(const ScenarioConfig& config,
                              const ViewDef& view,
                              const std::vector<Relation>& initial_bases,
                              const std::vector<ScheduledTxn>& txns) {
  const int n = view.num_relations();
  SWEEP_CHECK(static_cast<int>(initial_bases.size()) == n);

  Simulator sim;
  Network network(&sim, config.latency, config.network_seed);
  UpdateIdGenerator ids;

  const FaultPlan& plan = config.fault_plan;
  if (plan.enabled) {
    network.SetDefaultFaults(plan.faults);
    network.EnableReliability(plan.reliability);
    network.SetSessionOptions(plan.session);
  }

  const bool single_source = RequiresSingleSource(config.algorithm);
  const int per_site = std::max(1, config.relations_per_site);
  const SourceStorageOptions storage_options{config.use_indexes};

  // Topology: site id per relation, one SourceSite per relation for
  // transaction injection and ground-truth logs.
  std::vector<int> source_sites(static_cast<size_t>(n), 1);
  std::vector<SourceSite*> site_of_relation(static_cast<size_t>(n),
                                            nullptr);
  std::vector<std::unique_ptr<SourceSite>> owned_sources;
  if (single_source) {
    auto eca = std::make_unique<EcaSource>(
        /*site_id=*/1, initial_bases, &view, &network, kWarehouseSite,
        &ids);
    network.RegisterSite(1, eca.get());
    for (int r = 0; r < n; ++r) site_of_relation[static_cast<size_t>(r)] =
        eca.get();
    owned_sources.push_back(std::move(eca));
  } else {
    int next_site = 1;
    for (int lo = 0; lo < n; lo += per_site) {
      int hi = std::min(n, lo + per_site);
      int site_id = next_site++;
      std::unique_ptr<SourceSite> site;
      if (hi - lo == 1) {
        site = std::make_unique<DataSource>(
            site_id, lo, initial_bases[static_cast<size_t>(lo)], &view,
            &network, kWarehouseSite, &ids, storage_options);
      } else {
        std::vector<std::pair<int, Relation>> hosted;
        for (int r = lo; r < hi; ++r) {
          hosted.emplace_back(r, initial_bases[static_cast<size_t>(r)]);
        }
        site = std::make_unique<MultiRelationSource>(
            site_id, std::move(hosted), &view, &network, kWarehouseSite,
            &ids, storage_options);
      }
      network.RegisterSite(site_id, site.get());
      for (int r = lo; r < hi; ++r) {
        source_sites[static_cast<size_t>(r)] = site_id;
        site_of_relation[static_cast<size_t>(r)] = site.get();
      }
      owned_sources.push_back(std::move(site));
    }
  }

  WarehouseConfig warehouse_config = config.warehouse;
  if (plan.enabled) {
    warehouse_config.base.query_timeout = plan.query_timeout;
    warehouse_config.base.query_retry_limit = plan.query_retry_limit;
    warehouse_config.base.query_backoff_cap = plan.query_backoff_cap;
    warehouse_config.base.checkpoint_every = plan.checkpoint_every;
    // Raw faulty delivery (reliability off) can reorder update streams,
    // so the bounded watermark dedup is unsound there; fall back to the
    // remember-every-id set.
    warehouse_config.base.fifo_update_streams = plan.reliability;
  }
  std::unique_ptr<Warehouse> warehouse =
      MakeWarehouse(config.algorithm, kWarehouseSite, view, &network,
                    source_sites, warehouse_config);
  network.RegisterSite(kWarehouseSite, warehouse.get());

  // Initialize the materialized view to the correct value (Figure 4).
  std::vector<const Relation*> rels;
  for (const Relation& r : initial_bases) rels.push_back(&r);
  warehouse->InitializeView(view.EvaluateFull(rels));
  warehouse->InitializeAuxiliary(initial_bases);

  // Schedule the workload.
  for (const ScheduledTxn& txn : txns) {
    SourceSite* src = site_of_relation[static_cast<size_t>(txn.relation)];
    int rel = txn.relation;
    auto ops = txn.ops;
    sim.ScheduleAt(txn.at,
                   [src, rel, ops]() { src->ApplyTxn(rel, ops); });
  }

  // Schedule the crash/restart plan. Crashes need the DataSource fail-stop
  // interface, so the topology must be one relation per (crashable) site.
  std::vector<DataSource*> crashable;
  for (const FaultPlan::CrashEvent& crash : plan.crashes) {
    SWEEP_CHECK_MSG(!single_source && per_site == 1,
                    "crash plans need one-relation-per-site topology");
    SWEEP_CHECK(crash.relation >= 0 && crash.relation < n);
    SWEEP_CHECK_MSG(crash.restart_at > crash.crash_at,
                    "a crash must precede its restart");
    auto* source = dynamic_cast<DataSource*>(
        site_of_relation[static_cast<size_t>(crash.relation)]);
    SWEEP_CHECK(source != nullptr);
    crashable.push_back(source);
    sim.ScheduleAt(crash.crash_at, [source]() { source->Crash(); });
    sim.ScheduleAt(crash.restart_at, [source]() { source->Restart(); });
  }

  // Schedule warehouse crash/restarts. A down warehouse receives nothing;
  // only the session layer's retransmission delivers the messages sent
  // during the outage once the site is back, so reliability is mandatory.
  for (const FaultPlan::WarehouseCrashEvent& crash :
       plan.warehouse_crashes) {
    SWEEP_CHECK_MSG(plan.enabled && plan.reliability,
                    "warehouse crashes need reliability sessions: the "
                    "pristine network drops messages to a down site with "
                    "no retransmission");
    SWEEP_CHECK_MSG(plan.checkpoint_every > 0,
                    "warehouse crashes need a durable store "
                    "(FaultPlan::checkpoint_every > 0)");
    SWEEP_CHECK_MSG(crash.restart_at > crash.crash_at,
                    "a warehouse crash must precede its restart");
    Warehouse* site = warehouse.get();
    sim.ScheduleAt(crash.crash_at, [site]() { site->Crash(); });
    sim.ScheduleAt(crash.restart_at, [site]() { site->Restart(); });
  }

  int64_t executed = sim.Run(config.max_events);
  RunResult result;
  if (plan.tolerate_failure) {
    result.completed = executed < config.max_events &&
                       warehouse->update_queue().empty() &&
                       !warehouse->Busy();
  } else {
    SWEEP_CHECK_MSG(executed < config.max_events,
                    "scenario exceeded the event budget (runaway protocol?)");
    SWEEP_CHECK_MSG(warehouse->update_queue().empty() && !warehouse->Busy(),
                    "simulation drained but the warehouse is still busy");
  }

  result.algorithm_name = warehouse->name();
  result.net = network.stats();
  result.updates_delivered = warehouse->updates_received();
  result.installs = static_cast<int64_t>(warehouse->install_log().size());
  result.final_view = warehouse->view();
  result.finish_time = sim.now();
  if (!warehouse->install_log().empty()) {
    result.first_install_time = warehouse->install_log().front().time;
  }
  if (!warehouse->arrival_log().empty()) {
    result.last_arrival_time = warehouse->arrival_log().back().second;
  }
  result.staleness_integral = StalenessIntegral(*warehouse);
  result.mean_incorporation_delay = MeanIncorporationDelay(*warehouse);
  {
    const StalenessPercentiles tail =
        IncorporationDelayPercentiles(*warehouse);
    result.staleness_p50 = tail.p50;
    result.staleness_p99 = tail.p99;
  }
  if (result.updates_delivered > 0) {
    int64_t maintenance =
        result.net.Of(MessageClass::kQueryRequest).messages +
        result.net.Of(MessageClass::kQueryAnswer).messages;
    result.maintenance_msgs_per_update =
        static_cast<double>(maintenance) /
        static_cast<double>(result.updates_delivered);
  }
  ExtractAlgorithmCounters(*warehouse, &result);
  result.duplicate_updates_ignored = warehouse->duplicate_updates_ignored();
  result.stale_answers_ignored = warehouse->stale_answers_ignored();
  result.queries_reissued = warehouse->queries_reissued();
  result.warehouse_recoveries = warehouse->recoveries();
  result.wal_updates_replayed = warehouse->wal_replayed();
  result.checkpoints_taken = warehouse->checkpoints_taken();
  result.checkpoint_bytes_max = warehouse->checkpoint_bytes_max();
  result.pre_epoch_answers_ignored = warehouse->pre_epoch_answers_ignored();
  result.max_query_attempts = warehouse->max_query_attempts();
  result.dedup_state_entries =
      static_cast<int64_t>(warehouse->dedup_state_size());
  for (const auto& site : owned_sources) {
    result.storage.MergeFrom(site->storage_stats());
  }
  for (const DataSource* source : crashable) {
    result.updates_replayed += source->updates_replayed();
  }

  // Ground truth + consistency classification.
  std::vector<const StateLog*> logs;
  for (int r = 0; r < n; ++r) {
    logs.push_back(&site_of_relation[static_cast<size_t>(r)]->LogOf(r));
  }
  {
    Replayer replay(&view, logs);
    std::vector<size_t> final_versions;
    for (int r = 0; r < n; ++r) {
      final_versions.push_back(replay.TotalUpdates(r));
    }
    replay.AdvanceTo(final_versions);
    result.expected_view = replay.CurrentView();
  }
  // A wedged run gets the cheap final-state comparison only: the replay
  // checker's install-by-install classification presumes every update was
  // eventually incorporated.
  if (config.check_consistency && result.completed) {
    result.consistency = CheckConsistency(view, logs, *warehouse);
  } else {
    result.consistency.final_state_correct =
        result.final_view == result.expected_view;
    result.consistency.level = result.consistency.final_state_correct
                                   ? ConsistencyLevel::kConvergent
                                   : ConsistencyLevel::kInconsistent;
  }
  return result;
}

RunResult RunScenario(const ScenarioConfig& config) {
  ViewDef view = MakeChainView(config.chain);
  std::vector<Relation> initial = MakeInitialBases(view, config.chain);
  std::vector<ScheduledTxn> txns =
      GenerateWorkload(view, initial, config.chain, config.workload);
  return RunExplicitScenario(config, view, initial, txns);
}

}  // namespace sweepmv
