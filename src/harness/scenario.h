// One-call experiment runner.
//
// Builds the whole simulated system — sources (or ECA's single
// multi-relation source), FIFO network, warehouse running the chosen
// algorithm — injects a workload, runs the simulation to completion, and
// returns everything the benches and tests need: traffic statistics, the
// measured consistency level, staleness metrics, and algorithm-specific
// counters.

#ifndef SWEEPMV_HARNESS_SCENARIO_H_
#define SWEEPMV_HARNESS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/fault_model.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/session.h"
#include "storage/indexed_relation.h"
#include "workload/schema_gen.h"
#include "workload/update_gen.h"

namespace sweepmv {

// Optional robustness layer for a scenario: link faults, the reliability
// session toggle, source crash/restart schedule, and the warehouse's
// query-timeout defenses. Disabled by default — a plain scenario is the
// paper's pristine reliable-FIFO world.
struct FaultPlan {
  bool enabled = false;
  // Applied to every directed link (including warehouse->source).
  FaultModel faults;
  // Session layer on faulty links (off = raw faulty delivery; the
  // channel assumption of Section 2 is then genuinely violated).
  bool reliability = true;
  SessionOptions session;
  // Source crash/restart schedule, by relation index. Requires the
  // one-relation-per-site topology (relations_per_site == 1) and a
  // multi-source algorithm.
  struct CrashEvent {
    int relation = 0;
    SimTime crash_at = 0;
    SimTime restart_at = 0;  // must be > crash_at
  };
  std::vector<CrashEvent> crashes;
  // Warehouse crash/restart schedule. Requires checkpoint_every > 0 (the
  // durable store recovery restores from) and reliability sessions: the
  // pristine network drops messages to a down site permanently, while the
  // session layer retransmits them once the warehouse is back.
  struct WarehouseCrashEvent {
    SimTime crash_at = 0;
    SimTime restart_at = 0;  // must be > crash_at
  };
  std::vector<WarehouseCrashEvent> warehouse_crashes;
  // Durability cadence: cut a fresh checkpoint once the update WAL holds
  // this many entries. 0 disables the durable store (and with it,
  // warehouse crashes).
  int checkpoint_every = 0;
  // Warehouse query re-issue (0 keeps timeouts off). With crashes in the
  // plan this should be > 0 or a sweep whose query died with the source
  // never terminates.
  SimTime query_timeout = 0;
  int query_retry_limit = 8;
  // Re-issue delays grow exponentially from query_timeout up to
  // query_timeout * query_backoff_cap (plus deterministic jitter).
  int query_backoff_cap = 16;
  // Instead of CHECK-failing when the run ends with a wedged warehouse
  // (expected when reliability is off and messages are genuinely lost),
  // report it via RunResult::completed.
  bool tolerate_failure = false;
};

struct ScenarioConfig {
  Algorithm algorithm = Algorithm::kSweep;
  ChainSpec chain;
  WorkloadSpec workload;
  LatencyModel latency = LatencyModel::Fixed(1000);
  WarehouseConfig warehouse;
  uint64_t network_seed = 99;
  // Topology: how many consecutive chain relations each source site
  // hosts (Section 2 allows "any number of base relations" per source).
  // 1 = the paper's conceptual one-relation-per-source model. Ignored for
  // ECA, which always uses one site for everything.
  int relations_per_site = 1;
  // Verify consistency by replay (skip for large throughput benches).
  bool check_consistency = true;
  // Storage engine: sources maintain the IndexCatalog's hash indexes and
  // answer sweep queries by probing them (src/storage/). Off = re-scan
  // the base relation per query; results are identical (the equivalence
  // property test proves it), only the cost differs.
  bool use_indexes = true;
  // Safety valve for runaway protocols (C-Strobe under heavy
  // interference): abort the run after this many simulator events.
  int64_t max_events = 50'000'000;
  // Fault injection (see FaultPlan).
  FaultPlan fault_plan;
};

struct RunResult {
  std::string algorithm_name;
  NetworkStats net;
  // False only under FaultPlan::tolerate_failure: the run drained with
  // the warehouse still waiting on messages that will never arrive.
  bool completed = true;
  int64_t updates_delivered = 0;
  int64_t installs = 0;
  ConsistencyReport consistency;
  Relation final_view;
  Relation expected_view;

  SimTime finish_time = 0;
  SimTime first_install_time = 0;  // 0 if nothing installed
  SimTime last_arrival_time = 0;
  double staleness_integral = 0.0;
  double mean_incorporation_delay = 0.0;
  // Arrival -> install delay percentiles (nearest-rank), in ticks.
  double staleness_p50 = 0.0;
  double staleness_p99 = 0.0;

  // Query+answer messages divided by delivered updates.
  double maintenance_msgs_per_update = 0.0;

  // Algorithm-specific counters (0 when not applicable).
  int64_t compensations = 0;         // SWEEP / Nested SWEEP
  int64_t nested_calls = 0;          // Nested SWEEP
  int64_t forced_deferrals = 0;      // Nested SWEEP
  int64_t batch_installs = 0;        // Strobe / ECA
  int64_t compensating_queries = 0;  // C-Strobe
  int64_t max_query_terms = 0;       // ECA
  int64_t total_query_terms = 0;     // ECA

  // Robustness counters (0 for pristine runs).
  int64_t duplicate_updates_ignored = 0;  // warehouse id-level dedup
  int64_t stale_answers_ignored = 0;      // late/duplicate query answers
  int64_t queries_reissued = 0;           // timeout-driven re-issues
  int64_t updates_replayed = 0;           // log replays by restarted sources
  // Warehouse crash-recovery counters (all 0 without warehouse crashes).
  int64_t warehouse_recoveries = 0;
  int64_t wal_updates_replayed = 0;       // WAL entries re-applied on recovery
  int64_t checkpoints_taken = 0;
  int64_t checkpoint_bytes_max = 0;       // largest serialized checkpoint
  int64_t pre_epoch_answers_ignored = 0;  // stale-epoch answers discarded
  int64_t max_query_attempts = 0;         // most sends any one query needed
  // Growable dedup-state entries left at the warehouse after the run
  // (0 under FIFO update streams — the watermark dedup is fixed-size).
  int64_t dedup_state_entries = 0;

  // Storage-engine counters summed over every source site (all zero with
  // use_indexes off or for ECA's index-less single source).
  StorageStats storage;
};

// Runs the scenario built from generated schema + workload.
RunResult RunScenario(const ScenarioConfig& config);

// Runs a fully explicit scenario: caller-provided view, initial bases and
// transaction schedule (used by the paper's Figure 5 reproduction and by
// tests that need exact control over interleavings).
RunResult RunExplicitScenario(const ScenarioConfig& config,
                              const ViewDef& view,
                              const std::vector<Relation>& initial_bases,
                              const std::vector<ScheduledTxn>& txns);

}  // namespace sweepmv

#endif  // SWEEPMV_HARNESS_SCENARIO_H_
