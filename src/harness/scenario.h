// One-call experiment runner.
//
// Builds the whole simulated system — sources (or ECA's single
// multi-relation source), FIFO network, warehouse running the chosen
// algorithm — injects a workload, runs the simulation to completion, and
// returns everything the benches and tests need: traffic statistics, the
// measured consistency level, staleness metrics, and algorithm-specific
// counters.

#ifndef SWEEPMV_HARNESS_SCENARIO_H_
#define SWEEPMV_HARNESS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "workload/schema_gen.h"
#include "workload/update_gen.h"

namespace sweepmv {

struct ScenarioConfig {
  Algorithm algorithm = Algorithm::kSweep;
  ChainSpec chain;
  WorkloadSpec workload;
  LatencyModel latency = LatencyModel::Fixed(1000);
  WarehouseConfig warehouse;
  uint64_t network_seed = 99;
  // Topology: how many consecutive chain relations each source site
  // hosts (Section 2 allows "any number of base relations" per source).
  // 1 = the paper's conceptual one-relation-per-source model. Ignored for
  // ECA, which always uses one site for everything.
  int relations_per_site = 1;
  // Verify consistency by replay (skip for large throughput benches).
  bool check_consistency = true;
  // Safety valve for runaway protocols (C-Strobe under heavy
  // interference): abort the run after this many simulator events.
  int64_t max_events = 50'000'000;
};

struct RunResult {
  std::string algorithm_name;
  NetworkStats net;
  int64_t updates_delivered = 0;
  int64_t installs = 0;
  ConsistencyReport consistency;
  Relation final_view;
  Relation expected_view;

  SimTime finish_time = 0;
  SimTime first_install_time = 0;  // 0 if nothing installed
  SimTime last_arrival_time = 0;
  double staleness_integral = 0.0;
  double mean_incorporation_delay = 0.0;

  // Query+answer messages divided by delivered updates.
  double maintenance_msgs_per_update = 0.0;

  // Algorithm-specific counters (0 when not applicable).
  int64_t compensations = 0;         // SWEEP / Nested SWEEP
  int64_t nested_calls = 0;          // Nested SWEEP
  int64_t forced_deferrals = 0;      // Nested SWEEP
  int64_t batch_installs = 0;        // Strobe / ECA
  int64_t compensating_queries = 0;  // C-Strobe
  int64_t max_query_terms = 0;       // ECA
  int64_t total_query_terms = 0;     // ECA
};

// Runs the scenario built from generated schema + workload.
RunResult RunScenario(const ScenarioConfig& config);

// Runs a fully explicit scenario: caller-provided view, initial bases and
// transaction schedule (used by the paper's Figure 5 reproduction and by
// tests that need exact control over interleavings).
RunResult RunExplicitScenario(const ScenarioConfig& config,
                              const ViewDef& view,
                              const std::vector<Relation>& initial_bases,
                              const std::vector<ScheduledTxn>& txns);

}  // namespace sweepmv

#endif  // SWEEPMV_HARNESS_SCENARIO_H_
