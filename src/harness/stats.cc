#include "harness/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace sweepmv {

namespace {

// Builds the map update id -> install time. Reads the always-on
// lightweight install-time log, so the metrics work even when the full
// install log (log_installs) is disabled for throughput runs.
std::map<int64_t, SimTime> InstallTimes(const Warehouse& warehouse) {
  std::map<int64_t, SimTime> times;
  for (const auto& [id, at] : warehouse.install_time_log()) {
    times.emplace(id, at);
  }
  return times;
}

}  // namespace

StalenessPercentiles PercentilesOf(std::vector<double> samples) {
  StalenessPercentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.samples = static_cast<int64_t>(samples.size());
  // Nearest-rank: ceil(q * n) converted to a 0-based index.
  auto rank = [&](double q) {
    size_t k = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (k > 0) --k;
    return samples[std::min(k, samples.size() - 1)];
  };
  p.p50 = rank(0.50);
  p.p99 = rank(0.99);
  return p;
}

StalenessPercentiles IncorporationDelayPercentiles(
    const Warehouse& warehouse) {
  const auto& arrivals = warehouse.arrival_log();
  if (arrivals.empty()) return StalenessPercentiles{};

  std::map<int64_t, SimTime> installed = InstallTimes(warehouse);
  SimTime end = arrivals.back().second;
  for (const auto& [id, t] : installed) end = std::max(end, t);

  std::vector<double> delays;
  delays.reserve(arrivals.size());
  for (const auto& [id, at] : arrivals) {
    auto it = installed.find(id);
    SimTime done = it == installed.end() ? end : it->second;
    delays.push_back(static_cast<double>(done - at));
  }
  return PercentilesOf(std::move(delays));
}

double StalenessIntegral(const Warehouse& warehouse) {
  const auto& arrivals = warehouse.arrival_log();
  if (arrivals.empty()) return 0.0;

  std::map<int64_t, SimTime> installed = InstallTimes(warehouse);
  SimTime end = arrivals.back().second;
  for (const auto& [id, t] : installed) end = std::max(end, t);

  // Sweep events: +1 at arrival, -1 at install (or run end).
  std::multimap<SimTime, int> events;
  for (const auto& [id, at] : arrivals) {
    events.emplace(at, +1);
    auto it = installed.find(id);
    events.emplace(it == installed.end() ? end : it->second, -1);
  }

  double integral = 0.0;
  int outstanding = 0;
  SimTime prev = arrivals.front().second;
  for (const auto& [t, delta] : events) {
    integral += static_cast<double>(t - prev) * outstanding;
    outstanding += delta;
    prev = t;
  }
  return integral;
}

double MeanIncorporationDelay(const Warehouse& warehouse) {
  const auto& arrivals = warehouse.arrival_log();
  if (arrivals.empty()) return 0.0;

  std::map<int64_t, SimTime> installed = InstallTimes(warehouse);
  SimTime end = arrivals.back().second;
  for (const auto& [id, t] : installed) end = std::max(end, t);

  double total = 0.0;
  for (const auto& [id, at] : arrivals) {
    auto it = installed.find(id);
    SimTime done = it == installed.end() ? end : it->second;
    total += static_cast<double>(done - at);
  }
  return total / static_cast<double>(arrivals.size());
}

SimTime LastInstallTime(const Warehouse& warehouse) {
  const auto& installs = warehouse.install_log();
  return installs.empty() ? 0 : installs.back().time;
}

}  // namespace sweepmv
