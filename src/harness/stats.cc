#include "harness/stats.h"

#include <algorithm>
#include <map>

namespace sweepmv {

namespace {

// Builds the map update id -> install time.
std::map<int64_t, SimTime> InstallTimes(const Warehouse& warehouse) {
  std::map<int64_t, SimTime> times;
  for (const InstallRecord& install : warehouse.install_log()) {
    for (int64_t id : install.update_ids) {
      times.emplace(id, install.time);
    }
  }
  return times;
}

}  // namespace

double StalenessIntegral(const Warehouse& warehouse) {
  const auto& arrivals = warehouse.arrival_log();
  if (arrivals.empty()) return 0.0;

  std::map<int64_t, SimTime> installed = InstallTimes(warehouse);
  SimTime end = arrivals.back().second;
  for (const auto& [id, t] : installed) end = std::max(end, t);

  // Sweep events: +1 at arrival, -1 at install (or run end).
  std::multimap<SimTime, int> events;
  for (const auto& [id, at] : arrivals) {
    events.emplace(at, +1);
    auto it = installed.find(id);
    events.emplace(it == installed.end() ? end : it->second, -1);
  }

  double integral = 0.0;
  int outstanding = 0;
  SimTime prev = arrivals.front().second;
  for (const auto& [t, delta] : events) {
    integral += static_cast<double>(t - prev) * outstanding;
    outstanding += delta;
    prev = t;
  }
  return integral;
}

double MeanIncorporationDelay(const Warehouse& warehouse) {
  const auto& arrivals = warehouse.arrival_log();
  if (arrivals.empty()) return 0.0;

  std::map<int64_t, SimTime> installed = InstallTimes(warehouse);
  SimTime end = arrivals.back().second;
  for (const auto& [id, t] : installed) end = std::max(end, t);

  double total = 0.0;
  for (const auto& [id, at] : arrivals) {
    auto it = installed.find(id);
    SimTime done = it == installed.end() ? end : it->second;
    total += static_cast<double>(done - at);
  }
  return total / static_cast<double>(arrivals.size());
}

SimTime LastInstallTime(const Warehouse& warehouse) {
  const auto& installs = warehouse.install_log();
  return installs.empty() ? 0 : installs.back().time;
}

}  // namespace sweepmv
