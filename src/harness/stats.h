// Post-run metrics derived from warehouse logs.

#ifndef SWEEPMV_HARNESS_STATS_H_
#define SWEEPMV_HARNESS_STATS_H_

#include <cstdint>
#include <vector>

#include "core/warehouse.h"

namespace sweepmv {

// Tail view-staleness: percentiles over per-update accepted-at ->
// installed-at delays, in ticks. Unlike the mean, the p99 exposes the
// updates that sat behind a long sweep (or a whole batch window).
struct StalenessPercentiles {
  double p50 = 0.0;
  double p99 = 0.0;
  int64_t samples = 0;
};

// Nearest-rank percentiles of `samples` (consumed; order irrelevant).
// Empty input yields all zeros.
StalenessPercentiles PercentilesOf(std::vector<double> samples);

// Percentiles of the warehouse's own arrival -> install delays, the
// per-update view behind MeanIncorporationDelay. Updates never installed
// count up to the end of the run.
StalenessPercentiles IncorporationDelayPercentiles(
    const Warehouse& warehouse);

// Time integral of the number of delivered-but-not-yet-incorporated
// updates, from the first arrival to the later of (last install, last
// arrival). Unit: update·ticks. This is the paper's "the materialized
// view trails the updated state of the data sources" made quantitative —
// Strobe's need for quiescence shows up as a large value under continuous
// update streams.
double StalenessIntegral(const Warehouse& warehouse);

// Mean per-update incorporation delay (arrival -> install), in ticks.
// Updates never incorporated count up to the end of the run.
double MeanIncorporationDelay(const Warehouse& warehouse);

// Virtual time of the last install (0 if none).
SimTime LastInstallTime(const Warehouse& warehouse);

}  // namespace sweepmv

#endif  // SWEEPMV_HARNESS_STATS_H_
