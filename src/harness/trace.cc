#include "harness/trace.h"

#include <algorithm>

#include "common/str.h"

namespace sweepmv {

namespace {

std::string Describe(const Message& msg) {
  struct Visitor {
    std::string operator()(const UpdateMessage& m) const {
      return StrFormat("update u%lld of R%d ",
                       static_cast<long long>(m.update.id),
                       m.update.relation) +
             m.update.delta.ToDisplayString();
    }
    std::string operator()(const QueryRequest& m) const {
      return StrFormat("query #%lld -> R%d (extend %s, span[%d,%d], %zu "
                       "tuples)",
                       static_cast<long long>(m.query_id), m.target_rel,
                       m.extend_left ? "left" : "right", m.partial.lo,
                       m.partial.hi, m.partial.rel.DistinctSize());
    }
    std::string operator()(const QueryAnswer& m) const {
      return StrFormat("answer #%lld span[%d,%d] (%zu tuples)",
                       static_cast<long long>(m.query_id), m.partial.lo,
                       m.partial.hi, m.partial.rel.DistinctSize());
    }
    std::string operator()(const EcaQueryRequest& m) const {
      return StrFormat("ECA query #%lld (%zu terms)",
                       static_cast<long long>(m.query_id),
                       m.terms.size());
    }
    std::string operator()(const EcaQueryAnswer& m) const {
      return StrFormat("ECA answer #%lld (%zu tuples)",
                       static_cast<long long>(m.query_id),
                       m.result.DistinctSize());
    }
    std::string operator()(const SnapshotRequest& m) const {
      return StrFormat("snapshot request #%lld",
                       static_cast<long long>(m.query_id));
    }
    std::string operator()(const SnapshotAnswer& m) const {
      return StrFormat("snapshot of R%d (%zu tuples)", m.relation,
                       m.snapshot.DistinctSize());
    }
    std::string operator()(const SessionDatagram& m) const {
      if (!m.payload) {
        return StrFormat("ack e%lld cum=%lld",
                         static_cast<long long>(m.epoch),
                         static_cast<long long>(m.cum_ack));
      }
      return StrFormat("dgram e%lld #%lld [",
                       static_cast<long long>(m.epoch),
                       static_cast<long long>(m.seq)) +
             Describe(*m.payload) + "]";
    }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace

void TraceRecorder::Attach(Network* network) {
  network->SetTap([this](const TapEvent& event) {
    TracedMessage traced;
    traced.send_time = event.send_time;
    traced.arrival_time = event.arrival_time;
    traced.from = event.from;
    traced.to = event.to;
    traced.cls = ClassOf(*event.message);
    traced.payload_tuples = PayloadTuples(*event.message);
    traced.label = Describe(*event.message);
    messages_.push_back(std::move(traced));
  });
}

std::string RenderTimeline(const std::vector<TracedMessage>& trace,
                           const std::map<int, std::string>& site_names,
                           const Warehouse& warehouse) {
  auto name_of = [&](int site) {
    auto it = site_names.find(site);
    return it == site_names.end() ? StrFormat("site%d", site)
                                  : it->second;
  };

  // Interleave sends, arrivals and installs chronologically.
  struct Line {
    SimTime at;
    int order;  // tie-break: arrivals(0) before installs(1) before sends(2)
    std::string text;
  };
  std::vector<Line> lines;
  for (const TracedMessage& m : trace) {
    lines.push_back(
        {m.send_time, 2,
         StrFormat("%-4s sends   %s", name_of(m.from).c_str(),
                   m.label.c_str())});
    lines.push_back(
        {m.arrival_time, 0,
         StrFormat("%-4s gets    %s  (from %s)", name_of(m.to).c_str(),
                   m.label.c_str(), name_of(m.from).c_str())});
  }
  for (const InstallRecord& install : warehouse.install_log()) {
    std::vector<std::string> ids;
    for (int64_t id : install.update_ids) {
      ids.push_back(StrFormat("u%lld", static_cast<long long>(id)));
    }
    lines.push_back(
        {install.time, 1,
         StrFormat("WH   INSTALLS [%s] -> %s", Join(ids, ",").c_str(),
                   install.view_after.ToDisplayString().c_str())});
  }

  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.order < b.order;
                   });

  std::string out;
  for (const Line& line : lines) {
    out += StrFormat("t=%-7lld %s\n", static_cast<long long>(line.at),
                     line.text.c_str());
  }
  return out;
}

}  // namespace sweepmv
