// Message tracing and space-time rendering.
//
// TraceRecorder taps a Network and keeps a compact record of every
// transmission; RenderTimeline turns a trace (plus the warehouse's
// install log) into the kind of space-time narrative Figure 2 of the
// paper sketches: update notifications, the leftward then rightward
// incremental queries, interfering updates crossing them in flight, and
// the resulting view installs.

#ifndef SWEEPMV_HARNESS_TRACE_H_
#define SWEEPMV_HARNESS_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "core/warehouse.h"
#include "sim/network.h"

namespace sweepmv {

struct TracedMessage {
  SimTime send_time = 0;
  SimTime arrival_time = 0;
  int from = -1;
  int to = -1;
  MessageClass cls = MessageClass::kUpdateNotification;
  int64_t payload_tuples = 0;
  // Human-readable summary, e.g. "update u3 of R1 {-(2,3)[1]}",
  // "query #2 -> R1 (extend left, span[1,2])", "answer #2 span[0,2]".
  std::string label;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  // Installs this recorder as the network's tap (replacing any previous
  // tap). The recorder must outlive the network's sends.
  void Attach(Network* network);

  const std::vector<TracedMessage>& messages() const { return messages_; }
  void Clear() { messages_.clear(); }

 private:
  std::vector<TracedMessage> messages_;
};

// Renders a chronological space-time narrative. `site_names` maps site id
// to a display name (e.g. {0: "WH", 1: "R1", ...}); installs from
// `warehouse` are interleaved as local events.
std::string RenderTimeline(const std::vector<TracedMessage>& trace,
                           const std::map<int, std::string>& site_names,
                           const Warehouse& warehouse);

}  // namespace sweepmv

#endif  // SWEEPMV_HARNESS_TRACE_H_
