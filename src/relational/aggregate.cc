#include "relational/aggregate.h"

#include "common/check.h"

namespace sweepmv {

MaintainedAggregate::MaintainedAggregate(Schema view_schema, AggSpec spec)
    : view_schema_(std::move(view_schema)), spec_(std::move(spec)) {
  std::vector<Attribute> attrs;
  for (int pos : spec_.group_by) {
    SWEEP_CHECK(pos >= 0 &&
                static_cast<size_t>(pos) < view_schema_.arity());
    attrs.push_back(view_schema_.attr(static_cast<size_t>(pos)));
  }
  if (spec_.fn == AggFn::kSum) {
    SWEEP_CHECK_MSG(
        spec_.value_column >= 0 &&
            static_cast<size_t>(spec_.value_column) <
                view_schema_.arity() &&
            view_schema_.attr(static_cast<size_t>(spec_.value_column))
                    .type == ValueType::kInt,
        "SUM requires an integer value column");
  }
  attrs.push_back(Attribute{"agg", ValueType::kInt});
  result_schema_ = Schema(std::move(attrs));
}

void MaintainedAggregate::Initialize(const Relation& view) {
  groups_.clear();
  Fold(view);
}

void MaintainedAggregate::ApplyDelta(const Relation& view_delta) {
  Fold(view_delta);
}

void MaintainedAggregate::Fold(const Relation& rel) {
  for (const auto& [t, c] : rel.entries()) {
    Tuple group = t.Project(spec_.group_by);
    GroupState& state = groups_[group];
    state.multiplicity += c;
    if (spec_.fn == AggFn::kSum) {
      state.sum +=
          t.at(static_cast<size_t>(spec_.value_column)).AsInt() * c;
    }
    SWEEP_CHECK_MSG(state.multiplicity >= 0,
                    "aggregate group multiplicity went negative — the "
                    "observed deltas are not consistent");
    if (state.multiplicity == 0) groups_.erase(group);
  }
}

Relation MaintainedAggregate::Result() const {
  Relation out(result_schema_);
  for (const auto& [group, state] : groups_) {
    int64_t value =
        spec_.fn == AggFn::kCount ? state.multiplicity : state.sum;
    std::vector<Value> values = group.values();
    values.emplace_back(value);
    out.Add(Tuple(std::move(values)), 1);
  }
  return out;
}

int64_t MaintainedAggregate::ValueOf(const Tuple& group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  return spec_.fn == AggFn::kCount ? it->second.multiplicity
                                   : it->second.sum;
}

bool MaintainedAggregate::HasGroup(const Tuple& group) const {
  return groups_.count(group) != 0;
}

}  // namespace sweepmv
