// Incrementally maintained aggregates over a materialized view.
//
// Section 2 notes the warehouse model extends to aggregate view functions;
// this module provides that extension on top of the counting algebra: a
// COUNT or SUM grouped by a column subset of the view's output, maintained
// purely from view *deltas* (the same ΔV every algorithm installs), never
// by rescanning the view. Deletions that empty a group remove it, exactly
// as re-evaluation would.

#ifndef SWEEPMV_RELATIONAL_AGGREGATE_H_
#define SWEEPMV_RELATIONAL_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"

namespace sweepmv {

enum class AggFn : uint8_t {
  kCount = 0,  // Σ multiplicities per group
  kSum = 1,    // Σ value_column * multiplicity per group
};

struct AggSpec {
  // Positions (in the view's output schema) to group by. May be empty for
  // a single global aggregate.
  std::vector<int> group_by;
  AggFn fn = AggFn::kCount;
  // For kSum: position of the (integer) column to sum.
  int value_column = -1;
};

class MaintainedAggregate {
 public:
  // `view_schema` is the schema of the view this aggregate observes.
  MaintainedAggregate(Schema view_schema, AggSpec spec);

  // (Re)initializes from a full view state.
  void Initialize(const Relation& view);

  // Folds one signed view delta into the aggregate.
  void ApplyDelta(const Relation& view_delta);

  // Materializes the current aggregate as a relation with schema
  // (group columns..., "agg"); every tuple has count 1. Groups whose
  // underlying multiplicity dropped to zero are absent.
  Relation Result() const;

  // Value for a specific group (0 if the group is absent).
  int64_t ValueOf(const Tuple& group) const;
  bool HasGroup(const Tuple& group) const;
  size_t num_groups() const { return groups_.size(); }

  const Schema& result_schema() const { return result_schema_; }

 private:
  struct GroupState {
    int64_t multiplicity = 0;  // Σ view counts in the group
    int64_t sum = 0;           // Σ value * count (kSum only)
  };

  void Fold(const Relation& rel);

  Schema view_schema_;
  AggSpec spec_;
  Schema result_schema_;
  std::map<Tuple, GroupState> groups_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_AGGREGATE_H_
