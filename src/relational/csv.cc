#include "relational/csv.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/str.h"

namespace sweepmv {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  cells.push_back(Trim(current));
  return cells;
}

bool ParseCell(const std::string& cell, ValueType type, Value* out,
               std::string* error) {
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str() || *end != '\0') {
        *error = StrFormat("'%s' is not an integer", cell.c_str());
        return false;
      }
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        *error = StrFormat("'%s' is not a number", cell.c_str());
        return false;
      }
      *out = Value(v);
      return true;
    }
    case ValueType::kString:
      *out = Value(cell);
      return true;
  }
  *error = "unknown value type";
  return false;
}

}  // namespace

CsvParseResult ParseCsv(const Schema& schema, const std::string& text) {
  CsvParseResult result;
  result.relation = Relation(schema);

  std::istringstream in(text);
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;

    // Optional trailing multiplicity: "...@count" (the '@' must come
    // after the last comma so string cells keep their at-signs).
    int64_t count = 1;
    size_t at = line.rfind('@');
    size_t last_comma = line.rfind(',');
    if (at != std::string::npos &&
        (last_comma == std::string::npos || at > last_comma)) {
      std::string count_text = Trim(line.substr(at + 1));
      char* end = nullptr;
      count = std::strtoll(count_text.c_str(), &end, 10);
      if (end == count_text.c_str() || *end != '\0') {
        result.error = StrFormat("line %d: bad count '%s'", line_number,
                                 count_text.c_str());
        return result;
      }
      line = Trim(line.substr(0, at));
    }

    std::vector<std::string> cells = SplitCells(line);
    if (cells.size() != schema.arity()) {
      result.error =
          StrFormat("line %d: expected %zu cells, found %zu", line_number,
                    schema.arity(), cells.size());
      return result;
    }
    std::vector<Value> values(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      std::string cell_error;
      if (!ParseCell(cells[i], schema.attr(i).type, &values[i],
                     &cell_error)) {
        result.error = StrFormat("line %d, cell %zu: %s", line_number,
                                 i + 1, cell_error.c_str());
        return result;
      }
    }
    result.relation.Add(Tuple(std::move(values)), count);
  }
  result.ok = true;
  return result;
}

std::string FormatCsv(const Relation& relation) {
  std::string out = "# schema: " + relation.schema().ToDisplayString() +
                    "\n";
  for (const auto& [t, c] : relation.SortedEntries()) {
    std::vector<std::string> cells;
    for (const Value& v : t.values()) {
      switch (v.type()) {
        case ValueType::kInt:
          cells.push_back(std::to_string(v.AsInt()));
          break;
        case ValueType::kDouble:
          cells.push_back(StrFormat("%g", v.AsDouble()));
          break;
        case ValueType::kString:
          cells.push_back(v.AsString());
          break;
      }
    }
    out += Join(cells, ",");
    if (c != 1) out += StrFormat(" @%lld", static_cast<long long>(c));
    out += "\n";
  }
  return out;
}

}  // namespace sweepmv
