// CSV import/export for relations.
//
// Lets examples and downstream users load base relations from plain text
// and dump views back out. Format: one tuple per line, comma-separated
// cells typed by the target schema; an optional trailing `@count` sets the
// multiplicity (defaults to 1; negative counts express deltas). Lines that
// are empty or start with '#' are skipped. String cells are unquoted and
// must not contain commas.

#ifndef SWEEPMV_RELATIONAL_CSV_H_
#define SWEEPMV_RELATIONAL_CSV_H_

#include <string>

#include "relational/relation.h"
#include "relational/schema.h"

namespace sweepmv {

struct CsvParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  Relation relation;  // valid only when ok
};

// Parses `text` into a relation with the given schema.
CsvParseResult ParseCsv(const Schema& schema, const std::string& text);

// Renders a relation as CSV (deterministic order, counts as `@k` when
// k != 1), with a leading `# schema: ...` comment.
std::string FormatCsv(const Relation& relation);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_CSV_H_
