#include "relational/operators.h"

#include <unordered_map>

#include "common/check.h"

namespace sweepmv {

Relation Select(const Relation& r, const Predicate& pred) {
  Relation out(r.schema());
  for (const auto& [t, c] : r.entries()) {
    if (pred.Eval(t)) out.Add(t, c);
  }
  return out;
}

Relation Project(const Relation& r, const std::vector<int>& positions) {
  std::vector<Attribute> attrs;
  attrs.reserve(positions.size());
  for (int pos : positions) {
    attrs.push_back(r.schema().attr(static_cast<size_t>(pos)));
  }
  Relation out{Schema(std::move(attrs))};
  for (const auto& [t, c] : r.entries()) {
    out.Add(t.Project(positions), c);
  }
  return out;
}

Relation Join(const Relation& left, const Relation& right,
              const std::vector<std::pair<int, int>>& keys) {
  Relation out(left.schema().Concat(right.schema()));

  // Build a hash index over the smaller logical side: we always index the
  // right input on its key columns, then probe with the left. Sizes here
  // are simulation-scale, so the simple choice is fine.
  std::vector<int> left_key_pos;
  std::vector<int> right_key_pos;
  left_key_pos.reserve(keys.size());
  right_key_pos.reserve(keys.size());
  for (const auto& [l, r] : keys) {
    SWEEP_CHECK(l >= 0 && static_cast<size_t>(l) < left.schema().arity());
    SWEEP_CHECK(r >= 0 && static_cast<size_t>(r) < right.schema().arity());
    left_key_pos.push_back(l);
    right_key_pos.push_back(r);
  }

  if (keys.empty()) {
    for (const auto& [lt, lc] : left.entries()) {
      for (const auto& [rt, rc] : right.entries()) {
        out.Add(lt.Concat(rt), lc * rc);
      }
    }
    return out;
  }

  std::unordered_map<Tuple, std::vector<const std::pair<const Tuple, int64_t>*>,
                     TupleHash>
      index;
  index.reserve(right.entries().size());
  for (const auto& entry : right.entries()) {
    index[entry.first.Project(right_key_pos)].push_back(&entry);
  }

  for (const auto& [lt, lc] : left.entries()) {
    auto it = index.find(lt.Project(left_key_pos));
    if (it == index.end()) continue;
    for (const auto* entry : it->second) {
      out.Add(lt.Concat(entry->first), lc * entry->second);
    }
  }
  return out;
}

Relation Union(const Relation& left, const Relation& right) {
  Relation out = left;
  out.Merge(right);
  return out;
}

Relation Subtract(const Relation& left, const Relation& right) {
  Relation out = left;
  out.MergeNegated(right);
  return out;
}

}  // namespace sweepmv
