// Relational operators over counted bag relations.
//
// All operators follow the counting algebra: selection filters entries,
// projection sums counts of collapsing tuples, joins multiply counts.
// Deltas (negative counts) flow through unchanged, which is what lets the
// warehouse evaluate compensation terms like ΔRj ⋈ TempView locally.

#ifndef SWEEPMV_RELATIONAL_OPERATORS_H_
#define SWEEPMV_RELATIONAL_OPERATORS_H_

#include <utility>
#include <vector>

#include "relational/predicate.h"
#include "relational/relation.h"

namespace sweepmv {

// σ_pred(r): keeps entries whose tuple satisfies the predicate.
Relation Select(const Relation& r, const Predicate& pred);

// Π_positions(r): projects every tuple onto `positions`; counts of tuples
// that collapse are summed (and zero-sum entries vanish).
Relation Project(const Relation& r, const std::vector<int>& positions);

// Equi-join. `keys` pairs (attribute position in left, attribute position
// in right); an empty key list is a cross product. The result schema is
// left.schema ++ right.schema and each output count is the product of the
// matching input counts.
Relation Join(const Relation& left, const Relation& right,
              const std::vector<std::pair<int, int>>& keys);

// left + right (bag union in the counting algebra).
Relation Union(const Relation& left, const Relation& right);

// left - right (count subtraction; entries may go negative: this is the
// delta-difference used for compensation, not the "monus" of set algebra).
Relation Subtract(const Relation& left, const Relation& right);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_OPERATORS_H_
