#include "relational/partial_delta.h"

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

PartialDelta PartialDelta::ForRelation(const ViewDef& view, int rel_index,
                                       Relation delta) {
  SWEEP_CHECK(rel_index >= 0 && rel_index < view.num_relations());
  SWEEP_CHECK_MSG(delta.schema().arity() ==
                      view.rel_schema(rel_index).arity(),
                  "delta schema does not match the relation");
  PartialDelta pd;
  pd.lo = rel_index;
  pd.hi = rel_index;
  pd.rel = std::move(delta);
  return pd;
}

std::string PartialDelta::ToDisplayString() const {
  return StrFormat("span[%d,%d] ", lo, hi) + rel.ToDisplayString();
}

PartialDelta ExtendLeft(const ViewDef& view, const Relation& left_rel,
                        const PartialDelta& pd) {
  SWEEP_CHECK_MSG(pd.lo >= 1, "no relation to the left of the span");
  int rel_index = pd.lo - 1;
  PartialDelta out;
  out.lo = rel_index;
  out.hi = pd.hi;
  out.rel = Join(left_rel, pd.rel, view.ExtendLeftKeys(rel_index));
  return out;
}

PartialDelta ExtendRight(const ViewDef& view, const PartialDelta& pd,
                         const Relation& right_rel) {
  SWEEP_CHECK_MSG(pd.hi + 1 < view.num_relations(),
                  "no relation to the right of the span");
  int rel_index = pd.hi + 1;
  PartialDelta out;
  out.lo = pd.lo;
  out.hi = rel_index;
  out.rel = Join(pd.rel, right_rel, view.ExtendRightKeys(pd.lo, rel_index));
  return out;
}

PartialDelta MergeParallelSweeps(const ViewDef& view, int rel,
                                 const PartialDelta& left,
                                 const PartialDelta& right) {
  SWEEP_CHECK(left.lo == 0 && left.hi == rel);
  SWEEP_CHECK(right.lo == rel && right.hi == view.num_relations() - 1);

  const int rel_arity = static_cast<int>(view.rel_schema(rel).arity());
  const int left_offset = view.attr_offset(rel);  // within span [0, rel]

  // Rendezvous keys: every attribute of R_rel, matched positionally.
  std::vector<std::pair<int, int>> keys;
  keys.reserve(static_cast<size_t>(rel_arity));
  for (int a = 0; a < rel_arity; ++a) {
    keys.emplace_back(left_offset + a, a);
  }
  Relation joined = Join(left.rel, right.rel, keys);

  // Drop the duplicated R_rel block contributed by the right side.
  const int left_arity = static_cast<int>(left.rel.schema().arity());
  const int right_arity = static_cast<int>(right.rel.schema().arity());
  std::vector<int> positions;
  positions.reserve(static_cast<size_t>(left_arity + right_arity -
                                        rel_arity));
  for (int p = 0; p < left_arity; ++p) positions.push_back(p);
  for (int p = rel_arity; p < right_arity; ++p) {
    positions.push_back(left_arity + p);
  }

  PartialDelta out;
  out.lo = 0;
  out.hi = view.num_relations() - 1;
  out.rel = Project(joined, positions);
  return out;
}

}  // namespace sweepmv
