// Partially evaluated view deltas.
//
// During a sweep (Figure 2 of the paper) the warehouse holds a delta that
// spans a contiguous range [lo, hi] of the view's relation chain: it began
// as ΔRi (span [i, i]) and grows one relation at a time as sources answer
// incremental queries. PartialDelta bundles the span with the counted
// relation holding the partial result; its schema is always the
// concatenation of the relation schemas lo..hi.

#ifndef SWEEPMV_RELATIONAL_PARTIAL_DELTA_H_
#define SWEEPMV_RELATIONAL_PARTIAL_DELTA_H_

#include <string>

#include "relational/relation.h"
#include "relational/view_def.h"

namespace sweepmv {

struct PartialDelta {
  int lo = 0;
  int hi = -1;
  Relation rel;

  // Wraps a base-relation delta of relation `rel_index` as a single-span
  // partial.
  static PartialDelta ForRelation(const ViewDef& view, int rel_index,
                                  Relation delta);

  bool SpansAll(const ViewDef& view) const {
    return lo == 0 && hi == view.num_relations() - 1;
  }

  std::string ToDisplayString() const;

  bool operator==(const PartialDelta&) const = default;
};

// Joins `left_rel` (base relation or delta of relation pd.lo - 1) to the
// left of the partial, widening the span by one.
PartialDelta ExtendLeft(const ViewDef& view, const Relation& left_rel,
                        const PartialDelta& pd);

// Joins `right_rel` (base relation or delta of relation pd.hi + 1) to the
// right of the partial, widening the span by one.
PartialDelta ExtendRight(const ViewDef& view, const PartialDelta& pd,
                         const Relation& right_rel);

// Merges the results of the two *parallel* directional sweeps of
// Section 5.3's first optimization: `left` spans [0, rel] and was seeded
// with the true update delta (carrying its counts); `right` spans
// [rel, n-1] and was seeded with the same tuples at unit count (so counts
// are not squared). The sweeps rendezvous on relation `rel`'s columns:
//
//   ΔV = ΔV_left ⋈ ΔV_right      (joined on all of R_rel's attributes)
//
// Returns the full-span delta with R_rel's columns appearing once.
PartialDelta MergeParallelSweeps(const ViewDef& view, int rel,
                                 const PartialDelta& left,
                                 const PartialDelta& right);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_PARTIAL_DELTA_H_
