#include "relational/predicate.h"

#include "common/check.h"

namespace sweepmv {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

Operand Operand::Attr(int position) {
  SWEEP_CHECK(position >= 0);
  Operand o;
  o.is_attr_ = true;
  o.attr_ = position;
  return o;
}

Operand Operand::Const(Value v) {
  Operand o;
  o.is_attr_ = false;
  o.constant_ = std::move(v);
  return o;
}

const Value& Operand::Resolve(const Tuple& t) const {
  if (is_attr_) return t.at(static_cast<size_t>(attr_));
  return constant_;
}

std::string Operand::ToDisplayString() const {
  if (is_attr_) return "$" + std::to_string(attr_);
  return constant_.ToDisplayString();
}

struct Predicate::Node {
  enum class Kind { kTrue, kCompare, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;
  // kCompare:
  Operand lhs = Operand::Const(Value(int64_t{0}));
  CmpOp op = CmpOp::kEq;
  Operand rhs = Operand::Const(Value(int64_t{0}));
  // kAnd / kOr / kNot:
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;

  bool Eval(const Tuple& t) const {
    switch (kind) {
      case Kind::kTrue:
        return true;
      case Kind::kCompare: {
        const Value& a = lhs.Resolve(t);
        const Value& b = rhs.Resolve(t);
        switch (op) {
          case CmpOp::kEq:
            return a == b;
          case CmpOp::kNe:
            return a != b;
          case CmpOp::kLt:
            return a < b;
          case CmpOp::kLe:
            return !(b < a);
          case CmpOp::kGt:
            return b < a;
          case CmpOp::kGe:
            return !(a < b);
        }
        return false;
      }
      case Kind::kAnd:
        return left->Eval(t) && right->Eval(t);
      case Kind::kOr:
        return left->Eval(t) || right->Eval(t);
      case Kind::kNot:
        return !left->Eval(t);
    }
    return false;
  }

  std::string ToDisplayString() const {
    switch (kind) {
      case Kind::kTrue:
        return "true";
      case Kind::kCompare:
        return lhs.ToDisplayString() + " " + CmpOpName(op) + " " +
               rhs.ToDisplayString();
      case Kind::kAnd:
        return "(" + left->ToDisplayString() + " AND " +
               right->ToDisplayString() + ")";
      case Kind::kOr:
        return "(" + left->ToDisplayString() + " OR " +
               right->ToDisplayString() + ")";
      case Kind::kNot:
        return "NOT (" + left->ToDisplayString() + ")";
    }
    return "?";
  }
};

const std::shared_ptr<const Predicate::Node>& Predicate::TrueNode() {
  static const auto& node = *new std::shared_ptr<const Predicate::Node>(
      std::make_shared<Predicate::Node>());
  return node;
}

Predicate::Predicate() : node_(TrueNode()) {}

Predicate Predicate::True() { return Predicate(TrueNode()); }

Predicate Predicate::Compare(Operand lhs, CmpOp op, Operand rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCompare;
  node->lhs = std::move(lhs);
  node->op = op;
  node->rhs = std::move(rhs);
  return Predicate(std::move(node));
}

Predicate Predicate::And(Predicate a, Predicate b) {
  if (a.IsTrueLiteral()) return b;
  if (b.IsTrueLiteral()) return a;
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::Not(Predicate p) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNot;
  node->left = std::move(p.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::AttrEqAttr(int a, int b) {
  return Compare(Operand::Attr(a), CmpOp::kEq, Operand::Attr(b));
}

Predicate Predicate::AttrCmpConst(int a, CmpOp op, Value v) {
  return Compare(Operand::Attr(a), op, Operand::Const(std::move(v)));
}

bool Predicate::Eval(const Tuple& t) const { return node_->Eval(t); }

bool Predicate::IsTrueLiteral() const {
  return node_->kind == Node::Kind::kTrue;
}

std::string Predicate::ToDisplayString() const {
  return node_->ToDisplayString();
}

}  // namespace sweepmv
