// Selection predicates over tuples of a known schema.
//
// Predicates are immutable expression trees with value semantics (copying
// shares subtrees). They cover the SelectCond of the paper's SPJ view
// definition: comparisons between attributes and/or constants combined
// with AND / OR / NOT.

#ifndef SWEEPMV_RELATIONAL_PREDICATE_H_
#define SWEEPMV_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>

#include "relational/tuple.h"
#include "relational/value.h"

namespace sweepmv {

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

// A comparison operand: either an attribute position or a constant.
class Operand {
 public:
  static Operand Attr(int position);
  static Operand Const(Value v);

  bool is_attr() const { return is_attr_; }
  int attr() const { return attr_; }
  const Value& constant() const { return constant_; }

  // Resolves the operand against a tuple.
  const Value& Resolve(const Tuple& t) const;

  std::string ToDisplayString() const;

 private:
  Operand() = default;

  bool is_attr_ = false;
  int attr_ = -1;
  Value constant_;
};

// Immutable predicate tree.
class Predicate {
 public:
  // The always-true predicate (an SPJ view with no selection).
  Predicate();

  static Predicate True();
  static Predicate Compare(Operand lhs, CmpOp op, Operand rhs);
  static Predicate And(Predicate a, Predicate b);
  static Predicate Or(Predicate a, Predicate b);
  static Predicate Not(Predicate p);

  // Convenience builders.
  static Predicate AttrEqAttr(int a, int b);
  static Predicate AttrCmpConst(int a, CmpOp op, Value v);

  // Evaluates the predicate on a tuple. Comparisons between values of
  // different types evaluate to false for kEq (true for kNe) and use the
  // type-tag order for inequalities; schemas are normally type-checked
  // upstream so this is a safety net, not a feature.
  bool Eval(const Tuple& t) const;

  bool IsTrueLiteral() const;

  std::string ToDisplayString() const;

 private:
  struct Node;
  explicit Predicate(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  // Shared singleton node for the always-true predicate.
  static const std::shared_ptr<const Node>& TrueNode();

  std::shared_ptr<const Node> node_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_PREDICATE_H_
