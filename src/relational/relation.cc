#include "relational/relation.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/str.h"

namespace sweepmv {

Relation Relation::OfInts(
    Schema schema,
    std::initializer_list<std::initializer_list<int64_t>> rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) {
    r.Add(IntTuple(row), 1);
  }
  return r;
}

void Relation::Add(const Tuple& t, int64_t count) {
  if (count == 0) return;
  SWEEP_CHECK_MSG(schema_.arity() == 0 || schema_.Matches(t),
                  "tuple does not match relation schema");
  auto [it, inserted] = counts_.try_emplace(t, count);
  if (!inserted) {
    it->second += count;
    if (it->second == 0) counts_.erase(it);
  }
}

int64_t Relation::CountOf(const Tuple& t) const {
  auto it = counts_.find(t);
  return it == counts_.end() ? 0 : it->second;
}

int64_t Relation::TotalCount() const {
  int64_t total = 0;
  for (const auto& [t, c] : counts_) total += c;
  return total;
}

int64_t Relation::AbsoluteCount() const {
  int64_t total = 0;
  for (const auto& [t, c] : counts_) total += c < 0 ? -c : c;
  return total;
}

bool Relation::HasNegative() const {
  for (const auto& [t, c] : counts_) {
    if (c < 0) return true;
  }
  return false;
}

void Relation::Merge(const Relation& other) {
  for (const auto& [t, c] : other.counts_) Add(t, c);
}

void Relation::MergeNegated(const Relation& other) {
  for (const auto& [t, c] : other.counts_) Add(t, -c);
}

Relation Relation::Negated() const {
  Relation out(schema_);
  for (const auto& [t, c] : counts_) out.counts_.emplace(t, -c);
  return out;
}

size_t Relation::EraseMatching(const std::vector<int>& positions,
                               const Tuple& key) {
  size_t erased = 0;
  for (auto it = counts_.begin(); it != counts_.end();) {
    if (it->first.Project(positions) == key) {
      it = counts_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

void Relation::ClampToSet() {
  for (auto& [t, c] : counts_) {
    if (c > 1) c = 1;
  }
}

std::vector<std::pair<Tuple, int64_t>> Relation::SortedEntries() const {
  std::vector<std::pair<Tuple, int64_t>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string Relation::ToDisplayString() const {
  std::vector<std::string> parts;
  for (const auto& [t, c] : SortedEntries()) {
    parts.push_back(t.ToDisplayString() + "[" + std::to_string(c) + "]");
  }
  return "{" + Join(parts, ", ") + "}";
}

std::ostream& operator<<(std::ostream& os, const Relation& r) {
  return os << r.ToDisplayString();
}

void AbsorbRelation(StateHasher& h, const char* tag, const Relation& rel) {
  h.U64(tag, rel.DistinctSize());
  for (const auto& [tuple, count] : rel.SortedEntries()) {
    h.U64("t.hash", static_cast<uint64_t>(tuple.Hash()));
    h.I64("t.count", count);
  }
}

}  // namespace sweepmv
