// Bag relations with signed multiplicity counts.
//
// This is the core algebraic object of the reproduction. Following the
// paper (Section 2) and the counting algorithm of Gupta–Mumick–Subrahmanian
// [GMS93], a relation maps each distinct tuple to a signed 64-bit count:
//
//   * A base relation or materialized view has strictly positive counts
//     ("in how many ways can this tuple be derived").
//   * A delta (ΔR, ΔV) uses positive counts for insertions and negative
//     counts for deletions; a modify is a delete plus an insert.
//
// Joins multiply counts, projection sums them, and applying a delta adds
// counts and erases zeros. This algebra is what makes SWEEP's *local*
// compensation sound, e.g. {-(2,3)} ⋈ {-(3,7,8)} = {+(2,3,7,8)} in the
// paper's Section 5.2 walk-through.

#ifndef SWEEPMV_RELATIONAL_RELATION_H_
#define SWEEPMV_RELATIONAL_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace sweepmv {

class Relation {
 public:
  using CountMap = std::unordered_map<Tuple, int64_t, TupleHash>;

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  // Builds a positive-count relation from a list of all-int tuples; the
  // dominant shape in tests and the paper's examples.
  static Relation OfInts(Schema schema,
                         std::initializer_list<std::initializer_list<int64_t>>
                             rows);

  const Schema& schema() const { return schema_; }

  // Adds `count` occurrences of `t` (negative to delete). Erases the entry
  // if the resulting count is zero. The tuple must match the schema.
  void Add(const Tuple& t, int64_t count = 1);

  // Count of `t` (0 if absent).
  int64_t CountOf(const Tuple& t) const;

  bool Contains(const Tuple& t) const { return CountOf(t) != 0; }

  // True if no tuple has a nonzero count.
  bool Empty() const { return counts_.empty(); }

  // Number of distinct tuples with nonzero count.
  size_t DistinctSize() const { return counts_.size(); }

  // Sum of counts (can be negative for deltas).
  int64_t TotalCount() const;

  // Sum of |count| — the "payload volume" a message carrying this relation
  // represents.
  int64_t AbsoluteCount() const;

  // True if any tuple has a negative count (a view in a consistent state
  // never does; deltas routinely do).
  bool HasNegative() const;

  // Adds every (tuple, count) of `other` into this relation. Schemas must
  // agree on arity/types.
  void Merge(const Relation& other);

  // Subtracts: Merge with all of `other`'s counts negated.
  void MergeNegated(const Relation& other);

  // Returns a copy with all counts negated.
  Relation Negated() const;

  // Removes every tuple whose projection onto `positions` equals `key`.
  // This is the "key delete" primitive the Strobe family relies on.
  // Returns the number of distinct tuples removed.
  size_t EraseMatching(const std::vector<int>& positions, const Tuple& key);

  // Clamps every count to at most 1 (set semantics; used by the Strobe
  // family, which assumes unique keys and suppresses duplicates).
  void ClampToSet();

  const CountMap& entries() const { return counts_; }

  // Pointer to the stored (tuple, count) entry, or nullptr if absent.
  // Stable across other insertions/erasures and across rehashing
  // (unordered_map node stability) — the storage layer's hash indexes
  // (src/storage/) point at these entries instead of copying tuples.
  const CountMap::value_type* FindEntry(const Tuple& t) const {
    auto it = counts_.find(t);
    return it == counts_.end() ? nullptr : &*it;
  }

  // Deterministic (sorted by tuple) snapshot of the entries; use for
  // display and for order-insensitive comparisons in tests.
  std::vector<std::pair<Tuple, int64_t>> SortedEntries() const;

  // Two relations are equal iff they hold the same tuple->count map.
  // (Schema attribute names are display metadata and not compared.)
  bool operator==(const Relation& other) const {
    return counts_ == other.counts_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  // "{(1,3)[1], (2,3)[2]}" — counts in brackets as in the paper's Figure 5.
  std::string ToDisplayString() const;

 private:
  Schema schema_;
  CountMap counts_;
};

std::ostream& operator<<(std::ostream& os, const Relation& r);

class StateHasher;

// Absorbs `rel` into a state fingerprint in sorted-tuple order (see
// common/fingerprint.h) — the canonical form every interleaving agrees on.
void AbsorbRelation(StateHasher& h, const char* tag, const Relation& rel);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_RELATION_H_
