#include "relational/schema.h"

#include <ostream>

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

Schema Schema::AllInts(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const std::string& n : names) {
    attrs.push_back(Attribute{n, ValueType::kInt});
  }
  return Schema(std::move(attrs));
}

const Attribute& Schema::attr(size_t i) const {
  SWEEP_CHECK_MSG(i < attrs_.size(), "schema index out of range");
  return attrs_[i];
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Attribute> attrs = attrs_;
  attrs.insert(attrs.end(), other.attrs_.begin(), other.attrs_.end());
  return Schema(std::move(attrs));
}

bool Schema::Matches(const Tuple& t) const {
  if (t.arity() != attrs_.size()) return false;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (t.at(i).type() != attrs_[i].type) return false;
  }
  return true;
}

std::string Schema::ToDisplayString() const {
  std::vector<std::string> parts;
  parts.reserve(attrs_.size());
  for (const Attribute& a : attrs_) {
    parts.push_back(a.name + ":" + ValueTypeName(a.type));
  }
  return "[" + Join(parts, ", ") + "]";
}

std::ostream& operator<<(std::ostream& os, const Schema& s) {
  return os << s.ToDisplayString();
}

}  // namespace sweepmv
