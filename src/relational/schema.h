// Relation schemas: named, typed attribute lists.

#ifndef SWEEPMV_RELATIONAL_SCHEMA_H_
#define SWEEPMV_RELATIONAL_SCHEMA_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace sweepmv {

struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  // Builds an all-int schema "name[a0,a1,...]" from attribute names; the
  // common case in tests and the paper's examples.
  static Schema AllInts(const std::vector<std::string>& names);

  size_t arity() const { return attrs_.size(); }
  const Attribute& attr(size_t i) const;
  const std::vector<Attribute>& attrs() const { return attrs_; }

  // Position of the attribute with the given name, or -1 if absent.
  int IndexOf(const std::string& name) const;

  // Concatenation (for join results). Attribute names are kept as-is;
  // callers that need uniqueness qualify names up front (e.g. "R1.B").
  Schema Concat(const Schema& other) const;

  // True if `t` has matching arity and per-position value types.
  bool Matches(const Tuple& t) const;

  bool operator==(const Schema& other) const { return attrs_ == other.attrs_; }

  // "[A:int, B:string]"
  std::string ToDisplayString() const;

 private:
  std::vector<Attribute> attrs_;
};

std::ostream& operator<<(std::ostream& os, const Schema& s);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_SCHEMA_H_
