#include "relational/tuple.h"

#include <ostream>

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

const Value& Tuple::at(size_t i) const {
  SWEEP_CHECK_MSG(i < values_.size(), "tuple index out of range");
  return values_[i];
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out;
  out.reserve(values_.size() + other.values_.size());
  out.insert(out.end(), values_.begin(), values_.end());
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

Tuple Tuple::Project(const std::vector<int>& positions) const {
  std::vector<Value> out;
  out.reserve(positions.size());
  for (int pos : positions) {
    SWEEP_CHECK_MSG(pos >= 0 && static_cast<size_t>(pos) < values_.size(),
                    "projection position out of range");
    out.push_back(values_[static_cast<size_t>(pos)]);
  }
  return Tuple(std::move(out));
}

size_t Tuple::ComputeHash(const std::vector<Value>& values) {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : values) {
    size_t vh = v.Hash();
    h ^= vh + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToDisplayString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToDisplayString());
  return "(" + Join(parts, ",") + ")";
}

Tuple IntTuple(std::initializer_list<int64_t> ints) {
  std::vector<Value> values;
  values.reserve(ints.size());
  for (int64_t v : ints) values.emplace_back(v);
  return Tuple(std::move(values));
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToDisplayString();
}

}  // namespace sweepmv
