// Tuples: fixed-arity sequences of Values.

#ifndef SWEEPMV_RELATIONAL_TUPLE_H_
#define SWEEPMV_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <iosfwd>
#include <initializer_list>
#include <string>
#include <vector>

#include "relational/value.h"

namespace sweepmv {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const;
  const std::vector<Value>& values() const { return values_; }

  // Concatenation of this tuple followed by `other` (used by joins).
  Tuple Concat(const Tuple& other) const;

  // Projection onto the given attribute positions (order preserved,
  // duplicates allowed).
  Tuple Project(const std::vector<int>& positions) const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return values_ != other.values_; }
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  size_t Hash() const;

  // "(1, 3, \"x\")"
  std::string ToDisplayString() const;

 private:
  std::vector<Value> values_;
};

// Convenience builder for all-integer tuples (the dominant case in tests
// and in the paper's examples).
Tuple IntTuple(std::initializer_list<int64_t> ints);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_TUPLE_H_
