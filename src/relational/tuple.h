// Tuples: fixed-arity sequences of Values.

#ifndef SWEEPMV_RELATIONAL_TUPLE_H_
#define SWEEPMV_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <iosfwd>
#include <initializer_list>
#include <string>
#include <vector>

#include "relational/value.h"

namespace sweepmv {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values)
      : values_(std::move(values)), hash_(ComputeHash(values_)) {}
  Tuple(std::initializer_list<Value> values)
      : values_(values), hash_(ComputeHash(values_)) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const;
  const std::vector<Value>& values() const { return values_; }

  // Concatenation of this tuple followed by `other` (used by joins).
  Tuple Concat(const Tuple& other) const;

  // Projection onto the given attribute positions (order preserved,
  // duplicates allowed).
  Tuple Project(const std::vector<int>& positions) const;

  bool operator==(const Tuple& other) const {
    return hash_ == other.hash_ && values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  // O(1): tuples are immutable, so the hash is computed once at
  // construction. Hash-keyed containers (Relation's count map, join
  // tables, index buckets) and snapshot copies never rehash the values.
  size_t Hash() const { return hash_; }

  // "(1, 3, \"x\")"
  std::string ToDisplayString() const;

 private:
  static size_t ComputeHash(const std::vector<Value>& values);

  std::vector<Value> values_;
  // Hash of the empty tuple: ComputeHash's FNV offset basis.
  size_t hash_ = 0xcbf29ce484222325ULL;
};

// Convenience builder for all-integer tuples (the dominant case in tests
// and in the paper's examples).
Tuple IntTuple(std::initializer_list<int64_t> ints);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_TUPLE_H_
