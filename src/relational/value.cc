#include "relational/value.h"

#include <functional>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

namespace {

// Intern pool: text -> weak reference to its canonical buffer. Weak
// entries keep the pool bounded by the set of *live* strings; expired
// entries are swept periodically instead of per-release so Value
// destruction stays allocation- and lock-free.
struct InternPool {
  std::mutex mu;
  std::unordered_map<std::string, std::weak_ptr<const InternedString>> map;
  size_t inserts_since_sweep = 0;
};

InternPool& Pool() {
  static InternPool* pool = new InternPool();  // leaked: outlives all Values
  return *pool;
}

}  // namespace

std::shared_ptr<const InternedString> InternString(std::string text) {
  InternPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mu);
  auto it = pool.map.find(text);
  if (it != pool.map.end()) {
    if (std::shared_ptr<const InternedString> live = it->second.lock()) {
      return live;
    }
  }
  auto interned = std::make_shared<InternedString>();
  interned->hash = std::hash<std::string>{}(text);
  interned->text = std::move(text);
  pool.map[interned->text] = interned;
  if (++pool.inserts_since_sweep >= 1024) {
    pool.inserts_since_sweep = 0;
    for (auto sweep = pool.map.begin(); sweep != pool.map.end();) {
      sweep = sweep->second.expired() ? pool.map.erase(sweep)
                                      : std::next(sweep);
    }
  }
  return interned;
}

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt() const {
  SWEEP_CHECK_MSG(type() == ValueType::kInt, "Value is not an int");
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  SWEEP_CHECK_MSG(type() == ValueType::kDouble, "Value is not a double");
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  SWEEP_CHECK_MSG(type() == ValueType::kString, "Value is not a string");
  return std::get<std::shared_ptr<const InternedString>>(data_)->text;
}

bool Value::operator==(const Value& other) const {
  if (data_.index() != other.data_.index()) return false;
  switch (type()) {
    case ValueType::kInt:
      return std::get<int64_t>(data_) == std::get<int64_t>(other.data_);
    case ValueType::kDouble:
      return std::get<double>(data_) == std::get<double>(other.data_);
    case ValueType::kString:
      // Interning is canonical: one live buffer per distinct text.
      return std::get<std::shared_ptr<const InternedString>>(data_) ==
             std::get<std::shared_ptr<const InternedString>>(other.data_);
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  switch (type()) {
    case ValueType::kInt:
      return std::get<int64_t>(data_) < std::get<int64_t>(other.data_);
    case ValueType::kDouble:
      return std::get<double>(data_) < std::get<double>(other.data_);
    case ValueType::kString: {
      const auto& a = std::get<std::shared_ptr<const InternedString>>(data_);
      const auto& b =
          std::get<std::shared_ptr<const InternedString>>(other.data_);
      return a != b && a->text < b->text;
    }
  }
  return false;
}

size_t Value::Hash() const {
  size_t seed = data_.index();
  size_t h = 0;
  switch (type()) {
    case ValueType::kInt:
      h = std::hash<int64_t>{}(std::get<int64_t>(data_));
      break;
    case ValueType::kDouble:
      h = std::hash<double>{}(std::get<double>(data_));
      break;
    case ValueType::kString:
      h = std::get<std::shared_ptr<const InternedString>>(data_)->hash;
      break;
  }
  // Boost-style hash combine to mix the type tag in.
  return h ^ (seed + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return StrFormat("%g", std::get<double>(data_));
    case ValueType::kString:
      return "\"" + AsString() + "\"";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToDisplayString();
}

}  // namespace sweepmv
