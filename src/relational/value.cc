#include "relational/value.h"

#include <functional>
#include <ostream>

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt() const {
  SWEEP_CHECK_MSG(type() == ValueType::kInt, "Value is not an int");
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  SWEEP_CHECK_MSG(type() == ValueType::kDouble, "Value is not a double");
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  SWEEP_CHECK_MSG(type() == ValueType::kString, "Value is not a string");
  return std::get<std::string>(data_);
}

size_t Value::Hash() const {
  size_t seed = data_.index();
  size_t h = 0;
  switch (type()) {
    case ValueType::kInt:
      h = std::hash<int64_t>{}(std::get<int64_t>(data_));
      break;
    case ValueType::kDouble:
      h = std::hash<double>{}(std::get<double>(data_));
      break;
    case ValueType::kString:
      h = std::hash<std::string>{}(std::get<std::string>(data_));
      break;
  }
  // Boost-style hash combine to mix the type tag in.
  return h ^ (seed + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return StrFormat("%g", std::get<double>(data_));
    case ValueType::kString:
      return "\"" + std::get<std::string>(data_) + "\"";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToDisplayString();
}

}  // namespace sweepmv
