// Typed cell values for tuples.
//
// The paper's model is a plain relational model; three scalar types (64-bit
// integer, double, string) cover everything the experiments and examples
// need. Values are ordered and hashable so they can serve as join keys and
// live in hash-based bag relations.
//
// String payloads are interned: every Value holding the same text shares
// one immutable, refcounted buffer with a precomputed hash. Copying a
// string Value is a pointer copy, equality is a pointer compare (the
// intern pool guarantees one live buffer per distinct text), and Hash()
// never rescans the bytes — which is what keeps snapshot copies and join
// probes in the schedule-space explorer O(1) per string cell.

#ifndef SWEEPMV_RELATIONAL_VALUE_H_
#define SWEEPMV_RELATIONAL_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <variant>

namespace sweepmv {

enum class ValueType : uint8_t {
  kInt = 0,
  kDouble = 1,
  kString = 2,
};

// Returns a human-readable name ("int", "double", "string").
const char* ValueTypeName(ValueType type);

// One interned string payload: the text plus its hash, computed once.
// Instances are only created by the intern pool (value.cc) and are
// immutable afterwards, so sharing them across threads is safe.
struct InternedString {
  std::string text;
  size_t hash = 0;
};

// Returns the canonical shared buffer for `text`. At most one live
// InternedString exists per distinct text; repeated payloads (hot join
// keys, categorical columns) collapse to refcount bumps.
std::shared_ptr<const InternedString> InternString(std::string text);

// Immutable scalar cell. Comparison across different types is defined (by
// type tag first) so Values can key ordered containers, but predicates only
// ever compare same-typed values (schemas are type-checked).
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(int v) : data_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(InternString(std::move(v))) {}
  explicit Value(const char* v) : data_(InternString(std::string(v))) {}

  ValueType type() const { return static_cast<ValueType>(data_.index()); }

  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Total order: type tag first, then value. Equality requires same type.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  size_t Hash() const;

  // Renders the value for display ("7", "3.5", "\"abc\"").
  std::string ToDisplayString() const;

 private:
  std::variant<int64_t, double, std::shared_ptr<const InternedString>> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_VALUE_H_
