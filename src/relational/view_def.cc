#include "relational/view_def.h"

#include <numeric>

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

const Schema& ViewDef::rel_schema(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < num_relations());
  return schemas_[static_cast<size_t>(rel)];
}

const std::string& ViewDef::rel_name(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < num_relations());
  return names_[static_cast<size_t>(rel)];
}

int ViewDef::attr_offset(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < num_relations());
  return offsets_[static_cast<size_t>(rel)];
}

const std::vector<std::pair<int, int>>& ViewDef::chain_keys(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < num_relations() - 1);
  return chain_keys_[static_cast<size_t>(rel)];
}

std::vector<std::pair<int, int>> ViewDef::ExtendLeftKeys(int rel) const {
  // Partial spans [rel+1, hi]; relation rel joins on its chain condition
  // with rel+1, whose attributes sit at offset 0 of the partial.
  return chain_keys(rel);
}

std::vector<std::pair<int, int>> ViewDef::ExtendRightKeys(int lo,
                                                          int rel) const {
  // Partial spans [lo, rel-1]; relation rel joins with rel-1, whose
  // attributes start at offset(rel-1) - offset(lo) within the partial.
  SWEEP_CHECK(rel >= 1 && rel < num_relations());
  SWEEP_CHECK(lo >= 0 && lo <= rel - 1);
  int base = attr_offset(rel - 1) - attr_offset(lo);
  std::vector<std::pair<int, int>> keys;
  for (const auto& [a, b] : chain_keys(rel - 1)) {
    keys.emplace_back(base + a, b);
  }
  return keys;
}

std::vector<int> ViewDef::RelPositionsInJoined(int rel) const {
  return RelPositionsInSpan(0, num_relations() - 1, rel);
}

std::vector<int> ViewDef::RelPositionsInSpan(int lo, int hi, int rel) const {
  SWEEP_CHECK(lo >= 0 && hi < num_relations() && lo <= hi);
  SWEEP_CHECK(rel >= lo && rel <= hi);
  int base = attr_offset(rel) - attr_offset(lo);
  std::vector<int> positions(rel_schema(rel).arity());
  std::iota(positions.begin(), positions.end(), base);
  return positions;
}

Relation ViewDef::EvaluateFull(
    const std::vector<const Relation*>& rels) const {
  SWEEP_CHECK(static_cast<int>(rels.size()) == num_relations());
  Relation acc = *rels[0];
  for (int rel = 1; rel < num_relations(); ++rel) {
    acc = Join(acc, *rels[static_cast<size_t>(rel)], ExtendRightKeys(0, rel));
  }
  return FinishFullSpan(acc);
}

Relation ViewDef::FinishFullSpan(const Relation& full_span) const {
  SWEEP_CHECK_MSG(
      full_span.schema().arity() == joined_schema_.arity(),
      "FinishFullSpan requires a delta spanning every relation");
  Relation selected =
      selection_.IsTrueLiteral() ? full_span : sweepmv::Select(full_span,
                                                               selection_);
  return sweepmv::Project(selected, projection_);
}

std::string ViewDef::ToDisplayString() const {
  std::vector<std::string> rels;
  for (int i = 0; i < num_relations(); ++i) {
    rels.push_back(names_[static_cast<size_t>(i)] +
                   schemas_[static_cast<size_t>(i)].ToDisplayString());
  }
  std::string out = Join(rels, " |><| ");
  if (!selection_.IsTrueLiteral()) {
    out += " WHERE " + selection_.ToDisplayString();
  }
  return out;
}

ViewDef::Builder& ViewDef::Builder::AddRelation(std::string name,
                                                Schema schema) {
  SWEEP_CHECK(!built_);
  view_.names_.push_back(std::move(name));
  view_.schemas_.push_back(std::move(schema));
  if (view_.schemas_.size() > 1) {
    view_.chain_keys_.emplace_back();
  }
  return *this;
}

ViewDef::Builder& ViewDef::Builder::JoinOn(int left_rel, int left_attr,
                                           int right_attr) {
  SWEEP_CHECK(!built_);
  SWEEP_CHECK_MSG(
      left_rel >= 0 &&
          static_cast<size_t>(left_rel) + 1 < view_.schemas_.size(),
      "JoinOn links a relation with its right neighbour; add both first");
  const Schema& ls = view_.schemas_[static_cast<size_t>(left_rel)];
  const Schema& rs = view_.schemas_[static_cast<size_t>(left_rel) + 1];
  SWEEP_CHECK(left_attr >= 0 &&
              static_cast<size_t>(left_attr) < ls.arity());
  SWEEP_CHECK(right_attr >= 0 &&
              static_cast<size_t>(right_attr) < rs.arity());
  SWEEP_CHECK_MSG(ls.attr(static_cast<size_t>(left_attr)).type ==
                      rs.attr(static_cast<size_t>(right_attr)).type,
                  "join attributes must have the same type");
  view_.chain_keys_[static_cast<size_t>(left_rel)].emplace_back(left_attr,
                                                                right_attr);
  return *this;
}

ViewDef::Builder& ViewDef::Builder::Select(Predicate pred) {
  SWEEP_CHECK(!built_);
  view_.selection_ = std::move(pred);
  return *this;
}

ViewDef::Builder& ViewDef::Builder::Project(std::vector<int> positions) {
  SWEEP_CHECK(!built_);
  view_.projection_ = std::move(positions);
  return *this;
}

ViewDef ViewDef::Builder::Build() {
  SWEEP_CHECK(!built_);
  built_ = true;
  SWEEP_CHECK_MSG(!view_.schemas_.empty(),
                  "a view needs at least one relation");

  view_.offsets_.clear();
  int offset = 0;
  Schema joined;
  for (const Schema& s : view_.schemas_) {
    view_.offsets_.push_back(offset);
    offset += static_cast<int>(s.arity());
    joined = joined.Concat(s);
  }
  view_.joined_schema_ = std::move(joined);

  if (view_.projection_.empty()) {
    view_.projection_.resize(view_.joined_schema_.arity());
    std::iota(view_.projection_.begin(), view_.projection_.end(), 0);
  }
  for (int pos : view_.projection_) {
    SWEEP_CHECK_MSG(pos >= 0 && static_cast<size_t>(pos) <
                                    view_.joined_schema_.arity(),
                    "projection position outside the joined schema");
  }
  std::vector<Attribute> view_attrs;
  for (int pos : view_.projection_) {
    view_attrs.push_back(view_.joined_schema_.attr(static_cast<size_t>(pos)));
  }
  view_.view_schema_ = Schema(std::move(view_attrs));
  return std::move(view_);
}

}  // namespace sweepmv
