// SPJ view definitions over a chain of base relations.
//
// The paper's materialized view is
//
//   V = Π_ProjAttr σ_SelectCond (R1 ⋈ R2 ⋈ … ⋈ Rn)
//
// with the join written as a linear chain: each consecutive pair (Ri,
// Ri+1) is linked by equi-join conditions. ViewDef captures that shape:
// per-relation schemas, chain join keys, a selection predicate over the
// concatenated ("joined") schema, and a projection list. The selection and
// projection are applied only once a delta spans all n relations (at the
// warehouse); intermediate sweep results keep every attribute because the
// chain keys of not-yet-joined neighbours are still needed.

#ifndef SWEEPMV_RELATIONAL_VIEW_DEF_H_
#define SWEEPMV_RELATIONAL_VIEW_DEF_H_

#include <string>
#include <utility>
#include <vector>

#include "relational/operators.h"
#include "relational/predicate.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace sweepmv {

class ViewDef {
 public:
  class Builder;

  int num_relations() const { return static_cast<int>(schemas_.size()); }
  const Schema& rel_schema(int rel) const;
  const std::string& rel_name(int rel) const;

  // Concatenation of all relation schemas, in chain order.
  const Schema& joined_schema() const { return joined_schema_; }

  // Offset of relation `rel`'s first attribute within the joined schema.
  int attr_offset(int rel) const;

  // Equi-join key pairs between relation `rel` and `rel + 1`, with
  // positions local to each relation.
  const std::vector<std::pair<int, int>>& chain_keys(int rel) const;

  const Predicate& selection() const { return selection_; }

  // Projection positions within the joined schema (never empty; defaults
  // to the identity projection).
  const std::vector<int>& projection() const { return projection_; }

  // Schema of the view output (after projection).
  const Schema& view_schema() const { return view_schema_; }

  // Join keys for extending a partial delta spanning [rel+1, hi] with
  // relation `rel` placed on the LEFT: pairs (attr in rel, attr in
  // partial).
  std::vector<std::pair<int, int>> ExtendLeftKeys(int rel) const;

  // Join keys for extending a partial delta spanning [lo, rel-1] (LEFT)
  // with relation `rel` on the RIGHT: pairs (attr in partial, attr in rel).
  std::vector<std::pair<int, int>> ExtendRightKeys(int lo, int rel) const;

  // Positions of relation `rel`'s attributes within a full-span tuple.
  std::vector<int> RelPositionsInJoined(int rel) const;

  // Positions of relation `rel`'s attributes within a tuple spanning
  // relations [lo, hi] (rel must lie inside the span).
  std::vector<int> RelPositionsInSpan(int lo, int hi, int rel) const;

  // Evaluates the view from scratch over the given base relations (used by
  // the consistency checker's replay and the recompute baseline).
  Relation EvaluateFull(const std::vector<const Relation*>& rels) const;

  // Applies the selection and projection to a relation over the joined
  // schema (a delta that has been swept across every relation).
  Relation FinishFullSpan(const Relation& full_span) const;

  std::string ToDisplayString() const;

 private:
  ViewDef() = default;

  std::vector<std::string> names_;
  std::vector<Schema> schemas_;
  std::vector<int> offsets_;  // offsets_[i] = first attr of rel i
  // chain_keys_[i] links relation i and i+1 (size n-1).
  std::vector<std::vector<std::pair<int, int>>> chain_keys_;
  Schema joined_schema_;
  Predicate selection_;
  std::vector<int> projection_;
  Schema view_schema_;
};

// Fluent construction:
//
//   ViewDef v = ViewDef::Builder()
//       .AddRelation("R1", Schema::AllInts({"A", "B"}))
//       .AddRelation("R2", Schema::AllInts({"C", "D"}))
//       .JoinOn(0, 1, 0)               // R1.B = R2.C
//       .Select(pred_over_joined)      // optional
//       .Project({3})                  // optional, joined-schema positions
//       .Build();
class ViewDef::Builder {
 public:
  Builder& AddRelation(std::string name, Schema schema);

  // Adds an equi-join condition between relation `left_rel` and
  // `left_rel + 1`: attribute `left_attr` of the former equals attribute
  // `right_attr` of the latter (positions local to each relation).
  Builder& JoinOn(int left_rel, int left_attr, int right_attr);

  // Sets the selection predicate (over the joined schema).
  Builder& Select(Predicate pred);

  // Sets the projection (positions within the joined schema).
  Builder& Project(std::vector<int> positions);

  // Finalizes. Requires at least one relation; every consecutive pair must
  // have at least one join condition unless a cross product is explicitly
  // intended (allowed: a pair with no conditions joins as a product, which
  // mirrors the paper's generic ⋈).
  ViewDef Build();

 private:
  ViewDef view_;
  bool built_ = false;
};

}  // namespace sweepmv

#endif  // SWEEPMV_RELATIONAL_VIEW_DEF_H_
