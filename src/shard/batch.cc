#include "shard/batch.h"

#include <utility>

#include "common/check.h"
#include "shard/routing.h"

namespace sweepmv {

BatchPipeline::BatchPipeline(SourceSite* source, int relation,
                             Simulator* sim, BatchOptions options)
    : source_(source), relation_(relation), sim_(sim), options_(options) {
  SWEEP_CHECK(source_ != nullptr && sim_ != nullptr);
  SWEEP_CHECK(options_.max_batch >= 1);
  SWEEP_CHECK(options_.max_delay >= 0);
  SWEEP_CHECK(options_.route_shards >= 1);
  if (options_.route_shards > 1) {
    SWEEP_CHECK_MSG(options_.view != nullptr,
                    "shard-affine batching needs the view's join keys");
    key_positions_ = JoinKeyPositions(*options_.view, relation_);
  }
}

void BatchPipeline::Submit(std::vector<UpdateOp> ops) {
  SWEEP_CHECK_MSG(!ops.empty(), "empty transaction submitted to pipeline");
  const bool was_empty = pending_txns_ == 0;
  ++stats_.txns_submitted;
  stats_.ops_submitted += static_cast<int64_t>(ops.size());
  pending_submit_times_.push_back(sim_->now());
  for (UpdateOp& op : ops) pending_.push_back(std::move(op));
  ++pending_txns_;
  if (pending_txns_ >= options_.max_batch) {
    ++stats_.flushes_by_count;
    Flush();
    return;
  }
  if (was_empty && options_.max_delay > 0) ArmTimer();
}

void BatchPipeline::ArmTimer() {
  const int64_t gen = flush_gen_;
  sim_->Schedule(options_.max_delay, [this, gen]() {
    if (gen != flush_gen_) return;  // batch already flushed
    ++stats_.flushes_by_timer;
    Flush();
  });
}

void BatchPipeline::Flush() {
  ++flush_gen_;
  if (pending_txns_ == 0) return;
  FlushRecord record;
  record.flushed_at = sim_->now();
  record.submit_times = std::move(pending_submit_times_);
  if (options_.route_shards <= 1) {
    // One ApplyTxn commits the whole window atomically: OpsToDelta
    // merges the concatenated operations into a single signed delta,
    // cancelling same-key churn, and the source ships at most one
    // UpdateMessage.
    const int64_t id = source_->ApplyTxn(relation_, pending_);
    if (id >= 0) record.update_ids.push_back(id);
  } else {
    // Shard-affine: one transaction per routing-hash residue class, in
    // class order (deterministic). Every tuple of class s hashes to
    // residue s, so OwnerShard assigns the resulting update to shard s
    // — see the min-combine argument in shard/routing.h.
    std::vector<std::vector<UpdateOp>> classes(
        static_cast<size_t>(options_.route_shards));
    for (UpdateOp& op : pending_) {
      const uint64_t h = RoutingHashTuple(key_positions_, op.tuple);
      classes[static_cast<size_t>(
                  h % static_cast<uint64_t>(options_.route_shards))]
          .push_back(std::move(op));
    }
    for (std::vector<UpdateOp>& ops : classes) {
      if (ops.empty()) continue;
      const int64_t id = source_->ApplyTxn(relation_, ops);
      if (id >= 0) record.update_ids.push_back(id);
    }
  }
  // Every class cancelled to nothing (pure churn), or the source is
  // crashed and refused the window — either way the batch is gone; its
  // submits count against the flush time, not an install.
  if (record.update_ids.empty()) {
    ++stats_.noop_batches;
  } else {
    ++stats_.batches_flushed;
  }
  pending_.clear();
  pending_submit_times_.clear();
  pending_txns_ = 0;
  flush_log_.push_back(std::move(record));
}

}  // namespace sweepmv
