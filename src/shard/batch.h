// BatchPipeline: source-side ingest batching.
//
// Sits between the workload and one source relation. Client updates are
// buffered and flushed as ONE source-local transaction when the buffer
// reaches a count threshold or a sim-time delay expires — so the whole
// batch commits atomically, ships as a single UpdateMessage, and is
// maintained by a single sweep. This extends Nested SWEEP's amortization
// (one answer serves many updates) end to end: the batch is merged into
// one signed delta before it ever leaves the source, and same-key
// churn inside the window (insert then delete, or repeated modifies of a
// hot key) cancels algebraically in OpsToDelta — those updates cost no
// maintenance at all.
//
// The trade is latency: a buffered update is invisible to the view until
// its batch flushes. The staleness percentiles (src/harness/stats.h)
// price that trade; bench/ingest_throughput.cc reports both sides.
//
// Sharded deployments set `route_shards`: a flush then partitions the
// buffered operations by their tuples' routing hash (shard/routing.h)
// and commits one transaction per non-empty residue class, so every
// shipped update is wholly owned by one shard. Without the partition a
// batch mixes keys, its owner is effectively random, and the insert and
// the delete of the same base tuple land on different shards — their
// view deltas then sit in two fragments forever instead of cancelling,
// and fragment memory grows linearly with ingested updates. With it, a
// tuple's whole lifecycle routes identically and fragments stay near
// the size of the live view.

#ifndef SWEEPMV_SHARD_BATCH_H_
#define SWEEPMV_SHARD_BATCH_H_

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "source/source_site.h"
#include "source/update.h"

namespace sweepmv {

class ViewDef;

struct BatchOptions {
  // Flush when this many client transactions are buffered.
  int max_batch = 64;
  // Flush this long (sim ticks) after the first buffered transaction;
  // 0 disables the timer (count-threshold and explicit flushes only).
  SimTime max_delay = 0;
  // Shard-affine flushing: when > 1, each flush partitions the buffer
  // into one transaction per routing-hash residue class (mod this), so
  // updates align with shard ownership (see the file comment). Requires
  // `view`. 1 keeps the whole batch as a single transaction.
  int route_shards = 1;
  // The view whose join keys drive the routing hash; must outlive the
  // pipeline. Only read when route_shards > 1.
  const ViewDef* view = nullptr;
};

struct BatchStats {
  int64_t txns_submitted = 0;
  int64_t ops_submitted = 0;
  int64_t batches_flushed = 0;  // non-empty flushes
  int64_t flushes_by_count = 0;
  int64_t flushes_by_timer = 0;
  // Batches whose merged delta cancelled to nothing (pure churn).
  int64_t noop_batches = 0;
};

class BatchPipeline {
 public:
  // One flushed batch: the update ids it committed as (empty when the
  // merged delta cancelled to a no-op — or, under route_shards, one id
  // per residue class that survived cancellation), when, and the submit
  // time of every client transaction it carried — the accepted-at
  // timestamps the staleness metric measures from. A batch's changes
  // are fully visible once the LAST of its updates installs, so
  // staleness attributes every carried submit to that final install.
  struct FlushRecord {
    std::vector<int64_t> update_ids;
    SimTime flushed_at = 0;
    std::vector<SimTime> submit_times;
  };

  BatchPipeline(SourceSite* source, int relation, Simulator* sim,
                BatchOptions options);

  // Buffers one client transaction (submit time = now). May flush
  // synchronously when the count threshold is reached.
  void Submit(std::vector<UpdateOp> ops);

  // Flushes the buffer as one transaction; no-op when empty. The harness
  // calls this once after the last scheduled submit so no update is
  // stranded in a partial batch.
  void Flush();

  int buffered() const { return static_cast<int>(pending_.size()); }
  const BatchStats& stats() const { return stats_; }
  const std::vector<FlushRecord>& flush_log() const { return flush_log_; }

 private:
  void ArmTimer();

  SourceSite* source_;
  int relation_;
  Simulator* sim_;
  BatchOptions options_;
  // Join-key positions of this relation, precomputed for the per-op
  // routing hash (only used when route_shards > 1; empty also means
  // "hash the whole tuple" for single-relation views).
  std::vector<int> key_positions_;
  std::vector<UpdateOp> pending_;
  std::vector<SimTime> pending_submit_times_;
  // Number of client txns in the buffer (>= 1 op each).
  int pending_txns_ = 0;
  // Bumped per flush so a delay timer armed for an already-flushed batch
  // disarms itself.
  int64_t flush_gen_ = 0;
  BatchStats stats_;
  std::vector<FlushRecord> flush_log_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SHARD_BATCH_H_
