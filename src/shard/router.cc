#include "shard/router.h"

#include "common/check.h"
#include "common/log.h"

namespace sweepmv {

ShardRouter::ShardRouter(int site_id, Network* network,
                         std::vector<int> source_sites,
                         std::vector<int> shard_sites)
    : site_id_(site_id),
      network_(network),
      source_sites_(std::move(source_sites)),
      shard_sites_(std::move(shard_sites)) {
  SWEEP_CHECK(network_ != nullptr);
  SWEEP_CHECK(!source_sites_.empty());
  SWEEP_CHECK(!shard_sites_.empty());
}

void ShardRouter::OnMessage(int from, Message msg) {
  (void)from;
  if (auto* update = std::get_if<UpdateMessage>(&msg)) {
    ++updates_broadcast_;
    SWEEP_LOG(Debug) << "router broadcasts "
                     << update->update.ToDisplayString();
    for (int shard : shard_sites_) {
      network_->Send(site_id_, shard, UpdateMessage{update->update});
    }
    return;
  }
  if (auto* query = std::get_if<QueryRequest>(&msg)) {
    SWEEP_CHECK(query->target_rel >= 0 &&
                query->target_rel <
                    static_cast<int>(source_sites_.size()));
    ++queries_forwarded_;
    const int target =
        source_sites_[static_cast<size_t>(query->target_rel)];
    network_->Send(site_id_, target, std::move(msg));
    return;
  }
  if (auto* answer = std::get_if<QueryAnswer>(&msg)) {
    SWEEP_CHECK_MSG(answer->query_id >= 0,
                    "query answer without a routable id");
    ++answers_returned_;
    const auto owner = static_cast<size_t>(
        answer->query_id % static_cast<int64_t>(shard_sites_.size()));
    network_->Send(site_id_, shard_sites_[owner], std::move(msg));
    return;
  }
  SWEEP_CHECK_MSG(false,
                  "shard router only relays sweep-protocol traffic "
                  "(updates, incremental queries, answers)");
}

}  // namespace sweepmv
