// ShardRouter: the traffic hub of a sharded warehouse deployment.
//
// Sources address all their traffic to the router as if it were the one
// warehouse; the router relays:
//
//   * UpdateMessage  — broadcast to every shard, in arrival order. One
//     inbound FIFO link fans out to per-shard FIFO links, so every shard
//     observes the same global arrival order — the total order that
//     defines consistency, and the order SWEEP's compensation argument
//     needs (an update committed before a query evaluated arrives at the
//     shard before the query's answer, across both hops).
//   * QueryRequest   — forwarded to the source hosting the target
//     relation. The source answers to its sender (the router).
//   * QueryAnswer    — routed back to the issuing shard, recovered from
//     the query id: shard s stripes its ids as s, s+stride, ... with
//     stride = num_shards, so owner = query_id % num_shards.
//
// The router holds no protocol state — it is pure forwarding plus
// counters — so it needs no snapshot or checkpoint machinery.

#ifndef SWEEPMV_SHARD_ROUTER_H_
#define SWEEPMV_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "sim/network.h"
#include "sim/site.h"

namespace sweepmv {

class ShardRouter : public Site {
 public:
  // `source_sites[r]` answers queries for relation r; `shard_sites[s]`
  // is the warehouse shard with shard_index s (ids must be registered
  // with the network by the harness, router included).
  ShardRouter(int site_id, Network* network, std::vector<int> source_sites,
              std::vector<int> shard_sites);

  void OnMessage(int from, Message msg) override;

  int site_id() const { return site_id_; }
  int num_shards() const { return static_cast<int>(shard_sites_.size()); }

  int64_t updates_broadcast() const { return updates_broadcast_; }
  int64_t queries_forwarded() const { return queries_forwarded_; }
  int64_t answers_returned() const { return answers_returned_; }

 private:
  int site_id_;
  Network* network_;
  std::vector<int> source_sites_;
  std::vector<int> shard_sites_;
  int64_t updates_broadcast_ = 0;
  int64_t queries_forwarded_ = 0;
  int64_t answers_returned_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SHARD_ROUTER_H_
