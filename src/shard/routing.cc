#include "shard/routing.h"

#include <algorithm>

#include "common/check.h"

namespace sweepmv {

std::vector<int> JoinKeyPositions(const ViewDef& view, int rel) {
  SWEEP_CHECK(rel >= 0 && rel < view.num_relations());
  std::vector<int> positions;
  if (rel > 0) {
    for (const auto& [left, right] : view.chain_keys(rel - 1)) {
      (void)left;
      positions.push_back(right);
    }
  }
  if (rel + 1 < view.num_relations()) {
    for (const auto& [left, right] : view.chain_keys(rel)) {
      (void)right;
      positions.push_back(left);
    }
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  return positions;
}

uint64_t RoutingHashTuple(const std::vector<int>& key_positions,
                          const Tuple& tuple) {
  // FNV-style combine over the selected values (mirrors
  // Tuple::ComputeHash) without materializing the projection.
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](uint64_t vh) {
    h ^= vh + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  if (key_positions.empty()) {
    for (size_t i = 0; i < tuple.arity(); ++i) {
      mix(static_cast<uint64_t>(tuple.at(i).Hash()));
    }
  } else {
    for (int pos : key_positions) {
      mix(static_cast<uint64_t>(
          tuple.at(static_cast<size_t>(pos)).Hash()));
    }
  }
  // splitmix64 finalizer: the low bits must be good, shard index is h
  // mod a small count.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

uint64_t RoutingHash(const ViewDef& view, const Update& update) {
  SWEEP_CHECK(update.relation >= 0 &&
              update.relation < view.num_relations());
  const std::vector<int> keys = JoinKeyPositions(view, update.relation);
  uint64_t best = ~uint64_t{0};
  // sweeplint:allow determinism-taint min-reduce over per-tuple hashes
  // is order-independent, so the unordered walk cannot change the result
  for (const auto& [tuple, count] : update.delta.entries()) {
    (void)count;
    best = std::min(best, RoutingHashTuple(keys, tuple));
  }
  return best;
}

int OwnerShard(const ViewDef& view, const Update& update, int num_shards) {
  SWEEP_CHECK(num_shards >= 1);
  return static_cast<int>(RoutingHash(view, update) %
                          static_cast<uint64_t>(num_shards));
}

}  // namespace sweepmv
