// Shard routing: which warehouse shard owns an update.
//
// A sharded deployment (docs/sharding.md) splits maintenance of one view
// across several warehouse instances. Ownership is decided per update
// from the join-key projection of its delta: the attributes of the
// updated relation that participate in the view's chain joins. Each
// delta tuple gets its own routing hash; an update's owner is the
// MINIMUM of its tuples' hashes, mod the shard count.
//
// The min-combine is what makes source-side shard-affine batching
// (BatchOptions::route_shards) line up with ownership: a batch
// partitioned so every op tuple hashes to residue s (mod num_shards)
// yields a delta whose tuple hashes all have residue s — and so does
// their minimum. Every shard therefore computes the same owner for the
// update the sub-batch became, without any side channel. For mixed-key
// updates (unbatched multi-op transactions) the min is just one
// deterministic choice among the keys; any would do for exactness.
//
// The min is also order-free, so the hash needs neither a sort nor an
// allocation per evaluation — ownership is re-derived at every shard for
// every queued update, which put the old sorted-entries combine on the
// hot path.
//
// The hash only needs to be deterministic within a run (it never crosses
// a process boundary): it reuses the values' cached FNV hashes.

#ifndef SWEEPMV_SHARD_ROUTING_H_
#define SWEEPMV_SHARD_ROUTING_H_

#include <cstdint>
#include <vector>

#include "relational/view_def.h"
#include "source/update.h"

namespace sweepmv {

// Positions (local to relation `rel`) of the attributes participating in
// the view's chain joins: the right-hand keys linking rel-1 to rel plus
// the left-hand keys linking rel to rel+1, sorted and deduplicated.
// Empty only for a single-relation view (or a pure cross product), in
// which case callers hash the whole tuple.
std::vector<int> JoinKeyPositions(const ViewDef& view, int rel);

// Routing hash of one tuple: FNV over the values at `key_positions`
// (over every value when empty), finalized for avalanche so taking it
// mod a small shard count is well distributed. Allocation-free.
uint64_t RoutingHashTuple(const std::vector<int>& key_positions,
                          const Tuple& tuple);

// Routing hash of an update: the minimum of RoutingHashTuple over its
// delta's tuples (~0 for an empty delta, which sources never ship).
uint64_t RoutingHash(const ViewDef& view, const Update& update);

// The shard index in [0, num_shards) owning `update`.
int OwnerShard(const ViewDef& view, const Update& update, int num_shards);

}  // namespace sweepmv

#endif  // SWEEPMV_SHARD_ROUTING_H_
