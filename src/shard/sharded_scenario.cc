#include "shard/sharded_scenario.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "common/check.h"
#include "consistency/replay.h"
#include "core/sweep.h"
#include "shard/router.h"
#include "shard/routing.h"
#include "shard/sharded_view.h"
#include "sim/simulator.h"
#include "source/data_source.h"

namespace sweepmv {

namespace {

// One independent view deployment: its own sources, router, and shards,
// all on the shared simulator/network. Lives in a std::deque so the
// ViewDef address captured by the shard_of closures stays stable.
struct Group {
  ViewDef view;
  std::vector<Relation> bases;
  std::vector<ScheduledTxn> txns;  // sorted by `at`, stable
  Relation initial_view;
  std::vector<std::unique_ptr<DataSource>> sources;
  std::unique_ptr<ShardRouter> router;
  std::vector<std::unique_ptr<SweepWarehouse>> shards;
  std::vector<std::unique_ptr<BatchPipeline>> pipelines;  // per relation
  // Unbatched mode: (committed update id or -1, submit time) per txn.
  std::vector<std::pair<int64_t, SimTime>> submit_log;

  Group(ViewDef v, std::vector<Relation> b, std::vector<ScheduledTxn> t)
      : view(std::move(v)), bases(std::move(b)), txns(std::move(t)) {}
};

// Executes txn i of the group and chain-schedules txn i+1: one pending
// closure per group instead of one per transaction, which is what keeps
// a million-update bench from holding a million closures at once. Same-
// time txns of a group still run in schedule order (the chained event is
// enqueued behind nothing of its own group).
void ExecuteTxn(Simulator* sim, Group* g, size_t i, bool batching) {
  const ScheduledTxn& txn = g->txns[i];
  if (batching) {
    g->pipelines[static_cast<size_t>(txn.relation)]->Submit(txn.ops);
  } else {
    const int64_t id =
        g->sources[static_cast<size_t>(txn.relation)]->ApplyTxn(
            txn.relation, txn.ops);
    g->submit_log.emplace_back(id, sim->now());
  }
  if (i + 1 < g->txns.size()) {
    sim->ScheduleAt(g->txns[i + 1].at, [sim, g, i, batching]() {
      ExecuteTxn(sim, g, i + 1, batching);
    });
  } else if (batching) {
    // Nothing may be stranded in a partial batch after the last submit.
    for (auto& pipeline : g->pipelines) pipeline->Flush();
  }
}

ShardedRunResult RunGroups(const ShardedScenarioConfig& config,
                           std::deque<Group>& groups) {
  SWEEP_CHECK_MSG(config.base.algorithm == Algorithm::kSweep,
                  "sharding supports SWEEP only: foreign-head discard is "
                  "exact for per-update in-order retirement, not for "
                  "Nested SWEEP's out-of-order folding");
  SWEEP_CHECK_MSG(config.base.relations_per_site == 1,
                  "the shard router assumes one relation per source site");
  SWEEP_CHECK(config.num_shards >= 1);

  const int num_shards = config.num_shards;
  const FaultPlan& plan = config.base.fault_plan;

  Simulator sim;
  Network network(&sim, config.base.latency, config.base.network_seed);
  UpdateIdGenerator ids;
  if (plan.enabled) {
    network.SetDefaultFaults(plan.faults);
    network.EnableReliability(plan.reliability);
    network.SetSessionOptions(plan.session);
  }
  SWEEP_CHECK_MSG(plan.warehouse_crashes.empty(),
                  "sharded runs do not support warehouse crash plans yet");
  if (!plan.crashes.empty()) {
    SWEEP_CHECK_MSG(groups.size() == 1,
                    "crash plans address relations of a single view group");
  }

  Warehouse::Options shard_base = config.base.warehouse.base;
  if (plan.enabled) {
    shard_base.query_timeout = plan.query_timeout;
    shard_base.query_retry_limit = plan.query_retry_limit;
    shard_base.query_backoff_cap = plan.query_backoff_cap;
    shard_base.checkpoint_every = plan.checkpoint_every;
    shard_base.fifo_update_streams = plan.reliability;
  }
  const SourceStorageOptions storage_options{config.base.use_indexes};

  int next_site = 0;
  for (Group& group : groups) {
    const int n = group.view.num_relations();
    SWEEP_CHECK(static_cast<int>(group.bases.size()) == n);
    std::stable_sort(
        group.txns.begin(), group.txns.end(),
        [](const ScheduledTxn& a, const ScheduledTxn& b) {
          return a.at < b.at;
        });

    std::vector<int> shard_sites;
    for (int s = 0; s < num_shards; ++s) shard_sites.push_back(next_site++);
    const int router_site = next_site++;
    std::vector<int> source_sites;
    for (int r = 0; r < n; ++r) source_sites.push_back(next_site++);

    for (int r = 0; r < n; ++r) {
      auto source = std::make_unique<DataSource>(
          source_sites[static_cast<size_t>(r)], r,
          group.bases[static_cast<size_t>(r)], &group.view, &network,
          /*warehouse_site=*/router_site, &ids, storage_options);
      network.RegisterSite(source_sites[static_cast<size_t>(r)],
                           source.get());
      group.sources.push_back(std::move(source));
    }

    group.router = std::make_unique<ShardRouter>(
        router_site, &network, source_sites, shard_sites);
    network.RegisterSite(router_site, group.router.get());

    const ViewDef* view_ptr = &group.view;
    for (int s = 0; s < num_shards; ++s) {
      Warehouse::Options options = shard_base;
      options.shard_index = s;
      options.shard_of = [view_ptr, num_shards](const Update& update) {
        return OwnerShard(*view_ptr, update, num_shards);
      };
      options.query_id_origin = s;
      options.query_id_stride = num_shards;
      auto shard = std::make_unique<SweepWarehouse>(
          shard_sites[static_cast<size_t>(s)], group.view, &network,
          std::vector<int>(static_cast<size_t>(n), router_site),
          SweepWarehouse::SweepOptions{
              options, config.base.warehouse.sweep_local_compensation});
      network.RegisterSite(shard_sites[static_cast<size_t>(s)],
                           shard.get());
      // Fragments start EMPTY: each accumulates only its owned deltas,
      // and Merged() adds them to the initial view.
      shard->InitializeView(Relation(group.view.view_schema()));
      group.shards.push_back(std::move(shard));
    }

    std::vector<const Relation*> rels;
    for (const Relation& r : group.bases) rels.push_back(&r);
    group.initial_view = group.view.EvaluateFull(rels);

    if (config.batching) {
      // Shard-affine flushing: align every shipped update with shard
      // ownership so a tuple's insert and delete cancel inside one
      // fragment (see shard/batch.h).
      BatchOptions batch = config.batch;
      batch.route_shards = num_shards;
      batch.view = &group.view;
      for (int r = 0; r < n; ++r) {
        group.pipelines.push_back(std::make_unique<BatchPipeline>(
            group.sources[static_cast<size_t>(r)].get(), r, &sim, batch));
      }
    }
    if (!group.txns.empty()) {
      Group* g = &group;
      const bool batching = config.batching;
      Simulator* sp = &sim;
      sim.ScheduleAt(group.txns.front().at, [sp, g, batching]() {
        ExecuteTxn(sp, g, 0, batching);
      });
    }
  }

  for (const FaultPlan::CrashEvent& crash : plan.crashes) {
    Group& group = groups.front();
    SWEEP_CHECK(crash.relation >= 0 &&
                crash.relation < group.view.num_relations());
    SWEEP_CHECK_MSG(crash.restart_at > crash.crash_at,
                    "a crash must precede its restart");
    DataSource* source =
        group.sources[static_cast<size_t>(crash.relation)].get();
    sim.ScheduleAt(crash.crash_at, [source]() { source->Crash(); });
    sim.ScheduleAt(crash.restart_at, [source]() { source->Restart(); });
  }

  const int64_t executed = sim.Run(config.base.max_events);

  ShardedRunResult result;
  result.num_views = static_cast<int>(groups.size());
  result.num_shards = num_shards;

  const auto drained = [&]() {
    if (executed >= config.base.max_events) return false;
    for (const Group& group : groups) {
      for (const auto& shard : group.shards) {
        if (!shard->update_queue().empty() || shard->Busy()) return false;
      }
      for (const auto& pipeline : group.pipelines) {
        if (pipeline->buffered() > 0) return false;
      }
    }
    return true;
  };
  if (plan.tolerate_failure) {
    result.completed = drained();
  } else {
    SWEEP_CHECK_MSG(executed < config.base.max_events,
                    "sharded scenario exceeded the event budget");
    SWEEP_CHECK_MSG(drained(),
                    "simulation drained but a shard is still busy");
  }

  result.finish_time = sim.now();
  result.net = network.stats();

  // Global id -> install time across every shard of every group (update
  // ids are globally unique).
  std::map<int64_t, SimTime> installed_at;
  for (const Group& group : groups) {
    for (const auto& shard : group.shards) {
      result.installs +=
          static_cast<int64_t>(shard->install_time_log().size());
      result.foreign_discards += shard->foreign_updates_discarded();
      result.duplicate_updates_ignored +=
          shard->duplicate_updates_ignored();
      for (const auto& [id, at] : shard->install_time_log()) {
        installed_at.emplace(id, at);
      }
    }
    for (int r = 0; r < group.view.num_relations(); ++r) {
      result.updates_committed += static_cast<int64_t>(
          group.sources[static_cast<size_t>(r)]->LogOf(r).updates().size());
    }
    for (const auto& pipeline : group.pipelines) {
      result.txns_submitted += pipeline->stats().txns_submitted;
      result.batches_flushed += pipeline->stats().batches_flushed;
      result.noop_batches += pipeline->stats().noop_batches;
    }
    result.txns_submitted += static_cast<int64_t>(group.submit_log.size());
  }

  // Staleness samples: client accepted-at -> installed-at. An update the
  // run never installed (wedged tolerate_failure runs) counts up to the
  // end; a batch whose delta cancelled to a no-op retires at its flush.
  std::vector<double> staleness;
  for (const Group& group : groups) {
    for (const auto& pipeline : group.pipelines) {
      for (const BatchPipeline::FlushRecord& flush : pipeline->flush_log()) {
        // A batch is fully visible once the last of its (per-shard)
        // updates installs.
        SimTime done = flush.flushed_at;
        for (int64_t id : flush.update_ids) {
          const auto it = installed_at.find(id);
          done = std::max(done, it == installed_at.end()
                                    ? result.finish_time
                                    : it->second);
        }
        for (SimTime submit : flush.submit_times) {
          staleness.push_back(static_cast<double>(done - submit));
        }
      }
    }
    for (const auto& [id, submit] : group.submit_log) {
      if (id < 0) continue;  // refused by a crashed source: never an update
      const auto it = installed_at.find(id);
      const SimTime done =
          it == installed_at.end() ? result.finish_time : it->second;
      staleness.push_back(static_cast<double>(done - submit));
    }
  }
  result.staleness = PercentilesOf(std::move(staleness));

  // Correctness: merged fragments vs. the sources' replayed truth, per
  // group; cross-shard classification for group 0. Skipped (final_view
  // still reported) when check_consistency is off — the million-update
  // bench path.
  {
    const Group& g0 = groups.front();
    ShardedView merged(g0.initial_view);
    for (const auto& shard : g0.shards) merged.AddShard(shard.get());
    result.final_view = merged.Merged();
  }
  if (config.base.check_consistency && result.completed) {
    bool all_correct = true;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      const Group& group = groups[gi];
      std::vector<const StateLog*> logs;
      for (int r = 0; r < group.view.num_relations(); ++r) {
        logs.push_back(&group.sources[static_cast<size_t>(r)]->LogOf(r));
      }
      Replayer replay(&group.view, logs);
      std::vector<size_t> final_versions;
      for (int r = 0; r < group.view.num_relations(); ++r) {
        final_versions.push_back(replay.TotalUpdates(r));
      }
      replay.AdvanceTo(final_versions);

      ShardedView merged(group.initial_view);
      std::vector<const Warehouse*> shard_ptrs;
      for (const auto& shard : group.shards) {
        merged.AddShard(shard.get());
        shard_ptrs.push_back(shard.get());
      }
      const Relation expected = replay.CurrentView();
      all_correct = all_correct && merged.Merged() == expected;
      if (gi == 0) {
        result.expected_view = expected;
        result.shard_consistency = CheckShardedConsistency(
            group.view, logs, group.initial_view, shard_ptrs);
      }
    }
    result.all_groups_correct = all_correct;
  }
  return result;
}

}  // namespace

ShardedRunResult RunShardedScenario(const ShardedScenarioConfig& config) {
  SWEEP_CHECK(config.num_views >= 1);
  std::deque<Group> groups;
  for (int g = 0; g < config.num_views; ++g) {
    ChainSpec chain = config.base.chain;
    chain.seed = config.base.chain.seed + static_cast<uint64_t>(g);
    WorkloadSpec workload = config.base.workload;
    workload.seed = config.base.workload.seed + static_cast<uint64_t>(g);
    ViewDef view = MakeChainView(chain);
    std::vector<Relation> bases = MakeInitialBases(view, chain);
    std::vector<ScheduledTxn> txns =
        GenerateWorkload(view, bases, chain, workload);
    groups.emplace_back(std::move(view), std::move(bases), std::move(txns));
  }
  return RunGroups(config, groups);
}

ShardedRunResult RunShardedExplicit(const ShardedScenarioConfig& config,
                                    const ViewDef& view,
                                    const std::vector<Relation>&
                                        initial_bases,
                                    const std::vector<ScheduledTxn>& txns) {
  SWEEP_CHECK_MSG(config.num_views == 1,
                  "explicit sharded scenarios drive a single view");
  std::deque<Group> groups;
  groups.emplace_back(view, initial_bases, txns);
  return RunGroups(config, groups);
}

}  // namespace sweepmv
