// Sharded-scenario runner: the multi-shard, multi-view counterpart of
// harness/scenario.h.
//
// Builds one simulated system holding `num_views` independent view
// groups. Each group is a full deployment — per-relation DataSources, a
// ShardRouter, and `num_shards` SweepWarehouse shards maintaining
// fragments of that group's view — all sharing one simulator, one
// network, and one update-id space. With batching on, client
// transactions flow through per-relation BatchPipelines instead of
// committing individually, so whole submit windows ride one sweep.
//
// Only SWEEP is shardable here: its compensation consumes queued
// interfering updates in place without reordering them, which is what
// makes the foreign-head discard exact (docs/sharding.md works the
// argument). Nested SWEEP folds queued updates into a running sweep out
// of arrival order — sound for one warehouse, wrong across fragments —
// so the runner rejects every other algorithm.

#ifndef SWEEPMV_SHARD_SHARDED_SCENARIO_H_
#define SWEEPMV_SHARD_SHARDED_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "consistency/shard_check.h"
#include "harness/scenario.h"
#include "harness/stats.h"
#include "shard/batch.h"

namespace sweepmv {

struct ShardedScenarioConfig {
  // Base knobs: chain/workload generation (per group, seeds offset by
  // the group index), latency, warehouse options, fault plan. The
  // algorithm must be kSweep; relations_per_site must be 1.
  ScenarioConfig base;
  int num_shards = 1;
  // Independent view groups (each with its own sources and shards).
  int num_views = 1;
  // Route client transactions through per-relation BatchPipelines.
  bool batching = false;
  BatchOptions batch;
};

struct ShardedRunResult {
  bool completed = true;
  int num_views = 0;
  int num_shards = 0;
  // Client transactions executed (into pipelines when batching).
  int64_t txns_submitted = 0;
  // Source commits = update messages entering the system (with batching,
  // one per non-empty flushed batch).
  int64_t updates_committed = 0;
  int64_t installs = 0;           // per-shard owned installs, summed
  int64_t foreign_discards = 0;   // summed over shards
  int64_t batches_flushed = 0;
  int64_t noop_batches = 0;       // batches whose delta cancelled away
  int64_t duplicate_updates_ignored = 0;  // crash-replay dedup, summed
  SimTime finish_time = 0;

  // Group 0's merged final view and its replayed ground truth; with
  // check_consistency on, every group is verified and `shard_consistency`
  // reports group 0's cross-shard classification.
  Relation final_view;
  Relation expected_view;
  bool all_groups_correct = true;
  ShardConsistencyReport shard_consistency;

  // Submit -> install view staleness across every group (accepted-at is
  // the client submit time — for batching, entry into the pipeline).
  StalenessPercentiles staleness;

  NetworkStats net;
};

// Generated mode: every group gets its own chain + workload, seeded from
// the base seeds offset by the group index.
ShardedRunResult RunShardedScenario(const ShardedScenarioConfig& config);

// Explicit mode (num_views must be 1): caller-provided view, initial
// bases, and transaction schedule — the paper-example entry point the
// equivalence tests drive.
ShardedRunResult RunShardedExplicit(const ShardedScenarioConfig& config,
                                    const ViewDef& view,
                                    const std::vector<Relation>&
                                        initial_bases,
                                    const std::vector<ScheduledTxn>& txns);

}  // namespace sweepmv

#endif  // SWEEPMV_SHARD_SHARDED_SCENARIO_H_
