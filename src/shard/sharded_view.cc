#include "shard/sharded_view.h"

#include <map>

#include "common/check.h"

namespace sweepmv {

ShardedView::ShardedView(Relation initial)
    : initial_(std::move(initial)) {}

void ShardedView::AddShard(const Warehouse* shard) {
  SWEEP_CHECK(shard != nullptr);
  shards_.push_back(shard);
}

const Warehouse& ShardedView::shard(int s) const {
  SWEEP_CHECK(s >= 0 && s < num_shards());
  return *shards_[static_cast<size_t>(s)];
}

Relation ShardedView::Merged() const {
  Relation merged = initial_;
  for (const Warehouse* shard : shards_) merged.Merge(shard->view());
  return merged;
}

std::vector<std::vector<int64_t>> ShardedView::VersionVectors(
    const std::vector<const StateLog*>& source_logs) const {
  std::map<int64_t, int> relation_of;
  for (size_t r = 0; r < source_logs.size(); ++r) {
    for (const LoggedUpdate& u : source_logs[r]->updates()) {
      relation_of.emplace(u.id, static_cast<int>(r));
    }
  }
  std::vector<std::vector<int64_t>> vectors;
  for (const Warehouse* shard : shards_) {
    std::vector<int64_t> versions(source_logs.size(), 0);
    const auto count =
        [&](const std::vector<std::pair<int64_t, SimTime>>& log) {
      for (const auto& [id, at] : log) {
        (void)at;
        const auto it = relation_of.find(id);
        SWEEP_CHECK_MSG(it != relation_of.end(),
                        "shard retired an update no source committed");
        ++versions[static_cast<size_t>(it->second)];
      }
    };
    count(shard->install_time_log());
    count(shard->foreign_skip_log());
    vectors.push_back(std::move(versions));
  }
  return vectors;
}

}  // namespace sweepmv
