// ShardedView: the merged, queryable face of a sharded warehouse.
//
// Each shard maintains a FRAGMENT: a signed-count relation that starts
// empty and accumulates exactly the view deltas of the updates the shard
// owns. Per-update deltas telescope — summed over every update, in any
// partition, they equal V_final - V_initial — so
//
//   Merged() = V_initial + Σ_s fragment_s
//
// is byte-identical to the unsharded warehouse's final view once all
// shards drain (tests/shard_equivalence_test.cc pins this for 1/2/4/8
// shards). Mid-run, a fragment may legitimately hold negative counts
// (a deletion whose prior insert landed in the initial view, not the
// fragment); the merge cancels them.
//
// The per-shard version vector — how many updates of each relation a
// shard has retired (installed as owner, or discarded as foreign) — is
// what the cross-shard consistency check (src/consistency/shard_check.h)
// validates against the sources' ground-truth logs.

#ifndef SWEEPMV_SHARD_SHARDED_VIEW_H_
#define SWEEPMV_SHARD_SHARDED_VIEW_H_

#include <cstdint>
#include <vector>

#include "core/warehouse.h"
#include "relational/relation.h"
#include "source/state_log.h"

namespace sweepmv {

class ShardedView {
 public:
  // `initial` is the full view evaluated over the initial base relations
  // — the V_initial every fragment is a delta against.
  explicit ShardedView(Relation initial);

  void AddShard(const Warehouse* shard);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const Warehouse& shard(int s) const;
  const Relation& initial() const { return initial_; }

  // V_initial + the sum of every shard's fragment.
  Relation Merged() const;

  // Per-shard version vector: entry [s][r] counts the relation-r updates
  // shard s has retired (installed + foreign-discarded). `source_logs[r]`
  // supplies the id -> relation mapping. When every shard has drained,
  // all rows are identical and equal the sources' total update counts.
  std::vector<std::vector<int64_t>> VersionVectors(
      const std::vector<const StateLog*>& source_logs) const;

 private:
  Relation initial_;
  std::vector<const Warehouse*> shards_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SHARD_SHARDED_VIEW_H_
