#include "sim/channel.h"

namespace sweepmv {

SimTime Channel::NextArrival(SimTime now, int64_t payload_tuples) {
  SimTime arrival = now + latency_.Sample(rng_, payload_tuples);
  if (arrival < last_arrival_) arrival = last_arrival_;
  last_arrival_ = arrival;
  ++messages_sent_;
  return arrival;
}

SimTime Channel::UnorderedArrival(SimTime now, int64_t payload_tuples) {
  SimTime arrival = now + latency_.Sample(rng_, payload_tuples);
  // Track the high-water mark so a later switch back to FIFO sampling
  // still never schedules before anything already on the wire.
  if (arrival > last_arrival_) last_arrival_ = arrival;
  ++messages_sent_;
  return arrival;
}

}  // namespace sweepmv
