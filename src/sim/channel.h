// Reliable FIFO channels.
//
// The paper's only communication assumption (Section 2): channels between
// each source and the warehouse are reliable and FIFO. Channel enforces
// FIFO even under latency jitter by never scheduling a delivery earlier
// than the previously scheduled one on the same directed link. SWEEP's
// correctness argument leans on this: an update notification sent before a
// query answer must arrive before it.

#ifndef SWEEPMV_SIM_CHANNEL_H_
#define SWEEPMV_SIM_CHANNEL_H_

#include <cstdint>

#include "common/rng.h"
#include "sim/latency.h"
#include "sim/time.h"

namespace sweepmv {

// Bookkeeping for one directed link. Delivery scheduling itself lives in
// Network (which owns the simulator hookup); Channel computes arrival
// times that respect FIFO.
class Channel {
 public:
  Channel(LatencyModel latency, Rng rng)
      : latency_(latency), rng_(rng) {}

  // Arrival time for a message of `payload_tuples` sent at `now`:
  // now + sampled latency, but never before a previously scheduled
  // arrival on this link.
  SimTime NextArrival(SimTime now, int64_t payload_tuples = 0);

  // Arrival time without the FIFO clamp: jitter may schedule this
  // transmission before earlier ones. Used by the fault-injection path
  // for links whose FaultModel does not preserve ordering; the session
  // layer's reorder buffer is then responsible for sequencing.
  SimTime UnorderedArrival(SimTime now, int64_t payload_tuples = 0);

  int64_t messages_sent() const { return messages_sent_; }
  // FIFO clamp + jitter stream state, exposed for state fingerprinting.
  SimTime last_arrival() const { return last_arrival_; }
  uint64_t rng_state() const { return rng_.state(); }

  void set_latency(LatencyModel latency) { latency_ = latency; }
  const LatencyModel& latency() const { return latency_; }

 private:
  LatencyModel latency_;
  Rng rng_;
  SimTime last_arrival_ = 0;
  int64_t messages_sent_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_CHANNEL_H_
