#include "sim/fault_model.h"

#include "common/str.h"

namespace sweepmv {

bool FaultModel::PartitionedAt(SimTime t) const {
  for (const Partition& w : partitions) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}

std::string FaultModel::ToDisplayString() const {
  std::string s = StrFormat("drop=%.3f dup=%.3f burst=%.3f/+%lld",
                            drop_prob, dup_prob, burst_prob,
                            static_cast<long long>(burst_delay));
  for (const Partition& w : partitions) {
    s += StrFormat(" part[%lld,%lld)", static_cast<long long>(w.start),
                   static_cast<long long>(w.end));
  }
  return s;
}

FaultDecision SampleFaults(const FaultModel& model, Rng& rng, SimTime now) {
  FaultDecision d;
  // Fixed draw order keeps the stream aligned across outcomes.
  bool drop = rng.Bernoulli(model.drop_prob);
  bool dup = rng.Bernoulli(model.dup_prob);
  bool burst = rng.Bernoulli(model.burst_prob);
  d.partitioned = model.PartitionedAt(now);
  d.drop = drop || d.partitioned;
  d.duplicate = !d.drop && dup;
  d.extra_delay = burst ? model.burst_delay : 0;
  return d;
}

}  // namespace sweepmv
