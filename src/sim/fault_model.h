// Per-link fault injection.
//
// The paper assumes every source↔warehouse channel is reliable and FIFO
// (Section 2). FaultModel is the knob that withdraws that assumption for
// one directed link: messages can be dropped, duplicated, delayed by
// congestion bursts, or blackholed during partition windows, all sampled
// deterministically from a seeded per-link RNG so that a fault schedule
// replays exactly. Attaching a FaultModel to a link marks it "not assumed
// reliable"; the session layer (sim/session.h) then restores exactly-once
// FIFO delivery on top — or, with reliability disabled, the raw faulty
// behaviour is exposed to the protocols to demonstrate why the paper's
// assumption is load-bearing.

#ifndef SWEEPMV_SIM_FAULT_MODEL_H_
#define SWEEPMV_SIM_FAULT_MODEL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/time.h"

namespace sweepmv {

struct FaultModel {
  // Probability an individual transmission is lost.
  double drop_prob = 0.0;
  // Probability the wire delivers a second copy of a transmission.
  double dup_prob = 0.0;
  // Probability a transmission hits a congestion burst, adding
  // `burst_delay` ticks on top of the sampled latency.
  double burst_prob = 0.0;
  SimTime burst_delay = 0;
  // If true the raw wire still clamps arrivals FIFO (lossy but ordered);
  // if false, jitter may reorder messages — the session layer's reorder
  // buffer is what re-establishes order.
  bool preserve_fifo = false;
  // Half-open windows [start, end) during which every transmission on the
  // link is lost.
  struct Partition {
    SimTime start = 0;
    SimTime end = 0;
  };
  std::vector<Partition> partitions;

  bool PartitionedAt(SimTime t) const;

  std::string ToDisplayString() const;
};

// Outcome of sampling the model for one transmission. Always consumes
// exactly three Bernoulli draws so the per-link fault stream stays aligned
// regardless of outcomes (fault-schedule determinism).
struct FaultDecision {
  bool drop = false;       // lost (probability or partition)
  bool partitioned = false;
  bool duplicate = false;
  SimTime extra_delay = 0;
};

FaultDecision SampleFaults(const FaultModel& model, Rng& rng, SimTime now);

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_FAULT_MODEL_H_
