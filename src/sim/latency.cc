#include "sim/latency.h"

#include "common/check.h"

namespace sweepmv {

SimTime LatencyModel::Sample(Rng& rng, int64_t payload_tuples) const {
  SWEEP_CHECK(base >= 0);
  SWEEP_CHECK(jitter >= 0);
  SWEEP_CHECK(per_tuple >= 0);
  SWEEP_CHECK(payload_tuples >= 0);
  SimTime delay = base + per_tuple * payload_tuples;
  if (jitter > 0) delay += rng.Uniform(0, jitter);
  return delay;
}

}  // namespace sweepmv
