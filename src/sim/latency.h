// Channel latency models.
//
// Interference between updates and in-flight queries — the paper's central
// difficulty — is a function of message latency relative to update
// inter-arrival time. The latency model is therefore a first-class
// experiment knob: base delay plus uniform jitter, sampled from the
// network's deterministic RNG.

#ifndef SWEEPMV_SIM_LATENCY_H_
#define SWEEPMV_SIM_LATENCY_H_

#include "common/rng.h"
#include "sim/time.h"

namespace sweepmv {

struct LatencyModel {
  SimTime base = 1000;     // fixed one-way delay
  SimTime jitter = 0;      // additional uniform delay in [0, jitter]
  SimTime per_tuple = 0;   // serialization cost per payload tuple
                           // (bandwidth modeling: bulk messages are slow)

  static LatencyModel Fixed(SimTime base) {
    return LatencyModel{base, 0, 0};
  }
  static LatencyModel Jittered(SimTime base, SimTime jitter) {
    return LatencyModel{base, jitter, 0};
  }
  static LatencyModel Bandwidth(SimTime base, SimTime jitter,
                                SimTime per_tuple) {
    return LatencyModel{base, jitter, per_tuple};
  }

  // Samples a one-way delay for a message carrying `payload_tuples`.
  SimTime Sample(Rng& rng, int64_t payload_tuples = 0) const;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_LATENCY_H_
