#include "sim/message.h"

#include "common/fingerprint.h"

namespace sweepmv {

namespace {

void AbsorbPartial(StateHasher& h, const PartialDelta& pd) {
  h.I64("pd.lo", pd.lo);
  h.I64("pd.hi", pd.hi);
  AbsorbRelation(h, "pd.rel", pd.rel);
}

}  // namespace

uint64_t MessageDigest(const Message& msg) {
  StateHasher h;
  struct Visitor {
    StateHasher& h;
    void operator()(const UpdateMessage& m) const {
      h.U64("msg", 1);
      h.I64("u.id", m.update.id);
      h.I64("u.rel", m.update.relation);
      h.I64("u.at", m.update.applied_at);
      AbsorbRelation(h, "u.delta", m.update.delta);
    }
    void operator()(const QueryRequest& m) const {
      h.U64("msg", 2);
      h.I64("q.id", m.query_id);
      h.I64("q.rel", m.target_rel);
      h.Bool("q.left", m.extend_left);
      h.I64("q.epoch", m.epoch);
      AbsorbPartial(h, m.partial);
    }
    void operator()(const QueryAnswer& m) const {
      h.U64("msg", 3);
      h.I64("a.id", m.query_id);
      h.I64("a.epoch", m.epoch);
      AbsorbPartial(h, m.partial);
    }
    void operator()(const EcaQueryRequest& m) const {
      h.U64("msg", 4);
      h.I64("eq.id", m.query_id);
      h.I64("eq.epoch", m.epoch);
      h.U64("eq.terms", m.terms.size());
      for (const EcaTerm& term : m.terms) {
        h.I64("term.sign", term.sign);
        h.U64("term.fixed", term.fixed.size());
        for (const auto& fixed : term.fixed) {
          h.Bool("term.has", fixed.has_value());
          if (fixed.has_value()) AbsorbRelation(h, "term.rel", *fixed);
        }
      }
    }
    void operator()(const EcaQueryAnswer& m) const {
      h.U64("msg", 5);
      h.I64("ea.id", m.query_id);
      h.I64("ea.epoch", m.epoch);
      AbsorbRelation(h, "ea.result", m.result);
    }
    void operator()(const SnapshotRequest& m) const {
      h.U64("msg", 6);
      h.I64("sr.id", m.query_id);
      h.I64("sr.epoch", m.epoch);
    }
    void operator()(const SnapshotAnswer& m) const {
      h.U64("msg", 7);
      h.I64("sa.id", m.query_id);
      h.I64("sa.rel", m.relation);
      h.I64("sa.epoch", m.epoch);
      AbsorbRelation(h, "sa.snapshot", m.snapshot);
    }
    void operator()(const SessionDatagram& m) const {
      h.U64("msg", 8);
      h.I64("dg.seq", m.seq);
      h.I64("dg.base", m.base_seq);
      h.I64("dg.ack", m.cum_ack);
      h.I64("dg.epoch", m.epoch);
      h.Bool("dg.payload", m.payload != nullptr);
      if (m.payload) h.U64("dg.inner", MessageDigest(*m.payload));
    }
  };
  std::visit(Visitor{h}, msg);
  Fp128 d = h.Digest();
  uint64_t digest = d.lo ^ d.hi;
  return digest == 0 ? 1 : digest;
}

MessageClass ClassOf(const Message& msg) {
  struct Visitor {
    MessageClass operator()(const UpdateMessage&) const {
      return MessageClass::kUpdateNotification;
    }
    MessageClass operator()(const QueryRequest&) const {
      return MessageClass::kQueryRequest;
    }
    MessageClass operator()(const QueryAnswer&) const {
      return MessageClass::kQueryAnswer;
    }
    MessageClass operator()(const EcaQueryRequest&) const {
      return MessageClass::kQueryRequest;
    }
    MessageClass operator()(const EcaQueryAnswer&) const {
      return MessageClass::kQueryAnswer;
    }
    MessageClass operator()(const SnapshotRequest&) const {
      return MessageClass::kQueryRequest;
    }
    MessageClass operator()(const SnapshotAnswer&) const {
      return MessageClass::kQueryAnswer;
    }
    MessageClass operator()(const SessionDatagram& m) const {
      return m.payload ? ClassOf(*m.payload)
                       : MessageClass::kTransportControl;
    }
  };
  return std::visit(Visitor{}, msg);
}

int64_t PayloadTuples(const Message& msg) {
  struct Visitor {
    int64_t operator()(const UpdateMessage& m) const {
      return static_cast<int64_t>(m.update.delta.DistinctSize());
    }
    int64_t operator()(const QueryRequest& m) const {
      return static_cast<int64_t>(m.partial.rel.DistinctSize());
    }
    int64_t operator()(const QueryAnswer& m) const {
      return static_cast<int64_t>(m.partial.rel.DistinctSize());
    }
    int64_t operator()(const EcaQueryRequest& m) const {
      int64_t total = 0;
      for (const EcaTerm& term : m.terms) {
        for (const auto& fixed : term.fixed) {
          if (fixed.has_value()) {
            total += static_cast<int64_t>(fixed->DistinctSize());
          }
        }
      }
      return total;
    }
    int64_t operator()(const EcaQueryAnswer& m) const {
      return static_cast<int64_t>(m.result.DistinctSize());
    }
    int64_t operator()(const SnapshotRequest&) const { return 0; }
    int64_t operator()(const SnapshotAnswer& m) const {
      return static_cast<int64_t>(m.snapshot.DistinctSize());
    }
    int64_t operator()(const SessionDatagram& m) const {
      return m.payload ? PayloadTuples(*m.payload) : 0;
    }
  };
  return std::visit(Visitor{}, msg);
}

const char* MessageClassName(MessageClass c) {
  switch (c) {
    case MessageClass::kUpdateNotification:
      return "update";
    case MessageClass::kQueryRequest:
      return "query";
    case MessageClass::kQueryAnswer:
      return "answer";
    case MessageClass::kTransportControl:
      return "transport";
    default:
      return "?";
  }
}

}  // namespace sweepmv
