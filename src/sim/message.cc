#include "sim/message.h"

namespace sweepmv {

MessageClass ClassOf(const Message& msg) {
  struct Visitor {
    MessageClass operator()(const UpdateMessage&) const {
      return MessageClass::kUpdateNotification;
    }
    MessageClass operator()(const QueryRequest&) const {
      return MessageClass::kQueryRequest;
    }
    MessageClass operator()(const QueryAnswer&) const {
      return MessageClass::kQueryAnswer;
    }
    MessageClass operator()(const EcaQueryRequest&) const {
      return MessageClass::kQueryRequest;
    }
    MessageClass operator()(const EcaQueryAnswer&) const {
      return MessageClass::kQueryAnswer;
    }
    MessageClass operator()(const SnapshotRequest&) const {
      return MessageClass::kQueryRequest;
    }
    MessageClass operator()(const SnapshotAnswer&) const {
      return MessageClass::kQueryAnswer;
    }
    MessageClass operator()(const SessionDatagram& m) const {
      return m.payload ? ClassOf(*m.payload)
                       : MessageClass::kTransportControl;
    }
  };
  return std::visit(Visitor{}, msg);
}

int64_t PayloadTuples(const Message& msg) {
  struct Visitor {
    int64_t operator()(const UpdateMessage& m) const {
      return static_cast<int64_t>(m.update.delta.DistinctSize());
    }
    int64_t operator()(const QueryRequest& m) const {
      return static_cast<int64_t>(m.partial.rel.DistinctSize());
    }
    int64_t operator()(const QueryAnswer& m) const {
      return static_cast<int64_t>(m.partial.rel.DistinctSize());
    }
    int64_t operator()(const EcaQueryRequest& m) const {
      int64_t total = 0;
      for (const EcaTerm& term : m.terms) {
        for (const auto& fixed : term.fixed) {
          if (fixed.has_value()) {
            total += static_cast<int64_t>(fixed->DistinctSize());
          }
        }
      }
      return total;
    }
    int64_t operator()(const EcaQueryAnswer& m) const {
      return static_cast<int64_t>(m.result.DistinctSize());
    }
    int64_t operator()(const SnapshotRequest&) const { return 0; }
    int64_t operator()(const SnapshotAnswer& m) const {
      return static_cast<int64_t>(m.snapshot.DistinctSize());
    }
    int64_t operator()(const SessionDatagram& m) const {
      return m.payload ? PayloadTuples(*m.payload) : 0;
    }
  };
  return std::visit(Visitor{}, msg);
}

const char* MessageClassName(MessageClass c) {
  switch (c) {
    case MessageClass::kUpdateNotification:
      return "update";
    case MessageClass::kQueryRequest:
      return "query";
    case MessageClass::kQueryAnswer:
      return "answer";
    case MessageClass::kTransportControl:
      return "transport";
    default:
      return "?";
  }
}

}  // namespace sweepmv
