// Message taxonomy of the warehouse protocols.
//
// Five algorithm families share this vocabulary:
//   * UpdateMessage       — source → warehouse update notification.
//   * QueryRequest/Answer — the sweep-style incremental query: the
//     warehouse ships a partial delta, the source joins its base relation
//     on the appropriate side and ships the widened partial back. Used by
//     SWEEP, Nested SWEEP, Strobe and C-Strobe.
//   * EcaQueryRequest/Answer — ECA's compensated queries against a single
//     multi-relation source: a signed sum of join terms in which some
//     positions are fixed to delta relations and the rest are filled from
//     the source's current base relations.
//   * SnapshotRequest/Answer — full base-relation fetch for the naive
//     recompute baseline.

#ifndef SWEEPMV_SIM_MESSAGE_H_
#define SWEEPMV_SIM_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "relational/partial_delta.h"
#include "relational/relation.h"
#include "source/update.h"

namespace sweepmv {

struct UpdateMessage {
  Update update;

  bool operator==(const UpdateMessage&) const = default;
};

struct QueryRequest {
  int64_t query_id = -1;
  // Relation index the addressed source must join into the partial.
  int target_rel = -1;
  // True: the source extends the partial on the left (target_rel ==
  // partial.lo - 1); false: on the right (target_rel == partial.hi + 1).
  bool extend_left = false;
  PartialDelta partial;
  // Warehouse recovery epoch (docs/fault_model.md §6): stamped on every
  // query, echoed verbatim in the answer, so a recovered warehouse can
  // discard answers addressed to a dead incarnation. 0 on every message
  // while the warehouse has never crashed. Last member, like the other
  // message structs, so pre-existing aggregate initializers stay valid.
  int64_t epoch = 0;

  bool operator==(const QueryRequest&) const = default;
};

struct QueryAnswer {
  int64_t query_id = -1;
  PartialDelta partial;
  int64_t epoch = 0;  // echoed from the request

  bool operator==(const QueryAnswer&) const = default;
};

// One signed join term of an ECA query. `fixed[r]`, when present, pins
// relation r to the given delta; absent positions are filled from the
// source's current base relations.
struct EcaTerm {
  int sign = 1;
  std::vector<std::optional<Relation>> fixed;

  bool operator==(const EcaTerm&) const = default;
};

struct EcaQueryRequest {
  int64_t query_id = -1;
  std::vector<EcaTerm> terms;
  int64_t epoch = 0;  // warehouse recovery epoch (see QueryRequest)

  bool operator==(const EcaQueryRequest&) const = default;
};

struct EcaQueryAnswer {
  int64_t query_id = -1;
  // Signed sum of the evaluated terms, over the view's joined schema.
  Relation result;
  int64_t epoch = 0;  // echoed from the request

  bool operator==(const EcaQueryAnswer&) const = default;
};

struct SnapshotRequest {
  int64_t query_id = -1;
  int64_t epoch = 0;  // warehouse recovery epoch (see QueryRequest)

  bool operator==(const SnapshotRequest&) const = default;
};

struct SnapshotAnswer {
  int64_t query_id = -1;
  int relation = -1;
  Relation snapshot;
  int64_t epoch = 0;  // echoed from the request

  bool operator==(const SnapshotAnswer&) const = default;
};

// SessionDatagram carries any Message by pointer, so the variant can
// include it by forward declaration.
struct SessionDatagram;

using Message =
    std::variant<UpdateMessage, QueryRequest, QueryAnswer, EcaQueryRequest,
                 EcaQueryAnswer, SnapshotRequest, SnapshotAnswer,
                 SessionDatagram>;

// Reliability-layer envelope (sim/session.h, docs/fault_model.md): a
// sequenced application payload, or — with seq == -1 — a pure cumulative
// ack. Only faulty links carry datagrams; sites never see them (the
// network unwraps before delivery).
struct SessionDatagram {
  int64_t seq = -1;       // -1 marks a pure ack
  int64_t base_seq = 0;   // sender's oldest unacked at transmit time
  int64_t cum_ack = -1;   // highest in-order delivered seq (acks only)
  int64_t epoch = 0;      // sender incarnation (acks: epoch being acked)
  std::shared_ptr<const Message> payload;  // null for pure acks

  // Pointer equality on the payload: good enough for the effect oracle's
  // change probes (controlled runs never see datagrams; see network.cc).
  bool operator==(const SessionDatagram&) const = default;
};

// Broad classes for traffic accounting.
enum class MessageClass : int {
  kUpdateNotification = 0,
  kQueryRequest = 1,
  kQueryAnswer = 2,
  // Session-layer control traffic (acks); data datagrams classify as
  // their payload.
  kTransportControl = 3,
  kNumClasses = 4,
};

MessageClass ClassOf(const Message& msg);

// Canonical content digest of a message for the explorer's state
// fingerprints: built from sorted relation iteration (common/fingerprint.h)
// so the same payload digests identically no matter which interleaving
// produced it. Never returns 0 — the simulator reserves digest 0 for
// "undigested event".
uint64_t MessageDigest(const Message& msg);

// Number of tuples the message carries — the size proxy used by the
// benches (the paper discusses message *size* for ECA in these terms).
int64_t PayloadTuples(const Message& msg);

const char* MessageClassName(MessageClass c);

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_MESSAGE_H_
