#include "sim/network.h"

#include "common/check.h"
#include "common/log.h"
#include "common/str.h"

namespace sweepmv {

namespace {

// Decorrelates the fault stream from the latency stream so attaching a
// FaultModel never perturbs arrival times sampled elsewhere.
constexpr uint64_t kFaultSeedSalt = 0xc2b2ae3d27d4eb4fULL;

}  // namespace

int64_t NetworkStats::TotalMessages() const {
  int64_t total = 0;
  for (const auto& c : by_class) total += c.messages;
  return total;
}

int64_t NetworkStats::TotalPayload() const {
  int64_t total = 0;
  for (const auto& c : by_class) total += c.payload_tuples;
  return total;
}

std::string NetworkStats::ToDisplayString() const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < by_class.size(); ++i) {
    parts.push_back(StrFormat(
        "%s: %lld msgs / %lld tuples",
        MessageClassName(static_cast<MessageClass>(i)),
        static_cast<long long>(by_class[i].messages),
        static_cast<long long>(by_class[i].payload_tuples)));
  }
  const ReliabilityStats& r = reliability;
  if (r.drops_injected + r.partition_drops + r.dups_injected +
          r.crash_drops + r.retransmissions + r.dups_suppressed +
          r.acks_sent + r.messages_abandoned >
      0) {
    parts.push_back(StrFormat(
        "faults: %lld dropped / %lld partitioned / %lld duplicated / "
        "%lld at-crashed",
        static_cast<long long>(r.drops_injected),
        static_cast<long long>(r.partition_drops),
        static_cast<long long>(r.dups_injected),
        static_cast<long long>(r.crash_drops)));
    parts.push_back(StrFormat(
        "session: %lld retransmits / %lld dups suppressed / %lld acks / "
        "%lld abandoned",
        static_cast<long long>(r.retransmissions),
        static_cast<long long>(r.dups_suppressed),
        static_cast<long long>(r.acks_sent),
        static_cast<long long>(r.messages_abandoned)));
  }
  return Join(parts, ", ");
}

Network::Network(Simulator* sim, LatencyModel latency, uint64_t seed)
    : sim_(sim),
      default_latency_(latency),
      rng_(seed),
      fault_root_(seed ^ kFaultSeedSalt) {
  SWEEP_CHECK(sim != nullptr);
}

void Network::RegisterSite(int id, Site* site) {
  SWEEP_CHECK(site != nullptr);
  auto [it, inserted] = sites_.emplace(id, site);
  SWEEP_CHECK_MSG(inserted, "site id already registered");
  (void)it;
}

Network::LinkState& Network::LinkFor(int from, int to) {
  auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, LinkState(Channel(default_latency_, rng_.Fork()),
                                     fault_root_.Fork()))
             .first;
    if (default_faults_.has_value()) {
      it->second.faults = default_faults_;
    }
  }
  return it->second;
}

SessionOptions Network::ResolvedSessionOptions(const LinkState& link) const {
  SessionOptions opts = session_options_;
  if (opts.rto_initial <= 0) {
    const LatencyModel& lat = link.channel.latency();
    opts.rto_initial = 4 * lat.base + 2 * lat.jitter + 500;
  }
  if (opts.rto_max <= 0) {
    opts.rto_max = 16 * opts.rto_initial;
  }
  return opts;
}

void Network::ConfigureSessionIfNeeded(LinkState& link) {
  if (link.session_configured) return;
  link.sender.Configure(ResolvedSessionOptions(link));
  link.session_configured = true;
}

void Network::ArmControlledDrop() {
  CaptureUndo();
  ++controlled_drops_armed_;
}

void Network::PrecreateLinks(const std::vector<int>& site_ids) {
  for (int from : site_ids) {
    for (int to : site_ids) {
      if (from != to) LinkFor(from, to);
    }
  }
}

void Network::CaptureUndo() {
  if (undo_ == nullptr) return;
  undo_->CaptureValue(&stats_, {"Network", "stats_", -1});
  undo_->CaptureValue(&rng_, {"Network", "rng_", -1});
  undo_->CaptureValue(&fault_root_, {"Network", "fault_root_", -1});
  undo_->CaptureValue(&controlled_drops_armed_,
                      {"Network", "controlled_drops_armed_", -1});
  // Mirror of RestoreState's link handling: restore surviving channels,
  // erase links created after the watermark so a replayed first send
  // re-forks the same per-link RNG from the restored roots.
  std::map<std::pair<int, int>, Channel> channels;
  for (const auto& [key, link] : links_) {
    channels.emplace(key, link.channel);
  }
  // The effect probe attributes link mutations to the *sending* site:
  // links_ is keyed (from, to) and only Send() mutates a channel, so the
  // static table binds "links_" atoms to the sender.
  auto changed = [](const Channel& a, const Channel& b) {
    return a.messages_sent() != b.messages_sent() ||
           a.last_arrival() != b.last_arrival() ||
           a.rng_state() != b.rng_state();
  };
  auto probe_channels = channels;
  undo_->Capture(
      &links_,
      [this, channels = std::move(channels)]() {
        for (auto it = links_.begin(); it != links_.end();) {
          auto saved = channels.find(it->first);
          if (saved == channels.end()) {
            it = links_.erase(it);
          } else {
            it->second.channel = saved->second;
            ++it;
          }
        }
      },
      [this, changed, channels = std::move(probe_channels)](
          std::vector<EffectAtom>& out) {
        for (const auto& [key, link] : links_) {
          auto saved = channels.find(key);
          if (saved == channels.end() ||
              changed(link.channel, saved->second)) {
            out.push_back(EffectAtom{"Network", "links_", key.first});
          }
        }
      });
}

void Network::DescribeState(StateHasher& h) const {
  h.I64("net.drops_armed", controlled_drops_armed_);
  h.U64("net.rng", rng_.state());
  h.U64("net.fault_rng", fault_root_.state());
  h.U64("net.classes", stats_.by_class.size());
  for (const auto& cls : stats_.by_class) {
    h.I64("cls.messages", cls.messages);
    h.I64("cls.tuples", cls.payload_tuples);
  }
  h.I64("net.ctrl_drops", stats_.reliability.drops_injected);
  h.U64("net.links", links_.size());
  for (const auto& [key, link] : links_) {
    h.I64("link.from", key.first);
    h.I64("link.to", key.second);
    h.I64("link.sent", link.channel.messages_sent());
    h.I64("link.last_arrival", link.channel.last_arrival());
    h.U64("link.rng", link.channel.rng_state());
  }
}

void Network::Send(int from, int to, Message msg) {
  auto site_it = sites_.find(to);
  SWEEP_CHECK_MSG(site_it != sites_.end(), "unknown destination site");
  CaptureUndo();

  if (crashed_.count(from) != 0) {
    // A crashed site cannot transmit (defense in depth; crashed sites
    // should not be executing at all).
    ++stats_.reliability.crash_drops;
    return;
  }

  int64_t payload = PayloadTuples(msg);
  const MessageClass msg_class = ClassOf(msg);
  auto& cls = stats_.by_class[static_cast<size_t>(msg_class)];
  ++cls.messages;
  cls.payload_tuples += payload;

  // Controlled one-shot loss: the message was sent (counted above) but
  // never arrives.
  if (controlled_drops_armed_ > 0 &&
      (msg_class == MessageClass::kQueryRequest ||
       msg_class == MessageClass::kQueryAnswer)) {
    --controlled_drops_armed_;
    ++stats_.reliability.drops_injected;
    return;
  }

  LinkState& link = LinkFor(from, to);
  if (!link.faults.has_value()) {
    SendDirect(link, from, to, std::move(msg));
    return;
  }
  auto boxed = std::make_shared<const Message>(std::move(msg));
  if (reliability_) {
    ConfigureSessionIfNeeded(link);
    int64_t seq = link.sender.Enqueue(boxed);
    TransmitDatagram(link, from, to, seq, std::move(boxed));
    ArmRetransmitTimer(link, from, to);
  } else {
    TransmitFaulty(link, from, to, std::move(boxed));
  }
}

void Network::SendDirect(LinkState& link, int from, int to, Message msg) {
  SimTime arrival =
      link.channel.NextArrival(sim_->now(), PayloadTuples(msg));
  if (tap_) {
    TapEvent event;
    event.send_time = sim_->now();
    event.arrival_time = arrival;
    event.from = from;
    event.to = to;
    event.message = &msg;
    tap_(event);
  }
  // The shared_ptr makes the lambda copyable (std::function requires it)
  // without copying the payload relation on every move of the closure.
  Site* dest = sites_.at(to);
  EventLabel label{EventKind::kDelivery, from, to,
                   MessageClassName(ClassOf(msg))};
  // Content digest so the explorer's canonical fingerprint can identify
  // this pending delivery independent of schedule history. Only worth
  // computing in controlled mode (time-ordered benches never hash state).
  uint64_t digest = sim_->controlled() ? MessageDigest(msg) : 0;
  auto boxed = std::make_shared<Message>(std::move(msg));
  sim_->ScheduleAt(arrival, label, digest, [this, dest, from, to, boxed]() {
    if (crashed_.count(to) != 0) {
      ++stats_.reliability.crash_drops;
      return;
    }
    // Controlled mode: the explorer may snapshot this event and execute
    // the closure once per explored branch, so the shared payload must
    // stay intact — deliver a copy. Time-ordered mode runs each event
    // exactly once and keeps the move.
    if (sim_->controlled()) {
      dest->OnMessage(from, *boxed);
    } else {
      dest->OnMessage(from, std::move(*boxed));
    }
  });
}

void Network::TransmitFaulty(LinkState& link, int from, int to,
                             std::shared_ptr<const Message> msg) {
  FaultDecision d =
      SampleFaults(*link.faults, link.fault_rng, sim_->now());
  if (d.drop) {
    if (d.partitioned) {
      ++stats_.reliability.partition_drops;
    } else {
      ++stats_.reliability.drops_injected;
    }
    return;
  }
  ScheduleFaultyDelivery(link, from, to, msg, d.extra_delay);
  if (d.duplicate) {
    ++stats_.reliability.dups_injected;
    ScheduleFaultyDelivery(link, from, to, std::move(msg), d.extra_delay);
  }
}

void Network::ScheduleFaultyDelivery(LinkState& link, int from, int to,
                                     std::shared_ptr<const Message> msg,
                                     SimTime extra_delay) {
  int64_t payload = PayloadTuples(*msg);
  SimTime depart = sim_->now() + extra_delay;
  SimTime arrival =
      link.faults->preserve_fifo
          ? link.channel.NextArrival(depart, payload)
          // lint:allow unordered-arrival fault injection deliberately
          // reorders this link; consumers must opt out of FIFO dedup
          // (Options::fifo_update_streams=false) on such runs.
          : link.channel.UnorderedArrival(depart, payload);
  if (tap_) {
    TapEvent event;
    event.send_time = sim_->now();
    event.arrival_time = arrival;
    event.from = from;
    event.to = to;
    event.message = msg.get();
    // sweeplint:allow effect-bounds the tap is a passive trace observer
    // owned by the harness; it reads the event by value and cannot
    // reach protocol state (trace.cc only serializes).
    tap_(event);
  }
  EventLabel label{EventKind::kDelivery, from, to,
                   MessageClassName(ClassOf(*msg))};
  sim_->ScheduleAt(arrival, label, [this, from, to, msg = std::move(msg)]() {
    DeliverNow(from, to, msg);
  });
}

void Network::DeliverNow(int from, int to,
                         std::shared_ptr<const Message> msg) {
  if (crashed_.count(to) != 0) {
    ++stats_.reliability.crash_drops;
    return;
  }
  if (const auto* dgram = std::get_if<SessionDatagram>(msg.get())) {
    HandleDatagram(from, to, *dgram);
    return;
  }
  sites_.at(to)->OnMessage(from, Message(*msg));
}

void Network::HandleDatagram(int from, int to,
                             const SessionDatagram& dgram) {
  if (dgram.seq < 0) {
    // Pure ack: it acknowledges traffic flowing to->from, so it belongs
    // to the sender state of the reverse link.
    LinkState& reverse = LinkFor(to, from);
    reverse.sender.OnAck(dgram.epoch, dgram.cum_ack);
    return;
  }
  LinkState& link = LinkFor(from, to);
  SessionReceiver::Accepted acc = link.receiver.OnData(
      dgram.epoch, dgram.seq, dgram.base_seq, dgram.payload);
  if (acc.stale_epoch) {
    ++stats_.reliability.dups_suppressed;
    return;
  }
  if (acc.duplicate) ++stats_.reliability.dups_suppressed;
  Site* dest = sites_.at(to);
  for (const auto& payload : acc.deliver) {
    dest->OnMessage(from, Message(*payload));
  }
  SendAck(to, from, acc.ack_epoch, acc.cum_ack);
}

void Network::SendAck(int from, int to, int64_t ack_epoch,
                      int64_t cum_ack) {
  ++stats_.reliability.acks_sent;
  ++stats_
        .by_class[static_cast<size_t>(MessageClass::kTransportControl)]
        .messages;
  auto ack = std::make_shared<const Message>(
      SessionDatagram{/*seq=*/-1, /*base_seq=*/0, cum_ack, ack_epoch,
                      /*payload=*/nullptr});
  LinkState& link = LinkFor(from, to);
  if (link.faults.has_value()) {
    TransmitFaulty(link, from, to, std::move(ack));
    return;
  }
  // Pristine reverse link: reliable delivery of the ack.
  SimTime arrival = link.channel.NextArrival(sim_->now(), 0);
  if (tap_) {
    TapEvent event;
    event.send_time = sim_->now();
    event.arrival_time = arrival;
    event.from = from;
    event.to = to;
    event.message = ack.get();
    // sweeplint:allow effect-bounds the tap is a passive trace observer
    // owned by the harness; it reads the event by value and cannot
    // reach protocol state (trace.cc only serializes).
    tap_(event);
  }
  EventLabel label{EventKind::kDelivery, from, to,
                   MessageClassName(MessageClass::kTransportControl)};
  sim_->ScheduleAt(arrival, label, [this, from, to, ack]() {
    DeliverNow(from, to, ack);
  });
}

void Network::TransmitDatagram(LinkState& link, int from, int to,
                               int64_t seq,
                               std::shared_ptr<const Message> payload) {
  auto dgram = std::make_shared<const Message>(
      SessionDatagram{seq, link.sender.base_seq(), /*cum_ack=*/-1,
                      link.sender.epoch(), std::move(payload)});
  TransmitFaulty(link, from, to, std::move(dgram));
}

void Network::ArmRetransmitTimer(LinkState& link, int from, int to) {
  if (link.timer_armed) return;
  link.timer_armed = true;
  int64_t gen = ++link.timer_gen;
  // sweeplint:allow unlabeled-event session-internal retransmit timer, not
  // a protocol message; controlled runs configure sessions off, so the
  // explorer never sees this event
  sim_->Schedule(link.sender.rto(), [this, from, to, gen]() {
    OnRetransmitTimer(from, to, gen);
  });
}

void Network::OnRetransmitTimer(int from, int to, int64_t gen) {
  LinkState& link = LinkFor(from, to);
  if (gen != link.timer_gen) return;  // superseded (crash/restart)
  if (!link.sender.HasUnacked() || crashed_.count(from) != 0) {
    link.timer_armed = false;
    return;
  }
  SessionSender::TimeoutAction action = link.sender.OnTimeout();
  if (action.abandoned) {
    stats_.reliability.messages_abandoned += action.abandoned_count;
    SWEEP_LOG(Info) << "session " << from << "->" << to << " abandoned "
                    << action.abandoned_count
                    << " unacked messages (retry budget exhausted)";
    link.timer_armed = false;
    return;
  }
  for (const SessionSender::Retransmission& r : action.resend) {
    ++stats_.reliability.retransmissions;
    TransmitDatagram(link, from, to, r.seq, r.payload);
  }
  // sweeplint:allow unlabeled-event re-arm of the session retransmit
  // timer; same harness-internal event as in ArmRetransmitTimer above
  sim_->Schedule(link.sender.rto(), [this, from, to, gen]() {
    OnRetransmitTimer(from, to, gen);
  });
}

Network::SavedState Network::SaveState() const {
  SWEEP_CHECK_MSG(!default_faults_.has_value(),
                  "network snapshots require pristine links");
  SavedState state;
  state.stats = stats_;
  state.rng = rng_;
  state.fault_root = fault_root_;
  state.controlled_drops_armed = controlled_drops_armed_;
  for (const auto& [key, link] : links_) {
    SWEEP_CHECK_MSG(!link.faults.has_value() && !link.session_configured,
                    "network snapshots require pristine links");
    state.channels.emplace(key, link.channel);
  }
  return state;
}

void Network::RestoreState(const SavedState& state) {
  stats_ = state.stats;
  rng_ = state.rng;
  fault_root_ = state.fault_root;
  controlled_drops_armed_ = state.controlled_drops_armed;
  for (auto it = links_.begin(); it != links_.end();) {
    auto saved = state.channels.find(it->first);
    if (saved == state.channels.end()) {
      // Link created after the save point; drop it so a replayed first
      // send re-forks the same per-link RNG from the restored roots.
      it = links_.erase(it);
    } else {
      it->second.channel = saved->second;
      ++it;
    }
  }
}

void Network::SetLinkLatency(int from, int to, LatencyModel latency) {
  LinkFor(from, to).channel.set_latency(latency);
}

void Network::SetDefaultFaults(const FaultModel& model) {
  default_faults_ = model;
  for (auto& [key, link] : links_) {
    if (!link.explicit_faults) link.faults = model;
  }
}

void Network::SetLinkFaults(int from, int to, const FaultModel& model) {
  LinkState& link = LinkFor(from, to);
  link.faults = model;
  link.explicit_faults = true;
}

void Network::CrashSite(int id) {
  SWEEP_CHECK_MSG(crashed_.insert(id).second, "site is already crashed");
  for (auto& [key, link] : links_) {
    if (key.first == id) {
      // The site's outbound retransmission machinery dies with it.
      ++link.timer_gen;
      link.timer_armed = false;
    }
    if (key.second == id) {
      // Its delivery/dedup state is volatile — lost in the crash.
      link.receiver.Reset();
    }
  }
  SWEEP_LOG(Debug) << "site " << id << " crashed";
}

void Network::RestartSite(int id) {
  SWEEP_CHECK_MSG(crashed_.erase(id) == 1, "site was not crashed");
  for (auto& [key, link] : links_) {
    if (key.first == id) {
      ConfigureSessionIfNeeded(link);
      link.sender.RestartWithNewEpoch();
      ++link.timer_gen;
      link.timer_armed = false;
    }
  }
  SWEEP_LOG(Debug) << "site " << id << " restarted";
}

}  // namespace sweepmv
