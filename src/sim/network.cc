#include "sim/network.h"

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

int64_t NetworkStats::TotalMessages() const {
  int64_t total = 0;
  for (const auto& c : by_class) total += c.messages;
  return total;
}

int64_t NetworkStats::TotalPayload() const {
  int64_t total = 0;
  for (const auto& c : by_class) total += c.payload_tuples;
  return total;
}

std::string NetworkStats::ToDisplayString() const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < by_class.size(); ++i) {
    parts.push_back(StrFormat(
        "%s: %lld msgs / %lld tuples",
        MessageClassName(static_cast<MessageClass>(i)),
        static_cast<long long>(by_class[i].messages),
        static_cast<long long>(by_class[i].payload_tuples)));
  }
  return Join(parts, ", ");
}

Network::Network(Simulator* sim, LatencyModel latency, uint64_t seed)
    : sim_(sim), default_latency_(latency), rng_(seed) {
  SWEEP_CHECK(sim != nullptr);
}

void Network::RegisterSite(int id, Site* site) {
  SWEEP_CHECK(site != nullptr);
  auto [it, inserted] = sites_.emplace(id, site);
  SWEEP_CHECK_MSG(inserted, "site id already registered");
  (void)it;
}

Channel& Network::LinkFor(int from, int to) {
  auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_.emplace(key, Channel(default_latency_, rng_.Fork())).first;
  }
  return it->second;
}

void Network::Send(int from, int to, Message msg) {
  auto site_it = sites_.find(to);
  SWEEP_CHECK_MSG(site_it != sites_.end(), "unknown destination site");
  Site* dest = site_it->second;

  int64_t payload = PayloadTuples(msg);
  auto& cls = stats_.by_class[static_cast<size_t>(ClassOf(msg))];
  ++cls.messages;
  cls.payload_tuples += payload;

  SimTime arrival = LinkFor(from, to).NextArrival(sim_->now(), payload);
  if (tap_) {
    TapEvent event;
    event.send_time = sim_->now();
    event.arrival_time = arrival;
    event.from = from;
    event.to = to;
    event.message = &msg;
    tap_(event);
  }
  // The shared_ptr makes the lambda copyable (std::function requires it)
  // without copying the payload relation on every move of the closure.
  auto boxed = std::make_shared<Message>(std::move(msg));
  sim_->ScheduleAt(arrival, [dest, from, boxed]() {
    dest->OnMessage(from, std::move(*boxed));
  });
}

void Network::SetLinkLatency(int from, int to, LatencyModel latency) {
  LinkFor(from, to).set_latency(latency);
}

}  // namespace sweepmv
