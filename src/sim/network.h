// The simulated network: site registry, FIFO links, traffic statistics,
// fault injection, and the reliability session layer.
//
// Three delivery regimes per directed link:
//   * pristine (no FaultModel attached) — the paper's Section 2
//     assumption, byte-for-byte the original behaviour: reliable FIFO
//     delivery with sampled latency;
//   * faulty + reliability enabled — application messages are wrapped in
//     SessionDatagrams; the session layer (sim/session.h) restores
//     exactly-once FIFO delivery via seq/ack/retransmission, so sites
//     still observe the reliable-FIFO abstraction;
//   * faulty + reliability disabled — raw faulty delivery (drops lost
//     forever, duplicates delivered twice, jitter may reorder), exposing
//     what the protocols do when the paper's channel assumption is
//     violated.
// Site crash/restart is modeled here too: a crashed site neither sends
// nor receives, and loses its session state (its durable state is the
// site's own concern — see DataSource::Restart).

#ifndef SWEEPMV_SIM_NETWORK_H_
#define SWEEPMV_SIM_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/fingerprint.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "common/undo.h"
#include "sim/channel.h"
#include "sim/fault_model.h"
#include "sim/latency.h"
#include "sim/message.h"
#include "sim/session.h"
#include "sim/simulator.h"
#include "sim/site.h"

namespace sweepmv {

// Per-class traffic counters. The benches read these to report message
// complexity (Table 1, experiments E1-E3).
struct NetworkStats {
  struct ClassStats {
    int64_t messages = 0;
    int64_t payload_tuples = 0;

    bool operator==(const ClassStats&) const = default;
  };
  std::array<ClassStats, static_cast<size_t>(MessageClass::kNumClasses)>
      by_class;

  // Fault-injection and reliability-layer accounting; all zero on
  // pristine networks.
  struct ReliabilityStats {
    int64_t drops_injected = 0;    // transmissions lost to drop_prob
    int64_t partition_drops = 0;   // transmissions lost to a partition
    int64_t dups_injected = 0;     // wire duplicates created
    int64_t crash_drops = 0;       // arrived at (or sent by) a crashed site
    int64_t retransmissions = 0;   // datagrams re-sent by the session layer
    int64_t dups_suppressed = 0;   // duplicate datagrams discarded on receive
    int64_t acks_sent = 0;         // pure-ack datagrams
    int64_t messages_abandoned = 0;  // unacked payloads past the retry budget

    bool operator==(const ReliabilityStats&) const = default;
  } reliability;

  int64_t TotalMessages() const;
  int64_t TotalPayload() const;
  const ClassStats& Of(MessageClass c) const {
    return by_class[static_cast<size_t>(c)];
  }

  std::string ToDisplayString() const;

  bool operator==(const NetworkStats&) const = default;
};

// One observed transmission, reported to the network tap at send time
// (the arrival instant is already determined then — delivery is
// deterministic). On faulty links every scheduled transmission (including
// retransmissions, duplicates and acks) is tapped; dropped transmissions
// are not.
struct TapEvent {
  SimTime send_time = 0;
  SimTime arrival_time = 0;
  int from = -1;
  int to = -1;
  // Borrowed view of the in-flight message; valid only for the duration
  // of the tap callback.
  const Message* message = nullptr;
};

class Network {
 public:
  // All links share `latency` unless overridden per-link; `seed` drives
  // the jitter sampling deterministically (and, independently, the fault
  // sampling).
  Network(Simulator* sim, LatencyModel latency, uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a site under `id`. The site must outlive the network runs.
  void RegisterSite(int id, Site* site);

  // Sends `msg` from site `from` to site `to`: samples a FIFO-respecting
  // arrival time and schedules the delivery. Counts traffic. On links
  // with a FaultModel, routes through the fault/session machinery.
  void Send(int from, int to, Message msg);

  // Overrides the latency model of the directed link from->to.
  void SetLinkLatency(int from, int to, LatencyModel latency);

  // --- Fault injection & reliability -----------------------------------

  // Attaches `model` to every link, existing and future (per-link
  // overrides via SetLinkFaults win). Marks those links "not assumed
  // reliable".
  void SetDefaultFaults(const FaultModel& model);
  // Attaches `model` to the directed link from->to only.
  void SetLinkFaults(int from, int to, const FaultModel& model);

  // Turns the session layer on/off for faulty links (default on). With it
  // off, raw faulty delivery reaches the sites.
  void EnableReliability(bool on) { reliability_ = on; }
  bool reliability_enabled() const { return reliability_; }

  // Session-layer tuning; applies to sessions created afterwards.
  void SetSessionOptions(const SessionOptions& opts) {
    session_options_ = opts;
  }

  // Site `id` crashes: it no longer sends or receives, in-flight
  // deliveries to it are lost, and its retransmission timers stop. Its
  // session peers keep their own state.
  void CrashSite(int id);
  // The site returns under a new incarnation: its outbound sessions
  // restart from sequence zero with a bumped epoch (receivers detect the
  // epoch change and resync), and its inbound receiver state is blank
  // (healed by the base_seq rule — see sim/session.h).
  void RestartSite(int id);
  bool IsCrashed(int id) const { return crashed_.count(id) != 0; }

  // --- Controlled fault choice points -----------------------------------

  // Arms one silent drop: the next query-class message (request or
  // answer) handed to Send is discarded instead of scheduled. This lets
  // the schedule-space explorer make message loss an explorable choice
  // point on pristine links, without attaching a FaultModel (which would
  // break snapshotting). Query traffic only: the warehouse's timeout
  // re-issue heals a lost query or answer, while a lost update
  // notification is unrecoverable without the session layer.
  void ArmControlledDrop();
  int64_t controlled_drops_armed() const { return controlled_drops_armed_; }

  // Eagerly creates every directed link among `site_ids`. The controlled
  // system calls this at construction so LinkFor's lazy rng_.Fork() never
  // fires inside an explored step — link creation would otherwise be a
  // hidden first-send write to rng_ that the static effect table does not
  // (and should not) charge to the sending handler.
  void PrecreateLinks(const std::vector<int>& site_ids);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // Observer invoked for every scheduled transmission (tracing /
  // visualization).
  using Tap = std::function<void(const TapEvent&)>;
  void SetTap(Tap tap) { tap_ = std::move(tap); }

  Simulator* simulator() { return sim_; }

  // --- Snapshot/restore (pristine links only) ---------------------------
  //
  // Copies the traffic stats, the latency/fault RNG roots, and every
  // link's channel state (FIFO clamp, message counter, jitter RNG).
  // Only legal while no link carries a fault model or live session state
  // — which is exactly the schedule-space explorer's regime (controlled
  // runs are pristine by construction). Restoring erases links that were
  // created after the save point, so replayed sends re-derive identical
  // channel RNGs and arrival times.
  class SavedState {
   public:
    SavedState() = default;

   private:
    friend class Network;
    NetworkStats stats;
    Rng rng{0};
    Rng fault_root{0};
    int64_t controlled_drops_armed = 0;
    std::map<std::pair<int, int>, Channel> channels;
  };
  SavedState SaveState() const;
  void RestoreState(const SavedState& state);

  // --- Undo log + fingerprint (pristine links only) ---------------------

  // Installs the undo log Send/ArmControlledDrop capture into (see
  // common/undo.h). Null detaches. Same pristine-links precondition as
  // SaveState.
  void AttachUndo(UndoLog* undo) { undo_ = undo; }

  // Absorbs the network's SaveState member set into `h` in keyed link
  // order. Identical in exact and canonical mode: traffic counters and
  // per-link channel state are order-independent facts about the set of
  // sends performed, so they canonicalize as-is.
  void DescribeState(StateHasher& h) const;

 private:
  // Everything the network tracks for one directed link.
  struct LinkState {
    LinkState(Channel channel_in, Rng fault_rng_in)
        : channel(std::move(channel_in)), fault_rng(fault_rng_in) {}
    Channel channel;
    std::optional<FaultModel> faults;
    // True when SetLinkFaults pinned this link's model explicitly, so a
    // later SetDefaultFaults does not overwrite it.
    bool explicit_faults = false;
    Rng fault_rng;
    // Sender session state for traffic flowing from .first to .second of
    // the link key; receiver state for the same direction (owned by the
    // destination site, conceptually).
    SessionSender sender;
    SessionReceiver receiver;
    bool session_configured = false;
    bool timer_armed = false;
    int64_t timer_gen = 0;
  };

  LinkState& LinkFor(int from, int to);
  // Records the SaveState member set (stats, RNG roots, armed drops,
  // per-link channels incl. links created later) into the attached undo
  // log. Called at the top of every controlled-mode mutation entry point.
  void CaptureUndo();
  void ConfigureSessionIfNeeded(LinkState& link);
  SessionOptions ResolvedSessionOptions(const LinkState& link) const;

  // Legacy pristine path: reliable FIFO, moves the payload.
  void SendDirect(LinkState& link, int from, int to, Message msg);
  // Applies the link's fault model and schedules 0..2 deliveries.
  void TransmitFaulty(LinkState& link, int from, int to,
                      std::shared_ptr<const Message> msg);
  // Wraps seq/payload in a datagram and transmits it over the faulty wire.
  void TransmitDatagram(LinkState& link, int from, int to, int64_t seq,
                        std::shared_ptr<const Message> payload);
  void ScheduleFaultyDelivery(LinkState& link, int from, int to,
                              std::shared_ptr<const Message> msg,
                              SimTime extra_delay);
  // Delivery instant: unwraps datagrams, runs the session receiver, hands
  // application messages to the destination site.
  void DeliverNow(int from, int to, std::shared_ptr<const Message> msg);
  void HandleDatagram(int from, int to, const SessionDatagram& dgram);
  void SendAck(int from, int to, int64_t ack_epoch, int64_t cum_ack);
  void ArmRetransmitTimer(LinkState& link, int from, int to);
  void OnRetransmitTimer(int from, int to, int64_t gen);

  SWEEP_SNAPSHOT_EXEMPT(
      "wiring to the simulator, which snapshots its own clock and queue")
  Simulator* sim_;
  SWEEP_SNAPSHOT_EXEMPT(
      "latency configuration, fixed once topology is wired; controlled "
      "runs never mutate it")
  LatencyModel default_latency_;
  Rng rng_;
  // Independent root so attaching fault models never perturbs the latency
  // streams of existing runs.
  Rng fault_root_;
  SWEEP_SNAPSHOT_EXEMPT(
      "SaveState CHECKs no default fault model is armed; controlled "
      "exploration predates any SetDefaultFaults call")
  std::optional<FaultModel> default_faults_;
  SWEEP_SNAPSHOT_EXEMPT(
      "session-layer on/off switch, configuration fixed before the run")
  bool reliability_ = true;
  SWEEP_SNAPSHOT_EXEMPT(
      "session-layer tuning knobs, configuration fixed before the run")
  SessionOptions session_options_;
  SWEEP_SNAPSHOT_EXEMPT(
      "site registry is topology, not state; every registered site "
      "snapshots itself through ControlledSystem")
  std::map<int, Site*> sites_;
  SWEEP_SNAPSHOT_EXEMPT(
      "crash injection is fault machinery the controlled harness never "
      "drives — the same pristine-links precondition SaveState CHECKs")
  std::set<int> crashed_;
  std::map<std::pair<int, int>, LinkState> links_;
  NetworkStats stats_;
  // Pending one-shot drops armed by ArmControlledDrop.
  int64_t controlled_drops_armed_ = 0;
  SWEEP_SNAPSHOT_EXEMPT(
      "observer hook owned by the harness; outlives and never depends on "
      "the explored prefix")
  Tap tap_;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring, not state: the explorer owns the undo log and manages its "
      "watermarks across backtracks")
  UndoLog* undo_ = nullptr;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_NETWORK_H_
