// The simulated network: site registry, FIFO links, traffic statistics.

#ifndef SWEEPMV_SIM_NETWORK_H_
#define SWEEPMV_SIM_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/rng.h"
#include "sim/channel.h"
#include "sim/latency.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "sim/site.h"

namespace sweepmv {

// Per-class traffic counters. The benches read these to report message
// complexity (Table 1, experiments E1-E3).
struct NetworkStats {
  struct ClassStats {
    int64_t messages = 0;
    int64_t payload_tuples = 0;
  };
  std::array<ClassStats, static_cast<size_t>(MessageClass::kNumClasses)>
      by_class;

  int64_t TotalMessages() const;
  int64_t TotalPayload() const;
  const ClassStats& Of(MessageClass c) const {
    return by_class[static_cast<size_t>(c)];
  }

  std::string ToDisplayString() const;
};

// One observed transmission, reported to the network tap at send time
// (the arrival instant is already determined then — delivery is
// deterministic).
struct TapEvent {
  SimTime send_time = 0;
  SimTime arrival_time = 0;
  int from = -1;
  int to = -1;
  // Borrowed view of the in-flight message; valid only for the duration
  // of the tap callback.
  const Message* message = nullptr;
};

class Network {
 public:
  // All links share `latency` unless overridden per-link; `seed` drives
  // the jitter sampling deterministically.
  Network(Simulator* sim, LatencyModel latency, uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a site under `id`. The site must outlive the network runs.
  void RegisterSite(int id, Site* site);

  // Sends `msg` from site `from` to site `to`: samples a FIFO-respecting
  // arrival time and schedules the delivery. Counts traffic.
  void Send(int from, int to, Message msg);

  // Overrides the latency model of the directed link from->to.
  void SetLinkLatency(int from, int to, LatencyModel latency);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // Observer invoked for every Send (tracing / visualization).
  using Tap = std::function<void(const TapEvent&)>;
  void SetTap(Tap tap) { tap_ = std::move(tap); }

  Simulator* simulator() { return sim_; }

 private:
  Channel& LinkFor(int from, int to);

  Simulator* sim_;
  LatencyModel default_latency_;
  Rng rng_;
  std::map<int, Site*> sites_;
  std::map<std::pair<int, int>, Channel> links_;
  NetworkStats stats_;
  Tap tap_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_NETWORK_H_
