#include "sim/session.h"

#include "common/check.h"

namespace sweepmv {

int64_t SessionSender::Enqueue(std::shared_ptr<const Message> payload) {
  SWEEP_CHECK(payload != nullptr);
  int64_t seq = next_seq_++;
  unacked_.emplace(seq, std::move(payload));
  return seq;
}

bool SessionSender::OnAck(int64_t epoch, int64_t cum_ack) {
  if (epoch != epoch_) return false;  // ack for a dead incarnation
  bool progress = false;
  while (!unacked_.empty() && unacked_.begin()->first <= cum_ack) {
    unacked_.erase(unacked_.begin());
    progress = true;
  }
  if (progress) {
    rto_ = opts_.rto_initial;
    consecutive_timeouts_ = 0;
  }
  return progress;
}

SessionSender::TimeoutAction SessionSender::OnTimeout() {
  TimeoutAction action;
  if (unacked_.empty()) return action;
  ++consecutive_timeouts_;
  if (consecutive_timeouts_ > opts_.retry_budget) {
    action.abandoned = true;
    action.abandoned_count = static_cast<int64_t>(unacked_.size());
    unacked_.clear();
    consecutive_timeouts_ = 0;
    rto_ = opts_.rto_initial;
    return action;
  }
  for (const auto& [seq, payload] : unacked_) {
    action.resend.push_back(Retransmission{seq, payload});
  }
  SimTime doubled = rto_ * 2;
  rto_ = doubled > opts_.rto_max ? opts_.rto_max : doubled;
  return action;
}

void SessionSender::RestartWithNewEpoch() {
  ++epoch_;
  next_seq_ = 0;
  unacked_.clear();
  rto_ = opts_.rto_initial;
  consecutive_timeouts_ = 0;
}

SessionReceiver::Accepted SessionReceiver::OnData(
    int64_t epoch, int64_t seq, int64_t base_seq,
    std::shared_ptr<const Message> payload) {
  Accepted acc;
  if (epoch < epoch_) {
    acc.stale_epoch = true;
    return acc;
  }
  if (epoch > epoch_) {
    // The peer restarted with a fresh incarnation; its numbering begins
    // anew.
    epoch_ = epoch;
    expected_ = 0;
    buffer_.clear();
  }
  acc.ack_epoch = epoch_;
  if (base_seq > expected_) {
    // Everything below base_seq was acked by a previous incarnation of
    // this receiver — delivered before our crash. Skip forward.
    expected_ = base_seq;
    buffer_.erase(buffer_.begin(), buffer_.lower_bound(expected_));
  }
  if (seq < expected_ || buffer_.count(seq) != 0) {
    acc.duplicate = true;
  } else {
    buffer_.emplace(seq, std::move(payload));
    auto it = buffer_.find(expected_);
    while (it != buffer_.end() && it->first == expected_) {
      acc.deliver.push_back(std::move(it->second));
      it = buffer_.erase(it);
      ++expected_;
    }
  }
  acc.cum_ack = expected_ - 1;
  return acc;
}

void SessionReceiver::Reset() {
  epoch_ = -1;
  expected_ = 0;
  buffer_.clear();
}

}  // namespace sweepmv
