// Reliability session layer: exactly-once FIFO delivery over faulty links.
//
// SWEEP's compensation argument (and every other algorithm here) was
// written against the paper's Section 2 assumption of reliable FIFO
// channels. When a link carries a FaultModel that assumption is gone, so
// the network interposes a per-directed-link session:
//
//   sender    — assigns consecutive sequence numbers, buffers unacked
//               payloads, retransmits on timeout with exponential backoff
//               and a retry budget;
//   receiver  — suppresses duplicates, buffers out-of-order arrivals, and
//               releases payloads to the application strictly in sequence
//               order, acknowledging cumulatively;
//   epochs    — each site incarnation bumps its sender epoch on restart; a
//               receiver that sees a higher epoch resets (the peer lost
//               its state in a crash and is starting over), and stale
//               in-flight datagrams from dead incarnations are discarded.
//
// Receiver-crash resync: every data datagram carries the sender's
// `base_seq` (oldest unacked). A receiver advances its expectation to
// base_seq — sequence numbers below it were cumulatively acked by a
// previous incarnation of this receiver, i.e. delivered before the crash.
// In crash-free operation base_seq never exceeds the receiver's next
// expected sequence, so the rule is a no-op there.
//
// These classes are pure state machines: Network (sim/network.cc) owns the
// scheduling of transmissions, timers and acks. That keeps the protocol
// unit-testable without a simulator.

#ifndef SWEEPMV_SIM_SESSION_H_
#define SWEEPMV_SIM_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/message.h"
#include "sim/time.h"

namespace sweepmv {

struct SessionOptions {
  // Initial retransmission timeout. 0 = derive from the link's latency
  // model (4·base + 2·jitter + 500) when the network installs the session.
  SimTime rto_initial = 0;
  // Backoff cap. 0 = 16× the initial RTO.
  SimTime rto_max = 0;
  // Consecutive timeouts without ack progress before the sender abandons
  // the unacked buffer (the link is declared dead). Generous by default:
  // partitions are expected to heal.
  int retry_budget = 64;
};

// Sender half of one directed session.
class SessionSender {
 public:
  SessionSender() = default;

  void Configure(const SessionOptions& opts) {
    opts_ = opts;
    rto_ = opts_.rto_initial;
  }

  // Registers a payload for transmission; returns its sequence number.
  int64_t Enqueue(std::shared_ptr<const Message> payload);

  int64_t epoch() const { return epoch_; }
  // Oldest unacked sequence (== next sequence when fully acked).
  int64_t base_seq() const {
    return unacked_.empty() ? next_seq_ : unacked_.begin()->first;
  }
  bool HasUnacked() const { return !unacked_.empty(); }
  size_t unacked_count() const { return unacked_.size(); }
  SimTime rto() const { return rto_; }
  int consecutive_timeouts() const { return consecutive_timeouts_; }

  // Cumulative ack for `epoch`: drops buffered payloads with seq <=
  // cum_ack. Returns true if anything new was acked (progress resets the
  // backoff and the retry count).
  bool OnAck(int64_t epoch, int64_t cum_ack);

  struct Retransmission {
    int64_t seq = -1;
    std::shared_ptr<const Message> payload;
  };
  struct TimeoutAction {
    // Every still-unacked payload, to be retransmitted (go-back-N).
    std::vector<Retransmission> resend;
    // Retry budget exhausted: the buffer was discarded, give up.
    bool abandoned = false;
    int64_t abandoned_count = 0;
  };
  // One retransmission-timer expiry: doubles the RTO (capped), charges the
  // retry budget.
  TimeoutAction OnTimeout();

  // Crash/restart: in-flight state is lost; the new incarnation restarts
  // sequencing from zero under the next epoch.
  void RestartWithNewEpoch();

 private:
  SessionOptions opts_;
  int64_t epoch_ = 0;
  int64_t next_seq_ = 0;
  std::map<int64_t, std::shared_ptr<const Message>> unacked_;
  SimTime rto_ = 0;
  int consecutive_timeouts_ = 0;
};

// Receiver half of one directed session.
class SessionReceiver {
 public:
  SessionReceiver() = default;

  struct Accepted {
    // Payloads released in sequence order by this arrival.
    std::vector<std::shared_ptr<const Message>> deliver;
    // Cumulative ack to send back (highest in-order delivered seq, -1 if
    // nothing yet), tagged with the sender epoch it acknowledges.
    int64_t cum_ack = -1;
    int64_t ack_epoch = 0;
    // The datagram was a duplicate (already delivered or already
    // buffered); re-acked so a lost ack heals.
    bool duplicate = false;
    // The datagram came from a dead incarnation; dropped, no ack.
    bool stale_epoch = false;
  };
  Accepted OnData(int64_t epoch, int64_t seq, int64_t base_seq,
                  std::shared_ptr<const Message> payload);

  // Receiver site crashed: delivery/dedup state is lost.
  void Reset();

  int64_t expected() const { return expected_; }
  size_t buffered() const { return buffer_.size(); }

 private:
  int64_t epoch_ = -1;
  int64_t expected_ = 0;
  std::map<int64_t, std::shared_ptr<const Message>> buffer_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_SESSION_H_
