#include "sim/simulator.h"

#include "common/check.h"

namespace sweepmv {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  SWEEP_CHECK(delay >= 0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  SWEEP_CHECK_MSG(when >= now_, "cannot schedule in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handler is moved out before
  // pop via a const_cast-free copy of the callable wrapper.
  Event ev = queue_.top();
  queue_.pop();
  SWEEP_CHECK(ev.when >= now_);
  now_ = ev.when;
  ev.fn();
  return true;
}

int64_t Simulator::Run(int64_t max_events) {
  int64_t executed = 0;
  while ((max_events < 0 || executed < max_events) && Step()) {
    ++executed;
  }
  return executed;
}

int64_t Simulator::RunUntil(SimTime until) {
  SWEEP_CHECK(until >= now_);
  int64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until && Step()) {
    ++executed;
  }
  now_ = until;
  return executed;
}

}  // namespace sweepmv
