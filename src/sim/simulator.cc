#include "sim/simulator.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace sweepmv {

namespace {

// Channel identity for controlled-mode FIFO grouping.
using ChannelKey = std::tuple<int, int, int>;

ChannelKey KeyOf(const EventLabel& label) {
  switch (label.kind) {
    case EventKind::kDelivery:
      return {static_cast<int>(EventKind::kDelivery), label.from, label.to};
    case EventKind::kTxn:
      return {static_cast<int>(EventKind::kTxn), -1, label.to};
    case EventKind::kInternal:
      break;
  }
  return {static_cast<int>(EventKind::kInternal), -1, -1};
}

}  // namespace

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  Schedule(delay, EventLabel{}, std::move(fn));
}

void Simulator::Schedule(SimTime delay, EventLabel label,
                         std::function<void()> fn) {
  SWEEP_CHECK(delay >= 0);
  ScheduleAt(now_ + delay, label, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  ScheduleAt(when, EventLabel{}, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, EventLabel label,
                           std::function<void()> fn) {
  SWEEP_CHECK_MSG(when >= now_ || controlled(),
                  "cannot schedule in the past");
  Event event{when, next_seq_++, label, std::move(fn)};
  if (controlled()) {
    pending_.push_back(std::move(event));
  } else {
    queue_.push(std::move(event));
  }
}

void Simulator::SetScheduler(Scheduler* scheduler) {
  SWEEP_CHECK(scheduler != nullptr);
  SWEEP_CHECK_MSG(queue_.empty() && pending_.empty() && next_seq_ == 0,
                  "SetScheduler must precede all scheduling");
  scheduler_ = scheduler;
}

Simulator::SavedState Simulator::SaveState() const {
  SWEEP_CHECK_MSG(controlled(), "SaveState is controlled-mode only");
  SavedState state;
  state.now = now_;
  state.next_seq = next_seq_;
  state.pending = pending_;
  return state;
}

void Simulator::RestoreState(const SavedState& state) {
  SWEEP_CHECK_MSG(controlled(), "RestoreState is controlled-mode only");
  now_ = state.now;
  next_seq_ = state.next_seq;
  pending_ = state.pending;
}

std::vector<size_t> Simulator::ReadyIndices() const {
  // Head per channel: deliveries in send (seq) order — the network hands
  // them to us in per-link send order, so seq order *is* FIFO order —
  // transaction and internal channels in (time, seq) order.
  std::map<ChannelKey, size_t> heads;
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Event& ev = pending_[i];
    ChannelKey key = KeyOf(ev.label);
    auto [it, inserted] = heads.emplace(key, i);
    if (inserted) continue;
    const Event& head = pending_[it->second];
    bool earlier;
    if (ev.label.kind == EventKind::kDelivery) {
      earlier = ev.seq < head.seq;
    } else {
      earlier = std::make_pair(ev.when, ev.seq) <
                std::make_pair(head.when, head.seq);
    }
    if (earlier) it->second = i;
  }
  std::vector<size_t> indices;
  indices.reserve(heads.size());
  for (const auto& [key, idx] : heads) indices.push_back(idx);
  return indices;
}

std::vector<Scheduler::Candidate> Simulator::Ready() const {
  SWEEP_CHECK_MSG(controlled(), "Ready() needs a scheduler");
  std::vector<Scheduler::Candidate> ready;
  for (size_t idx : ReadyIndices()) {
    const Event& ev = pending_[idx];
    ready.push_back(Scheduler::Candidate{ev.label, ev.when, ev.seq});
  }
  return ready;
}

bool Simulator::StepControlled() {
  if (pending_.empty()) return false;
  std::vector<size_t> indices = ReadyIndices();
  std::vector<Scheduler::Candidate> ready;
  ready.reserve(indices.size());
  for (size_t idx : indices) {
    const Event& ev = pending_[idx];
    ready.push_back(Scheduler::Candidate{ev.label, ev.when, ev.seq});
  }
  size_t pick = scheduler_->Pick(ready);
  SWEEP_CHECK_MSG(pick < ready.size(), "scheduler picked out of range");
  size_t idx = indices[pick];
  Event ev = std::move(pending_[idx]);
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(idx));
  // The controlled clock never runs backwards: executing a "late" head
  // first leaves earlier-stamped heads in the logical past.
  now_ = std::max(now_, ev.when);
  ev.fn();
  return true;
}

bool Simulator::Step() {
  if (controlled()) return StepControlled();
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handler is moved out before
  // pop via a const_cast-free copy of the callable wrapper.
  Event ev = queue_.top();
  queue_.pop();
  SWEEP_CHECK(ev.when >= now_);
  now_ = ev.when;
  ev.fn();
  return true;
}

int64_t Simulator::Run(int64_t max_events) {
  int64_t executed = 0;
  while ((max_events < 0 || executed < max_events) && Step()) {
    ++executed;
  }
  return executed;
}

int64_t Simulator::RunUntil(SimTime until) {
  SWEEP_CHECK_MSG(!controlled(), "RunUntil is time-ordered-mode only");
  SWEEP_CHECK(until >= now_);
  int64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until && Step()) {
    ++executed;
  }
  now_ = until;
  return executed;
}

}  // namespace sweepmv
