#include "sim/simulator.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <map>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace sweepmv {

namespace {

// Channel identity for controlled-mode FIFO grouping.
using ChannelKey = std::tuple<int, int, int>;

ChannelKey KeyOf(const EventLabel& label) {
  switch (label.kind) {
    case EventKind::kDelivery:
      return {static_cast<int>(EventKind::kDelivery), label.from, label.to};
    case EventKind::kTxn:
      return {static_cast<int>(EventKind::kTxn), -1, label.to};
    case EventKind::kInternal:
      break;
  }
  return {static_cast<int>(EventKind::kInternal), -1, -1};
}

}  // namespace

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  Schedule(delay, EventLabel{}, std::move(fn));
}

void Simulator::Schedule(SimTime delay, EventLabel label,
                         std::function<void()> fn) {
  Schedule(delay, label, /*digest=*/0, std::move(fn));
}

void Simulator::Schedule(SimTime delay, EventLabel label, uint64_t digest,
                         std::function<void()> fn) {
  SWEEP_CHECK(delay >= 0);
  ScheduleAt(now_ + delay, label, digest, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  ScheduleAt(when, EventLabel{}, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, EventLabel label,
                           std::function<void()> fn) {
  ScheduleAt(when, label, /*digest=*/0, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, EventLabel label, uint64_t digest,
                           std::function<void()> fn) {
  SWEEP_CHECK_MSG(when >= now_ || controlled(),
                  "cannot schedule in the past");
  CaptureUndo();
  Event event{when, next_seq_++, label, digest, std::move(fn)};
  if (controlled()) {
    pending_.push_back(std::move(event));
  } else {
    queue_.push(std::move(event));
  }
}

void Simulator::CaptureUndo() {
  if (undo_ == nullptr) return;
  // The pending-event multiset *is* the schedule structure the explorer
  // enumerates; the oracle exempts the Simulator class wholesale (every
  // handler appends events, and channel append order is already the
  // commutativity question the independence relation answers).
  undo_->CaptureValue(&now_, {"Simulator", "now_", -1});
  undo_->CaptureValue(&next_seq_, {"Simulator", "next_seq_", -1});
  undo_->CaptureValue(&pending_, {"Simulator", "pending_", -1});
}

void Simulator::SetScheduler(Scheduler* scheduler) {
  SWEEP_CHECK(scheduler != nullptr);
  SWEEP_CHECK_MSG(queue_.empty() && pending_.empty() && next_seq_ == 0,
                  "SetScheduler must precede all scheduling");
  scheduler_ = scheduler;
}

Simulator::SavedState Simulator::SaveState() const {
  SWEEP_CHECK_MSG(controlled(), "SaveState is controlled-mode only");
  SavedState state;
  state.now = now_;
  state.next_seq = next_seq_;
  state.pending = pending_;
  return state;
}

void Simulator::RestoreState(const SavedState& state) {
  SWEEP_CHECK_MSG(controlled(), "RestoreState is controlled-mode only");
  now_ = state.now;
  next_seq_ = state.next_seq;
  pending_ = state.pending;
}

std::vector<size_t> Simulator::ReadyIndices() const {
  // Head per channel: deliveries in send (seq) order — the network hands
  // them to us in per-link send order, so seq order *is* FIFO order —
  // transaction and internal channels in (time, seq) order.
  std::map<ChannelKey, size_t> heads;
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Event& ev = pending_[i];
    ChannelKey key = KeyOf(ev.label);
    auto [it, inserted] = heads.emplace(key, i);
    if (inserted) continue;
    const Event& head = pending_[it->second];
    bool earlier;
    if (ev.label.kind == EventKind::kDelivery) {
      earlier = ev.seq < head.seq;
    } else {
      earlier = std::make_pair(ev.when, ev.seq) <
                std::make_pair(head.when, head.seq);
    }
    if (earlier) it->second = i;
  }
  std::vector<size_t> indices;
  indices.reserve(heads.size());
  for (const auto& [key, idx] : heads) indices.push_back(idx);
  return indices;
}

std::vector<Scheduler::Candidate> Simulator::Ready() const {
  SWEEP_CHECK_MSG(controlled(), "Ready() needs a scheduler");
  std::vector<Scheduler::Candidate> ready;
  for (size_t idx : ReadyIndices()) {
    const Event& ev = pending_[idx];
    ready.push_back(Scheduler::Candidate{ev.label, ev.when, ev.seq});
  }
  return ready;
}

bool Simulator::DescribeState(StateHasher& h, bool exact) const {
  SWEEP_CHECK_MSG(controlled(), "DescribeState is controlled-mode only");
  bool hashable = true;
  h.I64("sim.now", now_);
  if (exact) {
    h.I64("sim.next_seq", next_seq_);
    std::vector<const Event*> events;
    events.reserve(pending_.size());
    for (const Event& ev : pending_) events.push_back(&ev);
    std::sort(events.begin(), events.end(),
              [](const Event* a, const Event* b) { return a->seq < b->seq; });
    h.U64("sim.pending", events.size());
    for (const Event* ev : events) {
      h.I64("ev.when", ev->when);
      h.I64("ev.seq", ev->seq);
      h.U64("ev.kind", static_cast<uint64_t>(ev->label.kind));
      h.I64("ev.from", ev->label.from);
      h.I64("ev.to", ev->label.to);
      h.Bytes("ev.what", ev->label.what, std::strlen(ev->label.what));
      h.U64("ev.digest", ev->digest);
      if (ev->digest == 0) hashable = false;
    }
    return hashable;
  }
  // Canonical mode: absolute sequence numbers are interleaving history,
  // not state — group per FIFO channel (ordered map => deterministic
  // channel order) and identify events by within-channel ordinal plus
  // content digest. `when` stays in: arrival times feed the controlled
  // clock via now = max(now, when), so they are behavior-relevant.
  std::map<ChannelKey, std::vector<const Event*>> channels;
  for (const Event& ev : pending_) {
    channels[KeyOf(ev.label)].push_back(&ev);
  }
  h.U64("sim.channels", channels.size());
  for (auto& [key, events] : channels) {
    std::sort(events.begin(), events.end(),
              [](const Event* a, const Event* b) {
                if (a->label.kind == EventKind::kDelivery) {
                  return a->seq < b->seq;
                }
                return std::make_pair(a->when, a->seq) <
                       std::make_pair(b->when, b->seq);
              });
    h.I64("chan.kind", std::get<0>(key));
    h.I64("chan.from", std::get<1>(key));
    h.I64("chan.to", std::get<2>(key));
    h.U64("chan.events", events.size());
    uint64_t ordinal = 0;
    for (const Event* ev : events) {
      h.U64("ev.ordinal", ordinal++);
      h.I64("ev.when", ev->when);
      h.Bytes("ev.what", ev->label.what, std::strlen(ev->label.what));
      h.U64("ev.digest", ev->digest);
      if (ev->digest == 0) hashable = false;
    }
  }
  return hashable;
}

bool Simulator::StepControlled() {
  if (pending_.empty()) return false;
  std::vector<size_t> indices = ReadyIndices();
  std::vector<Scheduler::Candidate> ready;
  ready.reserve(indices.size());
  for (size_t idx : indices) {
    const Event& ev = pending_[idx];
    ready.push_back(Scheduler::Candidate{ev.label, ev.when, ev.seq});
  }
  size_t pick = scheduler_->Pick(ready);
  SWEEP_CHECK_MSG(pick < ready.size(), "scheduler picked out of range");
  CaptureUndo();
  size_t idx = indices[pick];
  Event ev = std::move(pending_[idx]);
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(idx));
  // The controlled clock never runs backwards: executing a "late" head
  // first leaves earlier-stamped heads in the logical past.
  now_ = std::max(now_, ev.when);
  ev.fn();
  return true;
}

bool Simulator::Step() {
  if (controlled()) return StepControlled();
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handler is moved out before
  // pop via a const_cast-free copy of the callable wrapper.
  Event ev = queue_.top();
  queue_.pop();
  SWEEP_CHECK(ev.when >= now_);
  now_ = ev.when;
  ev.fn();
  return true;
}

int64_t Simulator::Run(int64_t max_events) {
  int64_t executed = 0;
  while ((max_events < 0 || executed < max_events) && Step()) {
    ++executed;
  }
  return executed;
}

int64_t Simulator::RunUntil(SimTime until) {
  SWEEP_CHECK_MSG(!controlled(), "RunUntil is time-ordered-mode only");
  SWEEP_CHECK(until >= now_);
  int64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until && Step()) {
    ++executed;
  }
  now_ = until;
  return executed;
}

}  // namespace sweepmv
