// Deterministic discrete-event simulator.
//
// The paper's distributed system (n autonomous sources + warehouse over
// reliable FIFO channels) is reproduced as a single-threaded event-driven
// simulation: every send, delivery, and workload arrival is an event on a
// virtual clock. Determinism is total — ties in delivery time break by
// schedule order — so every experiment replays exactly from its seed.
//
// Two execution modes share the event vocabulary:
//   * time-ordered (default) — events run in (time, schedule-order), the
//     classic discrete-event loop every bench and scenario uses;
//   * controlled — a pluggable Scheduler picks the next event among the
//     *ready* set: per channel (one directed network link, one site's
//     transaction stream) events stay in order, but across channels the
//     scheduler may run any head it likes, regardless of timestamps. The
//     schedule-space explorer (src/verify/) drives this mode to enumerate
//     FIFO-respecting interleavings the wall clock would never produce.

#ifndef SWEEPMV_SIM_SIMULATOR_H_
#define SWEEPMV_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/fingerprint.h"
#include "common/snapshot.h"
#include "common/undo.h"
#include "sim/time.h"

namespace sweepmv {

// What kind of event a scheduled closure represents. Only controlled mode
// cares: the kind defines the channel whose internal order is preserved.
enum class EventKind : int {
  // Harness machinery (timers, crash plans, unlabeled legacy events).
  // Conservatively ordered by (time, schedule order) on one shared
  // channel, and treated as dependent on everything by the explorer.
  kInternal = 0,
  // A source-local transaction at site `to`. Transactions of one site
  // form a channel (the source's serial execution order).
  kTxn = 1,
  // A message delivery on the directed link `from` -> `to`. Deliveries of
  // one link form a channel (the paper's reliable-FIFO assumption).
  kDelivery = 2,
};

struct EventLabel {
  EventKind kind = EventKind::kInternal;
  int from = -1;
  int to = -1;
  // Static human-readable tag for traces (e.g. the message class name).
  const char* what = "";

  // `what` compares by pointer: labels are built from string literals.
  bool operator==(const EventLabel&) const = default;
};

// Controlled-mode hook: picks which ready event runs next.
class Scheduler {
 public:
  struct Candidate {
    EventLabel label;
    SimTime when = 0;
    int64_t seq = 0;
  };

  virtual ~Scheduler() = default;

  // `ready` is non-empty and holds exactly the FIFO-respecting heads (one
  // per non-empty channel), in a deterministic channel order. Returns the
  // index of the event to execute.
  virtual size_t Pick(const std::vector<Candidate>& ready) = 0;
};

class Simulator {
  // Declared before the public section so SavedState can hold events.
  struct Event {
    SimTime when;
    int64_t seq;
    EventLabel label;
    // Content digest of what this event will do (message hash, txn hash,
    // …) for canonical state fingerprints; 0 = undigested, which marks
    // the whole state as not safely dedupable (see HashState).
    uint64_t digest = 0;
    std::function<void()> fn;

    // Identity comparison for the undo log's effect probes (the closure
    // is not comparable; (when, seq) already identifies an event).
    bool operator==(const Event& other) const {
      return when == other.when && seq == other.seq &&
             label == other.label && digest == other.digest;
    }
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` ticks from now (delay >= 0). The
  // digest overloads additionally attach a content hash of the event's
  // payload (see Event::digest).
  void Schedule(SimTime delay, std::function<void()> fn);
  void Schedule(SimTime delay, EventLabel label, std::function<void()> fn);
  void Schedule(SimTime delay, EventLabel label, uint64_t digest,
                std::function<void()> fn);

  // Schedules `fn` at absolute time `when` (when >= now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);
  void ScheduleAt(SimTime when, EventLabel label, std::function<void()> fn);
  void ScheduleAt(SimTime when, EventLabel label, uint64_t digest,
                  std::function<void()> fn);

  // Switches to controlled mode. Must be called before anything is
  // scheduled; `scheduler` must outlive the simulator's runs. In
  // controlled mode the clock only moves forward (an event whose
  // timestamp is in the "past" relative to an already-executed later
  // event leaves the clock untouched).
  void SetScheduler(Scheduler* scheduler);
  bool controlled() const { return scheduler_ != nullptr; }

  // Controlled mode: the ready set Step() would offer the scheduler now
  // (empty when no events are pending).
  std::vector<Scheduler::Candidate> Ready() const;

  // Runs the next event — the earliest pending one in time-ordered mode,
  // the scheduler's pick in controlled mode. Returns false if none are
  // pending.
  bool Step();

  // Runs events until the queue drains or `max_events` have run (if
  // nonnegative). Returns the number of events executed.
  int64_t Run(int64_t max_events = -1);

  // Runs events with time <= `until`; the clock ends at `until` even if
  // the queue drained earlier. Returns the number of events executed.
  // Time-ordered mode only.
  int64_t RunUntil(SimTime until);

  size_t pending_events() const {
    return controlled() ? pending_.size() : queue_.size();
  }

  // --- Snapshot/restore (controlled mode only) --------------------------
  //
  // SaveState copies the clock, the sequence counter, and every pending
  // event (std::function closures are copied; the site/network objects
  // they point into must be restored alongside — see
  // ControlledSystem::SaveState). RestoreState rewinds the simulator to
  // the save point; the schedule-space explorer uses the pair to back-
  // track to a decision point without replaying the whole prefix.
  class SavedState {
   public:
    SavedState() = default;

   private:
    friend class Simulator;
    SimTime now = 0;
    int64_t next_seq = 0;
    std::vector<Event> pending;
  };
  SavedState SaveState() const;
  void RestoreState(const SavedState& state);

  // --- Undo log + fingerprint (controlled mode only) --------------------

  // Installs the undo log that every subsequent mutation entry point
  // value-captures into (first-touch-per-era; see common/undo.h). Null
  // detaches.
  void AttachUndo(UndoLog* undo) { undo_ = undo; }

  // Absorbs the simulator's state into `h`. `exact` mode (the oracle
  // dump) includes absolute sequence numbers and orders pending events by
  // seq; canonical mode (the dedup fingerprint) groups pending events per
  // FIFO channel with within-channel ordinals and omits seq/next_seq_ so
  // two interleavings reaching the same logical state digest identically.
  // Returns false if any pending event lacks a content digest, in which
  // case the state must not be deduplicated.
  bool DescribeState(StateHasher& h, bool exact) const;

 private:
  // Controlled mode: picks the ready set's indices into `pending_`
  // (parallel to the candidate list Ready() builds).
  std::vector<size_t> ReadyIndices() const;
  bool StepControlled();
  // Records now_/next_seq_/pending_ into the attached undo log. Called at
  // the top of every controlled-mode mutation entry point.
  void CaptureUndo();

  SimTime now_ = 0;
  int64_t next_seq_ = 0;
  SWEEP_SNAPSHOT_EXEMPT(
      "free-run-mode queue, always empty under a scheduler; SaveState "
      "CHECKs controlled mode, where every event lives in pending_")
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Controlled-mode store (unsorted; the ready-set computation orders it).
  std::vector<Event> pending_;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring, not state: the explorer that drives save/restore owns the "
      "scheduler and keeps it installed across backtracks")
  Scheduler* scheduler_ = nullptr;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring, not state: the explorer owns the undo log and manages its "
      "watermarks across backtracks")
  UndoLog* undo_ = nullptr;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_SIMULATOR_H_
