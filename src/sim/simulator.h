// Deterministic discrete-event simulator.
//
// The paper's distributed system (n autonomous sources + warehouse over
// reliable FIFO channels) is reproduced as a single-threaded event-driven
// simulation: every send, delivery, and workload arrival is an event on a
// virtual clock. Determinism is total — ties in delivery time break by
// schedule order — so every experiment replays exactly from its seed.

#ifndef SWEEPMV_SIM_SIMULATOR_H_
#define SWEEPMV_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace sweepmv {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` ticks from now (delay >= 0).
  void Schedule(SimTime delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `when` (when >= now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs the earliest pending event. Returns false if none are pending.
  bool Step();

  // Runs events until the queue drains or `max_events` have run (if
  // nonnegative). Returns the number of events executed.
  int64_t Run(int64_t max_events = -1);

  // Runs events with time <= `until`; the clock ends at `until` even if
  // the queue drained earlier. Returns the number of events executed.
  int64_t RunUntil(SimTime until);

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    int64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  int64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_SIMULATOR_H_
