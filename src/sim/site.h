// Site interface: anything addressable on the simulated network.

#ifndef SWEEPMV_SIM_SITE_H_
#define SWEEPMV_SIM_SITE_H_

#include "sim/message.h"

namespace sweepmv {

class Site {
 public:
  virtual ~Site() = default;

  // Delivered by the network when a message addressed to this site
  // arrives. `from` is the sender's site id.
  virtual void OnMessage(int from, Message msg) = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_SITE_H_
