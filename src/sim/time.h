// Simulated-time type shared across the library.

#ifndef SWEEPMV_SIM_TIME_H_
#define SWEEPMV_SIM_TIME_H_

#include <cstdint>

namespace sweepmv {

// Virtual clock ticks. The unit is arbitrary; by convention the workloads
// and latency models treat one tick as a microsecond.
using SimTime = int64_t;

}  // namespace sweepmv

#endif  // SWEEPMV_SIM_TIME_H_
