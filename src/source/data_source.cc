#include "source/data_source.h"

#include "common/check.h"
#include "common/log.h"
#include "relational/partial_delta.h"
#include "storage/index_catalog.h"
#include "storage/indexed_ops.h"

namespace sweepmv {

DataSource::DataSource(int site_id, int relation_index, Relation initial,
                       const ViewDef* view, Network* network,
                       int warehouse_site, UpdateIdGenerator* ids,
                       SourceStorageOptions storage)
    : site_id_(site_id),
      relation_index_(relation_index),
      store_(std::move(initial)),
      view_(view),
      network_(network),
      warehouse_sites_{warehouse_site},
      ids_(ids),
      storage_options_(storage) {
  SWEEP_CHECK(view != nullptr && network != nullptr && ids != nullptr);
  SWEEP_CHECK(relation_index >= 0 &&
              relation_index < view->num_relations());
  SWEEP_CHECK_MSG(!store_.relation().HasNegative(),
                  "base relations must have positive counts");
  log_.SetInitial(store_.relation());
  if (storage_options_.use_indexes) {
    IndexCatalog catalog(*view_);
    for (const auto& key : catalog.key_sets(relation_index_)) {
      store_.EnsureIndex(key);
    }
  }
}

void DataSource::CaptureUndo() {
  if (undo_ == nullptr) return;
  const int s = site_id_;
  ids_->CaptureUndo(*undo_);
  // store_'s indexes are a pure cache over the relation; the custom entry
  // restores the relation and rebuilds them, exactly like RestoreState.
  undo_->Capture(
      &store_,
      [this, saved = store_.relation()]() { store_.RestoreRelation(saved); },
      [this, s, saved = store_.relation()](std::vector<EffectAtom>& out) {
        if (!(store_.relation() == saved)) {
          out.push_back(EffectAtom{"DataSource", "store_", s});
        }
      });
  undo_->CaptureValue(&query_stats_, {"DataSource", "query_stats_", s});
  undo_->CaptureValue(&log_, {"DataSource", "log_", s});
  undo_->CaptureValue(&queries_answered_,
                      {"DataSource", "queries_answered_", s});
  undo_->CaptureValue(&crashed_, {"DataSource", "crashed_", s});
  undo_->CaptureValue(&updates_replayed_,
                      {"DataSource", "updates_replayed_", s});
}

void DataSource::DescribeState(StateHasher& h) const {
  h.I64("src.site", site_id_);
  AbsorbRelation(h, "src.relation", store_.relation());
  AbsorbStateLog(h, "src.log", log_);
  h.I64("src.answered", queries_answered_);
  h.Bool("src.crashed", crashed_);
  h.I64("src.replayed", updates_replayed_);
  h.I64("src.probes", query_stats_.index_probes);
  h.I64("src.scans", query_stats_.scan_fallbacks);
}

int64_t DataSource::ApplyTransaction(const std::vector<UpdateOp>& ops) {
  CaptureUndo();
  // A crashed site executes no transactions; the workload simply does not
  // happen here until the site is back.
  if (crashed_) return -1;
  Relation delta = OpsToDelta(view_->rel_schema(relation_index_), ops);
  if (delta.Empty()) return -1;

  store_.Merge(delta);
  SWEEP_CHECK_MSG(!store_.relation().HasNegative(),
                  "transaction deleted a tuple that was not present");

  Update update;
  update.id = ids_->Next();
  update.relation = relation_index_;
  update.delta = delta;
  update.applied_at = network_->simulator()->now();
  log_.Append(update.id, delta, update.applied_at);

  SWEEP_LOG(Trace) << "source R" << relation_index_ << " applied "
                   << update.ToDisplayString();
  int64_t id = update.id;
  for (int warehouse : warehouse_sites_) {
    network_->Send(site_id_, warehouse, UpdateMessage{update});
  }
  return id;
}

void DataSource::AddWarehouse(int warehouse_site) {
  warehouse_sites_.push_back(warehouse_site);
}

void DataSource::Crash() {
  CaptureUndo();
  SWEEP_CHECK_MSG(!crashed_, "source is already crashed");
  crashed_ = true;
  network_->CrashSite(site_id_);
  SWEEP_LOG(Debug) << "source R" << relation_index_ << " crashed";
}

void DataSource::Restart() {
  CaptureUndo();
  SWEEP_CHECK_MSG(crashed_, "source is not crashed");
  crashed_ = false;
  network_->RestartSite(site_id_);
  // Indexes are a volatile cache over the durable relation; the new
  // incarnation rebuilds them before answering any query.
  store_.RebuildIndexes();
  // Recovery: the source cannot know which notifications reached the
  // warehouse (that knowledge was volatile), so it replays the whole
  // committed log. Per-link session FIFO delivers the replays in log
  // order and the warehouse discards ids it already incorporated, which
  // together preserve the per-source prefix property SWEEP's consistency
  // argument needs.
  for (const LoggedUpdate& logged : log_.updates()) {
    Update update;
    update.id = logged.id;
    update.relation = relation_index_;
    update.delta = logged.delta;
    update.applied_at = logged.applied_at;
    for (int warehouse : warehouse_sites_) {
      network_->Send(site_id_, warehouse, UpdateMessage{update});
    }
    ++updates_replayed_;
  }
  SWEEP_LOG(Debug) << "source R" << relation_index_ << " restarted, "
                   << "replayed " << log_.updates().size() << " updates";
}

int64_t DataSource::ApplyTxn(int relation_index,
                             const std::vector<UpdateOp>& ops) {
  SWEEP_CHECK_MSG(relation_index == relation_index_,
                  "this site does not host that relation");
  return ApplyTransaction(ops);
}

const StateLog& DataSource::LogOf(int relation_index) const {
  SWEEP_CHECK(relation_index == relation_index_);
  return log_;
}

const Relation& DataSource::RelationOf(int relation_index) const {
  SWEEP_CHECK(relation_index == relation_index_);
  return store_.relation();
}

StorageStats DataSource::storage_stats() const {
  StorageStats stats = store_.stats();
  stats.MergeFrom(query_stats_);
  return stats;
}

DataSource::SavedState DataSource::SaveState() const {
  SavedState state;
  state.relation = store_.relation();
  state.query_stats = query_stats_;
  state.log = log_;
  state.queries_answered = queries_answered_;
  state.crashed = crashed_;
  state.updates_replayed = updates_replayed_;
  return state;
}

void DataSource::RestoreState(const SavedState& state) {
  store_.RestoreRelation(state.relation);
  query_stats_ = state.query_stats;
  log_ = state.log;
  queries_answered_ = state.queries_answered;
  crashed_ = state.crashed;
  updates_replayed_ = state.updates_replayed;
}

int64_t DataSource::ApplyInsert(Tuple t) {
  return ApplyTransaction({UpdateOp::Insert(std::move(t))});
}

int64_t DataSource::ApplyDelete(Tuple t) {
  return ApplyTransaction({UpdateOp::Delete(std::move(t))});
}

void DataSource::OnMessage(int from, Message msg) {
  CaptureUndo();
  // The network drops deliveries to crashed sites; this guard is defense
  // in depth.
  if (crashed_) return;
  if (auto* query = std::get_if<QueryRequest>(&msg)) {
    SWEEP_CHECK_MSG(query->target_rel == relation_index_,
                    "query routed to the wrong source");
    PartialDelta result;
    if (storage_options_.use_indexes) {
      result = query->extend_left
                   ? ExtendLeftIndexed(*view_, store_, query->partial,
                                       &query_stats_)
                   : ExtendRightIndexed(*view_, query->partial, store_,
                                        &query_stats_);
    } else {
      result = query->extend_left
                   ? ExtendLeft(*view_, store_.relation(), query->partial)
                   : ExtendRight(*view_, query->partial, store_.relation());
      ++query_stats_.scan_fallbacks;
    }
    ++queries_answered_;
    network_->Send(site_id_, from,
                   QueryAnswer{query->query_id, std::move(result),
                               query->epoch});
    return;
  }
  if (auto* snap = std::get_if<SnapshotRequest>(&msg)) {
    network_->Send(site_id_, from,
                   SnapshotAnswer{snap->query_id, relation_index_,
                                  store_.relation(), snap->epoch});
    return;
  }
  SWEEP_CHECK_MSG(false, "data source received an unexpected message type");
}

}  // namespace sweepmv
