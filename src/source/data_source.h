// A data-source site: one base relation plus the paper's Update & Query
// Server (Figure 3).
//
// The server has two duties:
//   * SendUpdates — every locally executed transaction is forwarded to the
//     warehouse as one atomic unit (an UpdateMessage);
//   * ProcessQuery — an incremental query from the warehouse (a partial
//     delta) is joined with the *current* local relation and sent back.
// Requests are serviced sequentially and the join is synchronized with
// local update transactions, which the single-threaded simulator gives us
// for free: each event runs to completion.

#ifndef SWEEPMV_SOURCE_DATA_SOURCE_H_
#define SWEEPMV_SOURCE_DATA_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/fingerprint.h"
#include "common/snapshot.h"
#include "common/undo.h"
#include "relational/relation.h"
#include "relational/view_def.h"
#include "sim/network.h"
#include "source/source_site.h"
#include "source/state_log.h"
#include "source/update.h"
#include "storage/indexed_relation.h"

namespace sweepmv {

// Issues globally unique update ids (instrumentation only; a real
// deployment needs no such shared counter).
class UpdateIdGenerator {
 public:
  int64_t Next() { return next_++; }

  // Snapshot support: the counter is part of the schedule-determined
  // system state the explorer rewinds.
  int64_t SaveState() const { return next_; }
  void RestoreState(int64_t next) { next_ = next; }

  // Undo support: every site that may advance the counter records it; the
  // log's first-touch-per-era dedup keeps one entry per watermark span.
  void CaptureUndo(UndoLog& undo) {
    undo.CaptureValue(&next_, {"UpdateIdGenerator", "next_", -1});
  }
  void DescribeState(StateHasher& h) const { h.I64("ids.next", next_); }

 private:
  int64_t next_ = 0;
};

// Per-source storage-engine knobs.
struct SourceStorageOptions {
  // Maintain the IndexCatalog's hash indexes and answer incremental
  // queries by probing them. Off = the pre-storage-engine behaviour
  // (every query re-scans the relation); kept as an ablation/equivalence
  // switch — results are identical either way, only the cost differs.
  bool use_indexes = true;
};

class DataSource : public SourceSite {
 public:
  // `relation_index` is the position of this source's base relation in the
  // view chain. `warehouse_site` is where updates and answers are sent.
  DataSource(int site_id, int relation_index, Relation initial,
             const ViewDef* view, Network* network, int warehouse_site,
             UpdateIdGenerator* ids,
             SourceStorageOptions storage = SourceStorageOptions{});

  // Executes a source-local transaction atomically: applies every op in
  // order, logs the resulting delta, and ships it to the warehouse as a
  // single unit. No-op transactions (net-zero delta) are not shipped.
  // Returns the update id, or -1 for a net no-op.
  int64_t ApplyTransaction(const std::vector<UpdateOp>& ops);

  // Single-op conveniences.
  int64_t ApplyInsert(Tuple t);
  int64_t ApplyDelete(Tuple t);

  void OnMessage(int from, Message msg) override;

  // Registers an additional warehouse site; every subsequent update is
  // shipped to all registered warehouses (multi-view deployments where
  // several warehouses materialize different views over the same
  // sources). Queries are always answered to their sender.
  void AddWarehouse(int warehouse_site);

  // Crash-failure model (docs/fault_model.md). Crash() takes the site
  // down: volatile state — in-flight messages, session state, anything
  // being computed — is lost; the base relation and the committed update
  // log survive (they are the durable store a real source recovers from).
  // While crashed the site executes nothing: local transactions are
  // refused and the network drops traffic to and from it.
  void Crash();
  // Brings the site back under a new incarnation and replays every
  // committed update from the state log to all registered warehouses —
  // at-least-once recovery; warehouses discard the ids they already saw.
  void Restart();
  bool crashed() const { return crashed_; }
  // Update notifications re-sent by Restart() replays.
  int64_t updates_replayed() const { return updates_replayed_; }

  // SourceSite interface (single hosted relation).
  int64_t ApplyTxn(int relation_index,
                   const std::vector<UpdateOp>& ops) override;
  const StateLog& LogOf(int relation_index) const override;
  const Relation& RelationOf(int relation_index) const override;

  int site_id() const { return site_id_; }
  int relation_index() const { return relation_index_; }
  const Relation& relation() const { return store_.relation(); }
  const IndexedRelation& store() const { return store_; }
  const StateLog& log() const { return log_; }
  int64_t queries_answered() const { return queries_answered_; }

  // Index maintenance + query-path counters for this site.
  StorageStats storage_stats() const override;

  // --- Snapshot/restore (schedule-space explorer) -----------------------
  // Copies the durable and volatile site state; restoring rewinds the
  // source to the save point (indexes are rebuilt from the restored
  // relation — they are a pure cache).
  class SavedState {
   public:
    SavedState() = default;

   private:
    friend class DataSource;
    Relation relation;
    StorageStats query_stats;
    StateLog log;
    int64_t queries_answered = 0;
    bool crashed = false;
    int64_t updates_replayed = 0;
  };
  SavedState SaveState() const;
  void RestoreState(const SavedState& state);

  // --- Undo log + fingerprint (schedule-space explorer) -----------------

  // Installs the undo log the mutation entry points capture into (see
  // common/undo.h). Null detaches.
  void AttachUndo(UndoLog* undo) { undo_ = undo; }

  // Absorbs the SaveState member set into `h` (sorted relation iteration;
  // identical in exact and canonical mode).
  void DescribeState(StateHasher& h) const;

 private:
  // Records the SaveState member set into the attached undo log; called
  // at the top of every mutation entry point.
  void CaptureUndo();

  SWEEP_SNAPSHOT_EXEMPT("site identity, fixed at construction")
  int site_id_;
  SWEEP_SNAPSHOT_EXEMPT("which base relation this site hosts — topology, "
                        "fixed at construction")
  int relation_index_;
  IndexedRelation store_;
  SWEEP_SNAPSHOT_EXEMPT("view definition is immutable configuration, "
                        "owned by the harness")
  const ViewDef* view_;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring to the network, which snapshots its own channel state")
  Network* network_;
  SWEEP_SNAPSHOT_EXEMPT("topology, fixed at construction")
  std::vector<int> warehouse_sites_;
  SWEEP_SNAPSHOT_EXEMPT("shared id generator, snapshotted once by "
                        "ControlledSystem rather than per site")
  UpdateIdGenerator* ids_;
  SWEEP_SNAPSHOT_EXEMPT("storage tuning knobs, fixed at construction")
  SourceStorageOptions storage_options_;
  StorageStats query_stats_;
  StateLog log_;
  int64_t queries_answered_ = 0;
  bool crashed_ = false;
  int64_t updates_replayed_ = 0;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring, not state: the explorer owns the undo log and manages its "
      "watermarks across backtracks")
  UndoLog* undo_ = nullptr;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SOURCE_DATA_SOURCE_H_
