#include "source/eca_source.h"

#include "common/check.h"
#include "relational/operators.h"

namespace sweepmv {

EcaSource::EcaSource(int site_id, std::vector<Relation> initial_relations,
                     const ViewDef* view, Network* network,
                     int warehouse_site, UpdateIdGenerator* ids)
    : site_id_(site_id),
      relations_(std::move(initial_relations)),
      view_(view),
      network_(network),
      warehouse_site_(warehouse_site),
      ids_(ids) {
  SWEEP_CHECK(view != nullptr && network != nullptr && ids != nullptr);
  SWEEP_CHECK(static_cast<int>(relations_.size()) == view->num_relations());
  logs_.resize(relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    SWEEP_CHECK_MSG(!relations_[i].HasNegative(),
                    "base relations must have positive counts");
    logs_[i].SetInitial(relations_[i]);
  }
}

void EcaSource::CaptureUndo() {
  if (undo_ == nullptr) return;
  const int s = site_id_;
  ids_->CaptureUndo(*undo_);
  undo_->CaptureValue(&relations_, {"EcaSource", "relations_", s});
  undo_->CaptureValue(&logs_, {"EcaSource", "logs_", s});
  undo_->CaptureValue(&queries_answered_,
                      {"EcaSource", "queries_answered_", s});
}

void EcaSource::DescribeState(StateHasher& h) const {
  h.I64("eca.site", site_id_);
  h.U64("eca.relations", relations_.size());
  for (const Relation& rel : relations_) {
    AbsorbRelation(h, "eca.relation", rel);
  }
  for (const StateLog& log : logs_) {
    AbsorbStateLog(h, "eca.log", log);
  }
  h.I64("eca.answered", queries_answered_);
}

int64_t EcaSource::ApplyTransaction(int relation_index,
                                    const std::vector<UpdateOp>& ops) {
  CaptureUndo();
  SWEEP_CHECK(relation_index >= 0 &&
              relation_index < view_->num_relations());
  Relation delta = OpsToDelta(view_->rel_schema(relation_index), ops);
  if (delta.Empty()) return -1;

  Relation& rel = relations_[static_cast<size_t>(relation_index)];
  rel.Merge(delta);
  SWEEP_CHECK_MSG(!rel.HasNegative(),
                  "transaction deleted a tuple that was not present");

  Update update;
  update.id = ids_->Next();
  update.relation = relation_index;
  update.delta = std::move(delta);
  update.applied_at = network_->simulator()->now();
  logs_[static_cast<size_t>(relation_index)].Append(
      update.id, update.delta, update.applied_at);

  int64_t id = update.id;
  network_->Send(site_id_, warehouse_site_,
                 UpdateMessage{std::move(update)});
  return id;
}

void EcaSource::OnMessage(int from, Message msg) {
  CaptureUndo();
  if (auto* query = std::get_if<EcaQueryRequest>(&msg)) {
    Relation result(view_->joined_schema());
    for (const EcaTerm& term : query->terms) {
      Relation value = EvaluateTerm(term);
      if (term.sign >= 0) {
        result.Merge(value);
      } else {
        result.MergeNegated(value);
      }
    }
    ++queries_answered_;
    network_->Send(site_id_, from,
                   EcaQueryAnswer{query->query_id, std::move(result),
                                  query->epoch});
    return;
  }
  if (auto* snap = std::get_if<SnapshotRequest>(&msg)) {
    for (size_t r = 0; r < relations_.size(); ++r) {
      network_->Send(site_id_, from,
                     SnapshotAnswer{snap->query_id, static_cast<int>(r),
                                    relations_[r], snap->epoch});
    }
    return;
  }
  SWEEP_CHECK_MSG(false, "ECA source received an unexpected message type");
}

Relation EcaSource::EvaluateTerm(const EcaTerm& term) const {
  SWEEP_CHECK(term.fixed.size() == relations_.size());
  auto input = [&](int rel) -> const Relation& {
    const auto& fixed = term.fixed[static_cast<size_t>(rel)];
    return fixed.has_value() ? *fixed
                             : relations_[static_cast<size_t>(rel)];
  };
  Relation acc = input(0);
  for (int rel = 1; rel < view_->num_relations(); ++rel) {
    acc = Join(acc, input(rel), view_->ExtendRightKeys(0, rel));
  }
  return acc;
}

const Relation& EcaSource::relation(int relation_index) const {
  SWEEP_CHECK(relation_index >= 0 &&
              relation_index < static_cast<int>(relations_.size()));
  return relations_[static_cast<size_t>(relation_index)];
}

const StateLog& EcaSource::log(int relation_index) const {
  SWEEP_CHECK(relation_index >= 0 &&
              relation_index < static_cast<int>(logs_.size()));
  return logs_[static_cast<size_t>(relation_index)];
}

EcaSource::SavedState EcaSource::SaveState() const {
  SavedState state;
  state.relations = relations_;
  state.logs = logs_;
  state.queries_answered = queries_answered_;
  return state;
}

void EcaSource::RestoreState(const SavedState& state) {
  relations_ = state.relations;
  logs_ = state.logs;
  queries_answered_ = state.queries_answered;
}

}  // namespace sweepmv
