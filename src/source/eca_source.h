// ECA's data source: a single autonomous site storing *all* base relations.
//
// The ECA algorithm [ZGMHW95] targets the restricted architecture the
// paper discusses in Section 3: one data source holding every base
// relation, so that a whole incremental query evaluates atomically against
// one consistent local state. EcaSource provides that site: it applies
// transactions against any of its relations (forwarding each to the
// warehouse, as Figure 3's server does) and evaluates signed-term queries
// in one event.

#ifndef SWEEPMV_SOURCE_ECA_SOURCE_H_
#define SWEEPMV_SOURCE_ECA_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/fingerprint.h"
#include "common/snapshot.h"
#include "common/undo.h"
#include "relational/relation.h"
#include "relational/view_def.h"
#include "sim/network.h"
#include "source/data_source.h"
#include "source/source_site.h"
#include "source/state_log.h"
#include "source/update.h"

namespace sweepmv {

class EcaSource : public SourceSite {
 public:
  EcaSource(int site_id, std::vector<Relation> initial_relations,
            const ViewDef* view, Network* network, int warehouse_site,
            UpdateIdGenerator* ids);

  // Applies a transaction to relation `relation_index` atomically and
  // ships it to the warehouse. Returns the update id (-1 for a net no-op).
  int64_t ApplyTransaction(int relation_index,
                           const std::vector<UpdateOp>& ops);

  void OnMessage(int from, Message msg) override;

  // SourceSite interface.
  int64_t ApplyTxn(int relation_index,
                   const std::vector<UpdateOp>& ops) override {
    return ApplyTransaction(relation_index, ops);
  }
  const StateLog& LogOf(int relation_index) const override {
    return log(relation_index);
  }
  const Relation& RelationOf(int relation_index) const override {
    return relation(relation_index);
  }

  const Relation& relation(int relation_index) const;
  const StateLog& log(int relation_index) const;
  int64_t queries_answered() const { return queries_answered_; }

  // --- Snapshot/restore (schedule-space explorer) -----------------------
  class SavedState {
   public:
    SavedState() = default;

   private:
    friend class EcaSource;
    std::vector<Relation> relations;
    std::vector<StateLog> logs;
    int64_t queries_answered = 0;
  };
  SavedState SaveState() const;
  void RestoreState(const SavedState& state);

  // --- Undo log + fingerprint (schedule-space explorer) -----------------
  void AttachUndo(UndoLog* undo) { undo_ = undo; }
  // Absorbs the SaveState member set into `h` (sorted relation iteration;
  // identical in exact and canonical mode).
  void DescribeState(StateHasher& h) const;

 private:
  // Records the SaveState member set into the attached undo log; called
  // at the top of every mutation entry point.
  void CaptureUndo();

  // Evaluates one signed term: positions fixed by the term use its deltas,
  // the rest use this site's current base relations. Result spans the full
  // joined schema (selection/projection are the warehouse's job).
  Relation EvaluateTerm(const EcaTerm& term) const;

  SWEEP_SNAPSHOT_EXEMPT("site identity, fixed at construction")
  int site_id_;
  std::vector<Relation> relations_;
  SWEEP_SNAPSHOT_EXEMPT("view definition is immutable configuration, "
                        "owned by the harness")
  const ViewDef* view_;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring to the network, which snapshots its own channel state")
  Network* network_;
  SWEEP_SNAPSHOT_EXEMPT("destination site id — topology, fixed at "
                        "construction")
  int warehouse_site_;
  SWEEP_SNAPSHOT_EXEMPT("shared id generator, snapshotted once by "
                        "ControlledSystem rather than per site")
  UpdateIdGenerator* ids_;
  std::vector<StateLog> logs_;
  int64_t queries_answered_ = 0;
  SWEEP_SNAPSHOT_EXEMPT(
      "wiring, not state: the explorer owns the undo log and manages its "
      "watermarks across backtracks")
  UndoLog* undo_ = nullptr;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SOURCE_ECA_SOURCE_H_
