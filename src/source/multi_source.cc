#include "source/multi_source.h"

#include "common/check.h"
#include "relational/partial_delta.h"
#include "storage/index_catalog.h"
#include "storage/indexed_ops.h"

namespace sweepmv {

MultiRelationSource::MultiRelationSource(
    int site_id, std::vector<std::pair<int, Relation>> relations,
    const ViewDef* view, Network* network, int warehouse_site,
    UpdateIdGenerator* ids, SourceStorageOptions storage)
    : site_id_(site_id),
      view_(view),
      network_(network),
      warehouse_site_(warehouse_site),
      ids_(ids),
      storage_options_(storage) {
  SWEEP_CHECK(view != nullptr && network != nullptr && ids != nullptr);
  SWEEP_CHECK_MSG(!relations.empty(), "a source must host something");
  IndexCatalog catalog(*view_);
  for (auto& [index, relation] : relations) {
    SWEEP_CHECK(index >= 0 && index < view->num_relations());
    SWEEP_CHECK_MSG(!relation.HasNegative(),
                    "base relations must have positive counts");
    Hosted hosted;
    hosted.log.SetInitial(relation);
    hosted.store = IndexedRelation(std::move(relation));
    if (storage_options_.use_indexes) {
      for (const auto& key : catalog.key_sets(index)) {
        hosted.store.EnsureIndex(key);
      }
    }
    auto [it, inserted] = hosted_.emplace(index, std::move(hosted));
    SWEEP_CHECK_MSG(inserted, "relation hosted twice");
    (void)it;
  }
}

MultiRelationSource::Hosted& MultiRelationSource::HostedOrDie(
    int relation_index) {
  auto it = hosted_.find(relation_index);
  SWEEP_CHECK_MSG(it != hosted_.end(),
                  "this site does not host that relation");
  return it->second;
}

const MultiRelationSource::Hosted& MultiRelationSource::HostedOrDie(
    int relation_index) const {
  auto it = hosted_.find(relation_index);
  SWEEP_CHECK_MSG(it != hosted_.end(),
                  "this site does not host that relation");
  return it->second;
}

int64_t MultiRelationSource::ApplyTxn(int relation_index,
                                      const std::vector<UpdateOp>& ops) {
  Hosted& hosted = HostedOrDie(relation_index);
  Relation delta = OpsToDelta(view_->rel_schema(relation_index), ops);
  if (delta.Empty()) return -1;

  hosted.store.Merge(delta);
  SWEEP_CHECK_MSG(!hosted.store.relation().HasNegative(),
                  "transaction deleted a tuple that was not present");

  Update update;
  update.id = ids_->Next();
  update.relation = relation_index;
  update.delta = std::move(delta);
  update.applied_at = network_->simulator()->now();
  hosted.log.Append(update.id, update.delta, update.applied_at);

  int64_t id = update.id;
  network_->Send(site_id_, warehouse_site_,
                 UpdateMessage{std::move(update)});
  return id;
}

const StateLog& MultiRelationSource::LogOf(int relation_index) const {
  return HostedOrDie(relation_index).log;
}

const Relation& MultiRelationSource::RelationOf(int relation_index) const {
  return HostedOrDie(relation_index).store.relation();
}

StorageStats MultiRelationSource::storage_stats() const {
  StorageStats stats = query_stats_;
  for (const auto& [index, hosted] : hosted_) {
    stats.MergeFrom(hosted.store.stats());
  }
  return stats;
}

void MultiRelationSource::OnMessage(int from, Message msg) {
  if (auto* query = std::get_if<QueryRequest>(&msg)) {
    Hosted& hosted = HostedOrDie(query->target_rel);
    PartialDelta result;
    if (storage_options_.use_indexes) {
      result = query->extend_left
                   ? ExtendLeftIndexed(*view_, hosted.store, query->partial,
                                       &query_stats_)
                   : ExtendRightIndexed(*view_, query->partial, hosted.store,
                                        &query_stats_);
    } else {
      result =
          query->extend_left
              ? ExtendLeft(*view_, hosted.store.relation(), query->partial)
              : ExtendRight(*view_, query->partial,
                            hosted.store.relation());
      ++query_stats_.scan_fallbacks;
    }
    ++queries_answered_;
    network_->Send(site_id_, from,
                   QueryAnswer{query->query_id, std::move(result),
                               query->epoch});
    return;
  }
  if (auto* snap = std::get_if<SnapshotRequest>(&msg)) {
    for (const auto& [index, hosted] : hosted_) {
      network_->Send(site_id_, from,
                     SnapshotAnswer{snap->query_id, index,
                                    hosted.store.relation(), snap->epoch});
    }
    return;
  }
  SWEEP_CHECK_MSG(false,
                  "multi-relation source received an unexpected message");
}

std::vector<int> MultiRelationSource::hosted_relations() const {
  std::vector<int> indices;
  indices.reserve(hosted_.size());
  for (const auto& [index, hosted] : hosted_) indices.push_back(index);
  return indices;
}

}  // namespace sweepmv
