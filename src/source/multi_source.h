// A source site hosting several base relations.
//
// Realizes the general form of the paper's model: one autonomous site
// stores a subset of the view's chain relations. All hosted relations
// share the site's FIFO channel to the warehouse; transactions touch one
// relation at a time (source-local, type 2 — global transactions across
// sites remain out of scope, as in the paper). Incremental queries are
// answered against the addressed relation's current state, in one atomic
// event, exactly like DataSource. The SWEEP compensation argument is
// unaffected: FIFO per link still guarantees that an update of R_j
// applied before a query-for-R_j evaluated is delivered before the
// answer — co-hosted relations only add unrelated traffic to the link.

#ifndef SWEEPMV_SOURCE_MULTI_SOURCE_H_
#define SWEEPMV_SOURCE_MULTI_SOURCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "relational/relation.h"
#include "relational/view_def.h"
#include "sim/network.h"
#include "source/data_source.h"
#include "source/source_site.h"

namespace sweepmv {

class MultiRelationSource : public SourceSite {
 public:
  // `relations` pairs chain indices with their initial states.
  MultiRelationSource(int site_id,
                      std::vector<std::pair<int, Relation>> relations,
                      const ViewDef* view, Network* network,
                      int warehouse_site, UpdateIdGenerator* ids,
                      SourceStorageOptions storage = SourceStorageOptions{});

  int64_t ApplyTxn(int relation_index,
                   const std::vector<UpdateOp>& ops) override;
  const StateLog& LogOf(int relation_index) const override;
  const Relation& RelationOf(int relation_index) const override;

  void OnMessage(int from, Message msg) override;

  int site_id() const { return site_id_; }
  // Chain indices hosted here, ascending.
  std::vector<int> hosted_relations() const;
  int64_t queries_answered() const { return queries_answered_; }

  // Index maintenance + query-path counters across hosted relations.
  StorageStats storage_stats() const override;

 private:
  struct Hosted {
    IndexedRelation store;
    StateLog log;
  };

  Hosted& HostedOrDie(int relation_index);
  const Hosted& HostedOrDie(int relation_index) const;

  int site_id_;
  const ViewDef* view_;
  Network* network_;
  int warehouse_site_;
  UpdateIdGenerator* ids_;
  SourceStorageOptions storage_options_;
  StorageStats query_stats_;
  std::map<int, Hosted> hosted_;
  int64_t queries_answered_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SOURCE_MULTI_SOURCE_H_
