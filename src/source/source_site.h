// Common interface of source sites.
//
// The paper's model (Section 2): "Each data source may store any number
// of base relations, but conceptually we assume a single base relation
// R_i at data source i." The library supports the general form —
// DataSource (one relation per site), MultiRelationSource (several
// relations co-hosted, updated and queried atomically at one site), and
// EcaSource (ECA's single site hosting the whole chain) all present this
// interface so harnesses and checkers can treat topologies uniformly.

#ifndef SWEEPMV_SOURCE_SOURCE_SITE_H_
#define SWEEPMV_SOURCE_SOURCE_SITE_H_

#include <vector>

#include "relational/relation.h"
#include "sim/site.h"
#include "source/state_log.h"
#include "source/update.h"
#include "storage/indexed_relation.h"

namespace sweepmv {

class SourceSite : public Site {
 public:
  ~SourceSite() override = default;

  // Executes a transaction against the hosted relation with the given
  // chain index; aborts if this site does not host it. Returns the update
  // id (-1 for net no-ops).
  virtual int64_t ApplyTxn(int relation_index,
                           const std::vector<UpdateOp>& ops) = 0;

  // Ground-truth log / current state of a hosted relation.
  virtual const StateLog& LogOf(int relation_index) const = 0;
  virtual const Relation& RelationOf(int relation_index) const = 0;

  // Storage-engine counters for this site (zeros for sites that answer
  // queries without maintained indexes, e.g. the ECA single source).
  virtual StorageStats storage_stats() const { return StorageStats{}; }
};

}  // namespace sweepmv

#endif  // SWEEPMV_SOURCE_SOURCE_SITE_H_
