#include "source/state_log.h"

#include "common/check.h"

namespace sweepmv {

void StateLog::Append(int64_t id, Relation delta, SimTime applied_at) {
  updates_.push_back(LoggedUpdate{id, std::move(delta), applied_at});
}

Relation StateLog::StateAfter(size_t k) const {
  SWEEP_CHECK(k <= updates_.size());
  Relation state = initial_;
  for (size_t i = 0; i < k; ++i) {
    state.Merge(updates_[i].delta);
  }
  return state;
}

int StateLog::IndexOf(int64_t id) const {
  for (size_t i = 0; i < updates_.size(); ++i) {
    if (updates_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace sweepmv
