#include "source/state_log.h"

#include "common/check.h"
#include "common/fingerprint.h"

namespace sweepmv {

void StateLog::Append(int64_t id, Relation delta, SimTime applied_at) {
  updates_.push_back(LoggedUpdate{id, std::move(delta), applied_at});
}

Relation StateLog::StateAfter(size_t k) const {
  SWEEP_CHECK(k <= updates_.size());
  Relation state = initial_;
  for (size_t i = 0; i < k; ++i) {
    state.Merge(updates_[i].delta);
  }
  return state;
}

int StateLog::IndexOf(int64_t id) const {
  for (size_t i = 0; i < updates_.size(); ++i) {
    if (updates_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

void AbsorbStateLog(StateHasher& h, const char* tag, const StateLog& log) {
  h.U64(tag, log.updates().size());
  AbsorbRelation(h, "log.initial", log.initial());
  for (const LoggedUpdate& u : log.updates()) {
    h.I64("log.id", u.id);
    h.I64("log.at", u.applied_at);
    AbsorbRelation(h, "log.delta", u.delta);
  }
}

}  // namespace sweepmv
