// Versioned state history of one base relation.
//
// Instrumentation only: the consistency checker replays these logs to
// decide whether a warehouse run achieved complete / strong consistency or
// mere convergence. Maintenance algorithms never look at them.

#ifndef SWEEPMV_SOURCE_STATE_LOG_H_
#define SWEEPMV_SOURCE_STATE_LOG_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"
#include "sim/time.h"

namespace sweepmv {

struct LoggedUpdate {
  int64_t id = -1;
  Relation delta;
  SimTime applied_at = 0;

  bool operator==(const LoggedUpdate&) const = default;
};

class StateLog {
 public:
  StateLog() = default;

  void SetInitial(Relation snapshot) { initial_ = std::move(snapshot); }
  const Relation& initial() const { return initial_; }

  void Append(int64_t id, Relation delta, SimTime applied_at);
  const std::vector<LoggedUpdate>& updates() const { return updates_; }

  // State after the first `k` updates (k == 0 is the initial snapshot).
  Relation StateAfter(size_t k) const;

  // Position of the update with the given id in this log, or -1.
  int IndexOf(int64_t id) const;

  bool operator==(const StateLog&) const = default;

 private:
  Relation initial_;
  std::vector<LoggedUpdate> updates_;
};

class StateHasher;

// Absorbs the log (initial snapshot + every logged delta, in log order)
// into a state fingerprint. Log order is append order — identical for any
// interleaving that executed the same source-local transactions.
void AbsorbStateLog(StateHasher& h, const char* tag, const StateLog& log);

}  // namespace sweepmv

#endif  // SWEEPMV_SOURCE_STATE_LOG_H_
