#include "source/update.h"

#include "common/str.h"

namespace sweepmv {

bool Update::IsPureDelete() const {
  if (delta.Empty()) return false;
  for (const auto& [t, c] : delta.entries()) {
    if (c > 0) return false;
  }
  return true;
}

std::string Update::ToDisplayString() const {
  return StrFormat("u%lld@R%d ", static_cast<long long>(id), relation) +
         delta.ToDisplayString();
}

Relation OpsToDelta(const Schema& schema, const std::vector<UpdateOp>& ops) {
  Relation delta(schema);
  for (const UpdateOp& op : ops) {
    delta.Add(op.tuple, op.kind == UpdateOp::Kind::kInsert ? 1 : -1);
  }
  return delta;
}

}  // namespace sweepmv
