// Source updates.
//
// Updates follow the paper's model (Section 2): inserts and deletes of
// tuples; a modify is a delete followed by an insert; a source-local
// transaction is a sequence of such operations executed atomically at one
// source and shipped to the warehouse as a single unit. An Update is that
// unit: the signed-count delta of one atomic step of one base relation.

#ifndef SWEEPMV_SOURCE_UPDATE_H_
#define SWEEPMV_SOURCE_UPDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/tuple.h"
#include "sim/time.h"

namespace sweepmv {

// One primitive operation inside a transaction.
struct UpdateOp {
  enum class Kind : uint8_t { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  Tuple tuple;

  static UpdateOp Insert(Tuple t) {
    return UpdateOp{Kind::kInsert, std::move(t)};
  }
  static UpdateOp Delete(Tuple t) {
    return UpdateOp{Kind::kDelete, std::move(t)};
  }
};

// The atomically-executed unit a source ships to the warehouse.
struct Update {
  // Globally unique id. Instrumentation only — used by the install log and
  // the consistency checker, never by the maintenance algorithms.
  int64_t id = -1;

  // Index of the base relation in the view's chain (equals the source site
  // position in the distributed model).
  int relation = -1;

  // Signed-count delta over the base relation's schema.
  Relation delta;

  // Virtual time at which the source executed the transaction.
  SimTime applied_at = 0;

  // True if every operation was a delete (used by the Strobe family, which
  // branches on update type). Mixed transactions count as neither pure
  // insert nor pure delete.
  bool IsPureInsert() const { return !delta.Empty() && !delta.HasNegative(); }
  bool IsPureDelete() const;

  std::string ToDisplayString() const;

  bool operator==(const Update&) const = default;
};

// Builds the signed-count delta equivalent of a transaction's operations
// applied in order against `base` (needed to cancel an insert-then-delete
// of the same tuple inside one transaction).
Relation OpsToDelta(const Schema& schema, const std::vector<UpdateOp>& ops);

}  // namespace sweepmv

#endif  // SWEEPMV_SOURCE_UPDATE_H_
