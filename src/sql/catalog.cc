#include "sql/catalog.h"

namespace sweepmv {

void Catalog::AddTable(const std::string& name, Schema schema) {
  tables_[name] = std::move(schema);
}

const Schema* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

}  // namespace sweepmv
