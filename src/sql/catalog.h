// Table catalog: the schema registry the SQL front end resolves against.

#ifndef SWEEPMV_SQL_CATALOG_H_
#define SWEEPMV_SQL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "relational/schema.h"

namespace sweepmv {

class Catalog {
 public:
  Catalog() = default;

  // Registers a base relation. Names are case-sensitive. Re-registering a
  // name replaces its schema.
  void AddTable(const std::string& name, Schema schema);

  // Schema lookup; nullptr if absent.
  const Schema* Find(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, Schema> tables_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_SQL_CATALOG_H_
