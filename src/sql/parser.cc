#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "common/str.h"

namespace sweepmv {

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class TokKind {
  kIdent,
  kInt,
  kFloat,
  kString,
  kComma,
  kDot,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  size_t offset = 0;
};

std::string UpperCase(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

// Tokenizes `sql`; on failure fills `error` and returns false.
bool Lex(const std::string& sql, std::vector<Token>* tokens,
         std::string* error) {
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.kind = TokKind::kIdent;
      tok.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' &&
                i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        ++i;
      }
      tok.kind = is_float ? TokKind::kFloat : TokKind::kInt;
      tok.text = sql.substr(start, i - start);
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < n && sql[i] != '\'') ++i;
      if (i >= n) {
        *error = StrFormat("unterminated string literal at offset %zu",
                           tok.offset);
        return false;
      }
      tok.kind = TokKind::kString;
      tok.text = sql.substr(start, i - start);
      ++i;  // closing quote
    } else {
      switch (c) {
        case ',':
          tok.kind = TokKind::kComma;
          ++i;
          break;
        case '.':
          tok.kind = TokKind::kDot;
          ++i;
          break;
        case '*':
          tok.kind = TokKind::kStar;
          ++i;
          break;
        case '=':
          tok.kind = TokKind::kEq;
          ++i;
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.kind = TokKind::kNe;
            i += 2;
          } else {
            *error = StrFormat("stray '!' at offset %zu", i);
            return false;
          }
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.kind = TokKind::kLe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            tok.kind = TokKind::kNe;
            i += 2;
          } else {
            tok.kind = TokKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.kind = TokKind::kGe;
            i += 2;
          } else {
            tok.kind = TokKind::kGt;
            ++i;
          }
          break;
        default:
          *error = StrFormat("unexpected character '%c' at offset %zu", c,
                             i);
          return false;
      }
    }
    tokens->push_back(std::move(tok));
  }
  tokens->push_back(Token{TokKind::kEnd, "", n});
  return true;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct ColumnRef {
  std::string table;  // empty if unqualified
  std::string attr;
};

struct RawOperand {
  bool is_column = false;
  ColumnRef column;
  Value constant;
};

struct RawComparison {
  RawOperand lhs;
  CmpOp op = CmpOp::kEq;
  RawOperand rhs;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  bool Run(std::string* error) {
    if (!ExpectKeyword("SELECT", error)) return false;
    if (!ParseSelectList(error)) return false;
    if (!ExpectKeyword("FROM", error)) return false;
    if (!ParseTableList(error)) return false;
    if (IsKeyword("WHERE")) {
      ++pos_;
      if (!ParseConjunction(error)) return false;
    }
    if (Peek().kind != TokKind::kEnd) {
      *error = StrFormat("trailing input near '%s'", Peek().text.c_str());
      return false;
    }
    return true;
  }

  bool select_star = false;
  std::vector<ColumnRef> select_list;
  std::vector<std::string> tables;
  std::vector<RawComparison> comparisons;

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && UpperCase(Peek().text) == kw;
  }

  bool ExpectKeyword(const char* kw, std::string* error) {
    if (!IsKeyword(kw)) {
      *error = StrFormat("expected %s near '%s'", kw, Peek().text.c_str());
      return false;
    }
    ++pos_;
    return true;
  }

  bool ParseColumn(ColumnRef* out, std::string* error) {
    if (Peek().kind != TokKind::kIdent) {
      *error = StrFormat("expected a column near '%s'",
                         Peek().text.c_str());
      return false;
    }
    std::string first = tokens_[pos_++].text;
    if (Peek().kind == TokKind::kDot) {
      ++pos_;
      if (Peek().kind != TokKind::kIdent) {
        *error = "expected an attribute name after '.'";
        return false;
      }
      out->table = std::move(first);
      out->attr = tokens_[pos_++].text;
    } else {
      out->attr = std::move(first);
    }
    return true;
  }

  bool ParseSelectList(std::string* error) {
    if (Peek().kind == TokKind::kStar) {
      select_star = true;
      ++pos_;
      return true;
    }
    while (true) {
      ColumnRef col;
      if (!ParseColumn(&col, error)) return false;
      select_list.push_back(std::move(col));
      if (Peek().kind != TokKind::kComma) break;
      ++pos_;
    }
    return true;
  }

  bool ParseTableList(std::string* error) {
    while (true) {
      if (Peek().kind != TokKind::kIdent || IsKeyword("WHERE")) {
        *error = StrFormat("expected a table name near '%s'",
                           Peek().text.c_str());
        return false;
      }
      tables.push_back(tokens_[pos_++].text);
      if (Peek().kind != TokKind::kComma) break;
      ++pos_;
    }
    return true;
  }

  bool ParseOperand(RawOperand* out, std::string* error) {
    switch (Peek().kind) {
      case TokKind::kIdent:
        out->is_column = true;
        return ParseColumn(&out->column, error);
      case TokKind::kInt:
        out->constant = Value(
            static_cast<int64_t>(std::strtoll(Peek().text.c_str(),
                                              nullptr, 10)));
        ++pos_;
        return true;
      case TokKind::kFloat:
        out->constant = Value(std::strtod(Peek().text.c_str(), nullptr));
        ++pos_;
        return true;
      case TokKind::kString:
        out->constant = Value(Peek().text);
        ++pos_;
        return true;
      default:
        *error = StrFormat("expected an operand near '%s'",
                           Peek().text.c_str());
        return false;
    }
  }

  bool ParseConjunction(std::string* error) {
    while (true) {
      RawComparison cmp;
      if (!ParseOperand(&cmp.lhs, error)) return false;
      switch (Peek().kind) {
        case TokKind::kEq:
          cmp.op = CmpOp::kEq;
          break;
        case TokKind::kNe:
          cmp.op = CmpOp::kNe;
          break;
        case TokKind::kLt:
          cmp.op = CmpOp::kLt;
          break;
        case TokKind::kLe:
          cmp.op = CmpOp::kLe;
          break;
        case TokKind::kGt:
          cmp.op = CmpOp::kGt;
          break;
        case TokKind::kGe:
          cmp.op = CmpOp::kGe;
          break;
        default:
          *error = StrFormat("expected a comparison operator near '%s'",
                             Peek().text.c_str());
          return false;
      }
      ++pos_;
      if (!ParseOperand(&cmp.rhs, error)) return false;
      comparisons.push_back(std::move(cmp));
      if (!IsKeyword("AND")) break;
      ++pos_;
    }
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Semantic analysis: resolve names, split join keys from selection.
// ---------------------------------------------------------------------

struct Resolver {
  const Catalog* catalog;
  std::vector<std::string> tables;
  std::vector<const Schema*> schemas;
  std::vector<int> offsets;  // joined-schema offset per table

  // Resolves a column to (table index, joined position); error otherwise.
  bool Resolve(const ColumnRef& col, int* table_idx, int* joined_pos,
               std::string* error) const {
    if (!col.table.empty()) {
      for (size_t t = 0; t < tables.size(); ++t) {
        if (tables[t] == col.table) {
          int local = schemas[t]->IndexOf(col.attr);
          if (local < 0) {
            *error = StrFormat("table %s has no attribute %s",
                               col.table.c_str(), col.attr.c_str());
            return false;
          }
          *table_idx = static_cast<int>(t);
          *joined_pos = offsets[t] + local;
          return true;
        }
      }
      *error = StrFormat("unknown table %s in column reference",
                         col.table.c_str());
      return false;
    }
    // Unqualified: must be unique across the FROM list.
    int found_table = -1;
    int found_pos = -1;
    for (size_t t = 0; t < tables.size(); ++t) {
      int local = schemas[t]->IndexOf(col.attr);
      if (local >= 0) {
        if (found_table >= 0) {
          *error = StrFormat("ambiguous column %s (qualify it)",
                             col.attr.c_str());
          return false;
        }
        found_table = static_cast<int>(t);
        found_pos = offsets[t] + local;
      }
    }
    if (found_table < 0) {
      *error = StrFormat("unknown column %s", col.attr.c_str());
      return false;
    }
    *table_idx = found_table;
    *joined_pos = found_pos;
    return true;
  }
};

}  // namespace

ParseViewResult ParseView(const std::string& sql, const Catalog& catalog) {
  ParseViewResult result;

  std::vector<Token> tokens;
  if (!Lex(sql, &tokens, &result.error)) return result;

  Parser parser(std::move(tokens));
  if (!parser.Run(&result.error)) return result;

  if (parser.tables.empty()) {
    result.error = "FROM list is empty";
    return result;
  }

  Resolver resolver;
  resolver.catalog = &catalog;
  resolver.tables = parser.tables;
  int offset = 0;
  for (const std::string& table : parser.tables) {
    const Schema* schema = catalog.Find(table);
    if (schema == nullptr) {
      result.error = StrFormat("unknown table %s", table.c_str());
      return result;
    }
    resolver.schemas.push_back(schema);
    resolver.offsets.push_back(offset);
    offset += static_cast<int>(schema->arity());
  }

  ViewDef::Builder builder;
  for (size_t t = 0; t < parser.tables.size(); ++t) {
    builder.AddRelation(parser.tables[t], *resolver.schemas[t]);
  }

  // Split WHERE conjuncts: a column=column equality between adjacent FROM
  // relations is a chain join key; everything else is selection.
  Predicate selection = Predicate::True();
  for (const RawComparison& cmp : parser.comparisons) {
    int lt = -1, lp = -1, rt = -1, rp = -1;
    if (cmp.lhs.is_column &&
        !resolver.Resolve(cmp.lhs.column, &lt, &lp, &result.error)) {
      return result;
    }
    if (cmp.rhs.is_column &&
        !resolver.Resolve(cmp.rhs.column, &rt, &rp, &result.error)) {
      return result;
    }

    if (cmp.op == CmpOp::kEq && cmp.lhs.is_column && cmp.rhs.is_column &&
        (lt - rt == 1 || rt - lt == 1)) {
      // Adjacent chain condition (normalize left-to-right).
      int left_table = lt < rt ? lt : rt;
      int left_pos = lt < rt ? lp : rp;
      int right_pos = lt < rt ? rp : lp;
      builder.JoinOn(left_table,
                     left_pos - resolver.offsets[static_cast<size_t>(
                                    left_table)],
                     right_pos - resolver.offsets[static_cast<size_t>(
                                     left_table + 1)]);
      continue;
    }

    Operand lhs = cmp.lhs.is_column ? Operand::Attr(lp)
                                    : Operand::Const(cmp.lhs.constant);
    Operand rhs = cmp.rhs.is_column ? Operand::Attr(rp)
                                    : Operand::Const(cmp.rhs.constant);
    selection = Predicate::And(
        selection, Predicate::Compare(std::move(lhs), cmp.op,
                                      std::move(rhs)));
  }
  builder.Select(std::move(selection));

  if (!parser.select_star) {
    std::vector<int> projection;
    for (const ColumnRef& col : parser.select_list) {
      int t = -1, p = -1;
      if (!resolver.Resolve(col, &t, &p, &result.error)) return result;
      projection.push_back(p);
    }
    builder.Project(std::move(projection));
  }

  result.view_ = builder.Build();
  result.ok = true;
  return result;
}

}  // namespace sweepmv
