// A SQL front end for view definitions.
//
// The paper writes its view functions as SQL (Section 5.2):
//
//   SELECT R2.D, R3.F
//   FROM   R1, R2, R3
//   WHERE  R1.B = R2.C AND R2.D = R3.E
//
// ParseView turns that dialect into a ViewDef. Supported grammar
// (keywords case-insensitive):
//
//   query      := SELECT select_list FROM table_list [WHERE conjunction]
//   select_list:= '*' | column (',' column)*
//   table_list := ident (',' ident)*
//   conjunction:= comparison (AND comparison)*
//   comparison := operand op operand        op ∈ { = != < <= > >= }
//   operand    := column | integer | float | 'string'
//   column     := [ident '.'] ident
//
// Semantics match the paper's SPJ model: the FROM order fixes the join
// chain; a column-to-column equality between *adjacent* relations becomes
// a chain join key; every other comparison lands in the selection
// predicate (evaluated over the joined schema); the select list is the
// projection. Errors are reported by value — no exceptions.

#ifndef SWEEPMV_SQL_PARSER_H_
#define SWEEPMV_SQL_PARSER_H_

#include <optional>
#include <string>

#include "relational/view_def.h"
#include "sql/catalog.h"

namespace sweepmv {

struct ParseViewResult {
  bool ok = false;
  std::string error;             // set when !ok
  std::optional<ViewDef> view_;  // engaged only when ok

  // Convenience accessor; only call when ok.
  const ViewDef& view() const { return *view_; }
};

ParseViewResult ParseView(const std::string& sql, const Catalog& catalog);

}  // namespace sweepmv

#endif  // SWEEPMV_SQL_PARSER_H_
