#include "storage/hash_index.h"

#include <utility>

#include "common/check.h"

namespace sweepmv {

HashIndex::HashIndex(std::vector<int> key_positions)
    : key_positions_(std::move(key_positions)) {
  SWEEP_CHECK_MSG(!key_positions_.empty(),
                  "an index needs at least one key column");
}

void HashIndex::OnInsert(const Entry* entry) {
  SWEEP_CHECK(entry != nullptr);
  buckets_[entry->first.Project(key_positions_)].insert(entry);
}

void HashIndex::OnErase(const Entry* entry) {
  SWEEP_CHECK(entry != nullptr);
  auto it = buckets_.find(entry->first.Project(key_positions_));
  SWEEP_CHECK_MSG(it != buckets_.end(),
                  "erasing a tuple the index never saw");
  it->second.erase(entry);
  if (it->second.empty()) buckets_.erase(it);
}

const HashIndex::Bucket* HashIndex::Probe(const Tuple& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second;
}

void HashIndex::RebuildFrom(const Relation& rel) {
  buckets_.clear();
  buckets_.reserve(rel.DistinctSize());
  for (const Entry& entry : rel.entries()) OnInsert(&entry);
}

}  // namespace sweepmv
