// A maintained multiset hash index over one key-column set of a Relation.
//
// The index maps a key tuple (the projection of a stored tuple onto
// `key_positions`) to the set of relation entries carrying that key. It
// stores *pointers into the relation's count map* — std::unordered_map
// guarantees pointer/reference stability across insert, erase (of other
// elements) and rehash — so the index never duplicates tuple payloads and
// a probe always reads the live multiplicity count.
//
// The index is passive: it does not observe the relation by itself.
// IndexedRelation (indexed_relation.h) owns both and calls OnInsert /
// OnErase as entries appear and vanish, keeping every maintained index
// consistent in O(1) amortized per mutation.

#ifndef SWEEPMV_STORAGE_HASH_INDEX_H_
#define SWEEPMV_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/relation.h"
#include "relational/tuple.h"

namespace sweepmv {

class HashIndex {
 public:
  // One (tuple, count) entry of the indexed relation's count map.
  using Entry = Relation::CountMap::value_type;
  using Bucket = std::unordered_set<const Entry*>;

  explicit HashIndex(std::vector<int> key_positions);

  const std::vector<int>& key_positions() const { return key_positions_; }

  // A new distinct tuple gained a nonzero count. O(1) amortized.
  void OnInsert(const Entry* entry);

  // `entry`'s count is about to reach zero and the relation will erase it.
  // Must run while the entry is still alive (its tuple is projected here).
  // O(1) amortized.
  void OnErase(const Entry* entry);

  // Entries whose key projection equals `key`; nullptr when none.
  const Bucket* Probe(const Tuple& key) const;

  // Drops everything and re-inserts every entry of `rel`. O(|rel|).
  void RebuildFrom(const Relation& rel);

  size_t distinct_keys() const { return buckets_.size(); }

 private:
  std::vector<int> key_positions_;
  std::unordered_map<Tuple, Bucket, TupleHash> buckets_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_STORAGE_HASH_INDEX_H_
