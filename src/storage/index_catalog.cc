#include "storage/index_catalog.h"

#include <algorithm>

#include "common/check.h"

namespace sweepmv {

std::vector<int> IndexCatalog::LeftProbeKey(const ViewDef& view, int rel) {
  SWEEP_CHECK(rel >= 0 && rel < view.num_relations() - 1);
  std::vector<int> key;
  for (const auto& [a, b] : view.chain_keys(rel)) {
    (void)b;
    key.push_back(a);
  }
  return key;
}

std::vector<int> IndexCatalog::RightProbeKey(const ViewDef& view, int rel) {
  SWEEP_CHECK(rel >= 1 && rel < view.num_relations());
  std::vector<int> key;
  for (const auto& [a, b] : view.chain_keys(rel - 1)) {
    (void)a;
    key.push_back(b);
  }
  return key;
}

IndexCatalog::IndexCatalog(const ViewDef& view) {
  const int n = view.num_relations();
  key_sets_.resize(static_cast<size_t>(n));
  for (int rel = 0; rel < n; ++rel) {
    auto& sets = key_sets_[static_cast<size_t>(rel)];
    auto add = [&sets](std::vector<int> key) {
      if (key.empty()) return;  // cross-product link: nothing to index
      if (std::find(sets.begin(), sets.end(), key) != sets.end()) return;
      sets.push_back(std::move(key));
    };
    if (rel > 0) add(RightProbeKey(view, rel));
    if (rel < n - 1) add(LeftProbeKey(view, rel));
  }
}

const std::vector<std::vector<int>>& IndexCatalog::key_sets(int rel) const {
  SWEEP_CHECK(rel >= 0 && rel < num_relations());
  return key_sets_[static_cast<size_t>(rel)];
}

}  // namespace sweepmv
