// IndexCatalog: decides which key sets each source relation must index.
//
// The decision walks the ViewDef's join graph once at scenario setup.
// In the chain V = R0 ⋈ R1 ⋈ … ⋈ R(n-1), relation j is the *indexed*
// (large) side of an incremental query in exactly two situations:
//
//   * a left-extension query — the partial spans [j+1, hi] and R_j joins
//     on its chain condition with R_{j+1}; the probe key projects R_j
//     onto the LEFT attributes of chain_keys(j). Needed iff j < n-1.
//   * a right-extension query — the partial spans [lo, j-1] and R_j joins
//     with R_{j-1}; the probe key projects R_j onto the RIGHT attributes
//     of chain_keys(j-1). Needed iff j > 0.
//
// Duplicate key sets collapse (an interior relation whose two chain
// conditions use the same local columns maintains one index); a chain
// link with no equi-join conditions (an explicit cross product) yields no
// key set — no index can narrow a cross product and the query path falls
// back to the scan join.

#ifndef SWEEPMV_STORAGE_INDEX_CATALOG_H_
#define SWEEPMV_STORAGE_INDEX_CATALOG_H_

#include <vector>

#include "relational/view_def.h"

namespace sweepmv {

class IndexCatalog {
 public:
  explicit IndexCatalog(const ViewDef& view);

  int num_relations() const { return static_cast<int>(key_sets_.size()); }

  // Key-column sets (positions local to the relation) that the source of
  // relation `rel` must maintain indexes over. Deduplicated; may be empty
  // (single-relation views, cross-product links).
  const std::vector<std::vector<int>>& key_sets(int rel) const;

  // The key set serving left-extension queries that target `rel`
  // (requires rel < n-1). Empty for a cross-product link.
  static std::vector<int> LeftProbeKey(const ViewDef& view, int rel);

  // The key set serving right-extension queries that target `rel`
  // (requires rel > 0). Empty for a cross-product link.
  static std::vector<int> RightProbeKey(const ViewDef& view, int rel);

 private:
  std::vector<std::vector<std::vector<int>>> key_sets_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_STORAGE_INDEX_CATALOG_H_
