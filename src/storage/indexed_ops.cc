#include "storage/indexed_ops.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace sweepmv {

namespace {

std::vector<int> Firsts(const std::vector<std::pair<int, int>>& keys) {
  std::vector<int> out;
  out.reserve(keys.size());
  for (const auto& [a, b] : keys) {
    (void)b;
    out.push_back(a);
  }
  return out;
}

std::vector<int> Seconds(const std::vector<std::pair<int, int>>& keys) {
  std::vector<int> out;
  out.reserve(keys.size());
  for (const auto& [a, b] : keys) {
    (void)a;
    out.push_back(b);
  }
  return out;
}

}  // namespace

PartialDelta ExtendLeftIndexed(const ViewDef& view,
                               const IndexedRelation& left,
                               const PartialDelta& pd, StorageStats* stats) {
  SWEEP_CHECK(stats != nullptr);
  SWEEP_CHECK_MSG(pd.lo >= 1, "no relation to the left of the span");
  const int rel_index = pd.lo - 1;
  const auto keys = view.ExtendLeftKeys(rel_index);
  const HashIndex* index =
      keys.empty() ? nullptr : left.FindIndex(Firsts(keys));
  if (index == nullptr) {
    ++stats->scan_fallbacks;
    return ExtendLeft(view, left.relation(), pd);
  }

  const std::vector<int> probe_positions = Seconds(keys);
  PartialDelta out;
  out.lo = rel_index;
  out.hi = pd.hi;
  out.rel = Relation(left.schema().Concat(pd.rel.schema()));
  for (const auto& [pt, pc] : pd.rel.entries()) {
    ++stats->index_probes;
    const HashIndex::Bucket* bucket =
        index->Probe(pt.Project(probe_positions));
    if (bucket == nullptr) continue;
    for (const HashIndex::Entry* entry : *bucket) {
      out.rel.Add(entry->first.Concat(pt), entry->second * pc);
      ++stats->index_matches;
    }
  }
  return out;
}

PartialDelta ExtendRightIndexed(const ViewDef& view, const PartialDelta& pd,
                                const IndexedRelation& right,
                                StorageStats* stats) {
  SWEEP_CHECK(stats != nullptr);
  SWEEP_CHECK_MSG(pd.hi + 1 < view.num_relations(),
                  "no relation to the right of the span");
  const int rel_index = pd.hi + 1;
  const auto keys = view.ExtendRightKeys(pd.lo, rel_index);
  const HashIndex* index =
      keys.empty() ? nullptr : right.FindIndex(Seconds(keys));
  if (index == nullptr) {
    ++stats->scan_fallbacks;
    return ExtendRight(view, pd, right.relation());
  }

  const std::vector<int> probe_positions = Firsts(keys);
  PartialDelta out;
  out.lo = pd.lo;
  out.hi = rel_index;
  out.rel = Relation(pd.rel.schema().Concat(right.schema()));
  for (const auto& [pt, pc] : pd.rel.entries()) {
    ++stats->index_probes;
    const HashIndex::Bucket* bucket =
        index->Probe(pt.Project(probe_positions));
    if (bucket == nullptr) continue;
    for (const HashIndex::Entry* entry : *bucket) {
      out.rel.Add(pt.Concat(entry->first), pc * entry->second);
      ++stats->index_matches;
    }
  }
  return out;
}

}  // namespace sweepmv
