// Index-aware join entry points for sweep query answering.
//
// These mirror ExtendLeft/ExtendRight (relational/partial_delta.h) but
// treat the base relation as the *indexed* side and the partial delta as
// the *probe* side: for each delta entry, project its key, probe the
// maintained index, and emit one output tuple per bucket match. Cost is
// O(|Δ| · matches) instead of the scan join's O(|R| + |Δ| · matches)
// per query — the difference SWEEP's per-update query pattern feels on
// every hop (bench/index_speedup.cc quantifies it).
//
// Results are bit-identical to the scan path (the equivalence property
// test proves it end to end): both compute the same counted bag, only
// the iteration strategy differs. When the needed index is missing or
// the link is a cross product, these fall back to the plain operators
// and count a scan_fallback.

#ifndef SWEEPMV_STORAGE_INDEXED_OPS_H_
#define SWEEPMV_STORAGE_INDEXED_OPS_H_

#include "relational/partial_delta.h"
#include "relational/view_def.h"
#include "storage/indexed_relation.h"

namespace sweepmv {

// Index-aware ExtendLeft: joins base relation `left` (indexed on the
// catalog's left-probe key) to the left of `pd`. `stats` (required)
// accumulates probe/match/fallback counters.
PartialDelta ExtendLeftIndexed(const ViewDef& view,
                               const IndexedRelation& left,
                               const PartialDelta& pd, StorageStats* stats);

// Index-aware ExtendRight: joins base relation `right` (indexed on the
// catalog's right-probe key) to the right of `pd`.
PartialDelta ExtendRightIndexed(const ViewDef& view, const PartialDelta& pd,
                                const IndexedRelation& right,
                                StorageStats* stats);

}  // namespace sweepmv

#endif  // SWEEPMV_STORAGE_INDEXED_OPS_H_
