#include "storage/indexed_relation.h"

#include <memory>

#include "common/check.h"

namespace sweepmv {

void StorageStats::MergeFrom(const StorageStats& other) {
  index_probes += other.index_probes;
  index_matches += other.index_matches;
  scan_fallbacks += other.scan_fallbacks;
  index_builds += other.index_builds;
  indexes_maintained += other.indexes_maintained;
}

void IndexedRelation::EnsureIndex(const std::vector<int>& key_positions) {
  for (int pos : key_positions) {
    SWEEP_CHECK(pos >= 0 &&
                static_cast<size_t>(pos) < rel_.schema().arity());
  }
  if (FindIndex(key_positions) != nullptr) return;
  auto index = std::make_unique<HashIndex>(key_positions);
  index->RebuildFrom(rel_);
  ++index_builds_;
  indexes_.push_back(std::move(index));
}

const HashIndex* IndexedRelation::FindIndex(
    const std::vector<int>& key_positions) const {
  for (const auto& index : indexes_) {
    if (index->key_positions() == key_positions) return index.get();
  }
  return nullptr;
}

void IndexedRelation::Add(const Tuple& t, int64_t count) {
  if (count == 0) return;
  const HashIndex::Entry* existing = rel_.FindEntry(t);
  const int64_t before = existing ? existing->second : 0;
  if (before + count == 0) {
    // The entry is about to vanish: unhook it from every index while the
    // map node is still alive, then let the relation erase it.
    for (const auto& index : indexes_) index->OnErase(existing);
    rel_.Add(t, count);
    return;
  }
  rel_.Add(t, count);
  if (before == 0) {
    const HashIndex::Entry* entry = rel_.FindEntry(t);
    for (const auto& index : indexes_) index->OnInsert(entry);
  }
  // before != 0 and still nonzero: the node (and thus every index
  // pointer) is unchanged; the new count is read through it.
}

void IndexedRelation::Merge(const Relation& delta) {
  for (const auto& [t, c] : delta.entries()) Add(t, c);
}

void IndexedRelation::RebuildIndexes() {
  for (const auto& index : indexes_) {
    index->RebuildFrom(rel_);
    ++index_builds_;
  }
}

void IndexedRelation::RestoreRelation(Relation snapshot) {
  rel_ = std::move(snapshot);
  for (const auto& index : indexes_) index->RebuildFrom(rel_);
}

StorageStats IndexedRelation::stats() const {
  StorageStats stats;
  stats.index_builds = index_builds_;
  stats.indexes_maintained = static_cast<int64_t>(indexes_.size());
  return stats;
}

}  // namespace sweepmv
