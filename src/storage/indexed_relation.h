// IndexedRelation: a base relation with maintained hash indexes.
//
// Every incremental query a source answers (SWEEP, Nested/Parallel/
// Pipelined SWEEP, Strobe and C-Strobe all share the QueryRequest path)
// joins a small delta against the *entire* local relation. A plain hash
// join rebuilds its table from scratch per query — O(|R|) per sweep hop
// even when |ΔR| = 1. IndexedRelation keeps one multiset hash index per
// declared join-key column set and maintains all of them incrementally:
// each insert/delete touches each index O(1) amortized, so a probe-side
// query costs O(|Δ| · matches) instead of O(|R|).
//
// Invariants (tested in tests/indexed_relation_test.cc):
//   I1  relation() is bit-identical to a Relation that received the same
//       Add/Merge sequence — indexes never change query *results*.
//   I2  for every maintained index and every stored tuple t with nonzero
//       count, the index bucket of t's key projection contains exactly the
//       relation entries whose projection equals that key (no more, no
//       fewer, no stale pointers).
//   I3  indexes are a pure cache: RebuildIndexes() from relation() (the
//       crash-recovery path — indexes are volatile, the relation and the
//       StateLog are the durable store) restores exactly the same buckets.

#ifndef SWEEPMV_STORAGE_INDEXED_RELATION_H_
#define SWEEPMV_STORAGE_INDEXED_RELATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "relational/relation.h"
#include "storage/hash_index.h"

namespace sweepmv {

// Per-site storage-engine counters, surfaced through RunResult so the
// benches can show the indexed/scan difference.
struct StorageStats {
  int64_t index_probes = 0;     // bucket lookups while answering queries
  int64_t index_matches = 0;    // tuples emitted from index probes
  int64_t scan_fallbacks = 0;   // extensions answered by a full-scan join
  int64_t index_builds = 0;     // full index (re)builds: setup + recovery
  int64_t indexes_maintained = 0;  // live indexes across the site

  void MergeFrom(const StorageStats& other);

  bool operator==(const StorageStats&) const = default;
};

class IndexedRelation {
 public:
  IndexedRelation() = default;
  explicit IndexedRelation(Relation initial) : rel_(std::move(initial)) {}

  const Relation& relation() const { return rel_; }
  const Schema& schema() const { return rel_.schema(); }

  // Declares a maintained index over `key_positions`, building it from
  // the current contents in O(|R|). Idempotent per key set.
  void EnsureIndex(const std::vector<int>& key_positions);

  // The index over exactly `key_positions`, or nullptr.
  const HashIndex* FindIndex(const std::vector<int>& key_positions) const;

  size_t num_indexes() const { return indexes_.size(); }

  // Mutations. All indexes are kept consistent in O(1) amortized per
  // distinct tuple touched.
  void Add(const Tuple& t, int64_t count = 1);
  void Merge(const Relation& delta);

  // Crash recovery: indexes are volatile, the relation is durable. Drops
  // and rebuilds every index from the current relation contents.
  void RebuildIndexes();

  // Snapshot support (schedule-space explorer): replaces the relation
  // with `snapshot` and rebuilds the declared indexes from it. Unlike
  // crash recovery, the rebuild does not count toward index_builds() —
  // restoring must leave every schedule-determined counter exactly as a
  // from-scratch replay of the same prefix would.
  void RestoreRelation(Relation snapshot);

  // Build counters (probe counters live with the query path; see
  // storage/indexed_ops.h).
  int64_t index_builds() const { return index_builds_; }
  StorageStats stats() const;

 private:
  Relation rel_;
  // unique_ptr: HashIndex buckets hold pointers into rel_'s map, and the
  // vector may reallocate while indexes are being added.
  std::vector<std::unique_ptr<HashIndex>> indexes_;
  int64_t index_builds_ = 0;
};

}  // namespace sweepmv

#endif  // SWEEPMV_STORAGE_INDEXED_RELATION_H_
