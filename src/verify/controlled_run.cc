#include "verify/controlled_run.h"

#include <utility>

#include "common/check.h"
#include "common/str.h"
#include "sim/latency.h"

namespace sweepmv {

namespace {

constexpr int kWarehouseSite = 0;

TraceStep RecordStep(const std::vector<Scheduler::Candidate>& ready,
                     size_t chosen) {
  TraceStep step;
  step.label = ready[chosen].label;
  step.when = ready[chosen].when;
  step.chosen = chosen;
  step.ready.reserve(ready.size());
  for (const Scheduler::Candidate& c : ready) step.ready.push_back(c.label);
  return step;
}

}  // namespace

size_t ReplayScheduler::Pick(const std::vector<Candidate>& ready) {
  SWEEP_CHECK(!ready.empty());
  size_t choice = cursor_ < choices_.size() ? choices_[cursor_] : 0;
  ++cursor_;
  if (choice >= ready.size()) choice = ready.size() - 1;
  trace_.steps.push_back(RecordStep(ready, choice));
  return choice;
}

size_t RandomScheduler::Pick(const std::vector<Candidate>& ready) {
  SWEEP_CHECK(!ready.empty());
  const size_t choice = static_cast<size_t>(
      rng_.Uniform(0, static_cast<int64_t>(ready.size()) - 1));
  trace_.steps.push_back(RecordStep(ready, choice));
  return choice;
}

ControlledSystem::ControlledSystem(const ControlledScenario& scenario,
                                   Scheduler* scheduler)
    : view_(scenario.view),
      bases_(scenario.initial_bases),
      network_(&sim_, LatencyModel::Fixed(scenario.latency), /*seed=*/1) {
  const int n = view_.num_relations();
  SWEEP_CHECK(static_cast<int>(bases_.size()) == n);
  sim_.SetScheduler(scheduler);

  std::vector<int> source_sites;
  if (RequiresSingleSource(scenario.algorithm)) {
    source_sites.assign(static_cast<size_t>(n), 1);
    eca_source_ = std::make_unique<EcaSource>(
        1, bases_, &view_, &network_, kWarehouseSite, &ids_);
    network_.RegisterSite(1, eca_source_.get());
  } else {
    for (int r = 0; r < n; ++r) {
      source_sites.push_back(r + 1);
      sources_.push_back(std::make_unique<DataSource>(
          r + 1, r, bases_[static_cast<size_t>(r)], &view_, &network_,
          kWarehouseSite, &ids_));
      network_.RegisterSite(r + 1, sources_.back().get());
    }
  }
  warehouse_ = MakeWarehouse(scenario.algorithm, kWarehouseSite, view_,
                             &network_, source_sites, scenario.warehouse);
  network_.RegisterSite(kWarehouseSite, warehouse_.get());

  std::vector<const Relation*> rels;
  for (const Relation& r : bases_) rels.push_back(&r);
  warehouse_->InitializeView(view_.EvaluateFull(rels));
  warehouse_->InitializeAuxiliary(bases_);

  // All transactions enter at t=0; only the schedule orders them against
  // deliveries. Same-relation transactions stay in list order (their
  // events share a channel).
  for (const ControlledTxn& txn : scenario.txns) {
    SWEEP_CHECK(txn.relation >= 0 && txn.relation < n);
    const int site = eca_source_ != nullptr ? 1 : txn.relation + 1;
    const EventLabel label{EventKind::kTxn, -1, site, "txn"};
    const int rel = txn.relation;
    const auto ops = txn.ops;
    sim_.ScheduleAt(0, label, [this, rel, ops]() {
      if (eca_source_ != nullptr) {
        eca_source_->ApplyTransaction(rel, ops);
      } else {
        sources_[static_cast<size_t>(rel)]->ApplyTransaction(ops);
      }
    });
  }

  // Fault choice points enter at t=0 like transactions: internal events
  // share one channel and are dependent on everything, so the explorer
  // tries the crash (or drop) at every position of every schedule.
  for (int i = 0; i < scenario.warehouse_crashes; ++i) {
    const EventLabel label{EventKind::kInternal, -1, kWarehouseSite,
                           "warehouse-crash"};
    sim_.ScheduleAt(0, label, [this]() { warehouse_->CrashAndRecover(); });
  }
  for (int i = 0; i < scenario.max_message_drops; ++i) {
    const EventLabel label{EventKind::kInternal, -1, kWarehouseSite,
                           "arm-drop"};
    sim_.ScheduleAt(0, label, [this]() { network_.ArmControlledDrop(); });
  }
}

int64_t ControlledSystem::Run(int64_t max_steps) {
  return sim_.Run(max_steps);
}

std::vector<const StateLog*> ControlledSystem::SourceLogs() const {
  std::vector<const StateLog*> logs;
  for (int r = 0; r < view_.num_relations(); ++r) {
    logs.push_back(eca_source_ != nullptr
                       ? &eca_source_->log(r)
                       : &sources_[static_cast<size_t>(r)]->log());
  }
  return logs;
}

ControlledSystem::SavedState ControlledSystem::SaveState() const {
  SavedState state;
  state.sim = sim_.SaveState();
  state.network = network_.SaveState();
  state.next_update_id = ids_.SaveState();
  state.sources.reserve(sources_.size());
  for (const auto& source : sources_) {
    state.sources.push_back(source->SaveState());
  }
  if (eca_source_ != nullptr) {
    state.eca_source = std::make_unique<EcaSource::SavedState>(
        eca_source_->SaveState());
  }
  state.warehouse = warehouse_->SaveState();
  return state;
}

void ControlledSystem::RestoreState(const SavedState& state) {
  sim_.RestoreState(state.sim);
  network_.RestoreState(state.network);
  ids_.RestoreState(state.next_update_id);
  SWEEP_CHECK(state.sources.size() == sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->RestoreState(state.sources[i]);
  }
  if (eca_source_ != nullptr) {
    SWEEP_CHECK(state.eca_source != nullptr);
    eca_source_->RestoreState(*state.eca_source);
  }
  warehouse_->RestoreState(state.warehouse);
}

ConsistencyReport ControlledSystem::Check() const {
  return CheckConsistency(view_, SourceLogs(), *warehouse_);
}

std::string ControlledOutcome::Fingerprint() const {
  std::string out = trace.ToString();
  out += StrFormat("steps: %lld  installs: %zu  level: %s\n",
                   static_cast<long long>(steps), installs,
                   ConsistencyLevelName(report.level));
  out += "final view: " + final_view + "\n";
  return out;
}

ControlledOutcome RunWithChoices(const ControlledScenario& scenario,
                                 const std::vector<size_t>& choices,
                                 int64_t max_steps) {
  ReplayScheduler scheduler(choices);
  ControlledSystem system(scenario, &scheduler);
  ControlledOutcome outcome;
  outcome.steps = system.Run(max_steps);
  outcome.completed = system.Drained() && system.WarehouseIdle();
  if (outcome.completed) {
    outcome.report = system.Check();
  } else {
    outcome.report.level = ConsistencyLevel::kInconsistent;
    outcome.report.detail =
        system.Drained()
            ? "run drained with the warehouse still busy"
            : "run exceeded the step budget (runaway schedule?)";
  }
  outcome.trace = scheduler.trace();
  outcome.installs = system.warehouse().install_log().size();
  outcome.final_view = system.warehouse().view().ToDisplayString();
  return outcome;
}

}  // namespace sweepmv
