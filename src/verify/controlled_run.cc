#include "verify/controlled_run.h"

#include <utility>

#include "common/check.h"
#include "common/str.h"
#include "sim/latency.h"

namespace sweepmv {

namespace {

constexpr int kWarehouseSite = 0;

// Content digest of a transaction choice point: which relation, which
// operations. Two txn events with equal digests are interchangeable —
// exactly when swapping them cannot change any reachable state.
uint64_t TxnDigest(int relation, const std::vector<UpdateOp>& ops) {
  StateHasher h;
  h.U64("txn.rel", static_cast<uint64_t>(relation));
  h.U64("txn.ops", ops.size());
  for (const UpdateOp& op : ops) {
    h.I64("op.kind", op.kind == UpdateOp::Kind::kInsert ? 1 : -1);
    h.U64("op.tuple", op.tuple.Hash());
  }
  const Fp128 d = h.Digest();
  const uint64_t folded = d.lo ^ d.hi;
  return folded == 0 ? 1 : folded;
}

// Fault choice points carry a fixed tag: all pending crash (or arm-drop)
// events are mutually interchangeable.
uint64_t InternalEventDigest(const char* what) {
  StateHasher h;
  h.Str("internal", what);
  const Fp128 d = h.Digest();
  const uint64_t folded = d.lo ^ d.hi;
  return folded == 0 ? 1 : folded;
}

TraceStep RecordStep(const std::vector<Scheduler::Candidate>& ready,
                     size_t chosen) {
  TraceStep step;
  step.label = ready[chosen].label;
  step.when = ready[chosen].when;
  step.chosen = chosen;
  step.ready.reserve(ready.size());
  for (const Scheduler::Candidate& c : ready) step.ready.push_back(c.label);
  return step;
}

}  // namespace

size_t ReplayScheduler::Pick(const std::vector<Candidate>& ready) {
  SWEEP_CHECK(!ready.empty());
  size_t choice = cursor_ < choices_.size() ? choices_[cursor_] : 0;
  ++cursor_;
  if (choice >= ready.size()) choice = ready.size() - 1;
  trace_.steps.push_back(RecordStep(ready, choice));
  return choice;
}

size_t RandomScheduler::Pick(const std::vector<Candidate>& ready) {
  SWEEP_CHECK(!ready.empty());
  const size_t choice = static_cast<size_t>(
      rng_.Uniform(0, static_cast<int64_t>(ready.size()) - 1));
  trace_.steps.push_back(RecordStep(ready, choice));
  return choice;
}

ControlledSystem::ControlledSystem(const ControlledScenario& scenario,
                                   Scheduler* scheduler)
    : view_(scenario.view),
      bases_(scenario.initial_bases),
      network_(&sim_, LatencyModel::Fixed(scenario.latency), /*seed=*/1) {
  const int n = view_.num_relations();
  SWEEP_CHECK(static_cast<int>(bases_.size()) == n);
  sim_.SetScheduler(scheduler);

  std::vector<int> source_sites;
  if (RequiresSingleSource(scenario.algorithm)) {
    source_sites.assign(static_cast<size_t>(n), 1);
    eca_source_ = std::make_unique<EcaSource>(
        1, bases_, &view_, &network_, kWarehouseSite, &ids_);
    network_.RegisterSite(1, eca_source_.get());
  } else {
    for (int r = 0; r < n; ++r) {
      source_sites.push_back(r + 1);
      sources_.push_back(std::make_unique<DataSource>(
          r + 1, r, bases_[static_cast<size_t>(r)], &view_, &network_,
          kWarehouseSite, &ids_));
      network_.RegisterSite(r + 1, sources_.back().get());
    }
  }
  warehouses_.push_back(MakeWarehouse(scenario.algorithm, kWarehouseSite,
                                      view_, &network_, source_sites,
                                      scenario.warehouse));
  network_.RegisterSite(kWarehouseSite, warehouses_.front().get());

  // Extra warehouses (multi-view deployment): same view, same sources,
  // each running its own algorithm at its own site past the sources.
  SWEEP_CHECK_MSG(scenario.extra_warehouses.empty() ||
                      eca_source_ == nullptr,
                  "multi-warehouse scenarios require per-relation sources");
  for (size_t w = 0; w < scenario.extra_warehouses.size(); ++w) {
    const Algorithm alg = scenario.extra_warehouses[w];
    SWEEP_CHECK_MSG(!RequiresSingleSource(alg),
                    "single-source algorithms cannot share sources with "
                    "other warehouses");
    const int site = n + 1 + static_cast<int>(w);
    warehouses_.push_back(MakeWarehouse(alg, site, view_, &network_,
                                        source_sites, scenario.warehouse));
    network_.RegisterSite(site, warehouses_.back().get());
    for (auto& source : sources_) source->AddWarehouse(site);
  }

  std::vector<const Relation*> rels;
  for (const Relation& r : bases_) rels.push_back(&r);
  for (auto& warehouse : warehouses_) {
    warehouse->InitializeView(view_.EvaluateFull(rels));
    warehouse->InitializeAuxiliary(bases_);
  }

  // Pre-create every link now, outside any explored step: LinkFor's lazy
  // creation forks the network RNG, and the effect oracle would otherwise
  // see that fork as a hidden rng_ write charged to whichever handler
  // happened to send on the link first.
  std::vector<int> all_sites;
  all_sites.push_back(kWarehouseSite);
  if (eca_source_ != nullptr) {
    all_sites.push_back(1);
  } else {
    for (int r = 0; r < n; ++r) all_sites.push_back(r + 1);
  }
  for (size_t w = 0; w < scenario.extra_warehouses.size(); ++w) {
    all_sites.push_back(n + 1 + static_cast<int>(w));
  }
  network_.PrecreateLinks(all_sites);

  // All transactions enter at t=0; only the schedule orders them against
  // deliveries. Same-relation transactions stay in list order (their
  // events share a channel). Each carries a content digest so the state
  // fingerprint can describe it canonically while it is still pending.
  for (const ControlledTxn& txn : scenario.txns) {
    SWEEP_CHECK(txn.relation >= 0 && txn.relation < n);
    const int site = eca_source_ != nullptr ? 1 : txn.relation + 1;
    const EventLabel label{EventKind::kTxn, -1, site, "txn"};
    const int rel = txn.relation;
    const auto ops = txn.ops;
    sim_.ScheduleAt(0, label, TxnDigest(rel, ops), [this, rel, ops]() {
      if (eca_source_ != nullptr) {
        eca_source_->ApplyTransaction(rel, ops);
      } else {
        sources_[static_cast<size_t>(rel)]->ApplyTransaction(ops);
      }
    });
  }

  // Fault choice points enter at t=0 like transactions: internal events
  // share one channel and are dependent on everything, so the explorer
  // tries the crash (or drop) at every position of every schedule.
  for (int i = 0; i < scenario.warehouse_crashes; ++i) {
    const EventLabel label{EventKind::kInternal, -1, kWarehouseSite,
                           "warehouse-crash"};
    sim_.ScheduleAt(0, label, InternalEventDigest("warehouse-crash"),
                    [this]() { warehouses_.front()->CrashAndRecover(); });
  }
  for (int i = 0; i < scenario.max_message_drops; ++i) {
    const EventLabel label{EventKind::kInternal, -1, kWarehouseSite,
                           "arm-drop"};
    sim_.ScheduleAt(0, label, InternalEventDigest("arm-drop"),
                    [this]() { network_.ArmControlledDrop(); });
  }
}

bool ControlledSystem::WarehouseIdle() const {
  for (const auto& warehouse : warehouses_) {
    if (!warehouse->update_queue().empty() || warehouse->Busy()) {
      return false;
    }
  }
  return true;
}

void ControlledSystem::AttachUndo(UndoLog* undo) {
  sim_.AttachUndo(undo);
  network_.AttachUndo(undo);
  for (auto& source : sources_) source->AttachUndo(undo);
  if (eca_source_ != nullptr) eca_source_->AttachUndo(undo);
  for (auto& warehouse : warehouses_) warehouse->AttachUndo(undo);
}

bool ControlledSystem::HashState(Fp128* fp) const {
  StateHasher h;
  const bool hashable = sim_.DescribeState(h, /*exact=*/false);
  network_.DescribeState(h);
  ids_.DescribeState(h);
  for (const auto& source : sources_) source->DescribeState(h);
  if (eca_source_ != nullptr) eca_source_->DescribeState(h);
  for (const auto& warehouse : warehouses_) warehouse->DescribeState(h);
  *fp = h.Digest();
  return hashable;
}

std::string ControlledSystem::CanonicalDebugDump() const {
  StateHasher h(/*keep_text=*/true);
  sim_.DescribeState(h, /*exact=*/true);
  network_.DescribeState(h);
  ids_.DescribeState(h);
  for (const auto& source : sources_) source->DescribeState(h);
  if (eca_source_ != nullptr) eca_source_->DescribeState(h);
  for (const auto& warehouse : warehouses_) warehouse->DescribeState(h);
  return h.Text();
}

int64_t ControlledSystem::Run(int64_t max_steps) {
  return sim_.Run(max_steps);
}

std::vector<const StateLog*> ControlledSystem::SourceLogs() const {
  std::vector<const StateLog*> logs;
  for (int r = 0; r < view_.num_relations(); ++r) {
    logs.push_back(eca_source_ != nullptr
                       ? &eca_source_->log(r)
                       : &sources_[static_cast<size_t>(r)]->log());
  }
  return logs;
}

ControlledSystem::SavedState ControlledSystem::SaveState() const {
  SavedState state;
  state.sim = sim_.SaveState();
  state.network = network_.SaveState();
  state.next_update_id = ids_.SaveState();
  state.sources.reserve(sources_.size());
  for (const auto& source : sources_) {
    state.sources.push_back(source->SaveState());
  }
  if (eca_source_ != nullptr) {
    state.eca_source = std::make_unique<EcaSource::SavedState>(
        eca_source_->SaveState());
  }
  state.warehouses.reserve(warehouses_.size());
  for (const auto& warehouse : warehouses_) {
    state.warehouses.push_back(warehouse->SaveState());
  }
  return state;
}

void ControlledSystem::RestoreState(const SavedState& state) {
  sim_.RestoreState(state.sim);
  network_.RestoreState(state.network);
  ids_.RestoreState(state.next_update_id);
  SWEEP_CHECK(state.sources.size() == sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->RestoreState(state.sources[i]);
  }
  if (eca_source_ != nullptr) {
    SWEEP_CHECK(state.eca_source != nullptr);
    eca_source_->RestoreState(*state.eca_source);
  }
  SWEEP_CHECK(state.warehouses.size() == warehouses_.size());
  for (size_t i = 0; i < warehouses_.size(); ++i) {
    warehouses_[i]->RestoreState(state.warehouses[i]);
  }
}

ConsistencyReport ControlledSystem::Check() const {
  ConsistencyReport worst = CheckConsistency(view_, SourceLogs(),
                                             *warehouses_.front());
  for (size_t i = 1; i < warehouses_.size(); ++i) {
    ConsistencyReport report =
        CheckConsistency(view_, SourceLogs(), *warehouses_[i]);
    if (report.level < worst.level) worst = std::move(report);
  }
  return worst;
}

std::string ControlledOutcome::Fingerprint() const {
  std::string out = trace.ToString();
  out += StrFormat("steps: %lld  installs: %zu  level: %s\n",
                   static_cast<long long>(steps), installs,
                   ConsistencyLevelName(report.level));
  out += "final view: " + final_view + "\n";
  return out;
}

ControlledOutcome RunWithChoices(const ControlledScenario& scenario,
                                 const std::vector<size_t>& choices,
                                 int64_t max_steps) {
  ReplayScheduler scheduler(choices);
  ControlledSystem system(scenario, &scheduler);
  ControlledOutcome outcome;
  outcome.steps = system.Run(max_steps);
  outcome.completed = system.Drained() && system.WarehouseIdle();
  if (outcome.completed) {
    outcome.report = system.Check();
  } else {
    outcome.report.level = ConsistencyLevel::kInconsistent;
    outcome.report.detail =
        system.Drained()
            ? "run drained with the warehouse still busy"
            : "run exceeded the step budget (runaway schedule?)";
  }
  outcome.trace = scheduler.trace();
  outcome.installs = system.warehouse().install_log().size();
  outcome.final_view = system.warehouse().view().ToDisplayString();
  return outcome;
}

}  // namespace sweepmv
