// Controlled execution of one maintenance scenario under a pluggable
// scheduler.
//
// Mirrors the harness wiring (sources or ECA's single multi-relation
// source, pristine FIFO network, warehouse running the chosen algorithm)
// but attaches a Scheduler to the simulator before anything is scheduled,
// so the caller — the schedule-space explorer — decides the interleaving
// of transactions and message deliveries instead of the virtual clock.
// Every transaction is scheduled at t=0: the *schedule*, not timestamps,
// determines when a source executes it relative to in-flight queries.

#ifndef SWEEPMV_VERIFY_CONTROLLED_RUN_H_
#define SWEEPMV_VERIFY_CONTROLLED_RUN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "common/undo.h"
#include "consistency/checker.h"
#include "core/factory.h"
#include "core/warehouse.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "source/data_source.h"
#include "source/eca_source.h"
#include "source/update.h"
#include "verify/schedule.h"

namespace sweepmv {

// One source-local transaction. Transactions of the same relation execute
// in list order (the source's serial schedule); everything else is up to
// the scheduler.
struct ControlledTxn {
  int relation = 0;
  std::vector<UpdateOp> ops;
};

struct ControlledScenario {
  Algorithm algorithm = Algorithm::kSweep;
  ViewDef view;
  std::vector<Relation> initial_bases;
  std::vector<ControlledTxn> txns;
  WarehouseConfig warehouse;
  SimTime latency = 1000;
  // Fault choice points, scheduled at t=0 as internal events so the
  // explorer places them at every schedule position. Each crash invokes
  // Warehouse::CrashAndRecover (requires warehouse.base.checkpoint_every
  // > 0); each drop arms one silent query-class message loss (pair with
  // warehouse.base.query_timeout > 0 or the run wedges).
  int warehouse_crashes = 0;
  int max_message_drops = 0;
  // Additional warehouses materializing the same view over the same
  // sources (multi-view deployment: every source ships each update to all
  // registered warehouses; each warehouse maintains its view with its own
  // algorithm). Crash choice points target the primary warehouse only.
  // Incompatible with single-source (ECA-family) primaries.
  std::vector<Algorithm> extra_warehouses = {};
};

// Records every pick; replays a choice vector, continuing with the
// deterministic default (index 0) past its end. Out-of-range choices
// clamp to the last candidate so any vector is a valid schedule (the
// counterexample minimizer relies on this).
class ReplayScheduler : public Scheduler {
 public:
  ReplayScheduler() = default;
  explicit ReplayScheduler(std::vector<size_t> choices)
      : choices_(std::move(choices)) {}

  size_t Pick(const std::vector<Candidate>& ready) override;

  const ScheduleTrace& trace() const { return trace_; }

 private:
  std::vector<size_t> choices_;
  size_t cursor_ = 0;
  ScheduleTrace trace_;
};

// Uniform random pick at every step — the seeded random-walk mode for
// scenarios too large to enumerate.
class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(uint64_t seed) : rng_(seed) {}

  size_t Pick(const std::vector<Candidate>& ready) override;

  const ScheduleTrace& trace() const { return trace_; }

 private:
  Rng rng_;
  ScheduleTrace trace_;
};

// The fully wired system under a controlled simulator. Sources sit at
// site ids 1..n, the warehouse at 0.
class ControlledSystem {
 public:
  ControlledSystem(const ControlledScenario& scenario,
                   Scheduler* scheduler);

  ControlledSystem(const ControlledSystem&) = delete;
  ControlledSystem& operator=(const ControlledSystem&) = delete;

  // Runs up to `max_steps` scheduler picks; returns the number executed
  // (fewer only when the event set drained).
  int64_t Run(int64_t max_steps);

  // The ready set the scheduler would be offered next (empty = drained).
  std::vector<Scheduler::Candidate> Ready() const {
    return sim_.Ready();
  }

  bool Drained() const { return sim_.pending_events() == 0; }
  // All warehouses idle (empty queue, no in-flight maintenance).
  bool WarehouseIdle() const;

  // Classifies the finished run against the consistency lattice — the
  // worst report over all warehouses. Call only after the run drained.
  ConsistencyReport Check() const;

  const Warehouse& warehouse() const { return *warehouses_.front(); }
  const Warehouse& warehouse(size_t i) const { return *warehouses_[i]; }
  size_t num_warehouses() const { return warehouses_.size(); }
  const ViewDef& view_def() const { return view_; }
  std::vector<const StateLog*> SourceLogs() const;

  // --- Undo log + fingerprint (schedule-space explorer) -----------------

  // Installs `undo` into every component; from then on each controlled
  // step's mutations are recorded and the explorer can rewind by popping
  // entries to a watermark instead of restoring a full snapshot. Null
  // detaches.
  void AttachUndo(UndoLog* undo);

  // Canonical 128-bit fingerprint of the live system: warehouse views and
  // algorithm state, durable stores, source relations and logs, network
  // channels, and the in-flight message set keyed per channel (content
  // digests, not sequence numbers). Built from sorted/keyed iteration so
  // the same logical state always hashes identically, whichever schedule
  // reached it. Returns false — and the explorer must not dedup on this
  // state — when a pending event carries no content digest.
  bool HashState(Fp128* fp) const;

  // Exact-mode, human-readable serialization of the same state (absolute
  // event sequence numbers and clock included): the byte string the undo
  // round-trip oracle compares against SaveState/RestoreState.
  std::string CanonicalDebugDump() const;

  // --- Snapshot/restore (prefix-sharing exploration) --------------------
  //
  // Captures every piece of mutable state in the closed system: the
  // simulator's pending-event set and clock, the network's channels and
  // RNG forks, the update-id generator, each source, and the warehouse
  // (including its algorithm-specific half). Restoring rewinds *this*
  // system to the save point in place — the wired sites and their
  // closures stay valid because they only capture pointers to objects
  // this system owns. The explorer uses this to backtrack to a decision
  // point without re-constructing the system and replaying the prefix.
  class SavedState {
   public:
    SavedState() = default;

   private:
    friend class ControlledSystem;
    Simulator::SavedState sim;
    Network::SavedState network;
    int64_t next_update_id = 0;
    std::vector<DataSource::SavedState> sources;
    std::unique_ptr<EcaSource::SavedState> eca_source;
    std::vector<Warehouse::SavedState> warehouses;
  };
  SavedState SaveState() const;
  void RestoreState(const SavedState& state);

 private:
  SWEEP_SNAPSHOT_EXEMPT("scenario's view definition, immutable for the "
                        "lifetime of the system")
  ViewDef view_;
  SWEEP_SNAPSHOT_EXEMPT("initial base relations of the scenario; sources "
                        "snapshot their own live stores")
  std::vector<Relation> bases_;
  Simulator sim_;
  Network network_;
  UpdateIdGenerator ids_;
  std::vector<std::unique_ptr<DataSource>> sources_;
  std::unique_ptr<EcaSource> eca_source_;
  // warehouses_[0] is the primary (site 0); extras sit past the sources.
  std::vector<std::unique_ptr<Warehouse>> warehouses_;
};

// Outcome of one complete controlled run.
struct ControlledOutcome {
  ConsistencyReport report;
  ScheduleTrace trace;
  int64_t steps = 0;
  // The run drained within the step budget with an idle warehouse. A
  // false here is itself a protocol failure (a wedged or runaway
  // schedule) and classifies as inconsistent.
  bool completed = false;
  size_t installs = 0;
  std::string final_view;

  // Canonical serialization of everything schedule-determined — the
  // string the byte-identical-replay test compares.
  std::string Fingerprint() const;
};

// Replays `choices` (defaults past the end) and classifies the run.
ControlledOutcome RunWithChoices(const ControlledScenario& scenario,
                                 const std::vector<size_t>& choices,
                                 int64_t max_steps);

}  // namespace sweepmv

#endif  // SWEEPMV_VERIFY_CONTROLLED_RUN_H_
