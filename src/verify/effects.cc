#include "verify/effects.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/str.h"
#include "verify/effects_table.h"

namespace sweepmv {

namespace {

// "Class::member@binding" -> (class, member, binding). The generator
// guarantees the shape; a malformed atom is a build-system bug.
struct ParsedAtom {
  std::string cls;
  std::string member;
  bool global = false;
};

ParsedAtom ParseAtom(const std::string& text) {
  const size_t sep = text.find("::");
  const size_t at = text.rfind('@');
  SWEEP_CHECK_MSG(sep != std::string::npos && at != std::string::npos &&
                      sep < at,
                  "malformed effect atom in the generated table");
  ParsedAtom atom;
  atom.cls = text.substr(0, sep);
  atom.member = text.substr(sep + 2, at - sep - 2);
  const std::string binding = text.substr(at + 1);
  SWEEP_CHECK_MSG(binding == "self" || binding == "global",
                  "unknown effect binding in the generated table");
  atom.global = binding == "global";
  return atom;
}

std::vector<std::string> SplitAtoms(const char* column) {
  std::vector<std::string> out;
  std::string text(column);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t space = text.find(' ', pos);
    if (space == std::string::npos) space = text.size();
    if (space > pos) out.push_back(text.substr(pos, space - pos));
    pos = space + 1;
  }
  return out;
}

const verify::HandlerEffectsRow* FindTableRow(const char* handler_class,
                                              const char* kind) {
  for (const verify::HandlerEffectsRow& row : verify::kHandlerEffects) {
    if (std::strcmp(row.handler_class, handler_class) == 0 &&
        std::strcmp(row.kind, kind) == 0) {
      return &row;
    }
  }
  return nullptr;
}

bool SortedIntersect(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::string AtomKey(const std::string& cls, const std::string& member,
                    int site) {
  return StrFormat("%s::%s@%d", cls.c_str(), member.c_str(), site);
}

}  // namespace

int EffectsIndex::Intern(const std::string& cls, const std::string& member,
                         int site) {
  known_classes_.insert(cls);
  const std::string key = AtomKey(cls, member, site);
  auto it = atom_ids_.find(key);
  if (it != atom_ids_.end()) return it->second;
  const int id = static_cast<int>(atom_ids_.size());
  atom_ids_.emplace(key, id);
  return id;
}

void EffectsIndex::AddRow(const Key& key, const char* handler_class,
                          const char* kind, int self_site,
                          bool drops_enabled) {
  Row resolved;
  const verify::HandlerEffectsRow* row = FindTableRow(handler_class, kind);
  if (row == nullptr || !row->bounded) {
    // Unknown or unbounded handler: keep a declining row so lookups are
    // distinguishable from "no handler at this key" (timers).
    rows_.emplace(key, std::move(resolved));
    return;
  }
  auto resolve = [&](const char* column, std::vector<int>* out) {
    for (const std::string& text : SplitAtoms(column)) {
      const ParsedAtom atom = ParseAtom(text);
      out->push_back(
          Intern(atom.cls, atom.member, atom.global ? -1 : self_site));
    }
  };
  resolve(row->reads, &resolved.reads);
  resolve(row->writes, &resolved.writes);
  resolve(row->incs, &resolved.incs);
  // A drop-write is a real write exactly when the scenario can arm a
  // drop; otherwise the guarded branch is dead and the atom vanishes.
  if (drops_enabled) resolve(row->drop_writes, &resolved.writes);
  std::sort(resolved.reads.begin(), resolved.reads.end());
  std::sort(resolved.writes.begin(), resolved.writes.end());
  std::sort(resolved.incs.begin(), resolved.incs.end());
  resolved.bounded = true;
  rows_.emplace(key, std::move(resolved));
}

EffectsIndex EffectsIndex::ForScenario(const ControlledScenario& scenario) {
  EffectsIndex index;
  const bool drops = scenario.max_message_drops > 0;
  index.mixed_internal_ =
      scenario.warehouse_crashes > 0 && scenario.max_message_drops > 0;
  const int n = scenario.view.num_relations();

  // Primary warehouse at site 0: delivery handler, plus the controlled
  // crash when the scenario schedules one.
  const char* primary = AlgorithmClassName(scenario.algorithm);
  index.AddRow(Key{"deliver", 0}, primary, "message", 0, drops);
  if (scenario.warehouse_crashes > 0) {
    index.AddRow(Key{"crash", 0}, primary, "crash", 0, drops);
  }

  // Sources at 1..n (or the single multi-relation ECA source at 1):
  // query deliveries and the transaction stream.
  if (RequiresSingleSource(scenario.algorithm)) {
    index.AddRow(Key{"deliver", 1}, "EcaSource", "query", 1, drops);
    index.AddRow(Key{"txn", 1}, "EcaSource", "txn", 1, drops);
  } else {
    for (int s = 1; s <= n; ++s) {
      index.AddRow(Key{"deliver", s}, "DataSource", "query", s, drops);
      index.AddRow(Key{"txn", s}, "DataSource", "txn", s, drops);
    }
  }

  // Extra warehouses past the sources (multi-view deployment).
  for (size_t w = 0; w < scenario.extra_warehouses.size(); ++w) {
    const int site = n + 1 + static_cast<int>(w);
    index.AddRow(Key{"deliver", site},
                 AlgorithmClassName(scenario.extra_warehouses[w]), "message",
                 site, drops);
  }

  if (scenario.max_message_drops > 0) {
    index.AddRow(Key{"arm-drop", -1}, "Network", "arm-drop", -1, drops);
  }
  return index;
}

const EffectsIndex::Row* EffectsIndex::RowFor(const EventLabel& label) const {
  Key key;
  switch (label.kind) {
    case EventKind::kDelivery:
      key = Key{"deliver", label.to};
      break;
    case EventKind::kTxn:
      key = Key{"txn", label.to};
      break;
    case EventKind::kInternal:
      if (label.what != nullptr &&
          std::strcmp(label.what, "warehouse-crash") == 0) {
        key = Key{"crash", label.to};
      } else if (label.what != nullptr &&
                 std::strcmp(label.what, "arm-drop") == 0) {
        key = Key{"arm-drop", -1};
      } else {
        // Timer events and channel-head reconstructions carry no
        // resolvable handler identity.
        return nullptr;
      }
      break;
  }
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

bool EffectsIndex::Commute(const EventLabel& a, const EventLabel& b) const {
  // Deliveries already commute across sites under the site rule; the
  // effect grant targets the pairs that rule declares dependent —
  // transactions and internal events.
  auto qualifies = [](const EventLabel& label) {
    return label.kind == EventKind::kTxn ||
           label.kind == EventKind::kInternal;
  };
  if (!qualifies(a) || !qualifies(b)) return false;
  // Crash and arm-drop events share the internal channel and one
  // EventId; sleeping one would prune the other too. Mixed scenarios
  // decline all internal grants.
  if (mixed_internal_ && (a.kind == EventKind::kInternal ||
                          b.kind == EventKind::kInternal)) {
    return false;
  }
  // One FIFO channel: order is semantic, never commute.
  if (ChannelOf(a) == ChannelOf(b)) return false;
  const Row* ra = RowFor(a);
  const Row* rb = RowFor(b);
  if (ra == nullptr || rb == nullptr || !ra->bounded || !rb->bounded) {
    return false;
  }
  // Writes conflict with everything; increments conflict with reads but
  // commute with each other.
  const bool conflict =
      SortedIntersect(ra->writes, rb->writes) ||
      SortedIntersect(ra->writes, rb->reads) ||
      SortedIntersect(ra->writes, rb->incs) ||
      SortedIntersect(rb->writes, ra->reads) ||
      SortedIntersect(rb->writes, ra->incs) ||
      SortedIntersect(ra->incs, rb->reads) ||
      SortedIntersect(rb->incs, ra->reads);
  return !conflict;
}

bool EffectsIndex::CheckObserved(const EventLabel& label,
                                 const std::vector<EffectAtom>& observed,
                                 std::string* error) const {
  const Row* row = RowFor(label);
  if (row == nullptr || !row->bounded) return true;
  for (const EffectAtom& atom : observed) {
    if (std::strcmp(atom.cls, "<untagged>") == 0) {
      if (error != nullptr) {
        *error = "effect oracle: an untagged undo capture changed state "
                 "the oracle cannot attribute";
      }
      return false;
    }
    // Classes the table never mentions (the Simulator's event queue and
    // clock) are schedule bookkeeping, outside the protocol-state
    // universe the independence argument is about.
    if (known_classes_.count(atom.cls) == 0) continue;
    bool allowed = false;
    const auto it = atom_ids_.find(AtomKey(atom.cls, atom.member, atom.site));
    if (it != atom_ids_.end()) {
      allowed = std::binary_search(row->writes.begin(), row->writes.end(),
                                   it->second) ||
                std::binary_search(row->incs.begin(), row->incs.end(),
                                   it->second);
    }
    if (!allowed) {
      if (error != nullptr) {
        *error = StrFormat(
            "effect oracle: handler for '%s' (site %d) changed "
            "%s::%s@%d, which its static write footprint does not cover",
            LabelToString(label).c_str(), label.to, atom.cls, atom.member,
            atom.site);
      }
      return false;
    }
  }
  return true;
}

bool IndependentUnder(const EffectsIndex* effects, const EventLabel& a,
                      const EventLabel& b, int64_t* refined_grants) {
  if (Independent(a, b)) return true;
  if (effects != nullptr && effects->Commute(a, b)) {
    if (refined_grants != nullptr) ++(*refined_grants);
    return true;
  }
  return false;
}

}  // namespace sweepmv
