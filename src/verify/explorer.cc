#include "verify/explorer.h"

#include <algorithm>
#include <array>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/str.h"
#include "common/undo.h"
#include "verify/pool.h"

namespace sweepmv {

namespace {

// Stable identity of a ready candidate: its channel plus how many events
// of that channel the prefix already executed.
EventId IdOf(const EventLabel& label, const ScheduleTrace& prefix_trace) {
  EventId id;
  id.channel = ChannelOf(label);
  for (const TraceStep& step : prefix_trace.steps) {
    if (ChannelOf(step.label) == id.channel) ++id.index;
  }
  return id;
}

bool Contains(const std::vector<EventId>& set, const EventId& id) {
  return std::find(set.begin(), set.end(), id) != set.end();
}

// The independence relation only needs each event's affected site, which
// its channel determines; reconstruct a label from the id.
EventLabel LabelOfChannelHead(const EventId& id) {
  EventLabel label;
  label.kind = id.channel.kind;
  label.from = id.channel.from;
  label.to = id.channel.to;
  return label;
}

// Full label of a sleep-set entry, for the refined independence check:
// a slept event stays enabled (its channel head is untouched by the
// independent steps that kept it asleep), so it is normally present in
// the node's ready set — match it there to recover the complete label
// (kind, sites, `what` tag). The channel-head fallback loses the tag,
// which makes internal events unresolvable and degrades them to the
// site rule's always-dependent verdict — sound, never unsound.
EventLabel ResolveSleepLabel(const EventId& z,
                             const std::vector<EventId>& ids,
                             const std::vector<Scheduler::Candidate>& ready) {
  for (size_t j = 0; j < ids.size(); ++j) {
    if (ids[j] == z) return ready[j].label;
  }
  return LabelOfChannelHead(z);
}

struct ChannelLess {
  bool operator()(const ChannelId& a, const ChannelId& b) const {
    return std::tie(a.kind, a.from, a.to) < std::tie(b.kind, b.from, b.to);
  }
};
// Events executed so far per channel — the incremental engine's O(1)
// replacement for scanning the prefix trace (IdOf) at every node.
using ExecutedCounts = std::map<ChannelId, int64_t, ChannelLess>;

// Classification logic shared by both engines and the parallel frontier:
// counts a complete schedule, tracks the worst level, and captures the
// first violation. With `defer_minimize` (parallel subtree tasks) the
// counterexample keeps only the raw choice vector; minimization and the
// final replay happen once, after the DFS-ordered merge picks the
// globally first violation — which is exactly the one the sequential
// search would minimize, keeping the output thread-count-invariant.
struct SearchCore {
  const ExplorerConfig& config;
  bool defer_minimize = false;
  ExploreResult result;
  bool stop = false;
  // Full choice vector of every recorded violation, in DFS order. The
  // visited table stores a completed subtree's first violation as a
  // suffix relative to the subtree root, so a later hit at a different
  // prefix can reconstruct exactly the counterexample a dedup-off search
  // would have reported there. Only populated when dedup is on.
  std::vector<std::vector<size_t>> violation_paths = {};

  void Classify(const ControlledOutcome& outcome,
                const std::vector<size_t>& choices) {
    ++result.schedules;
    result.worst = std::min(result.worst, outcome.report.level);
    if (outcome.report.level >= config.required) return;
    ++result.violations;
    if (config.dedup_states) violation_paths.push_back(choices);
    if (!result.counterexample.has_value()) {
      Counterexample cx;
      if (defer_minimize) {
        cx.choices = choices;
        cx.report = outcome.report;
      } else {
        std::vector<size_t> minimized = choices;
        if (config.minimize) {
          minimized = MinimizeViolation(config.scenario, config.required,
                                        std::move(minimized),
                                        config.max_steps_per_run,
                                        &result.executions);
        }
        const ControlledOutcome final_run = RunWithChoices(
            config.scenario, minimized, config.max_steps_per_run);
        ++result.executions;
        cx.choices = std::move(minimized);
        cx.trace = final_run.trace;
        cx.report = final_run.report;
      }
      result.counterexample = std::move(cx);
    }
    if (config.stop_at_first_violation) stop = true;
  }
};

// ---------------------------------------------------------------------
// Visited-state table (dedup_states): turns the DFS tree into a DAG.
//
// Key: the canonical 128-bit state fingerprint, plus a context digest of
// the node's depth and sleep set. Depth matters because the remaining
// step budget — and therefore the subtree's classification — depends on
// it; the sleep set matters because it prunes different children (two
// visits of one state under different sleep sets explore different
// subtrees). Value: the complete, deterministic summary of the subtree
// explored below that key. A later visit of the same key merges the
// cached summary instead of re-exploring, so dedup-on totals equal
// dedup-off totals exactly — whichever schedule, thread, or steal order
// populated the entry first.
// ---------------------------------------------------------------------

struct VisitedKey {
  Fp128 fp;
  uint64_t ctx = 0;

  bool operator==(const VisitedKey& other) const {
    return fp == other.fp && ctx == other.ctx;
  }
};

struct VisitedKeyHash {
  size_t operator()(const VisitedKey& key) const {
    return static_cast<size_t>(key.fp.lo ^ (key.fp.hi * 31) ^ key.ctx);
  }
};

// Everything deterministic the merge needs. `executions` is deliberately
// absent: it counts real work done, and a hit does none.
struct SubtreeSummary {
  int64_t schedules = 0;
  int64_t violations = 0;
  int64_t sleep_pruned = 0;
  int64_t sleep_blocked = 0;
  int64_t decision_points = 0;
  int64_t max_ready = 0;
  ConsistencyLevel worst = ConsistencyLevel::kComplete;
  // First violation below the subtree root, as choices relative to it
  // (empty and has_violation=false when the subtree is clean).
  bool has_violation = false;
  std::vector<size_t> violation_suffix;

  bool operator==(const SubtreeSummary& other) const {
    return schedules == other.schedules &&
           violations == other.violations &&
           sleep_pruned == other.sleep_pruned &&
           sleep_blocked == other.sleep_blocked &&
           decision_points == other.decision_points &&
           max_ready == other.max_ready && worst == other.worst &&
           has_violation == other.has_violation &&
           violation_suffix == other.violation_suffix;
  }
};

// Shared across the work-stealing pool: only fully-completed subtrees are
// inserted, and a summary is a pure function of its key, so concurrent
// explorations of the same state race only on who inserts the identical
// value first. Sharded by key hash so eight threads doing a lookup per
// branch node contend on different locks, not one global one.
class VisitedTable {
 public:
  std::optional<SubtreeSummary> Lookup(const VisitedKey& key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  void Insert(const VisitedKey& key, SubtreeSummary summary) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(key, std::move(summary));
  }

 private:
  static constexpr size_t kShards = 64;

  struct Shard {
    std::mutex mu;
    std::unordered_map<VisitedKey, SubtreeSummary, VisitedKeyHash> map;
  };

  Shard& ShardOf(const VisitedKey& key) {
    return shards_[VisitedKeyHash{}(key) % kShards];
  }

  std::array<Shard, kShards> shards_;
};

VisitedKey MakeVisitedKey(const Fp128& fp, size_t depth,
                          const std::vector<EventId>& sleep) {
  StateHasher h;
  h.U64("node.depth", depth);
  std::vector<EventId> sorted = sleep;
  std::sort(sorted.begin(), sorted.end(),
            [](const EventId& a, const EventId& b) {
              return std::tie(a.channel.kind, a.channel.from, a.channel.to,
                              a.index) < std::tie(b.channel.kind,
                                                  b.channel.from,
                                                  b.channel.to, b.index);
            });
  h.U64("sleep.size", sorted.size());
  for (const EventId& id : sorted) {
    h.I64("sleep.kind", static_cast<int64_t>(id.channel.kind));
    h.I64("sleep.from", id.channel.from);
    h.I64("sleep.to", id.channel.to);
    h.I64("sleep.index", id.index);
  }
  const Fp128 ctx = h.Digest();
  return VisitedKey{fp, ctx.lo ^ ctx.hi};
}

// ---------------------------------------------------------------------
// Stateless engine (share_prefixes = false): every DFS node constructs a
// fresh system and replays its prefix — the original engine, kept as the
// baseline the throughput bench measures prefix sharing against.
// ---------------------------------------------------------------------

struct ReplayDfs {
  SearchCore core;

  // Visits the node reached by `prefix`; `sleep` holds events provably
  // redundant to explore here (their interleavings are covered by
  // already-explored sibling branches).
  void Visit(std::vector<size_t>& prefix, std::vector<EventId> sleep) {
    const ExplorerConfig& config = core.config;
    ExploreResult& result = core.result;
    if (core.stop) return;
    if (result.schedules >= config.max_schedules) {
      core.stop = true;
      result.exhausted = false;
      return;
    }

    ReplayScheduler scheduler(prefix);
    ControlledSystem system(config.scenario, &scheduler);
    ++result.executions;
    const int64_t ran = system.Run(static_cast<int64_t>(prefix.size()));
    SWEEP_CHECK_MSG(ran == static_cast<int64_t>(prefix.size()),
                    "schedule prefix drained early");

    const std::vector<Scheduler::Candidate> ready = system.Ready();
    if (ready.empty()) {
      // Terminal: this execution is one complete schedule.
      ControlledOutcome outcome;
      outcome.steps = ran;
      outcome.completed = system.WarehouseIdle();
      if (outcome.completed) {
        outcome.report = system.Check();
      } else {
        outcome.report.level = ConsistencyLevel::kInconsistent;
        outcome.report.detail = "run drained with the warehouse busy";
      }
      core.Classify(outcome, prefix);
      return;
    }
    if (static_cast<int64_t>(prefix.size()) >= config.max_steps_per_run) {
      ControlledOutcome outcome;
      outcome.steps = ran;
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = "schedule exceeded the step budget";
      core.Classify(outcome, prefix);
      return;
    }

    result.max_ready =
        std::max(result.max_ready, static_cast<int64_t>(ready.size()));
    if (ready.size() > 1) ++result.decision_points;

    std::vector<EventId> ids;
    ids.reserve(ready.size());
    for (const Scheduler::Candidate& c : ready) {
      ids.push_back(IdOf(c.label, scheduler.trace()));
    }

    bool any_explorable = false;
    std::vector<EventId> done;
    for (size_t i = 0; i < ready.size(); ++i) {
      if (config.sleep_sets && Contains(sleep, ids[i])) {
        ++result.sleep_pruned;
        continue;
      }
      any_explorable = true;
      // Child sleep set: everything slept here or explored in an earlier
      // sibling stays asleep below, provided it commutes with the step
      // taken (Godefroid's sleep-set rule).
      std::vector<EventId> child_sleep;
      if (config.sleep_sets) {
        for (const EventId& z : sleep) {
          if (IndependentUnder(config.effects,
                               ResolveSleepLabel(z, ids, ready),
                               ready[i].label, &result.refined_grants)) {
            child_sleep.push_back(z);
          }
        }
        for (const EventId& z : done) {
          if (IndependentUnder(config.effects,
                               ResolveSleepLabel(z, ids, ready),
                               ready[i].label, &result.refined_grants)) {
            child_sleep.push_back(z);
          }
        }
      }
      prefix.push_back(i);
      Visit(prefix, std::move(child_sleep));
      prefix.pop_back();
      if (core.stop) return;
      done.push_back(ids[i]);
    }
    if (!any_explorable) ++result.sleep_blocked;
  }
};

// ---------------------------------------------------------------------
// Prefix-sharing engine (share_prefixes = true): ONE live system; the
// DFS steps it forward one event at a time and backtracks by restoring a
// snapshot taken at the parent decision point, so each complete schedule
// costs about one execution instead of one per tree node.
// ---------------------------------------------------------------------

// Replays a fixed task prefix, then forwards whatever choice the DFS set
// last. Unlike ReplayScheduler it records no trace — the incremental
// engine tracks choices (path) and channel counts (ExecutedCounts)
// itself, which keeps the per-step cost O(1). During the prefix replay
// it does tally per-channel counts, so a subtree task can seed its
// EventId indices to the absolute values its inherited sleep set (built
// from the root during frontier expansion) is expressed in.
class SteppingScheduler : public Scheduler {
 public:
  explicit SteppingScheduler(std::vector<size_t> prefix)
      : prefix_(std::move(prefix)) {}

  size_t Pick(const std::vector<Candidate>& ready) override {
    SWEEP_CHECK(!ready.empty());
    const bool replaying = cursor_ < prefix_.size();
    size_t choice = replaying ? prefix_[cursor_++] : next_;
    if (choice >= ready.size()) choice = ready.size() - 1;
    if (replaying) ++replay_counts_[ChannelOf(ready[choice].label)];
    return choice;
  }

  void SetNext(size_t choice) { next_ = choice; }

  // Per-channel event counts of the replayed prefix.
  const ExecutedCounts& replay_counts() const { return replay_counts_; }

 private:
  std::vector<size_t> prefix_;
  size_t cursor_ = 0;
  size_t next_ = 0;
  ExecutedCounts replay_counts_;
};

struct IncrementalDfs {
  SearchCore core;
  VisitedTable* visited = nullptr;
  std::optional<SteppingScheduler> scheduler = std::nullopt;
  std::optional<ControlledSystem> system = std::nullopt;
  ExecutedCounts executed = {};
  std::vector<size_t> path = {};  // root-to-current choice vector
  // Mutations of every controlled step land here (use_undo); branch nodes
  // watermark it and siblings rewind by popping — O(changes since the
  // branch) instead of O(system state).
  UndoLog undo = {};

  // Everything Visit must rewind to re-enter a decision point: the
  // system's full state, the channel counts, nothing else (path is
  // maintained push/pop-wise by the DFS itself).
  struct Snapshot {
    ControlledSystem::SavedState sys;
    ExecutedCounts executed;
  };

  // Counter baseline at subtree entry; the delta on completion is the
  // subtree's deterministic summary (what the visited table stores). The
  // monotone accumulators (worst, max_ready) are not additive, so an
  // insertable node scopes them: it parks the entry values here, resets
  // the live ones to their identities, and recombines on every exit —
  // the live values then read as the subtree's own, a pure function of
  // the visited key, which the verify_on_hit equality check requires.
  struct Baseline {
    int64_t schedules = 0;
    int64_t violations = 0;
    int64_t sleep_pruned = 0;
    int64_t sleep_blocked = 0;
    int64_t decision_points = 0;
    size_t first_violation = 0;  // index into core.violation_paths
    bool scoped = false;
    ConsistencyLevel entry_worst = ConsistencyLevel::kComplete;
    int64_t entry_max_ready = 0;
  };

  Baseline TakeBaseline(bool scope_monotone) {
    Baseline base;
    base.schedules = core.result.schedules;
    base.violations = core.result.violations;
    base.sleep_pruned = core.result.sleep_pruned;
    base.sleep_blocked = core.result.sleep_blocked;
    base.decision_points = core.result.decision_points;
    base.first_violation = core.violation_paths.size();
    if (scope_monotone) {
      base.scoped = true;
      base.entry_worst = core.result.worst;
      base.entry_max_ready = core.result.max_ready;
      core.result.worst = ConsistencyLevel::kComplete;
      core.result.max_ready = 0;
    }
    return base;
  }

  // Folds the parked entry values back into the live accumulators. Must
  // run exactly once on every exit path of a scoped node, including the
  // early stop unwind.
  void CloseScope(const Baseline& base) {
    if (!base.scoped) return;
    core.result.worst = std::min(core.result.worst, base.entry_worst);
    core.result.max_ready =
        std::max(core.result.max_ready, base.entry_max_ready);
  }

  SubtreeSummary DiffFrom(const Baseline& base) const {
    SubtreeSummary s;
    s.schedules = core.result.schedules - base.schedules;
    s.violations = core.result.violations - base.violations;
    s.sleep_pruned = core.result.sleep_pruned - base.sleep_pruned;
    s.sleep_blocked = core.result.sleep_blocked - base.sleep_blocked;
    s.decision_points = core.result.decision_points - base.decision_points;
    // With the scope open, the live monotone values are subtree-pure.
    s.max_ready = core.result.max_ready;
    s.worst = core.result.worst;
    if (core.violation_paths.size() > base.first_violation) {
      const std::vector<size_t>& full =
          core.violation_paths[base.first_violation];
      SWEEP_CHECK(full.size() >= path.size());
      s.has_violation = true;
      s.violation_suffix.assign(full.begin() +
                                    static_cast<ptrdiff_t>(path.size()),
                                full.end());
    }
    return s;
  }

  // Merges a cached subtree exactly as exploring it would have.
  void MergeSummary(const SubtreeSummary& s) {
    ExploreResult& result = core.result;
    result.schedules += s.schedules;
    result.violations += s.violations;
    result.sleep_pruned += s.sleep_pruned;
    result.sleep_blocked += s.sleep_blocked;
    result.decision_points += s.decision_points;
    result.max_ready = std::max(result.max_ready, s.max_ready);
    result.worst = std::min(result.worst, s.worst);
    if (s.has_violation) {
      std::vector<size_t> full = path;
      full.insert(full.end(), s.violation_suffix.begin(),
                  s.violation_suffix.end());
      if (core.config.dedup_states) core.violation_paths.push_back(full);
      if (!result.counterexample.has_value()) {
        // The cached subtree's first violation, re-rooted at this prefix
        // — the schedule a dedup-off search reaching this node first
        // would have found. Deferred finalization (or the caller's
        // minimize+replay) fills trace and report.
        Counterexample cx;
        cx.choices = std::move(full);
        result.counterexample = std::move(cx);
        SWEEP_CHECK_MSG(core.defer_minimize,
                        "a sequential search explores before it can hit");
      }
      if (core.config.stop_at_first_violation) core.stop = true;
    }
  }

  // Builds the system, replays `prefix` (the subtree task's root), then
  // explores the subtree under it.
  void RunFromPrefix(const std::vector<size_t>& prefix,
                     std::vector<EventId> sleep) {
    core.result.exhausted = true;
    scheduler.emplace(prefix);
    system.emplace(core.config.scenario, &*scheduler);
    if (!prefix.empty()) ++core.result.executions;
    const int64_t ran = system->Run(static_cast<int64_t>(prefix.size()));
    SWEEP_CHECK_MSG(ran == static_cast<int64_t>(prefix.size()),
                    "schedule prefix drained early");
    // Attach after the replay: the prefix is never backtracked past, so
    // its mutations need no undo entries.
    if (core.config.use_undo) system->AttachUndo(&undo);
    if (core.config.effects_oracle) undo.SetObserve(true);
    path = prefix;
    executed = scheduler->replay_counts();
    Visit(std::move(sleep));
    core.result.undo_entries += undo.entries_recorded();
    core.result.undo_rollbacks += undo.rollbacks();
  }

  void Visit(std::vector<EventId> sleep) {
    const ExplorerConfig& config = core.config;
    ExploreResult& result = core.result;
    if (core.stop) return;
    if (result.schedules >= config.max_schedules) {
      core.stop = true;
      result.exhausted = false;
      return;
    }

    const std::vector<Scheduler::Candidate> ready = system->Ready();
    if (ready.empty()) {
      ControlledOutcome outcome;
      outcome.steps = static_cast<int64_t>(path.size());
      outcome.completed = system->WarehouseIdle();
      if (outcome.completed) {
        outcome.report = system->Check();
      } else {
        outcome.report.level = ConsistencyLevel::kInconsistent;
        outcome.report.detail = "run drained with the warehouse busy";
      }
      ++result.executions;
      core.Classify(outcome, path);
      return;
    }
    if (static_cast<int64_t>(path.size()) >= config.max_steps_per_run) {
      ControlledOutcome outcome;
      outcome.steps = static_cast<int64_t>(path.size());
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = "schedule exceeded the step budget";
      ++result.executions;
      core.Classify(outcome, path);
      return;
    }

    result.max_ready =
        std::max(result.max_ready, static_cast<int64_t>(ready.size()));
    if (ready.size() > 1) ++result.decision_points;

    std::vector<EventId> ids;
    ids.reserve(ready.size());
    std::vector<size_t> explorable;
    for (size_t i = 0; i < ready.size(); ++i) {
      EventId id;
      id.channel = ChannelOf(ready[i].label);
      const auto it = executed.find(id.channel);
      id.index = it == executed.end() ? 0 : it->second;
      ids.push_back(id);
      if (config.sleep_sets && Contains(sleep, id)) {
        ++result.sleep_pruned;
        continue;
      }
      explorable.push_back(i);
    }
    if (explorable.empty()) {
      ++result.sleep_blocked;
      return;
    }

    // Only branching nodes pay for backtrack state; chains just step
    // forward. With the undo log attached the default cost is a
    // watermark; depths on the anchor cadence (and every branch when the
    // log is off) pay for a full snapshot instead, bounding how much any
    // single rollback must unwind.
    const bool branch = explorable.size() > 1;

    // Visited-state lookup, branch nodes only: same fingerprint + same
    // depth + same sleep set => same subtree; merge the cached summary
    // instead of exploring. Chain nodes (one explorable child) are never
    // keyed — they outnumber branches an order of magnitude and a
    // confluent chain is caught at its next branch anyway, so hashing
    // them buys almost nothing at full O(state) cost per node. A node's
    // own max_ready / decision_points / sleep_pruned are bumped above,
    // before the baseline: the hit-time node re-derives them identically
    // from the identical state, so merged totals still equal a dedup-off
    // search exactly.
    bool insertable = false;
    VisitedKey key;
    std::optional<SubtreeSummary> cached;
    if (branch && config.dedup_states && visited != nullptr) {
      Fp128 fp;
      if (system->HashState(&fp)) {
        insertable = true;
        key = MakeVisitedKey(fp, path.size(), sleep);
        cached = visited->Lookup(key);
        if (cached.has_value()) {
          ++result.dedup_hits;
          if (!config.verify_on_hit) {
            MergeSummary(*cached);
            return;
          }
        }
      } else {
        ++result.dedup_unhashable;
      }
    }
    const Baseline base = TakeBaseline(/*scope_monotone=*/insertable);

    const bool undo_active = config.use_undo;
    const bool anchor =
        branch && (!undo_active ||
                   (config.snapshot_anchor_every > 0 &&
                    path.size() %
                            static_cast<size_t>(
                                config.snapshot_anchor_every) ==
                        0));
    UndoLog::Mark mark = 0;
    std::optional<Snapshot> snap;
    ExecutedCounts executed_at_branch;
    if (branch) {
      if (undo_active) mark = undo.MarkPoint();
      if (anchor) {
        snap.emplace(Snapshot{system->SaveState(), executed});
        ++result.anchor_snapshots;
      } else {
        executed_at_branch = executed;
      }
    }

    std::vector<EventId> done;
    bool first = true;
    for (size_t i : explorable) {
      if (!first) {
        if (anchor) {
          system->RestoreState(snap->sys);
          undo.DiscardTo(mark);
          executed = snap->executed;
        } else {
          undo.RollbackTo(mark);
          executed = executed_at_branch;
        }
      }
      first = false;
      std::vector<EventId> child_sleep;
      if (config.sleep_sets) {
        for (const EventId& z : sleep) {
          if (IndependentUnder(config.effects,
                               ResolveSleepLabel(z, ids, ready),
                               ready[i].label, &result.refined_grants)) {
            child_sleep.push_back(z);
          }
        }
        for (const EventId& z : done) {
          if (IndependentUnder(config.effects,
                               ResolveSleepLabel(z, ids, ready),
                               ready[i].label, &result.refined_grants)) {
            child_sleep.push_back(z);
          }
        }
      }
      // Oracle granularity: one undo era per executed step, so the drain
      // below observes exactly this step's changes. Extra marks between
      // the branch watermark and the rollback are harmless — RollbackTo
      // unwinds across era boundaries.
      if (config.effects_oracle) undo.MarkPoint();
      scheduler->SetNext(i);
      const int64_t ran = system->Run(1);
      SWEEP_CHECK_MSG(ran == 1, "ready event failed to execute");
      if (config.effects_oracle) {
        const std::vector<EffectAtom> observed = undo.DrainObserved();
        std::string err;
        SWEEP_CHECK_MSG(
            config.effects->CheckObserved(ready[i].label, observed, &err),
            err.c_str());
      }
      ++executed[ids[i].channel];
      path.push_back(i);
      Visit(std::move(child_sleep));
      path.pop_back();
      if (core.stop) {
        CloseScope(base);
        return;
      }
      done.push_back(ids[i]);
    }
    FinishSubtree(insertable, key, base, cached);
  }

  // Subtree fully classified (no early stop): record it in the visited
  // table, or — verify_on_hit after a hit — check the re-exploration
  // reproduced the cached summary bit for bit.
  void FinishSubtree(bool insertable, const VisitedKey& key,
                     const Baseline& base,
                     const std::optional<SubtreeSummary>& cached) {
    if (core.stop) {
      CloseScope(base);
      return;
    }
    if (!insertable) return;
    SubtreeSummary summary = DiffFrom(base);
    CloseScope(base);
    if (cached.has_value()) {
      SWEEP_CHECK_MSG(summary == *cached,
                      "visited-state hit disagreed with re-exploration "
                      "(fingerprint collision or nondeterministic step)");
      return;
    }
    visited->Insert(key, std::move(summary));
    ++core.result.dedup_inserts;
  }
};

// ---------------------------------------------------------------------
// Parallel exploration: split the DFS frontier into subtree tasks, run
// them on the work-stealing pool, merge in DFS task order.
// ---------------------------------------------------------------------

// One leaf of the frontier split: either a schedule already classified
// during expansion (terminal), or a pending subtree task for the pool.
struct FrontierSlot {
  std::vector<size_t> prefix;
  std::vector<EventId> sleep;
  bool runnable = false;
  ExploreResult partial;
};

// Expands the frontier breadth-first (shallowest slot first) until at
// least `target` runnable subtree tasks exist, mirroring the DFS's
// sleep-set bookkeeping exactly so the union of the subtrees is the same
// node set the sequential search visits. Runs single-threaded; its
// per-node replays are charged to `expand_stats.executions`.
void SplitFrontier(const ExplorerConfig& config, size_t target,
                   std::list<FrontierSlot>& slots,
                   ExploreResult& expand_stats) {
  slots.push_back(FrontierSlot{{}, {}, true, ExploreResult{}});
  for (;;) {
    size_t runnable = 0;
    auto expand_it = slots.end();
    for (auto it = slots.begin(); it != slots.end(); ++it) {
      if (!it->runnable) continue;
      ++runnable;
      if (expand_it == slots.end() ||
          it->prefix.size() < expand_it->prefix.size()) {
        expand_it = it;
      }
    }
    if (runnable >= target || expand_it == slots.end()) return;

    FrontierSlot slot = std::move(*expand_it);
    ReplayScheduler scheduler(slot.prefix);
    ControlledSystem system(config.scenario, &scheduler);
    ++expand_stats.executions;
    const int64_t ran = system.Run(static_cast<int64_t>(slot.prefix.size()));
    SWEEP_CHECK_MSG(ran == static_cast<int64_t>(slot.prefix.size()),
                    "schedule prefix drained early");

    const std::vector<Scheduler::Candidate> ready = system.Ready();
    const bool over_budget =
        !ready.empty() &&
        static_cast<int64_t>(slot.prefix.size()) >= config.max_steps_per_run;
    if (ready.empty() || over_budget) {
      // The expanded node is itself a complete schedule; classify it in
      // place so the slot keeps its DFS position in the merge order.
      ControlledOutcome outcome;
      outcome.steps = ran;
      if (over_budget) {
        outcome.report.level = ConsistencyLevel::kInconsistent;
        outcome.report.detail = "schedule exceeded the step budget";
      } else {
        outcome.completed = system.WarehouseIdle();
        if (outcome.completed) {
          outcome.report = system.Check();
        } else {
          outcome.report.level = ConsistencyLevel::kInconsistent;
          outcome.report.detail = "run drained with the warehouse busy";
        }
      }
      SearchCore terminal{config, /*defer_minimize=*/true, ExploreResult{},
                          false};
      terminal.result.exhausted = true;
      ++terminal.result.executions;
      terminal.Classify(outcome, slot.prefix);
      slot.runnable = false;
      slot.partial = std::move(terminal.result);
      *expand_it = std::move(slot);
      continue;
    }

    expand_stats.max_ready = std::max(
        expand_stats.max_ready, static_cast<int64_t>(ready.size()));
    if (ready.size() > 1) ++expand_stats.decision_points;

    std::vector<EventId> ids;
    ids.reserve(ready.size());
    for (const Scheduler::Candidate& c : ready) {
      ids.push_back(IdOf(c.label, scheduler.trace()));
    }

    std::list<FrontierSlot> children;
    std::vector<EventId> done;
    for (size_t i = 0; i < ready.size(); ++i) {
      if (config.sleep_sets && Contains(slot.sleep, ids[i])) {
        ++expand_stats.sleep_pruned;
        continue;
      }
      std::vector<EventId> child_sleep;
      if (config.sleep_sets) {
        for (const EventId& z : slot.sleep) {
          if (IndependentUnder(config.effects,
                               ResolveSleepLabel(z, ids, ready),
                               ready[i].label,
                               &expand_stats.refined_grants)) {
            child_sleep.push_back(z);
          }
        }
        for (const EventId& z : done) {
          if (IndependentUnder(config.effects,
                               ResolveSleepLabel(z, ids, ready),
                               ready[i].label,
                               &expand_stats.refined_grants)) {
            child_sleep.push_back(z);
          }
        }
      }
      std::vector<size_t> child_prefix = slot.prefix;
      child_prefix.push_back(i);
      children.push_back(FrontierSlot{std::move(child_prefix),
                                      std::move(child_sleep), true,
                                      ExploreResult{}});
      done.push_back(ids[i]);
    }
    if (children.empty()) {
      ++expand_stats.sleep_blocked;
      slots.erase(expand_it);
      continue;
    }
    slots.splice(expand_it, std::move(children));
    slots.erase(expand_it);
  }
}

ExploreResult ExploreParallel(const ExplorerConfig& config) {
  ExploreResult expand_stats;
  expand_stats.exhausted = true;
  std::list<FrontierSlot> slots;
  // Enough tasks per worker that stealing can balance uneven subtrees.
  const size_t target = static_cast<size_t>(config.threads) * 8;
  SplitFrontier(config, target, slots, expand_stats);

  std::vector<FrontierSlot*> tasks;
  for (FrontierSlot& slot : slots) {
    if (slot.runnable) tasks.push_back(&slot);
  }

  // Visited-state table shared by every subtree task (and the fallback):
  // a summary is a pure function of its key, so the totals are identical
  // whichever worker inserts first.
  VisitedTable table;

  // Sequential fallback: a frontier this small means the split already
  // enumerated most of the space, or the scenario cannot fan out — the
  // pool would add synchronization cost without parallel work. Run the
  // plain sequential engine instead (identical totals by construction),
  // charging the split's probe executions as the cost of finding out.
  if (config.sequential_fallback_threshold > 0 &&
      static_cast<int64_t>(tasks.size()) <
          config.sequential_fallback_threshold) {
    IncrementalDfs dfs{SearchCore{config, /*defer_minimize=*/false,
                                  ExploreResult{}, false}};
    dfs.visited = &table;
    dfs.RunFromPrefix({}, {});
    ExploreResult result = std::move(dfs.core.result);
    result.executions += expand_stats.executions;
    result.parallel_fallback = true;
    return result;
  }

  WorkStealingPool pool(config.threads);
  pool.Run(static_cast<int64_t>(tasks.size()), [&](int64_t t) {
    FrontierSlot* slot = tasks[static_cast<size_t>(t)];
    IncrementalDfs dfs{
        SearchCore{config, /*defer_minimize=*/true, ExploreResult{}, false}};
    dfs.visited = &table;
    dfs.RunFromPrefix(slot->prefix, slot->sleep);
    slot->partial = std::move(dfs.core.result);
  });

  // Merge in DFS (slot) order: sums and min/max are order-independent;
  // the counterexample is order-sensitive and takes the first slot's —
  // the same violation the sequential DFS reaches first.
  ExploreResult merged = std::move(expand_stats);
  for (FrontierSlot& slot : slots) {
    const ExploreResult& r = slot.partial;
    merged.schedules += r.schedules;
    merged.executions += r.executions;
    merged.sleep_pruned += r.sleep_pruned;
    merged.sleep_blocked += r.sleep_blocked;
    merged.refined_grants += r.refined_grants;
    merged.decision_points += r.decision_points;
    merged.violations += r.violations;
    merged.max_ready = std::max(merged.max_ready, r.max_ready);
    merged.worst = std::min(merged.worst, r.worst);
    merged.exhausted = merged.exhausted && r.exhausted;
    merged.undo_entries += r.undo_entries;
    merged.undo_rollbacks += r.undo_rollbacks;
    merged.anchor_snapshots += r.anchor_snapshots;
    merged.dedup_hits += r.dedup_hits;
    merged.dedup_inserts += r.dedup_inserts;
    merged.dedup_unhashable += r.dedup_unhashable;
    if (!merged.counterexample.has_value() &&
        r.counterexample.has_value()) {
      merged.counterexample = r.counterexample;
    }
  }

  // Deferred counterexample finalization: minimize the globally first
  // violation and replay it once for the trace and report.
  if (merged.counterexample.has_value()) {
    Counterexample& cx = *merged.counterexample;
    if (config.minimize) {
      cx.choices = MinimizeViolation(config.scenario, config.required,
                                     std::move(cx.choices),
                                     config.max_steps_per_run,
                                     &merged.executions);
    }
    const ControlledOutcome final_run = RunWithChoices(
        config.scenario, cx.choices, config.max_steps_per_run);
    ++merged.executions;
    cx.trace = final_run.trace;
    cx.report = final_run.report;
  }
  return merged;
}

}  // namespace

std::string Counterexample::Summary() const {
  std::string out = StrFormat(
      "violation: level %s (%s)\nchoices:",
      ConsistencyLevelName(report.level), report.detail.c_str());
  for (size_t c : choices) out += StrFormat(" %zu", c);
  out += "\nschedule:\n" + trace.ToString();
  return out;
}

ExploreResult ExploreExhaustive(const ExplorerConfig& config) {
  SWEEP_CHECK_MSG(config.threads >= 1, "threads must be positive");
  SWEEP_CHECK_MSG(config.share_prefixes || config.threads == 1,
                  "parallel exploration requires prefix sharing");
  SWEEP_CHECK_MSG(config.share_prefixes || !config.dedup_states,
                  "state dedup requires the prefix-sharing engine");
  SWEEP_CHECK_MSG(!config.effects_oracle ||
                      (config.effects != nullptr && config.use_undo &&
                       config.share_prefixes),
                  "the effect oracle needs an effects index, the undo log "
                  "and the prefix-sharing engine");
  ExploreResult result;
  if (config.threads > 1) {
    result = ExploreParallel(config);
  } else if (config.share_prefixes) {
    VisitedTable table;
    IncrementalDfs dfs{SearchCore{config, /*defer_minimize=*/false,
                                  ExploreResult{}, false}};
    dfs.visited = &table;
    dfs.RunFromPrefix({}, {});
    result = std::move(dfs.core.result);
  } else {
    ReplayDfs dfs{SearchCore{config, /*defer_minimize=*/false,
                             ExploreResult{}, false}};
    dfs.core.result.exhausted = true;
    std::vector<size_t> prefix;
    dfs.Visit(prefix, {});
    result = std::move(dfs.core.result);
  }
  if (result.schedules >= config.max_schedules) result.exhausted = false;
  if (result.violations > 0 && config.stop_at_first_violation) {
    // Stopped early by design; the space was not necessarily covered.
    result.exhausted = false;
  }
  return result;
}

ExploreResult ExploreRandom(const ExplorerConfig& config, int64_t walks,
                            uint64_t seed) {
  ExploreResult result;
  Rng root(seed);
  for (int64_t w = 0; w < walks; ++w) {
    if (result.schedules >= config.max_schedules) break;
    RandomScheduler scheduler(root.Next());
    ControlledSystem system(config.scenario, &scheduler);
    ++result.executions;
    const int64_t ran = system.Run(config.max_steps_per_run);
    ControlledOutcome outcome;
    outcome.steps = ran;
    outcome.completed = system.Drained() && system.WarehouseIdle();
    if (outcome.completed) {
      outcome.report = system.Check();
    } else {
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = system.Drained()
                                  ? "run drained with the warehouse busy"
                                  : "run exceeded the step budget";
    }
    ++result.schedules;
    result.worst = std::min(result.worst, outcome.report.level);
    for (const TraceStep& step : scheduler.trace().steps) {
      result.max_ready = std::max(result.max_ready,
                                  static_cast<int64_t>(step.ready.size()));
      if (step.ready.size() > 1) ++result.decision_points;
    }
    if (outcome.report.level >= config.required) continue;
    ++result.violations;
    if (!result.counterexample.has_value()) {
      std::vector<size_t> choices = scheduler.trace().Choices();
      if (config.minimize) {
        choices = MinimizeViolation(config.scenario, config.required,
                                    std::move(choices),
                                    config.max_steps_per_run,
                                    &result.executions);
      }
      const ControlledOutcome final_run =
          RunWithChoices(config.scenario, choices, config.max_steps_per_run);
      ++result.executions;
      Counterexample cx;
      cx.choices = std::move(choices);
      cx.trace = final_run.trace;
      cx.report = final_run.report;
      result.counterexample = std::move(cx);
    }
    if (config.stop_at_first_violation) break;
  }
  return result;
}

std::vector<size_t> MinimizeViolation(const ControlledScenario& scenario,
                                      ConsistencyLevel required,
                                      std::vector<size_t> choices,
                                      int64_t max_steps_per_run,
                                      int64_t* executions) {
  const auto violates = [&](const std::vector<size_t>& candidate) {
    if (executions != nullptr) ++(*executions);
    ControlledOutcome outcome =
        RunWithChoices(scenario, candidate, max_steps_per_run);
    return outcome.report.level < required;
  };
  const auto trim = [](std::vector<size_t>& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  };

  trim(choices);
  SWEEP_CHECK_MSG(violates(choices),
                  "MinimizeViolation requires a violating schedule");

  // Shortest violating prefix, defaults beyond it. Violation is not
  // monotone in the prefix length, so scan from the front and take the
  // first prefix that still violates (the full vector always does).
  for (size_t k = 0; k < choices.size(); ++k) {
    const std::vector<size_t> candidate(
        choices.begin(), choices.begin() + static_cast<ptrdiff_t>(k));
    if (violates(candidate)) {
      choices.resize(k);
      break;
    }
  }

  // Lower every choice as far as the violation allows.
  for (size_t i = 0; i < choices.size(); ++i) {
    while (choices[i] > 0) {
      std::vector<size_t> candidate = choices;
      --candidate[i];
      if (!violates(candidate)) break;
      choices = std::move(candidate);
    }
  }
  trim(choices);
  return choices;
}

}  // namespace sweepmv
