#include "verify/explorer.h"

#include <algorithm>
#include <list>
#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/str.h"
#include "verify/pool.h"

namespace sweepmv {

namespace {

// Stable identity of a ready candidate: its channel plus how many events
// of that channel the prefix already executed.
EventId IdOf(const EventLabel& label, const ScheduleTrace& prefix_trace) {
  EventId id;
  id.channel = ChannelOf(label);
  for (const TraceStep& step : prefix_trace.steps) {
    if (ChannelOf(step.label) == id.channel) ++id.index;
  }
  return id;
}

bool Contains(const std::vector<EventId>& set, const EventId& id) {
  return std::find(set.begin(), set.end(), id) != set.end();
}

// The independence relation only needs each event's affected site, which
// its channel determines; reconstruct a label from the id.
EventLabel LabelOfChannelHead(const EventId& id) {
  EventLabel label;
  label.kind = id.channel.kind;
  label.from = id.channel.from;
  label.to = id.channel.to;
  return label;
}

struct ChannelLess {
  bool operator()(const ChannelId& a, const ChannelId& b) const {
    return std::tie(a.kind, a.from, a.to) < std::tie(b.kind, b.from, b.to);
  }
};
// Events executed so far per channel — the incremental engine's O(1)
// replacement for scanning the prefix trace (IdOf) at every node.
using ExecutedCounts = std::map<ChannelId, int64_t, ChannelLess>;

// Classification logic shared by both engines and the parallel frontier:
// counts a complete schedule, tracks the worst level, and captures the
// first violation. With `defer_minimize` (parallel subtree tasks) the
// counterexample keeps only the raw choice vector; minimization and the
// final replay happen once, after the DFS-ordered merge picks the
// globally first violation — which is exactly the one the sequential
// search would minimize, keeping the output thread-count-invariant.
struct SearchCore {
  const ExplorerConfig& config;
  bool defer_minimize = false;
  ExploreResult result;
  bool stop = false;

  void Classify(const ControlledOutcome& outcome,
                const std::vector<size_t>& choices) {
    ++result.schedules;
    result.worst = std::min(result.worst, outcome.report.level);
    if (outcome.report.level >= config.required) return;
    ++result.violations;
    if (!result.counterexample.has_value()) {
      Counterexample cx;
      if (defer_minimize) {
        cx.choices = choices;
        cx.report = outcome.report;
      } else {
        std::vector<size_t> minimized = choices;
        if (config.minimize) {
          minimized = MinimizeViolation(config.scenario, config.required,
                                        std::move(minimized),
                                        config.max_steps_per_run,
                                        &result.executions);
        }
        const ControlledOutcome final_run = RunWithChoices(
            config.scenario, minimized, config.max_steps_per_run);
        ++result.executions;
        cx.choices = std::move(minimized);
        cx.trace = final_run.trace;
        cx.report = final_run.report;
      }
      result.counterexample = std::move(cx);
    }
    if (config.stop_at_first_violation) stop = true;
  }
};

// ---------------------------------------------------------------------
// Stateless engine (share_prefixes = false): every DFS node constructs a
// fresh system and replays its prefix — the original engine, kept as the
// baseline the throughput bench measures prefix sharing against.
// ---------------------------------------------------------------------

struct ReplayDfs {
  SearchCore core;

  // Visits the node reached by `prefix`; `sleep` holds events provably
  // redundant to explore here (their interleavings are covered by
  // already-explored sibling branches).
  void Visit(std::vector<size_t>& prefix, std::vector<EventId> sleep) {
    const ExplorerConfig& config = core.config;
    ExploreResult& result = core.result;
    if (core.stop) return;
    if (result.schedules >= config.max_schedules) {
      core.stop = true;
      result.exhausted = false;
      return;
    }

    ReplayScheduler scheduler(prefix);
    ControlledSystem system(config.scenario, &scheduler);
    ++result.executions;
    const int64_t ran = system.Run(static_cast<int64_t>(prefix.size()));
    SWEEP_CHECK_MSG(ran == static_cast<int64_t>(prefix.size()),
                    "schedule prefix drained early");

    const std::vector<Scheduler::Candidate> ready = system.Ready();
    if (ready.empty()) {
      // Terminal: this execution is one complete schedule.
      ControlledOutcome outcome;
      outcome.steps = ran;
      outcome.completed = system.WarehouseIdle();
      if (outcome.completed) {
        outcome.report = system.Check();
      } else {
        outcome.report.level = ConsistencyLevel::kInconsistent;
        outcome.report.detail = "run drained with the warehouse busy";
      }
      core.Classify(outcome, prefix);
      return;
    }
    if (static_cast<int64_t>(prefix.size()) >= config.max_steps_per_run) {
      ControlledOutcome outcome;
      outcome.steps = ran;
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = "schedule exceeded the step budget";
      core.Classify(outcome, prefix);
      return;
    }

    result.max_ready =
        std::max(result.max_ready, static_cast<int64_t>(ready.size()));
    if (ready.size() > 1) ++result.decision_points;

    std::vector<EventId> ids;
    ids.reserve(ready.size());
    for (const Scheduler::Candidate& c : ready) {
      ids.push_back(IdOf(c.label, scheduler.trace()));
    }

    bool any_explorable = false;
    std::vector<EventId> done;
    for (size_t i = 0; i < ready.size(); ++i) {
      if (config.sleep_sets && Contains(sleep, ids[i])) {
        ++result.sleep_pruned;
        continue;
      }
      any_explorable = true;
      // Child sleep set: everything slept here or explored in an earlier
      // sibling stays asleep below, provided it commutes with the step
      // taken (Godefroid's sleep-set rule).
      std::vector<EventId> child_sleep;
      if (config.sleep_sets) {
        for (const EventId& z : sleep) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
        for (const EventId& z : done) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
      }
      prefix.push_back(i);
      Visit(prefix, std::move(child_sleep));
      prefix.pop_back();
      if (core.stop) return;
      done.push_back(ids[i]);
    }
    if (!any_explorable) ++result.sleep_blocked;
  }
};

// ---------------------------------------------------------------------
// Prefix-sharing engine (share_prefixes = true): ONE live system; the
// DFS steps it forward one event at a time and backtracks by restoring a
// snapshot taken at the parent decision point, so each complete schedule
// costs about one execution instead of one per tree node.
// ---------------------------------------------------------------------

// Replays a fixed task prefix, then forwards whatever choice the DFS set
// last. Unlike ReplayScheduler it records no trace — the incremental
// engine tracks choices (path) and channel counts (ExecutedCounts)
// itself, which keeps the per-step cost O(1). During the prefix replay
// it does tally per-channel counts, so a subtree task can seed its
// EventId indices to the absolute values its inherited sleep set (built
// from the root during frontier expansion) is expressed in.
class SteppingScheduler : public Scheduler {
 public:
  explicit SteppingScheduler(std::vector<size_t> prefix)
      : prefix_(std::move(prefix)) {}

  size_t Pick(const std::vector<Candidate>& ready) override {
    SWEEP_CHECK(!ready.empty());
    const bool replaying = cursor_ < prefix_.size();
    size_t choice = replaying ? prefix_[cursor_++] : next_;
    if (choice >= ready.size()) choice = ready.size() - 1;
    if (replaying) ++replay_counts_[ChannelOf(ready[choice].label)];
    return choice;
  }

  void SetNext(size_t choice) { next_ = choice; }

  // Per-channel event counts of the replayed prefix.
  const ExecutedCounts& replay_counts() const { return replay_counts_; }

 private:
  std::vector<size_t> prefix_;
  size_t cursor_ = 0;
  size_t next_ = 0;
  ExecutedCounts replay_counts_;
};

struct IncrementalDfs {
  SearchCore core;
  std::optional<SteppingScheduler> scheduler;
  std::optional<ControlledSystem> system;
  ExecutedCounts executed;
  std::vector<size_t> path;  // root-to-current choice vector

  // Everything Visit must rewind to re-enter a decision point: the
  // system's full state, the channel counts, nothing else (path is
  // maintained push/pop-wise by the DFS itself).
  struct Snapshot {
    ControlledSystem::SavedState sys;
    ExecutedCounts executed;
  };

  // Builds the system, replays `prefix` (the subtree task's root), then
  // explores the subtree under it.
  void RunFromPrefix(const std::vector<size_t>& prefix,
                     std::vector<EventId> sleep) {
    core.result.exhausted = true;
    scheduler.emplace(prefix);
    system.emplace(core.config.scenario, &*scheduler);
    if (!prefix.empty()) ++core.result.executions;
    const int64_t ran = system->Run(static_cast<int64_t>(prefix.size()));
    SWEEP_CHECK_MSG(ran == static_cast<int64_t>(prefix.size()),
                    "schedule prefix drained early");
    path = prefix;
    executed = scheduler->replay_counts();
    Visit(std::move(sleep));
  }

  void Visit(std::vector<EventId> sleep) {
    const ExplorerConfig& config = core.config;
    ExploreResult& result = core.result;
    if (core.stop) return;
    if (result.schedules >= config.max_schedules) {
      core.stop = true;
      result.exhausted = false;
      return;
    }

    const std::vector<Scheduler::Candidate> ready = system->Ready();
    if (ready.empty()) {
      ControlledOutcome outcome;
      outcome.steps = static_cast<int64_t>(path.size());
      outcome.completed = system->WarehouseIdle();
      if (outcome.completed) {
        outcome.report = system->Check();
      } else {
        outcome.report.level = ConsistencyLevel::kInconsistent;
        outcome.report.detail = "run drained with the warehouse busy";
      }
      ++result.executions;
      core.Classify(outcome, path);
      return;
    }
    if (static_cast<int64_t>(path.size()) >= config.max_steps_per_run) {
      ControlledOutcome outcome;
      outcome.steps = static_cast<int64_t>(path.size());
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = "schedule exceeded the step budget";
      ++result.executions;
      core.Classify(outcome, path);
      return;
    }

    result.max_ready =
        std::max(result.max_ready, static_cast<int64_t>(ready.size()));
    if (ready.size() > 1) ++result.decision_points;

    std::vector<EventId> ids;
    ids.reserve(ready.size());
    std::vector<size_t> explorable;
    for (size_t i = 0; i < ready.size(); ++i) {
      EventId id;
      id.channel = ChannelOf(ready[i].label);
      const auto it = executed.find(id.channel);
      id.index = it == executed.end() ? 0 : it->second;
      ids.push_back(id);
      if (config.sleep_sets && Contains(sleep, id)) {
        ++result.sleep_pruned;
        continue;
      }
      explorable.push_back(i);
    }
    if (explorable.empty()) {
      ++result.sleep_blocked;
      return;
    }

    // Only branching nodes pay for a snapshot; chains just step forward.
    std::optional<Snapshot> snap;
    if (explorable.size() > 1) {
      snap.emplace(Snapshot{system->SaveState(), executed});
    }

    std::vector<EventId> done;
    bool first = true;
    for (size_t i : explorable) {
      if (!first) {
        system->RestoreState(snap->sys);
        executed = snap->executed;
      }
      first = false;
      std::vector<EventId> child_sleep;
      if (config.sleep_sets) {
        for (const EventId& z : sleep) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
        for (const EventId& z : done) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
      }
      scheduler->SetNext(i);
      const int64_t ran = system->Run(1);
      SWEEP_CHECK_MSG(ran == 1, "ready event failed to execute");
      ++executed[ids[i].channel];
      path.push_back(i);
      Visit(std::move(child_sleep));
      path.pop_back();
      if (core.stop) return;
      done.push_back(ids[i]);
    }
  }
};

// ---------------------------------------------------------------------
// Parallel exploration: split the DFS frontier into subtree tasks, run
// them on the work-stealing pool, merge in DFS task order.
// ---------------------------------------------------------------------

// One leaf of the frontier split: either a schedule already classified
// during expansion (terminal), or a pending subtree task for the pool.
struct FrontierSlot {
  std::vector<size_t> prefix;
  std::vector<EventId> sleep;
  bool runnable = false;
  ExploreResult partial;
};

// Expands the frontier breadth-first (shallowest slot first) until at
// least `target` runnable subtree tasks exist, mirroring the DFS's
// sleep-set bookkeeping exactly so the union of the subtrees is the same
// node set the sequential search visits. Runs single-threaded; its
// per-node replays are charged to `expand_stats.executions`.
void SplitFrontier(const ExplorerConfig& config, size_t target,
                   std::list<FrontierSlot>& slots,
                   ExploreResult& expand_stats) {
  slots.push_back(FrontierSlot{{}, {}, true, ExploreResult{}});
  for (;;) {
    size_t runnable = 0;
    auto expand_it = slots.end();
    for (auto it = slots.begin(); it != slots.end(); ++it) {
      if (!it->runnable) continue;
      ++runnable;
      if (expand_it == slots.end() ||
          it->prefix.size() < expand_it->prefix.size()) {
        expand_it = it;
      }
    }
    if (runnable >= target || expand_it == slots.end()) return;

    FrontierSlot slot = std::move(*expand_it);
    ReplayScheduler scheduler(slot.prefix);
    ControlledSystem system(config.scenario, &scheduler);
    ++expand_stats.executions;
    const int64_t ran = system.Run(static_cast<int64_t>(slot.prefix.size()));
    SWEEP_CHECK_MSG(ran == static_cast<int64_t>(slot.prefix.size()),
                    "schedule prefix drained early");

    const std::vector<Scheduler::Candidate> ready = system.Ready();
    const bool over_budget =
        !ready.empty() &&
        static_cast<int64_t>(slot.prefix.size()) >= config.max_steps_per_run;
    if (ready.empty() || over_budget) {
      // The expanded node is itself a complete schedule; classify it in
      // place so the slot keeps its DFS position in the merge order.
      ControlledOutcome outcome;
      outcome.steps = ran;
      if (over_budget) {
        outcome.report.level = ConsistencyLevel::kInconsistent;
        outcome.report.detail = "schedule exceeded the step budget";
      } else {
        outcome.completed = system.WarehouseIdle();
        if (outcome.completed) {
          outcome.report = system.Check();
        } else {
          outcome.report.level = ConsistencyLevel::kInconsistent;
          outcome.report.detail = "run drained with the warehouse busy";
        }
      }
      SearchCore terminal{config, /*defer_minimize=*/true, ExploreResult{},
                          false};
      terminal.result.exhausted = true;
      ++terminal.result.executions;
      terminal.Classify(outcome, slot.prefix);
      slot.runnable = false;
      slot.partial = std::move(terminal.result);
      *expand_it = std::move(slot);
      continue;
    }

    expand_stats.max_ready = std::max(
        expand_stats.max_ready, static_cast<int64_t>(ready.size()));
    if (ready.size() > 1) ++expand_stats.decision_points;

    std::vector<EventId> ids;
    ids.reserve(ready.size());
    for (const Scheduler::Candidate& c : ready) {
      ids.push_back(IdOf(c.label, scheduler.trace()));
    }

    std::list<FrontierSlot> children;
    std::vector<EventId> done;
    for (size_t i = 0; i < ready.size(); ++i) {
      if (config.sleep_sets && Contains(slot.sleep, ids[i])) {
        ++expand_stats.sleep_pruned;
        continue;
      }
      std::vector<EventId> child_sleep;
      if (config.sleep_sets) {
        for (const EventId& z : slot.sleep) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
        for (const EventId& z : done) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
      }
      std::vector<size_t> child_prefix = slot.prefix;
      child_prefix.push_back(i);
      children.push_back(FrontierSlot{std::move(child_prefix),
                                      std::move(child_sleep), true,
                                      ExploreResult{}});
      done.push_back(ids[i]);
    }
    if (children.empty()) {
      ++expand_stats.sleep_blocked;
      slots.erase(expand_it);
      continue;
    }
    slots.splice(expand_it, std::move(children));
    slots.erase(expand_it);
  }
}

ExploreResult ExploreParallel(const ExplorerConfig& config) {
  ExploreResult expand_stats;
  expand_stats.exhausted = true;
  std::list<FrontierSlot> slots;
  // Enough tasks per worker that stealing can balance uneven subtrees.
  const size_t target = static_cast<size_t>(config.threads) * 8;
  SplitFrontier(config, target, slots, expand_stats);

  std::vector<FrontierSlot*> tasks;
  for (FrontierSlot& slot : slots) {
    if (slot.runnable) tasks.push_back(&slot);
  }

  WorkStealingPool pool(config.threads);
  pool.Run(static_cast<int64_t>(tasks.size()), [&](int64_t t) {
    FrontierSlot* slot = tasks[static_cast<size_t>(t)];
    IncrementalDfs dfs{
        SearchCore{config, /*defer_minimize=*/true, ExploreResult{}, false},
        std::nullopt,
        std::nullopt,
        {},
        {}};
    dfs.RunFromPrefix(slot->prefix, slot->sleep);
    slot->partial = std::move(dfs.core.result);
  });

  // Merge in DFS (slot) order: sums and min/max are order-independent;
  // the counterexample is order-sensitive and takes the first slot's —
  // the same violation the sequential DFS reaches first.
  ExploreResult merged = std::move(expand_stats);
  for (FrontierSlot& slot : slots) {
    const ExploreResult& r = slot.partial;
    merged.schedules += r.schedules;
    merged.executions += r.executions;
    merged.sleep_pruned += r.sleep_pruned;
    merged.sleep_blocked += r.sleep_blocked;
    merged.decision_points += r.decision_points;
    merged.violations += r.violations;
    merged.max_ready = std::max(merged.max_ready, r.max_ready);
    merged.worst = std::min(merged.worst, r.worst);
    merged.exhausted = merged.exhausted && r.exhausted;
    if (!merged.counterexample.has_value() &&
        r.counterexample.has_value()) {
      merged.counterexample = r.counterexample;
    }
  }

  // Deferred counterexample finalization: minimize the globally first
  // violation and replay it once for the trace and report.
  if (merged.counterexample.has_value()) {
    Counterexample& cx = *merged.counterexample;
    if (config.minimize) {
      cx.choices = MinimizeViolation(config.scenario, config.required,
                                     std::move(cx.choices),
                                     config.max_steps_per_run,
                                     &merged.executions);
    }
    const ControlledOutcome final_run = RunWithChoices(
        config.scenario, cx.choices, config.max_steps_per_run);
    ++merged.executions;
    cx.trace = final_run.trace;
    cx.report = final_run.report;
  }
  return merged;
}

}  // namespace

std::string Counterexample::Summary() const {
  std::string out = StrFormat(
      "violation: level %s (%s)\nchoices:",
      ConsistencyLevelName(report.level), report.detail.c_str());
  for (size_t c : choices) out += StrFormat(" %zu", c);
  out += "\nschedule:\n" + trace.ToString();
  return out;
}

ExploreResult ExploreExhaustive(const ExplorerConfig& config) {
  SWEEP_CHECK_MSG(config.threads >= 1, "threads must be positive");
  SWEEP_CHECK_MSG(config.share_prefixes || config.threads == 1,
                  "parallel exploration requires prefix sharing");
  ExploreResult result;
  if (config.threads > 1) {
    result = ExploreParallel(config);
  } else if (config.share_prefixes) {
    IncrementalDfs dfs{
        SearchCore{config, /*defer_minimize=*/false, ExploreResult{},
                   false},
        std::nullopt,
        std::nullopt,
        {},
        {}};
    dfs.RunFromPrefix({}, {});
    result = std::move(dfs.core.result);
  } else {
    ReplayDfs dfs{SearchCore{config, /*defer_minimize=*/false,
                             ExploreResult{}, false}};
    dfs.core.result.exhausted = true;
    std::vector<size_t> prefix;
    dfs.Visit(prefix, {});
    result = std::move(dfs.core.result);
  }
  if (result.schedules >= config.max_schedules) result.exhausted = false;
  if (result.violations > 0 && config.stop_at_first_violation) {
    // Stopped early by design; the space was not necessarily covered.
    result.exhausted = false;
  }
  return result;
}

ExploreResult ExploreRandom(const ExplorerConfig& config, int64_t walks,
                            uint64_t seed) {
  ExploreResult result;
  Rng root(seed);
  for (int64_t w = 0; w < walks; ++w) {
    if (result.schedules >= config.max_schedules) break;
    RandomScheduler scheduler(root.Next());
    ControlledSystem system(config.scenario, &scheduler);
    ++result.executions;
    const int64_t ran = system.Run(config.max_steps_per_run);
    ControlledOutcome outcome;
    outcome.steps = ran;
    outcome.completed = system.Drained() && system.WarehouseIdle();
    if (outcome.completed) {
      outcome.report = system.Check();
    } else {
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = system.Drained()
                                  ? "run drained with the warehouse busy"
                                  : "run exceeded the step budget";
    }
    ++result.schedules;
    result.worst = std::min(result.worst, outcome.report.level);
    for (const TraceStep& step : scheduler.trace().steps) {
      result.max_ready = std::max(result.max_ready,
                                  static_cast<int64_t>(step.ready.size()));
      if (step.ready.size() > 1) ++result.decision_points;
    }
    if (outcome.report.level >= config.required) continue;
    ++result.violations;
    if (!result.counterexample.has_value()) {
      std::vector<size_t> choices = scheduler.trace().Choices();
      if (config.minimize) {
        choices = MinimizeViolation(config.scenario, config.required,
                                    std::move(choices),
                                    config.max_steps_per_run,
                                    &result.executions);
      }
      const ControlledOutcome final_run =
          RunWithChoices(config.scenario, choices, config.max_steps_per_run);
      ++result.executions;
      Counterexample cx;
      cx.choices = std::move(choices);
      cx.trace = final_run.trace;
      cx.report = final_run.report;
      result.counterexample = std::move(cx);
    }
    if (config.stop_at_first_violation) break;
  }
  return result;
}

std::vector<size_t> MinimizeViolation(const ControlledScenario& scenario,
                                      ConsistencyLevel required,
                                      std::vector<size_t> choices,
                                      int64_t max_steps_per_run,
                                      int64_t* executions) {
  const auto violates = [&](const std::vector<size_t>& candidate) {
    if (executions != nullptr) ++(*executions);
    ControlledOutcome outcome =
        RunWithChoices(scenario, candidate, max_steps_per_run);
    return outcome.report.level < required;
  };
  const auto trim = [](std::vector<size_t>& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  };

  trim(choices);
  SWEEP_CHECK_MSG(violates(choices),
                  "MinimizeViolation requires a violating schedule");

  // Shortest violating prefix, defaults beyond it. Violation is not
  // monotone in the prefix length, so scan from the front and take the
  // first prefix that still violates (the full vector always does).
  for (size_t k = 0; k < choices.size(); ++k) {
    const std::vector<size_t> candidate(
        choices.begin(), choices.begin() + static_cast<ptrdiff_t>(k));
    if (violates(candidate)) {
      choices.resize(k);
      break;
    }
  }

  // Lower every choice as far as the violation allows.
  for (size_t i = 0; i < choices.size(); ++i) {
    while (choices[i] > 0) {
      std::vector<size_t> candidate = choices;
      --candidate[i];
      if (!violates(candidate)) break;
      choices = std::move(candidate);
    }
  }
  trim(choices);
  return choices;
}

}  // namespace sweepmv
