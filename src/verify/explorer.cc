#include "verify/explorer.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/str.h"

namespace sweepmv {

namespace {

// Stable identity of a ready candidate: its channel plus how many events
// of that channel the prefix already executed.
EventId IdOf(const EventLabel& label, const ScheduleTrace& prefix_trace) {
  EventId id;
  id.channel = ChannelOf(label);
  for (const TraceStep& step : prefix_trace.steps) {
    if (ChannelOf(step.label) == id.channel) ++id.index;
  }
  return id;
}

bool Contains(const std::vector<EventId>& set, const EventId& id) {
  return std::find(set.begin(), set.end(), id) != set.end();
}

struct Dfs {
  const ExplorerConfig& config;
  ExploreResult result;
  bool stop = false;

  void Classify(const ControlledOutcome& outcome,
                const std::vector<size_t>& choices) {
    ++result.schedules;
    result.worst = std::min(result.worst, outcome.report.level);
    if (outcome.report.level >= config.required) return;
    ++result.violations;
    if (!result.counterexample.has_value()) {
      std::vector<size_t> minimized = choices;
      if (config.minimize) {
        minimized = MinimizeViolation(config.scenario, config.required,
                                      std::move(minimized),
                                      config.max_steps_per_run,
                                      &result.executions);
      }
      ControlledOutcome final_run = RunWithChoices(
          config.scenario, minimized, config.max_steps_per_run);
      ++result.executions;
      Counterexample cx;
      cx.choices = std::move(minimized);
      cx.trace = final_run.trace;
      cx.report = final_run.report;
      result.counterexample = std::move(cx);
    }
    if (config.stop_at_first_violation) stop = true;
  }

  // Visits the node reached by `prefix`; `sleep` holds events provably
  // redundant to explore here (their interleavings are covered by
  // already-explored sibling branches).
  void Visit(std::vector<size_t>& prefix, std::vector<EventId> sleep) {
    if (stop) return;
    if (result.schedules >= config.max_schedules) {
      stop = true;
      result.exhausted = false;
      return;
    }

    ReplayScheduler scheduler(prefix);
    ControlledSystem system(config.scenario, &scheduler);
    ++result.executions;
    int64_t ran = system.Run(static_cast<int64_t>(prefix.size()));
    SWEEP_CHECK_MSG(ran == static_cast<int64_t>(prefix.size()),
                    "schedule prefix drained early");

    std::vector<Scheduler::Candidate> ready = system.Ready();
    if (ready.empty()) {
      // Terminal: this execution is one complete schedule.
      ControlledOutcome outcome;
      outcome.steps = ran;
      outcome.completed = system.WarehouseIdle();
      if (outcome.completed) {
        outcome.report = system.Check();
      } else {
        outcome.report.level = ConsistencyLevel::kInconsistent;
        outcome.report.detail = "run drained with the warehouse busy";
      }
      Classify(outcome, prefix);
      return;
    }
    if (static_cast<int64_t>(prefix.size()) >= config.max_steps_per_run) {
      ControlledOutcome outcome;
      outcome.steps = ran;
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = "schedule exceeded the step budget";
      Classify(outcome, prefix);
      return;
    }

    result.max_ready =
        std::max(result.max_ready, static_cast<int64_t>(ready.size()));
    if (ready.size() > 1) ++result.decision_points;

    std::vector<EventId> ids;
    ids.reserve(ready.size());
    for (const Scheduler::Candidate& c : ready) {
      ids.push_back(IdOf(c.label, scheduler.trace()));
    }

    bool any_explorable = false;
    std::vector<EventId> done;
    for (size_t i = 0; i < ready.size(); ++i) {
      if (config.sleep_sets && Contains(sleep, ids[i])) {
        ++result.sleep_pruned;
        continue;
      }
      any_explorable = true;
      // Child sleep set: everything slept here or explored in an earlier
      // sibling stays asleep below, provided it commutes with the step
      // taken (Godefroid's sleep-set rule).
      std::vector<EventId> child_sleep;
      if (config.sleep_sets) {
        for (const EventId& z : sleep) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
        for (const EventId& z : done) {
          if (Independent(LabelOfChannelHead(z), ready[i].label)) {
            child_sleep.push_back(z);
          }
        }
      }
      prefix.push_back(i);
      Visit(prefix, std::move(child_sleep));
      prefix.pop_back();
      if (stop) return;
      done.push_back(ids[i]);
    }
    if (!any_explorable) ++result.sleep_blocked;
  }

  // The independence relation only needs each event's affected site,
  // which its channel determines; reconstruct a label from the id.
  static EventLabel LabelOfChannelHead(const EventId& id) {
    EventLabel label;
    label.kind = id.channel.kind;
    label.from = id.channel.from;
    label.to = id.channel.to;
    return label;
  }
};

}  // namespace

std::string Counterexample::Summary() const {
  std::string out = StrFormat(
      "violation: level %s (%s)\nchoices:",
      ConsistencyLevelName(report.level), report.detail.c_str());
  for (size_t c : choices) out += StrFormat(" %zu", c);
  out += "\nschedule:\n" + trace.ToString();
  return out;
}

ExploreResult ExploreExhaustive(const ExplorerConfig& config) {
  Dfs dfs{config, ExploreResult{}, false};
  dfs.result.exhausted = true;
  std::vector<size_t> prefix;
  dfs.Visit(prefix, {});
  if (dfs.stop && dfs.result.schedules >= config.max_schedules) {
    dfs.result.exhausted = false;
  }
  if (dfs.stop && dfs.result.violations > 0 &&
      config.stop_at_first_violation) {
    // Stopped early by design; the space was not necessarily covered.
    dfs.result.exhausted = false;
  }
  return dfs.result;
}

ExploreResult ExploreRandom(const ExplorerConfig& config, int64_t walks,
                            uint64_t seed) {
  ExploreResult result;
  Rng root(seed);
  for (int64_t w = 0; w < walks; ++w) {
    if (result.schedules >= config.max_schedules) break;
    RandomScheduler scheduler(root.Next());
    ControlledSystem system(config.scenario, &scheduler);
    ++result.executions;
    int64_t ran = system.Run(config.max_steps_per_run);
    ControlledOutcome outcome;
    outcome.steps = ran;
    outcome.completed = system.Drained() && system.WarehouseIdle();
    if (outcome.completed) {
      outcome.report = system.Check();
    } else {
      outcome.report.level = ConsistencyLevel::kInconsistent;
      outcome.report.detail = system.Drained()
                                  ? "run drained with the warehouse busy"
                                  : "run exceeded the step budget";
    }
    ++result.schedules;
    result.worst = std::min(result.worst, outcome.report.level);
    for (const TraceStep& step : scheduler.trace().steps) {
      result.max_ready = std::max(result.max_ready,
                                  static_cast<int64_t>(step.ready.size()));
      if (step.ready.size() > 1) ++result.decision_points;
    }
    if (outcome.report.level >= config.required) continue;
    ++result.violations;
    if (!result.counterexample.has_value()) {
      std::vector<size_t> choices = scheduler.trace().Choices();
      if (config.minimize) {
        choices = MinimizeViolation(config.scenario, config.required,
                                    std::move(choices),
                                    config.max_steps_per_run,
                                    &result.executions);
      }
      ControlledOutcome final_run =
          RunWithChoices(config.scenario, choices, config.max_steps_per_run);
      ++result.executions;
      Counterexample cx;
      cx.choices = std::move(choices);
      cx.trace = final_run.trace;
      cx.report = final_run.report;
      result.counterexample = std::move(cx);
    }
    if (config.stop_at_first_violation) break;
  }
  return result;
}

std::vector<size_t> MinimizeViolation(const ControlledScenario& scenario,
                                      ConsistencyLevel required,
                                      std::vector<size_t> choices,
                                      int64_t max_steps_per_run,
                                      int64_t* executions) {
  auto violates = [&](const std::vector<size_t>& candidate) {
    if (executions != nullptr) ++(*executions);
    ControlledOutcome outcome =
        RunWithChoices(scenario, candidate, max_steps_per_run);
    return outcome.report.level < required;
  };
  auto trim = [](std::vector<size_t>& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  };

  trim(choices);
  SWEEP_CHECK_MSG(violates(choices),
                  "MinimizeViolation requires a violating schedule");

  // Shortest violating prefix, defaults beyond it. Violation is not
  // monotone in the prefix length, so scan from the front and take the
  // first prefix that still violates (the full vector always does).
  for (size_t k = 0; k < choices.size(); ++k) {
    std::vector<size_t> candidate(
        choices.begin(), choices.begin() + static_cast<ptrdiff_t>(k));
    if (violates(candidate)) {
      choices.resize(k);
      break;
    }
  }

  // Lower every choice as far as the violation allows.
  for (size_t i = 0; i < choices.size(); ++i) {
    while (choices[i] > 0) {
      std::vector<size_t> candidate = choices;
      --candidate[i];
      if (!violates(candidate)) break;
      choices = std::move(candidate);
    }
  }
  trim(choices);
  return choices;
}

}  // namespace sweepmv
