// Schedule-space explorer: the discrete-event simulator as a model
// checker.
//
// Treats one maintenance scenario (view, initial bases, a fixed set of
// source transactions) as a transition system whose nondeterminism is the
// scheduler's pick among ready events, and explores it:
//
//   * ExploreExhaustive — depth-first enumeration of every
//     FIFO-respecting interleaving, optionally pruned by sleep sets
//     (partial-order reduction over the "different affected site" =>
//     independent relation of verify/schedule.h), classified against the
//     paper's consistency lattice by consistency/checker. Sound for trace
//     properties: commuting independent events changes no site-local
//     history, so every Mazurkiewicz trace class is classified by its
//     explored representative.
//
//     Two execution engines share the enumeration logic. The default
//     prefix-sharing engine keeps ONE live system and backtracks by
//     snapshot/restore (ControlledSystem::SaveState), so each complete
//     schedule costs roughly one execution — docs/verification.md,
//     "Scaling exploration". share_prefixes=false selects the original
//     stateless engine (every DFS node re-constructs the system and
//     replays its prefix), kept as the honest baseline the throughput
//     bench measures the speedup against. threads>1 splits the DFS
//     frontier into subtree tasks executed on a work-stealing pool
//     (verify/pool.h); results merge in DFS task order, so schedule
//     counts, verdicts, pruning stats and the minimized counterexample
//     are byte-identical for every thread count and steal order.
//
//   * ExploreRandom — seeded uniform random walks for scenarios whose
//     schedule space is too large to enumerate.
//
// A schedule whose run classifies below `required` is a violation; the
// first one found is greedily minimized (trailing defaults trimmed,
// choices lowered while the violation persists) and returned as a
// replayable counterexample — a protocol-level race report.

#ifndef SWEEPMV_VERIFY_EXPLORER_H_
#define SWEEPMV_VERIFY_EXPLORER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/controlled_run.h"
#include "verify/effects.h"

namespace sweepmv {

struct ExplorerConfig {
  ControlledScenario scenario;
  // Minimum acceptable consistency level; classifying below it makes a
  // schedule a violation. Set to the algorithm's PromisedConsistency to
  // check Table 1's promise, or kConvergent to hunt for divergence only.
  ConsistencyLevel required = ConsistencyLevel::kConvergent;
  // Sleep-set partial-order reduction (exhaustive mode). Off = naive
  // enumeration of every interleaving, for measuring the reduction.
  bool sleep_sets = true;
  // Budget of complete schedules; exploration stops (exhausted=false)
  // when exceeded.
  int64_t max_schedules = 1'000'000;
  // Per-run step budget; a run that exceeds it classifies as a violation
  // (runaway schedule).
  int64_t max_steps_per_run = 100'000;
  // Stop at (and minimize) the first violation instead of counting all.
  // With threads > 1 the stop is per subtree task, not global: every task
  // still runs to completion (counts stay deterministic), each stopping
  // at its own first violation.
  bool stop_at_first_violation = true;
  // Greedily minimize the first violating schedule.
  bool minimize = true;
  // Prefix-sharing engine (exhaustive mode): backtrack by state
  // snapshot/restore instead of re-constructing the system and replaying
  // the prefix at every DFS node. False selects the stateless baseline
  // engine; same schedules, verdicts and pruning stats either way.
  bool share_prefixes = true;
  // Worker threads for exhaustive exploration (requires share_prefixes).
  // The frontier is split into subtree tasks ahead of time and merged in
  // DFS order, so every thread count produces identical results.
  int threads = 1;
  // Undo-log backtracking (prefix-sharing engine): every controlled step
  // records the mutations it makes; re-entering a decision point pops
  // them back to the branch watermark — O(changes since the branch)
  // instead of O(system state) per backtrack. Full snapshots remain as
  // periodic safety anchors (below).
  bool use_undo = true;
  // Branch depths divisible by this take a full SaveState anchor and
  // backtrack by restore + discard; all other branches unwind the undo
  // log. 1 anchors every branch (the pure-snapshot engine); 0 never
  // anchors. Only meaningful with use_undo.
  int snapshot_anchor_every = 8;
  // State-space deduplication: fingerprint the system at every DFS node
  // and prune branches reaching an already-classified state, merging the
  // cached subtree's counts so totals match a dedup-off search. Composes
  // with sleep sets (the sleep set is part of the lookup key). Requires
  // share_prefixes.
  bool dedup_states = false;
  // Debug mode: on a dedup hit, explore the subtree anyway and assert the
  // recomputed summary matches the cached one (collision detector).
  bool verify_on_hit = false;
  // Refined independence (verify/effects.h): when set, the sleep-set
  // search consults the statically inferred effect table on top of the
  // site rule — the extra grants (e.g. a controlled warehouse crash
  // commuting with a source transaction) prune schedules the site rule
  // must enumerate. Null = site rule only. The pointer must outlive the
  // exploration and the index must be built for this config's scenario.
  const EffectsIndex* effects = nullptr;
  // Debug soundness oracle: after every executed step, drain the undo
  // log's observation probes and assert the set of members that actually
  // changed is contained in the static effect table's write footprint
  // for that handler. Catches an under-approximated table on the first
  // schedule that exercises the missing effect. Requires `effects`,
  // use_undo and the prefix-sharing engine.
  bool effects_oracle = false;
  // Parallel exploration falls back to the sequential engine when the
  // initial frontier split yields fewer runnable subtree tasks than this
  // (the split exhausted a tiny schedule space, or could not fan out);
  // the result records parallel_fallback. 0 disables the fallback.
  int64_t sequential_fallback_threshold = 2;
};

struct Counterexample {
  // Choice vector replaying the violation (RunWithChoices).
  std::vector<size_t> choices;
  // Full trace of the (minimized) violating run.
  ScheduleTrace trace;
  ConsistencyReport report;

  std::string Summary() const;
};

struct ExploreResult {
  // Complete schedules executed and classified.
  int64_t schedules = 0;
  // Controlled executions charged: one per complete schedule, plus every
  // fresh construct-and-replay (each interior DFS node in the stateless
  // engine, each frontier expansion in parallel mode) and every
  // minimization probe. executions / schedules is the replay-redundancy
  // factor the throughput bench reports — ~1 with prefix sharing, ~the
  // mean tree depth without.
  int64_t executions = 0;
  // Branches skipped because their event was in the sleep set, and
  // executions abandoned with every ready event sleeping. Zero with
  // sleep_sets off.
  int64_t sleep_pruned = 0;
  int64_t sleep_blocked = 0;
  // Independence queries the effect table granted where the site rule
  // alone said dependent (config.effects set). Like `executions` it
  // counts work actually performed, so a dedup hit — which skips the
  // queries — does not replay it; totals are engine-dependent.
  int64_t refined_grants = 0;
  // Interior decision points (ready set > 1) encountered.
  int64_t decision_points = 0;
  int64_t max_ready = 0;
  // The whole space was covered within the schedule budget (exhaustive
  // mode; random mode always reports false).
  bool exhausted = false;
  int64_t violations = 0;
  // Weakest level any schedule reached (kComplete when nothing ran).
  ConsistencyLevel worst = ConsistencyLevel::kComplete;
  std::optional<Counterexample> counterexample;
  // --- Undo-log backtracking (use_undo) ---
  // Undo entries recorded across the search, watermark rollbacks taken,
  // and full snapshot anchors paid. entries/rollbacks is the mean
  // changes-per-backtrack the bench reports.
  int64_t undo_entries = 0;
  int64_t undo_rollbacks = 0;
  int64_t anchor_snapshots = 0;
  // --- State-space dedup (dedup_states) ---
  // Subtrees pruned by a visited-state hit, completed subtrees inserted,
  // and nodes skipped because a pending event had no content digest
  // (conservatively treated as unique).
  int64_t dedup_hits = 0;
  int64_t dedup_inserts = 0;
  int64_t dedup_unhashable = 0;
  // Parallel exploration fell back to the sequential engine because the
  // frontier split produced too few subtree tasks (see
  // sequential_fallback_threshold).
  bool parallel_fallback = false;
};

ExploreResult ExploreExhaustive(const ExplorerConfig& config);

ExploreResult ExploreRandom(const ExplorerConfig& config, int64_t walks,
                            uint64_t seed);

// Greedy minimization of a violating choice vector: trim trailing
// defaults, then try lowering every choice toward 0, keeping each change
// that still violates `required`. Returns the minimized vector;
// `executions`, if given, accumulates the probe-run count.
std::vector<size_t> MinimizeViolation(const ControlledScenario& scenario,
                                      ConsistencyLevel required,
                                      std::vector<size_t> choices,
                                      int64_t max_steps_per_run,
                                      int64_t* executions = nullptr);

}  // namespace sweepmv

#endif  // SWEEPMV_VERIFY_EXPLORER_H_
