#include "verify/pool.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace sweepmv {

namespace {

// One worker's task queue. A plain mutex per deque keeps the protocol
// obviously correct (owner and thieves serialize on it); the explorer's
// tasks are whole subtree explorations, so queue operations are a
// vanishing fraction of the work and a lock-free Chase-Lev deque would
// buy nothing measurable here.
struct WorkerQueue {
  std::mutex mu;
  std::deque<int64_t> tasks;
};

}  // namespace

WorkStealingPool::WorkStealingPool(int threads)
    : threads_(threads < 1 ? 1 : threads) {}

void WorkStealingPool::Run(int64_t num_tasks,
                           const std::function<void(int64_t)>& body) {
  if (num_tasks <= 0) return;
  if (threads_ == 1 || num_tasks == 1) {
    for (int64_t t = 0; t < num_tasks; ++t) body(t);
    return;
  }

  std::vector<WorkerQueue> queues(static_cast<size_t>(threads_));
  for (int64_t t = 0; t < num_tasks; ++t) {
    queues[static_cast<size_t>(t % threads_)].tasks.push_back(t);
  }
  std::atomic<int64_t> remaining{num_tasks};

  const auto worker = [&](int self) {
    while (remaining.load(std::memory_order_acquire) > 0) {
      int64_t task = -1;
      {
        WorkerQueue& own = queues[static_cast<size_t>(self)];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.tasks.empty()) {
          task = own.tasks.front();
          own.tasks.pop_front();
        }
      }
      if (task < 0) {
        // Steal from the back of the nearest non-empty victim.
        for (int v = 1; v < threads_ && task < 0; ++v) {
          WorkerQueue& victim =
              queues[static_cast<size_t>((self + v) % threads_)];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (!victim.tasks.empty()) {
            task = victim.tasks.back();
            victim.tasks.pop_back();
          }
        }
      }
      if (task < 0) {
        // Everything claimed but not yet finished; spin politely until
        // the stragglers drain (their completion drops `remaining`).
        std::this_thread::yield();
        continue;
      }
      body(task);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> extra;
  extra.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) extra.emplace_back(worker, i);
  worker(0);
  for (std::thread& t : extra) t.join();
  SWEEP_CHECK(remaining.load() == 0);
}

}  // namespace sweepmv
