// Work-stealing worker pool for the schedule-space explorer.
//
// Executes a fixed, pre-split set of independent tasks on N threads.
// Tasks are dealt round-robin into per-worker deques; a worker pops its
// own deque from the front (preserving the deal order, which follows the
// explorer's DFS order — deeper, cheaper subtrees first) and steals from
// the *back* of a victim's deque when its own runs dry, so thieves take
// the work their victim would reach last.
//
// Determinism contract: the pool never influences *what* is computed,
// only *when*. Each task writes exclusively to its own result slot, so
// any aggregation done in fixed task order after Run() returns is
// byte-identical regardless of thread count or steal interleaving — the
// property tests/explorer_determinism_test.cc pins down.

#ifndef SWEEPMV_VERIFY_POOL_H_
#define SWEEPMV_VERIFY_POOL_H_

#include <cstdint>
#include <functional>

namespace sweepmv {

class WorkStealingPool {
 public:
  // `threads` <= 1 degenerates to inline sequential execution.
  explicit WorkStealingPool(int threads);

  // Runs body(0) .. body(num_tasks - 1), each exactly once, distributed
  // over the pool (the calling thread participates as worker 0). Returns
  // when every task has finished. `body` must confine its writes to
  // task-local state; it is invoked concurrently from multiple threads.
  void Run(int64_t num_tasks, const std::function<void(int64_t)>& body);

  int threads() const { return threads_; }

 private:
  int threads_;
};

}  // namespace sweepmv

#endif  // SWEEPMV_VERIFY_POOL_H_
