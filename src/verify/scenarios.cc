#include "verify/scenarios.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace sweepmv {

namespace {

ViewDef PaperView() {
  return ViewDef::Builder()
      .AddRelation("R1", Schema::AllInts({"A", "B"}))
      .AddRelation("R2", Schema::AllInts({"C", "D"}))
      .AddRelation("R3", Schema::AllInts({"E", "F"}))
      .JoinOn(0, 1, 0)
      .JoinOn(1, 1, 0)
      .Project({3, 5})
      .Build();
}

std::vector<Relation> PaperBases(const ViewDef& view) {
  return {
      Relation::OfInts(view.rel_schema(0), {{1, 3}, {2, 3}}),
      Relation::OfInts(view.rel_schema(1), {{3, 7}}),
      Relation::OfInts(view.rel_schema(2), {{5, 6}, {7, 8}}),
  };
}

}  // namespace

ControlledScenario PaperExampleScenario(Algorithm algorithm) {
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  ControlledScenario scenario{algorithm, std::move(view),
                              std::move(bases),
                              {
                                  {1, {UpdateOp::Insert(IntTuple({3, 5}))}},
                                  {2, {UpdateOp::Delete(IntTuple({7, 8}))}},
                                  {0, {UpdateOp::Delete(IntTuple({2, 3}))}},
                              },
                              WarehouseConfig{},
                              /*latency=*/1000};
  return scenario;
}

ControlledScenario EcaAnomalyScenario(bool compensation) {
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  ControlledScenario scenario{Algorithm::kEca, std::move(view),
                              std::move(bases),
                              {
                                  {1, {UpdateOp::Insert(IntTuple({3, 5}))}},
                                  {0, {UpdateOp::Insert(IntTuple({9, 3}))}},
                              },
                              WarehouseConfig{},
                              /*latency=*/1000};
  scenario.warehouse.eca_compensation = compensation;
  return scenario;
}

ControlledScenario FaultyPaperExampleScenario(Algorithm algorithm) {
  ControlledScenario scenario = PaperExampleScenario(algorithm);
  // Cadence 2 exercises all three recovery paths in one scenario: the
  // checkpoint restore, a non-empty WAL replay, and in-flight query
  // re-issue under the new epoch.
  scenario.warehouse.base.checkpoint_every = 2;
  scenario.warehouse_crashes = 1;
  return scenario;
}

ControlledScenario UnfilteredRecoveryScenario() {
  // Pipelined SWEEP is the algorithm where the epoch filter is load-
  // bearing: query-id assignment depends on answer arrival order, so
  // after recovery rewinds the id counter, id k can name a different
  // sweep's hop than it did in the dead incarnation. Two updates on the
  // same relation give the two concurrent sweeps identical span
  // evolution, so the mix-up corrupts the view silently instead of
  // tripping a span check. (Sequential SWEEP is immune — its id-to-query
  // mapping is deterministic — which the filter-on certifications show.)
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  ControlledScenario scenario{Algorithm::kPipelinedSweep, std::move(view),
                              std::move(bases),
                              {
                                  {1, {UpdateOp::Insert(IntTuple({3, 5}))}},
                                  {1, {UpdateOp::Insert(IntTuple({3, 7}))}},
                              },
                              WarehouseConfig{},
                              /*latency=*/1000};
  // Cadence 1 keeps the durable image current with every arrival, so the
  // only divergence between the dead and restored incarnations is which
  // concurrent sweep claims the next query id — exactly the hazard the
  // epoch filter closes. (A staler checkpoint would also rewind past
  // arrivals and the collision could cross span shapes, turning the
  // anomaly into a loud span-check failure instead of silent corruption.)
  scenario.warehouse.base.checkpoint_every = 1;
  scenario.warehouse.base.filter_stale_epochs = false;
  scenario.warehouse_crashes = 1;
  return scenario;
}

ControlledScenario GeneratedMultiViewScenario(Algorithm primary,
                                              Algorithm second,
                                              int updates, bool crash) {
  SWEEP_CHECK(updates >= 1);
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  // Round-robin join-relevant insertions: every generated tuple touches
  // the join keys the initial bases already chain through (B=3, C=3,
  // E=5), so each update drives real incremental maintenance — sweeps
  // that query the other sources — instead of dying in an empty join.
  std::vector<ControlledTxn> txns;
  for (int i = 0; i < updates; ++i) {
    const int rel = i % 3;
    switch (rel) {
      case 0:
        txns.push_back({0, {UpdateOp::Insert(IntTuple({10 + i, 3}))}});
        break;
      case 1:
        txns.push_back({1, {UpdateOp::Insert(IntTuple({3, 5}))}});
        break;
      default:
        txns.push_back({2, {UpdateOp::Insert(IntTuple({5, 40 + i}))}});
        break;
    }
  }
  ControlledScenario scenario{primary,
                              std::move(view),
                              std::move(bases),
                              std::move(txns),
                              WarehouseConfig{},
                              /*latency=*/1000};
  scenario.extra_warehouses.push_back(second);
  if (crash) {
    scenario.warehouse.base.checkpoint_every = 2;
    // Two crash choice points, not one: each crash placement is a fresh
    // degree of schedule freedom, and schedules that crash at different
    // points converge to identical states once recovery completes — the
    // double crash is what makes this space both huge (millions of
    // interleavings at updates=1) and diamond-rich enough for the
    // visited-state table to collapse it by an order of magnitude.
    scenario.warehouse_crashes = 2;
  }
  return scenario;
}

ControlledScenario LossyPaperExampleScenario(Algorithm algorithm) {
  ControlledScenario scenario = PaperExampleScenario(algorithm);
  // One update and a short retry budget keep the timer-augmented
  // schedule space enumerable.
  scenario.txns.resize(1);
  scenario.max_message_drops = 1;
  scenario.warehouse.base.query_timeout = 8'000;
  scenario.warehouse.base.query_retry_limit = 2;
  return scenario;
}

}  // namespace sweepmv
