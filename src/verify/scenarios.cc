#include "verify/scenarios.h"

namespace sweepmv {

namespace {

ViewDef PaperView() {
  return ViewDef::Builder()
      .AddRelation("R1", Schema::AllInts({"A", "B"}))
      .AddRelation("R2", Schema::AllInts({"C", "D"}))
      .AddRelation("R3", Schema::AllInts({"E", "F"}))
      .JoinOn(0, 1, 0)
      .JoinOn(1, 1, 0)
      .Project({3, 5})
      .Build();
}

std::vector<Relation> PaperBases(const ViewDef& view) {
  return {
      Relation::OfInts(view.rel_schema(0), {{1, 3}, {2, 3}}),
      Relation::OfInts(view.rel_schema(1), {{3, 7}}),
      Relation::OfInts(view.rel_schema(2), {{5, 6}, {7, 8}}),
  };
}

}  // namespace

ControlledScenario PaperExampleScenario(Algorithm algorithm) {
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  ControlledScenario scenario{algorithm, std::move(view),
                              std::move(bases),
                              {
                                  {1, {UpdateOp::Insert(IntTuple({3, 5}))}},
                                  {2, {UpdateOp::Delete(IntTuple({7, 8}))}},
                                  {0, {UpdateOp::Delete(IntTuple({2, 3}))}},
                              },
                              WarehouseConfig{},
                              /*latency=*/1000};
  return scenario;
}

ControlledScenario EcaAnomalyScenario(bool compensation) {
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  ControlledScenario scenario{Algorithm::kEca, std::move(view),
                              std::move(bases),
                              {
                                  {1, {UpdateOp::Insert(IntTuple({3, 5}))}},
                                  {0, {UpdateOp::Insert(IntTuple({9, 3}))}},
                              },
                              WarehouseConfig{},
                              /*latency=*/1000};
  scenario.warehouse.eca_compensation = compensation;
  return scenario;
}

}  // namespace sweepmv
