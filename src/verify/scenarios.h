// Canonical scenarios for the schedule-space explorer.
//
// The paper's Section 5.2 worked example (Figure 5) — the three-relation
// join view with one update at each source — is the exhaustive-mode
// benchmark scenario: small enough to enumerate, rich enough to exercise
// every interference pattern the proofs argue about. The anomaly
// scenario drives the same view through ECA with its compensating offset
// terms disabled, which is the naive maintenance Section 3 shows to be
// incorrect; the explorer finds the racing interleaving and produces the
// minimized counterexample.

#ifndef SWEEPMV_VERIFY_SCENARIOS_H_
#define SWEEPMV_VERIFY_SCENARIOS_H_

#include "verify/controlled_run.h"

namespace sweepmv {

// V = Π[D,F] (R1[A,B] ⋈(B=C) R2[C,D] ⋈(D=E) R3[E,F]) with Figure 5's
// initial bases and the three concurrent updates of Section 5.2 (insert
// R2(3,5), delete R3(7,8), delete R1(2,3)), under `algorithm`.
ControlledScenario PaperExampleScenario(Algorithm algorithm);

// The same view with two interfering updates — insert R2(3,5), insert
// R1(9,3), the Section 4 error-term example — under ECA with
// `compensation`. With compensation off there exist schedules whose
// contaminated answer is applied raw and double-counts the joint tuple:
// the update anomaly, reachable by the explorer.
ControlledScenario EcaAnomalyScenario(bool compensation);

}  // namespace sweepmv

#endif  // SWEEPMV_VERIFY_SCENARIOS_H_
