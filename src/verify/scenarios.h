// Canonical scenarios for the schedule-space explorer.
//
// The paper's Section 5.2 worked example (Figure 5) — the three-relation
// join view with one update at each source — is the exhaustive-mode
// benchmark scenario: small enough to enumerate, rich enough to exercise
// every interference pattern the proofs argue about. The anomaly
// scenario drives the same view through ECA with its compensating offset
// terms disabled, which is the naive maintenance Section 3 shows to be
// incorrect; the explorer finds the racing interleaving and produces the
// minimized counterexample.

#ifndef SWEEPMV_VERIFY_SCENARIOS_H_
#define SWEEPMV_VERIFY_SCENARIOS_H_

#include "verify/controlled_run.h"

namespace sweepmv {

// V = Π[D,F] (R1[A,B] ⋈(B=C) R2[C,D] ⋈(D=E) R3[E,F]) with Figure 5's
// initial bases and the three concurrent updates of Section 5.2 (insert
// R2(3,5), delete R3(7,8), delete R1(2,3)), under `algorithm`.
ControlledScenario PaperExampleScenario(Algorithm algorithm);

// The same view with two interfering updates — insert R2(3,5), insert
// R1(9,3), the Section 4 error-term example — under ECA with
// `compensation`. With compensation off there exist schedules whose
// contaminated answer is applied raw and double-counts the joint tuple:
// the update anomaly, reachable by the explorer.
ControlledScenario EcaAnomalyScenario(bool compensation);

// Figure 5's scenario hardened with crash-recovery: the warehouse keeps a
// durable checkpoint (cut every 2 WAL entries) and one crash/recover
// event enters the schedule as an internal choice point, so exhaustive
// exploration certifies the algorithm's consistency promise across every
// interleaving containing the crash — checkpoint restore, WAL replay and
// epoch-tagged query re-issue included.
ControlledScenario FaultyPaperExampleScenario(Algorithm algorithm);

// Ablation of the recovery epoch filter, under Pipelined SWEEP with two
// updates on one relation: the restarted warehouse accepts answers
// produced for the dead incarnation's queries. Recovery rewinds the
// query-id counter, and with concurrent sweeps the post-crash id
// assignment depends on answer arrival order, so a stale in-flight
// answer can resolve a re-issued query that belongs to the *other*
// sweep — the explorer finds the interleaving where the view silently
// diverges. With the filter on, the same schedule space is certified
// clean.
ControlledScenario UnfilteredRecoveryScenario();

// One update racing one silent query-class message loss, healed by the
// warehouse's timeout re-issue (capped exponential backoff). Exhaustive
// exploration certifies the loss is harmless wherever it lands.
ControlledScenario LossyPaperExampleScenario(Algorithm algorithm);

// Generated stress scenario for the exploration engines themselves: the
// paper's three-relation join view, `updates` join-relevant insertions
// spread round-robin across the relations, a second warehouse
// maintaining the same view under `second` (every source ships each
// update to both sites), and — when `crash` — two crash/recover choice
// points at the primary (checkpoint cadence 2). The doubled message
// traffic and the crash placements blow the interleaving lattice up far
// past the worked example (millions of naive schedules at updates=1),
// big enough that frontier splitting amortizes, and diamond-rich:
// schedules that crash at different points converge to identical
// post-recovery states, so the visited-state table collapses the space
// by an order of magnitude. `updates` must be >= 1.
ControlledScenario GeneratedMultiViewScenario(Algorithm primary,
                                              Algorithm second,
                                              int updates, bool crash);

}  // namespace sweepmv

#endif  // SWEEPMV_VERIFY_SCENARIOS_H_
