#include "verify/schedule.h"

#include "common/str.h"

namespace sweepmv {

ChannelId ChannelOf(const EventLabel& label) {
  switch (label.kind) {
    case EventKind::kDelivery:
      return ChannelId{EventKind::kDelivery, label.from, label.to};
    case EventKind::kTxn:
      return ChannelId{EventKind::kTxn, -1, label.to};
    case EventKind::kInternal:
      break;
  }
  return ChannelId{EventKind::kInternal, -1, -1};
}

int AffectedSite(const EventLabel& label) {
  switch (label.kind) {
    case EventKind::kDelivery:
    case EventKind::kTxn:
      return label.to;
    case EventKind::kInternal:
      break;
  }
  return -2;
}

bool Independent(const EventLabel& a, const EventLabel& b) {
  const int sa = AffectedSite(a);
  const int sb = AffectedSite(b);
  if (sa == -2 || sb == -2) return false;
  return sa != sb;
}

std::string LabelToString(const EventLabel& label) {
  switch (label.kind) {
    case EventKind::kDelivery:
      return StrFormat("%s %d->%d", label.what, label.from, label.to);
    case EventKind::kTxn:
      return StrFormat("txn@%d", label.to);
    case EventKind::kInternal:
      break;
  }
  return "internal";
}

std::string ScheduleTrace::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    const TraceStep& step = steps[i];
    out += StrFormat("%3zu: %s  (pick %zu of {", i,
                     LabelToString(step.label).c_str(), step.chosen);
    for (size_t j = 0; j < step.ready.size(); ++j) {
      if (j > 0) out += ", ";
      out += LabelToString(step.ready[j]);
    }
    out += "})\n";
  }
  return out;
}

std::vector<size_t> ScheduleTrace::Choices() const {
  std::vector<size_t> choices;
  choices.reserve(steps.size());
  for (const TraceStep& step : steps) choices.push_back(step.chosen);
  return choices;
}

}  // namespace sweepmv
