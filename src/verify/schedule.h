// Schedule vocabulary of the schedule-space explorer.
//
// A controlled run (sim/simulator.h controlled mode) is a sequence of
// scheduler picks. This header names the pieces the explorer reasons
// about:
//   * ChannelId / EventId — a stable identity for "the k-th event of
//     channel c", invariant across replays of the same prefix;
//   * the independence relation partial-order reduction leans on: two
//     events commute iff they execute at different sites;
//   * ScheduleTrace — the recorded run (every step's label, ready set and
//     chosen index), serializable so counterexample replays can be
//     compared byte-for-byte.

#ifndef SWEEPMV_VERIFY_SCHEDULE_H_
#define SWEEPMV_VERIFY_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace sweepmv {

// One FIFO channel of the controlled simulator: a directed network link,
// one site's transaction stream, or the shared internal channel.
struct ChannelId {
  EventKind kind = EventKind::kInternal;
  int from = -1;
  int to = -1;

  friend bool operator==(const ChannelId& a, const ChannelId& b) {
    return a.kind == b.kind && a.from == b.from && a.to == b.to;
  }
};

ChannelId ChannelOf(const EventLabel& label);

// The site whose state an event mutates: the destination site for
// deliveries, the executing site for transactions, -2 ("everywhere") for
// internal events.
int AffectedSite(const EventLabel& label);

// The k-th event (0-based, in channel order) of one channel — stable
// across re-executions of the same schedule prefix, which is what lets
// sleep sets transfer between branches.
struct EventId {
  ChannelId channel;
  int64_t index = 0;

  friend bool operator==(const EventId& a, const EventId& b) {
    return a.channel == b.channel && a.index == b.index;
  }
};

// Two events commute iff they execute at different sites: a delivery only
// mutates its destination (any messages its handler emits are *appended*
// to outgoing channels, which both orders do identically), a transaction
// only mutates its source. Internal events are conservatively dependent
// on everything.
bool Independent(const EventLabel& a, const EventLabel& b);

// One executed step of a controlled run.
struct TraceStep {
  EventLabel label;                // the event that ran
  SimTime when = 0;                // its virtual timestamp
  size_t chosen = 0;               // index picked within the ready set
  std::vector<EventLabel> ready;   // the ready set the scheduler saw
};

struct ScheduleTrace {
  std::vector<TraceStep> steps;

  // Canonical serialization: one line per step with the ready set and the
  // pick. Two runs of the same schedule must serialize identically — the
  // byte-identical-replay regression test diffs these strings.
  std::string ToString() const;

  // The choice vector that reproduces this run (one entry per step).
  std::vector<size_t> Choices() const;
};

std::string LabelToString(const EventLabel& label);

}  // namespace sweepmv

#endif  // SWEEPMV_VERIFY_SCHEDULE_H_
