#include "workload/scenario_spec.h"

#include "common/str.h"

namespace sweepmv {

TxnMix MixOf(const std::vector<ScheduledTxn>& txns) {
  TxnMix mix;
  for (const ScheduledTxn& txn : txns) {
    for (const UpdateOp& op : txn.ops) {
      if (op.kind == UpdateOp::Kind::kInsert) {
        ++mix.inserts;
      } else {
        ++mix.deletes;
      }
    }
  }
  return mix;
}

std::string DescribeTxn(const ScheduledTxn& txn) {
  std::vector<std::string> parts;
  for (const UpdateOp& op : txn.ops) {
    parts.push_back(
        (op.kind == UpdateOp::Kind::kInsert ? "+" : "-") +
        op.tuple.ToDisplayString());
  }
  return StrFormat("t=%lld R%d ", static_cast<long long>(txn.at),
                   txn.relation) +
         Join(parts, " ");
}

}  // namespace sweepmv
