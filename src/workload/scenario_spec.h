// Workload building blocks: a scheduled source-local transaction.

#ifndef SWEEPMV_WORKLOAD_SCENARIO_SPEC_H_
#define SWEEPMV_WORKLOAD_SCENARIO_SPEC_H_

#include <string>
#include <vector>

#include "sim/time.h"
#include "source/update.h"

namespace sweepmv {

// One source-local transaction to execute at virtual time `at` against the
// base relation `relation`.
struct ScheduledTxn {
  SimTime at = 0;
  int relation = -1;
  std::vector<UpdateOp> ops;
};

// Counts ops by kind; handy for reports.
struct TxnMix {
  int64_t inserts = 0;
  int64_t deletes = 0;
};
TxnMix MixOf(const std::vector<ScheduledTxn>& txns);

std::string DescribeTxn(const ScheduledTxn& txn);

}  // namespace sweepmv

#endif  // SWEEPMV_WORKLOAD_SCENARIO_SPEC_H_
