#include "workload/schema_gen.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/str.h"

namespace sweepmv {

ViewDef MakeChainView(const ChainSpec& spec) {
  SWEEP_CHECK(spec.num_relations >= 1);
  ViewDef::Builder builder;
  for (int r = 0; r < spec.num_relations; ++r) {
    builder.AddRelation(
        StrFormat("R%d", r),
        Schema::AllInts({StrFormat("K%d", r), StrFormat("A%d", r),
                         StrFormat("B%d", r)}));
  }
  // Chain condition: B of relation r equals A of relation r+1.
  for (int r = 0; r + 1 < spec.num_relations; ++r) {
    builder.JoinOn(r, /*left_attr=*/2, /*right_attr=*/1);
  }
  if (spec.narrow_projection) {
    int last_b = 3 * spec.num_relations - 1;
    builder.Project({0, last_b});
  }
  return builder.Build();
}

std::vector<Relation> MakeInitialBases(const ViewDef& view,
                                       const ChainSpec& spec) {
  SWEEP_CHECK(view.num_relations() == spec.num_relations);
  Rng rng(spec.seed);
  std::vector<Relation> bases;
  bases.reserve(static_cast<size_t>(spec.num_relations));
  for (int r = 0; r < spec.num_relations; ++r) {
    Rng local = rng.Fork();
    Relation rel(view.rel_schema(r));
    for (int i = 0; i < spec.initial_tuples; ++i) {
      rel.Add(IntTuple({i, local.Uniform(0, spec.join_domain - 1),
                        local.Uniform(0, spec.join_domain - 1)}),
              1);
    }
    bases.push_back(std::move(rel));
  }
  return bases;
}

int64_t FirstFreshKey(const ChainSpec& spec) { return spec.initial_tuples; }

}  // namespace sweepmv
