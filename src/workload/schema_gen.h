// Chain-schema and initial-database generation.
//
// Every generated scenario uses the paper's shape: n base relations joined
// in a chain. Relation r has schema [K, A, B] (all int): K is a per-
// relation unique key (the Strobe family's key-attribute assumption), A
// joins with the left neighbour's B. Join attributes are drawn from a
// small domain so joins actually produce view tuples; the domain size is
// the selectivity knob.

#ifndef SWEEPMV_WORKLOAD_SCHEMA_GEN_H_
#define SWEEPMV_WORKLOAD_SCHEMA_GEN_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"
#include "relational/view_def.h"

namespace sweepmv {

struct ChainSpec {
  int num_relations = 3;
  // Tuples per base relation initially.
  int initial_tuples = 24;
  // Join attributes are uniform over [0, join_domain).
  int64_t join_domain = 8;
  uint64_t seed = 42;
  // If true, project the view onto the first relation's key and the last
  // relation's B attribute (a "narrow" view); otherwise keep every
  // attribute (identity projection).
  bool narrow_projection = false;
};

// Builds the chain view over `spec.num_relations` relations.
ViewDef MakeChainView(const ChainSpec& spec);

// Generates the initial base relations (distinct keys, random join
// attributes), deterministically from the seed.
std::vector<Relation> MakeInitialBases(const ViewDef& view,
                                       const ChainSpec& spec);

// Key values used by MakeInitialBases are 0 .. initial_tuples-1; workload
// generators must start fresh keys here to preserve uniqueness.
int64_t FirstFreshKey(const ChainSpec& spec);

}  // namespace sweepmv

#endif  // SWEEPMV_WORKLOAD_SCHEMA_GEN_H_
