#include "workload/update_gen.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace sweepmv {

std::vector<ScheduledTxn> GenerateWorkload(
    const ViewDef& view, const std::vector<Relation>& initial_bases,
    const ChainSpec& chain, const WorkloadSpec& spec) {
  SWEEP_CHECK(static_cast<int>(initial_bases.size()) ==
              view.num_relations());
  SWEEP_CHECK(spec.max_ops_per_txn >= 1);
  SWEEP_CHECK(spec.insert_fraction >= 0.0 && spec.insert_fraction <= 1.0);

  Rng rng(spec.seed);
  // Track what each relation will contain at execution time (events fire
  // in schedule order, so sequential simulation here is faithful).
  std::vector<std::vector<Tuple>> present(initial_bases.size());
  for (size_t r = 0; r < initial_bases.size(); ++r) {
    for (const auto& [t, c] : initial_bases[r].SortedEntries()) {
      for (int64_t i = 0; i < c; ++i) present[r].push_back(t);
    }
  }
  int64_t next_key = FirstFreshKey(chain);

  std::vector<ScheduledTxn> txns;
  txns.reserve(static_cast<size_t>(spec.total_txns));
  double clock = static_cast<double>(spec.start_time);
  for (int i = 0; i < spec.total_txns; ++i) {
    clock += rng.Exponential(spec.mean_interarrival);

    ScheduledTxn txn;
    txn.at = static_cast<SimTime>(std::llround(clock));
    txn.relation =
        spec.relation_skew > 0.0
            ? static_cast<int>(
                  rng.Zipf(view.num_relations(), spec.relation_skew))
            : static_cast<int>(rng.Uniform(0, view.num_relations() - 1));
    auto& pool = present[static_cast<size_t>(txn.relation)];

    int ops = static_cast<int>(rng.Uniform(1, spec.max_ops_per_txn));
    for (int k = 0; k < ops; ++k) {
      bool insert = rng.Bernoulli(spec.insert_fraction) || pool.empty();
      if (insert) {
        auto join_value = [&]() {
          return spec.value_skew > 0.0
                     ? rng.Zipf(chain.join_domain, spec.value_skew)
                     : rng.Uniform(0, chain.join_domain - 1);
        };
        Tuple t = IntTuple({next_key++, join_value(), join_value()});
        pool.push_back(t);
        txn.ops.push_back(UpdateOp::Insert(std::move(t)));
      } else {
        size_t victim = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1));
        txn.ops.push_back(UpdateOp::Delete(pool[victim]));
        pool[victim] = pool.back();
        pool.pop_back();
      }
    }
    txns.push_back(std::move(txn));
  }
  return txns;
}

}  // namespace sweepmv
