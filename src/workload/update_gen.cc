#include "workload/update_gen.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace sweepmv {

std::vector<ScheduledTxn> GenerateWorkload(
    const ViewDef& view, const std::vector<Relation>& initial_bases,
    const ChainSpec& chain, const WorkloadSpec& spec) {
  SWEEP_CHECK(static_cast<int>(initial_bases.size()) ==
              view.num_relations());
  SWEEP_CHECK(spec.max_ops_per_txn >= 1);
  SWEEP_CHECK(spec.insert_fraction >= 0.0 && spec.insert_fraction <= 1.0);
  SWEEP_CHECK(spec.key_skew >= 0.0 && spec.key_skew < 1.0);
  SWEEP_CHECK(spec.key_domain >= 1);

  Rng rng(spec.seed);
  // Track what each relation will contain at execution time (events fire
  // in schedule order, so sequential simulation here is faithful).
  std::vector<std::vector<Tuple>> present(initial_bases.size());
  for (size_t r = 0; r < initial_bases.size(); ++r) {
    for (const auto& [t, c] : initial_bases[r].SortedEntries()) {
      for (int64_t i = 0; i < c; ++i) present[r].push_back(t);
    }
  }
  int64_t next_key = FirstFreshKey(chain);
  // Hot-key mode: the live tuple of each occupied key slot, per relation.
  // Slots start at FirstFreshKey, above every initial-base key, so
  // uniqueness holds against the initial tuples too. std::map keeps the
  // schedule deterministic under a fixed seed.
  std::vector<std::map<int64_t, Tuple>> hot_keys(initial_bases.size());

  std::vector<ScheduledTxn> txns;
  txns.reserve(static_cast<size_t>(spec.total_txns));
  double clock = static_cast<double>(spec.start_time);
  for (int i = 0; i < spec.total_txns; ++i) {
    clock += rng.Exponential(spec.mean_interarrival);

    ScheduledTxn txn;
    txn.at = static_cast<SimTime>(std::llround(clock));
    txn.relation =
        spec.relation_skew > 0.0
            ? static_cast<int>(
                  rng.Zipf(view.num_relations(), spec.relation_skew))
            : static_cast<int>(rng.Uniform(0, view.num_relations() - 1));
    auto& pool = present[static_cast<size_t>(txn.relation)];

    int ops = static_cast<int>(rng.Uniform(1, spec.max_ops_per_txn));
    for (int k = 0; k < ops; ++k) {
      if (spec.key_skew > 0.0) {
        auto join_value = [&]() {
          return spec.value_skew > 0.0
                     ? rng.Zipf(chain.join_domain, spec.value_skew)
                     : rng.Uniform(0, chain.join_domain - 1);
        };
        auto& hot = hot_keys[static_cast<size_t>(txn.relation)];
        const int64_t key = FirstFreshKey(chain) +
                            rng.Zipf(spec.key_domain, spec.key_skew);
        auto slot = hot.find(key);
        if (slot == hot.end()) {
          Tuple t = IntTuple({key, join_value(), join_value()});
          hot.emplace(key, t);
          txn.ops.push_back(UpdateOp::Insert(std::move(t)));
        } else if (rng.Bernoulli(spec.insert_fraction)) {
          // Modify: replace the slot's tuple, keeping its key.
          txn.ops.push_back(UpdateOp::Delete(slot->second));
          Tuple t = IntTuple({key, join_value(), join_value()});
          slot->second = t;
          txn.ops.push_back(UpdateOp::Insert(std::move(t)));
        } else {
          txn.ops.push_back(UpdateOp::Delete(slot->second));
          hot.erase(slot);
        }
        continue;
      }
      bool insert = rng.Bernoulli(spec.insert_fraction) || pool.empty();
      if (insert) {
        auto join_value = [&]() {
          return spec.value_skew > 0.0
                     ? rng.Zipf(chain.join_domain, spec.value_skew)
                     : rng.Uniform(0, chain.join_domain - 1);
        };
        Tuple t = IntTuple({next_key++, join_value(), join_value()});
        pool.push_back(t);
        txn.ops.push_back(UpdateOp::Insert(std::move(t)));
      } else {
        size_t victim = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1));
        txn.ops.push_back(UpdateOp::Delete(pool[victim]));
        pool[victim] = pool.back();
        pool.pop_back();
      }
    }
    txns.push_back(std::move(txn));
  }
  return txns;
}

}  // namespace sweepmv
