// Update-stream generation.
//
// Produces a deterministic schedule of source-local transactions against a
// chain database. Inserts always use fresh keys ("unique key" discipline —
// what the Strobe family's correctness rests on); deletes pick tuples that
// will exist at execution time. Inter-arrival times are exponential, so
// the ratio of mean inter-arrival to channel latency controls the
// concurrency level K the paper's analysis revolves around.

#ifndef SWEEPMV_WORKLOAD_UPDATE_GEN_H_
#define SWEEPMV_WORKLOAD_UPDATE_GEN_H_

#include <cstdint>
#include <vector>

#include "relational/relation.h"
#include "relational/view_def.h"
#include "workload/schema_gen.h"
#include "workload/scenario_spec.h"

namespace sweepmv {

struct WorkloadSpec {
  int total_txns = 40;
  // Probability each op is an insert (deletes fall back to inserts when
  // the target relation is empty).
  double insert_fraction = 0.6;
  // Mean exponential inter-arrival time (virtual ticks).
  double mean_interarrival = 2000.0;
  // Ops per transaction are uniform in [1, max_ops_per_txn].
  int max_ops_per_txn = 1;
  // Updates start this long into the run.
  SimTime start_time = 0;
  // Zipf skew in (0,1) concentrates updates on low-index relations
  // (hot-source workloads); 0 = uniform.
  double relation_skew = 0.0;
  // Zipf skew in (0,1) concentrates join-attribute values on low values
  // (hot-key workloads, higher join fan-out on the hot keys); 0 = uniform.
  double value_skew = 0.0;
  // Zipf skew in (0,1) over a bounded per-relation working set of
  // key_domain key slots: each op draws a slot; an absent slot is
  // inserted, a present one is modified (delete + reinsert with fresh
  // join values) with probability insert_fraction, else deleted. High
  // skew makes a few hot keys churn repeatedly — exactly what batching
  // cancels (BatchPipeline) — while keys stay unique per relation.
  // 0 keeps the unbounded fresh-key discipline above.
  double key_skew = 0.0;
  int64_t key_domain = 256;
  uint64_t seed = 7;
};

std::vector<ScheduledTxn> GenerateWorkload(const ViewDef& view,
                                           const std::vector<Relation>&
                                               initial_bases,
                                           const ChainSpec& chain,
                                           const WorkloadSpec& spec);

}  // namespace sweepmv

#endif  // SWEEPMV_WORKLOAD_UPDATE_GEN_H_
