#include "relational/aggregate.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;
using testing_util::System;

Schema ViewSchema() { return Schema::AllInts({"D", "F"}); }

TEST(AggregateTest, CountByGroup) {
  MaintainedAggregate agg(ViewSchema(), AggSpec{{0}, AggFn::kCount, -1});
  Relation view(ViewSchema());
  view.Add(IntTuple({5, 6}), 2);
  view.Add(IntTuple({5, 9}), 1);
  view.Add(IntTuple({7, 8}), 4);
  agg.Initialize(view);

  EXPECT_EQ(agg.num_groups(), 2u);
  EXPECT_EQ(agg.ValueOf(IntTuple({5})), 3);
  EXPECT_EQ(agg.ValueOf(IntTuple({7})), 4);
  EXPECT_EQ(agg.ValueOf(IntTuple({999})), 0);
}

TEST(AggregateTest, SumByGroup) {
  MaintainedAggregate agg(ViewSchema(), AggSpec{{0}, AggFn::kSum, 1});
  Relation view(ViewSchema());
  view.Add(IntTuple({5, 6}), 2);   // contributes 12
  view.Add(IntTuple({5, 10}), 1);  // contributes 10
  agg.Initialize(view);
  EXPECT_EQ(agg.ValueOf(IntTuple({5})), 22);
}

TEST(AggregateTest, GlobalAggregateEmptyGroupBy) {
  MaintainedAggregate agg(ViewSchema(), AggSpec{{}, AggFn::kCount, -1});
  Relation view(ViewSchema());
  view.Add(IntTuple({5, 6}), 2);
  view.Add(IntTuple({7, 8}), 1);
  agg.Initialize(view);
  EXPECT_EQ(agg.ValueOf(Tuple()), 3);
  EXPECT_EQ(agg.num_groups(), 1u);
}

TEST(AggregateTest, DeltaMaintenanceMatchesRecomputation) {
  MaintainedAggregate agg(ViewSchema(), AggSpec{{0}, AggFn::kCount, -1});
  Relation view(ViewSchema());
  view.Add(IntTuple({5, 6}), 2);
  agg.Initialize(view);

  Relation delta(ViewSchema());
  delta.Add(IntTuple({5, 6}), -1);
  delta.Add(IntTuple({7, 8}), 3);
  agg.ApplyDelta(delta);

  EXPECT_EQ(agg.ValueOf(IntTuple({5})), 1);
  EXPECT_EQ(agg.ValueOf(IntTuple({7})), 3);

  // Group vanishes when its multiplicity hits zero.
  Relation delta2(ViewSchema());
  delta2.Add(IntTuple({5, 6}), -1);
  agg.ApplyDelta(delta2);
  EXPECT_FALSE(agg.HasGroup(IntTuple({5})));
  EXPECT_EQ(agg.num_groups(), 1u);
}

TEST(AggregateTest, ResultRelationShape) {
  MaintainedAggregate agg(ViewSchema(), AggSpec{{1}, AggFn::kCount, -1});
  Relation view(ViewSchema());
  view.Add(IntTuple({5, 6}), 2);
  view.Add(IntTuple({9, 6}), 1);
  agg.Initialize(view);

  Relation result = agg.Result();
  EXPECT_EQ(result.schema().attr(0).name, "F");
  EXPECT_EQ(result.schema().attr(1).name, "agg");
  EXPECT_EQ(result.CountOf(IntTuple({6, 3})), 1);
}

TEST(AggregateTest, SumWithNegativeValuesAndDeletes) {
  Schema schema = Schema::AllInts({"G", "V"});
  MaintainedAggregate agg(schema, AggSpec{{0}, AggFn::kSum, 1});
  Relation view(schema);
  view.Add(IntTuple({1, -5}), 1);
  view.Add(IntTuple({1, 8}), 2);
  agg.Initialize(view);
  EXPECT_EQ(agg.ValueOf(IntTuple({1})), 11);

  Relation delta(schema);
  delta.Add(IntTuple({1, 8}), -2);
  agg.ApplyDelta(delta);
  EXPECT_EQ(agg.ValueOf(IntTuple({1})), -5);
  EXPECT_TRUE(agg.HasGroup(IntTuple({1})));  // multiplicity 1, sum -5
}

TEST(AggregateTest, ObservesWarehouseInstallsEndToEnd) {
  // Attach the aggregate to a SWEEP warehouse via the install observer
  // and verify it tracks the view exactly through a concurrent run.
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1000));

  MaintainedAggregate agg(sys.view_def().view_schema(),
                          AggSpec{{0}, AggFn::kCount, -1});
  agg.Initialize(sys.warehouse().view());
  sys.warehouse().SetInstallObserver(
      [&agg](const Relation& delta, const std::vector<int64_t>& ids) {
        (void)ids;
        agg.ApplyDelta(delta);
      });

  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(400, 2, IntTuple({7, 8}));
  sys.ScheduleDelete(500, 0, IntTuple({2, 3}));
  sys.Run();

  // Recompute the aggregate from the final view for comparison.
  MaintainedAggregate fresh(sys.view_def().view_schema(),
                            AggSpec{{0}, AggFn::kCount, -1});
  fresh.Initialize(sys.warehouse().view());
  EXPECT_EQ(agg.Result(), fresh.Result());
  EXPECT_EQ(agg.ValueOf(IntTuple({5})), 1);  // {(5,6)[1]} remains
}

TEST(AggregateTest, ObserverWorksWithBatchInstallingAlgorithms) {
  // Strobe installs absolute views; the observer receives the computed
  // difference and the aggregate must still track exactly.
  System sys(Algorithm::kStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1500));
  MaintainedAggregate agg(sys.view_def().view_schema(),
                          AggSpec{{0}, AggFn::kCount, -1});
  agg.Initialize(sys.warehouse().view());
  sys.warehouse().SetInstallObserver(
      [&agg](const Relation& delta, const std::vector<int64_t>& ids) {
        (void)ids;
        agg.ApplyDelta(delta);
      });

  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleInsert(200, 0, IntTuple({9, 3}));
  sys.ScheduleDelete(400, 2, IntTuple({7, 8}));
  sys.Run();

  MaintainedAggregate fresh(sys.view_def().view_schema(),
                            AggSpec{{0}, AggFn::kCount, -1});
  fresh.Initialize(sys.warehouse().view());
  EXPECT_EQ(agg.Result(), fresh.Result());
}

}  // namespace
}  // namespace sweepmv
