// Randomized properties of the counting algebra and the incremental-
// maintenance identities built on it. These are the algebraic facts every
// algorithm in core/ silently relies on; each is checked against
// from-scratch recomputation over randomized relations and deltas.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "relational/operators.h"
#include "relational/partial_delta.h"
#include "workload/schema_gen.h"

namespace sweepmv {
namespace {

Relation RandomRelation(Rng& rng, const Schema& schema, int rows,
                        int64_t domain, bool allow_negative) {
  Relation r(schema);
  for (int i = 0; i < rows; ++i) {
    std::vector<Value> values;
    for (size_t a = 0; a < schema.arity(); ++a) {
      values.emplace_back(rng.Uniform(0, domain - 1));
    }
    int64_t count = rng.Uniform(1, 3);
    if (allow_negative && rng.Bernoulli(0.4)) count = -count;
    r.Add(Tuple(std::move(values)), count);
  }
  return r;
}

class AlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgebraProperty, JoinDistributesOverUnion) {
  Rng rng(GetParam());
  Schema ab = Schema::AllInts({"A", "B"});
  Schema cd = Schema::AllInts({"C", "D"});
  Relation r = RandomRelation(rng, ab, 20, 6, false);
  Relation delta = RandomRelation(rng, ab, 6, 6, true);
  Relation s = RandomRelation(rng, cd, 20, 6, false);

  // (R + Δ) ⋈ S == R ⋈ S + Δ ⋈ S — the identity incremental view
  // maintenance is built on (Section 3).
  Relation lhs = Join(Union(r, delta), s, {{1, 0}});
  Relation rhs = Union(Join(r, s, {{1, 0}}), Join(delta, s, {{1, 0}}));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(AlgebraProperty, JoinAssociativityAlongTheChain) {
  Rng rng(GetParam() + 100);
  Schema ab = Schema::AllInts({"A", "B"});
  Schema cd = Schema::AllInts({"C", "D"});
  Schema ef = Schema::AllInts({"E", "F"});
  Relation r1 = RandomRelation(rng, ab, 15, 5, false);
  Relation r2 = RandomRelation(rng, cd, 15, 5, true);
  Relation r3 = RandomRelation(rng, ef, 15, 5, false);

  // (R1 ⋈ R2) ⋈ R3 == R1 ⋈ (R2 ⋈ R3): why left-then-right sweeps and
  // right-then-left extensions agree.
  Relation left_first =
      Join(Join(r1, r2, {{1, 0}}), r3, {{3, 0}});
  Relation right_first =
      Join(r1, Join(r2, r3, {{1, 0}}), {{1, 0}});
  EXPECT_EQ(left_first, right_first);
}

TEST_P(AlgebraProperty, ProjectionCommutesWithUnion) {
  Rng rng(GetParam() + 200);
  Schema ab = Schema::AllInts({"A", "B", "C"});
  Relation r = RandomRelation(rng, ab, 20, 4, true);
  Relation s = RandomRelation(rng, ab, 20, 4, true);
  EXPECT_EQ(Project(Union(r, s), {1, 2}),
            Union(Project(r, {1, 2}), Project(s, {1, 2})));
}

TEST_P(AlgebraProperty, SelectionCommutesWithUnion) {
  Rng rng(GetParam() + 300);
  Schema ab = Schema::AllInts({"A", "B"});
  Relation r = RandomRelation(rng, ab, 20, 4, true);
  Relation s = RandomRelation(rng, ab, 20, 4, true);
  Predicate pred = Predicate::AttrCmpConst(0, CmpOp::kLe,
                                           Value(int64_t{2}));
  EXPECT_EQ(Select(Union(r, s), pred),
            Union(Select(r, pred), Select(s, pred)));
}

TEST_P(AlgebraProperty, MergeNegatedIsInverse) {
  Rng rng(GetParam() + 400);
  Schema ab = Schema::AllInts({"A", "B"});
  Relation r = RandomRelation(rng, ab, 25, 5, true);
  Relation copy = r;
  Relation delta = RandomRelation(rng, ab, 10, 5, true);
  copy.Merge(delta);
  copy.MergeNegated(delta);
  EXPECT_EQ(copy, r);
}

TEST_P(AlgebraProperty, IncrementalDeltaEqualsRecomputation) {
  // The end-to-end identity SWEEP computes: V(R + Δ) - V(R) must equal
  // the swept delta Π σ (R1 ⋈ … ⋈ ΔRi ⋈ … ⋈ Rn), for random databases,
  // random update positions and random (mixed-sign) deltas.
  uint64_t seed = GetParam();
  Rng rng(seed + 500);

  ChainSpec spec;
  spec.num_relations = 3 + static_cast<int>(seed % 3);
  spec.initial_tuples = 12;
  spec.join_domain = 4;
  spec.seed = seed;
  spec.narrow_projection = (seed % 2) == 0;
  ViewDef view = MakeChainView(spec);
  std::vector<Relation> bases = MakeInitialBases(view, spec);

  int i = static_cast<int>(rng.Uniform(0, view.num_relations() - 1));
  // A mixed delta: new tuples plus deletions of existing ones.
  Relation delta(view.rel_schema(i));
  delta.Add(IntTuple({1000, rng.Uniform(0, 3), rng.Uniform(0, 3)}), 1);
  delta.Add(IntTuple({1001, rng.Uniform(0, 3), rng.Uniform(0, 3)}), 2);
  auto existing = bases[static_cast<size_t>(i)].SortedEntries();
  delta.Add(existing[static_cast<size_t>(rng.Uniform(
                0, static_cast<int64_t>(existing.size()) - 1))]
                .first,
            -1);

  // Recomputation route.
  std::vector<const Relation*> before;
  for (const Relation& b : bases) before.push_back(&b);
  Relation v_before = view.EvaluateFull(before);
  std::vector<Relation> after = bases;
  after[static_cast<size_t>(i)].Merge(delta);
  std::vector<const Relation*> after_ptrs;
  for (const Relation& b : after) after_ptrs.push_back(&b);
  Relation v_after = view.EvaluateFull(after_ptrs);
  Relation recomputed_delta = Subtract(v_after, v_before);

  // Sweep route (left then right, against the OLD base states).
  PartialDelta pd = PartialDelta::ForRelation(view, i, delta);
  for (int j = i - 1; j >= 0; --j) {
    pd = ExtendLeft(view, bases[static_cast<size_t>(j)], pd);
  }
  for (int j = i + 1; j < view.num_relations(); ++j) {
    pd = ExtendRight(view, pd, bases[static_cast<size_t>(j)]);
  }
  Relation swept_delta = view.FinishFullSpan(pd.rel);

  EXPECT_EQ(swept_delta, recomputed_delta)
      << "seed=" << seed << " i=" << i;
}

TEST_P(AlgebraProperty, ParallelMergeEqualsSequentialSweep) {
  uint64_t seed = GetParam();
  Rng rng(seed + 900);

  ChainSpec spec;
  spec.num_relations = 4;
  spec.initial_tuples = 10;
  spec.join_domain = 4;
  spec.seed = seed;
  ViewDef view = MakeChainView(spec);
  std::vector<Relation> bases = MakeInitialBases(view, spec);

  int i = 1 + static_cast<int>(rng.Uniform(0, 1));  // interior relation
  Relation delta(view.rel_schema(i));
  delta.Add(IntTuple({2000, rng.Uniform(0, 3), rng.Uniform(0, 3)}), 2);
  delta.Add(IntTuple({2001, rng.Uniform(0, 3), rng.Uniform(0, 3)}), -1);

  PartialDelta seq = PartialDelta::ForRelation(view, i, delta);
  for (int j = i - 1; j >= 0; --j) {
    seq = ExtendLeft(view, bases[static_cast<size_t>(j)], seq);
  }
  for (int j = i + 1; j < view.num_relations(); ++j) {
    seq = ExtendRight(view, seq, bases[static_cast<size_t>(j)]);
  }

  PartialDelta left = PartialDelta::ForRelation(view, i, delta);
  for (int j = i - 1; j >= 0; --j) {
    left = ExtendLeft(view, bases[static_cast<size_t>(j)], left);
  }
  Relation unit(view.rel_schema(i));
  for (const auto& [t, c] : delta.entries()) {
    (void)c;
    unit.Add(t, 1);
  }
  PartialDelta right = PartialDelta::ForRelation(view, i, unit);
  for (int j = i + 1; j < view.num_relations(); ++j) {
    right = ExtendRight(view, right, bases[static_cast<size_t>(j)]);
  }

  EXPECT_EQ(MergeParallelSweeps(view, i, left, right).rel, seq.rel)
      << "seed=" << seed << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u),
                         [](const ::testing::TestParamInfo<uint64_t>& i) {
                           return "s" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace sweepmv
