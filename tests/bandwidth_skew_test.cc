// The bandwidth latency model and workload skew knobs.

#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "sim/channel.h"
#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;
using testing_util::System;

TEST(BandwidthTest, SampleScalesWithPayload) {
  Rng rng(1);
  LatencyModel model = LatencyModel::Bandwidth(100, 0, 5);
  EXPECT_EQ(model.Sample(rng, 0), 100);
  EXPECT_EQ(model.Sample(rng, 10), 150);
  EXPECT_EQ(model.Sample(rng, 100), 600);
}

TEST(BandwidthTest, ChannelChargesPerTuple) {
  Channel ch(LatencyModel::Bandwidth(100, 0, 2), Rng(1));
  EXPECT_EQ(ch.NextArrival(0, 0), 100);
  EXPECT_EQ(ch.NextArrival(200, 50), 400);
}

TEST(BandwidthTest, FifoStillHoldsWithVariablePayloads) {
  Channel ch(LatencyModel::Bandwidth(10, 0, 100), Rng(1));
  SimTime big = ch.NextArrival(0, 50);   // slow bulk message
  SimTime small = ch.NextArrival(1, 0);  // fast message right behind it
  EXPECT_GE(small, big);  // must not overtake
}

TEST(BandwidthTest, BulkSnapshotsPayMoreWallClockThanDeltas) {
  // Under a bandwidth-limited network, the recompute baseline's full
  // snapshots cost real time; SWEEP's small deltas barely notice.
  auto finish = [](Algorithm a) {
    ScenarioConfig config;
    config.algorithm = a;
    config.chain.num_relations = 3;
    config.chain.initial_tuples = 64;
    config.chain.join_domain = 64;
    config.workload.total_txns = 8;
    config.workload.mean_interarrival = 30000;
    config.latency = LatencyModel::Bandwidth(500, 0, 100);
    RunResult r = RunScenario(config);
    EXPECT_EQ(r.final_view, r.expected_view) << AlgorithmName(a);
    return r.mean_incorporation_delay;
  };
  EXPECT_GT(finish(Algorithm::kRecompute), 2 * finish(Algorithm::kSweep));
}

TEST(BandwidthTest, SweepStaysCompleteUnderBandwidthModel) {
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()),
             LatencyModel::Bandwidth(300, 200, 50));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(200, 2, IntTuple({7, 8}));
  sys.ScheduleDelete(400, 0, IntTuple({2, 3}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
}

TEST(SkewTest, RelationSkewConcentratesUpdates) {
  ChainSpec chain;
  chain.num_relations = 6;
  ViewDef view = MakeChainView(chain);
  std::vector<Relation> bases = MakeInitialBases(view, chain);
  WorkloadSpec spec;
  spec.total_txns = 600;
  spec.relation_skew = 0.9;
  spec.seed = 3;
  auto txns = GenerateWorkload(view, bases, chain, spec);

  std::vector<int> hits(6, 0);
  for (const ScheduledTxn& txn : txns) {
    ++hits[static_cast<size_t>(txn.relation)];
  }
  // Relation 0 must dominate relation 5 heavily.
  EXPECT_GT(hits[0], 5 * std::max(hits[5], 1));
  // And the stream is still well-formed.
  for (int h : hits) EXPECT_GE(h, 0);
}

TEST(SkewTest, ValueSkewConcentratesJoinAttributes) {
  ChainSpec chain;
  chain.join_domain = 16;
  ViewDef view = MakeChainView(chain);
  std::vector<Relation> bases = MakeInitialBases(view, chain);
  WorkloadSpec spec;
  spec.total_txns = 500;
  spec.insert_fraction = 1.0;
  spec.value_skew = 0.9;
  spec.seed = 5;
  auto txns = GenerateWorkload(view, bases, chain, spec);

  int low = 0;
  int total = 0;
  for (const ScheduledTxn& txn : txns) {
    for (const UpdateOp& op : txn.ops) {
      ++total;
      if (op.tuple.at(1).AsInt() < 4) ++low;
    }
  }
  // Far more than the uniform 25% land in the bottom quarter.
  EXPECT_GT(low, total * 6 / 10);
}

TEST(SkewTest, SkewedWorkloadsStayConsistent) {
  for (Algorithm a : {Algorithm::kSweep, Algorithm::kNestedSweep}) {
    ScenarioConfig config;
    config.algorithm = a;
    config.chain.num_relations = 4;
    config.chain.initial_tuples = 10;
    config.chain.join_domain = 5;
    config.workload.total_txns = 30;
    config.workload.mean_interarrival = 1200;
    config.workload.relation_skew = 0.8;
    config.workload.value_skew = 0.7;
    config.latency = LatencyModel::Jittered(700, 400);
    RunResult r = RunScenario(config);
    EXPECT_EQ(r.final_view, r.expected_view)
        << AlgorithmName(a) << ": " << r.consistency.detail;
    EXPECT_GE(static_cast<int>(r.consistency.level),
              static_cast<int>(PromisedConsistency(a)))
        << AlgorithmName(a) << ": " << r.consistency.detail;
  }
}

}  // namespace
}  // namespace sweepmv
