#include "sim/channel.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sweepmv {
namespace {

TEST(ChannelTest, FixedLatency) {
  Channel ch(LatencyModel::Fixed(100), Rng(1));
  EXPECT_EQ(ch.NextArrival(0), 100);
  EXPECT_EQ(ch.NextArrival(50), 150);
  EXPECT_EQ(ch.messages_sent(), 2);
}

TEST(ChannelTest, FifoUnderJitter) {
  // With heavy jitter, later sends must never be scheduled before earlier
  // ones on the same link.
  Channel ch(LatencyModel::Jittered(10, 1000), Rng(42));
  SimTime prev = 0;
  for (SimTime now = 0; now < 100; now += 1) {
    SimTime arrival = ch.NextArrival(now);
    EXPECT_GE(arrival, prev);
    EXPECT_GE(arrival, now + 10);  // at least base latency
    prev = arrival;
  }
}

TEST(ChannelTest, JitterBounded) {
  Channel ch(LatencyModel::Jittered(100, 50), Rng(7));
  // A single send (no FIFO backlog) lands within [base, base+jitter].
  SimTime arrival = ch.NextArrival(1000);
  EXPECT_GE(arrival, 1100);
  EXPECT_LE(arrival, 1150);
}

TEST(ChannelTest, LatencyModelSample) {
  Rng rng(3);
  LatencyModel fixed = LatencyModel::Fixed(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fixed.Sample(rng), 42);

  LatencyModel jittered = LatencyModel::Jittered(10, 5);
  for (int i = 0; i < 100; ++i) {
    SimTime s = jittered.Sample(rng);
    EXPECT_GE(s, 10);
    EXPECT_LE(s, 15);
  }
}

TEST(ChannelTest, SetLatencyTakesEffect) {
  Channel ch(LatencyModel::Fixed(100), Rng(1));
  EXPECT_EQ(ch.NextArrival(0), 100);
  ch.set_latency(LatencyModel::Fixed(500));
  EXPECT_EQ(ch.NextArrival(200), 700);
}

TEST(ChannelTest, FifoMonotonicUnderExtremeJitter) {
  // Jitter two orders of magnitude above the base latency, sends at
  // irregular (but increasing) times: arrivals must still be a
  // non-decreasing sequence, each no earlier than send + base.
  Channel ch(LatencyModel::Jittered(10, 5'000), Rng(1234));
  Rng clock(99);
  SimTime now = 0;
  SimTime prev_arrival = 0;
  for (int i = 0; i < 2'000; ++i) {
    now += clock.Uniform(0, 40);
    SimTime arrival = ch.NextArrival(now);
    EXPECT_GE(arrival, prev_arrival);
    EXPECT_GE(arrival, now + 10);
    prev_arrival = arrival;
  }
}

TEST(ChannelTest, UnorderedArrivalCanReorder) {
  // Without the FIFO clamp, jitter is allowed to schedule a later send
  // before an earlier one — the behaviour the session layer's reorder
  // buffer exists to absorb.
  Channel ch(LatencyModel::Jittered(10, 2'000), Rng(7));
  bool reordered = false;
  SimTime prev = ch.UnorderedArrival(0);
  for (int i = 1; i < 200; ++i) {
    SimTime arrival = ch.UnorderedArrival(i);
    if (arrival < prev) reordered = true;
    prev = arrival;
  }
  EXPECT_TRUE(reordered);
  EXPECT_EQ(ch.messages_sent(), 200);
}

TEST(ChannelTest, UnorderedArrivalKeepsFifoHighWaterMark) {
  // A switch back to FIFO sampling must not schedule before anything the
  // unordered path already put on the wire.
  Channel ch(LatencyModel::Jittered(10, 2'000), Rng(21));
  SimTime high_water = 0;
  for (int i = 0; i < 50; ++i) {
    high_water = std::max(high_water, ch.UnorderedArrival(i));
  }
  SimTime fifo = ch.NextArrival(51);
  EXPECT_GE(fifo, high_water);
}

}  // namespace
}  // namespace sweepmv
