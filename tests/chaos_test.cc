// Chaos tests: the acceptance gate for the robustness layer.
//
// A SWEEP-family run under a seeded fault schedule — random drops,
// duplicates, delay bursts, a partition window, and a source
// crash/restart — must still satisfy the complete-consistency checker,
// because the session layer rebuilds the reliable-FIFO channel the
// paper's Section 2 assumes. The same schedule with the session layer
// disabled must demonstrably diverge: lost or reordered messages either
// wedge the warehouse or corrupt the view.

#include "harness/chaos.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/scenario.h"

namespace sweepmv {
namespace {

// A scenario hostile enough to exercise every robustness mechanism:
// >=5% drops, duplication, jitter reordering, one partition window and
// one source crash/restart in the middle of the workload.
ScenarioConfig ChaoticConfig(Algorithm algorithm, uint64_t seed,
                             int total_txns = 25) {
  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = 2;
  config.chain.initial_tuples = 12;
  config.chain.join_domain = 4;
  config.workload.total_txns = total_txns;
  config.workload.mean_interarrival = 3'000.0;
  config.latency = LatencyModel::Jittered(200, 800);
  config.network_seed = seed;

  ChaosSpec spec;
  spec.seed = seed;
  spec.drop_prob = 0.08;
  spec.dup_prob = 0.04;
  spec.burst_prob = 0.03;
  spec.burst_delay = 4'000;
  spec.num_partitions = 1;
  spec.partition_len = 6'000;
  spec.num_crashes = 1;
  spec.crash_len = 12'000;
  spec.num_relations = config.chain.num_relations;
  spec.horizon =
      static_cast<SimTime>(config.workload.total_txns *
                           config.workload.mean_interarrival);
  spec.query_timeout = 40'000;
  spec.query_retry_limit = 12;
  config.fault_plan = MakeChaosPlan(spec);
  return config;
}

class ChaosConsistency
    : public ::testing::TestWithParam<std::tuple<Algorithm, uint64_t>> {};

TEST_P(ChaosConsistency, MeetsPromiseUnderFaultsWithSessionLayer) {
  auto [algorithm, seed] = GetParam();
  ScenarioConfig config = ChaoticConfig(algorithm, seed);
  RunResult result = RunScenario(config);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.consistency.final_state_correct)
      << "view diverged from ground truth under seed " << seed;
  EXPECT_GE(static_cast<int>(result.consistency.level),
            static_cast<int>(PromisedConsistency(algorithm)))
      << "measured " << ConsistencyLevelName(result.consistency.level);

  // The schedule was genuinely hostile and the defenses genuinely fired.
  const auto& r = result.net.reliability;
  EXPECT_GT(r.drops_injected + r.partition_drops, 0);
  EXPECT_GT(r.retransmissions, 0);
  EXPECT_GT(result.updates_replayed, 0);  // the crash/restart happened
  EXPECT_EQ(r.messages_abandoned, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosConsistency,
    ::testing::Combine(::testing::Values(Algorithm::kSweep,
                                         Algorithm::kNestedSweep),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(AlgorithmName(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ChaosDivergence, SameScheduleWithoutReliabilityBreaksSweep) {
  // The exact scenario that passes above, minus the session layer: raw
  // drops/dups/reordering reach the warehouse. At least one chaos seed
  // must visibly break SWEEP — either the run wedges (a lost message the
  // protocol waits on forever) or the final view is wrong. This is the
  // paper's Section 2 channel assumption shown to be load-bearing, not
  // decorative.
  bool diverged = false;
  for (uint64_t seed : {1u, 2u, 3u}) {
    ScenarioConfig config = ChaoticConfig(Algorithm::kSweep, seed);
    config.fault_plan.reliability = false;
    config.fault_plan.tolerate_failure = true;
    // A wedged warehouse never drains; cap the budget so the run returns.
    config.max_events = 2'000'000;
    RunResult result = RunScenario(config);
    if (!result.completed || !result.consistency.final_state_correct) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged)
      << "raw faulty delivery unexpectedly preserved consistency on all "
         "seeds";
}

TEST(ChaosDivergence, ReliabilityOffStillFineOnPristineLinks) {
  // Sanity check on the control knob: disabling reliability without any
  // fault model changes nothing (the session layer only interposes on
  // faulty links).
  ScenarioConfig config;
  config.algorithm = Algorithm::kSweep;
  config.chain.num_relations = 2;
  config.workload.total_txns = 15;
  config.fault_plan.enabled = true;
  config.fault_plan.reliability = false;
  RunResult with_plan = RunScenario(config);
  EXPECT_TRUE(with_plan.completed);
  EXPECT_TRUE(with_plan.consistency.final_state_correct);
}

TEST(ChaosDedupState, WatermarkDedupStaysBoundedOverLongChaosRun) {
  // The warehouse must ignore replayed updates after a source restart,
  // but remembering every id ever seen grows without bound. Under the
  // session layer each relation's update stream is FIFO, so a
  // per-relation high-watermark (analogous to the session layer's
  // cumulative ack) suffices — and its state is a fixed-size vector, so
  // dedup_state_entries (the growable id-set's size) stays at zero no
  // matter how long the run is.
  ScenarioConfig config =
      ChaoticConfig(Algorithm::kSweep, 4, /*total_txns=*/120);
  RunResult result = RunScenario(config);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.consistency.final_state_correct);
  // The crash/restart replay really produced duplicates to ignore.
  EXPECT_GT(result.updates_replayed, 0);
  EXPECT_GT(result.duplicate_updates_ignored, 0);
  EXPECT_EQ(result.dedup_state_entries, 0);
}

TEST(ChaosDedupState, IdSetFallbackGrowsWithRunLength) {
  // Control: with the watermark disabled (as when raw faulty delivery
  // may reorder streams), the remember-every-id fallback grows linearly
  // with delivered updates — the cost the watermark eliminates.
  ScenarioConfig config;
  config.algorithm = Algorithm::kSweep;
  config.chain.num_relations = 2;
  config.workload.total_txns = 40;
  config.warehouse.base.fifo_update_streams = false;
  RunResult result = RunScenario(config);
  EXPECT_GT(result.updates_delivered, 0);
  EXPECT_EQ(result.dedup_state_entries, result.updates_delivered);
}

TEST(ChaosPlanTest, DeterministicFromSeed) {
  ChaosSpec spec;
  spec.seed = 77;
  spec.num_partitions = 3;
  spec.num_crashes = 2;
  spec.num_relations = 4;
  spec.num_warehouse_crashes = 2;
  FaultPlan a = MakeChaosPlan(spec);
  FaultPlan b = MakeChaosPlan(spec);
  ASSERT_EQ(a.faults.partitions.size(), 3u);
  ASSERT_EQ(a.crashes.size(), 2u);
  for (size_t i = 0; i < a.faults.partitions.size(); ++i) {
    EXPECT_EQ(a.faults.partitions[i].start, b.faults.partitions[i].start);
    EXPECT_EQ(a.faults.partitions[i].end, b.faults.partitions[i].end);
  }
  for (size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].relation, b.crashes[i].relation);
    EXPECT_EQ(a.crashes[i].crash_at, b.crashes[i].crash_at);
    EXPECT_EQ(a.crashes[i].restart_at, b.crashes[i].restart_at);
  }
  // Crash victims are distinct relations.
  EXPECT_NE(a.crashes[0].relation, a.crashes[1].relation);

  // Warehouse crash placement is deterministic too, enables the durable
  // store, and the outage windows never overlap (a down warehouse cannot
  // crash again).
  ASSERT_EQ(a.warehouse_crashes.size(), 2u);
  EXPECT_GT(a.checkpoint_every, 0);
  for (size_t i = 0; i < a.warehouse_crashes.size(); ++i) {
    EXPECT_EQ(a.warehouse_crashes[i].crash_at,
              b.warehouse_crashes[i].crash_at);
    EXPECT_EQ(a.warehouse_crashes[i].restart_at,
              b.warehouse_crashes[i].restart_at);
    EXPECT_LT(a.warehouse_crashes[i].crash_at,
              a.warehouse_crashes[i].restart_at);
  }
  EXPECT_GT(a.warehouse_crashes[1].crash_at,
            a.warehouse_crashes[0].restart_at);
}

TEST(ChaosBackoff, RetryScheduleIsDeterministic) {
  // Query re-issue uses capped exponential backoff with deterministic
  // jitter (keyed on query id and attempt number), so two runs of the
  // same seeded chaos schedule retry at identical times and converge to
  // byte-identical views with identical attempt counters.
  ScenarioConfig config = ChaoticConfig(Algorithm::kSweep, 9);
  // Tight enough that burst-delayed answers overrun it and the warehouse
  // actually re-issues; the backoff then spaces the retries out.
  config.fault_plan.query_timeout = 2'000;
  RunResult a = RunScenario(config);
  RunResult b = RunScenario(config);

  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(a.consistency.final_state_correct);
  // The schedule forced actual re-issues, not just first attempts.
  EXPECT_GT(a.max_query_attempts, 1);
  EXPECT_EQ(a.max_query_attempts, b.max_query_attempts);
  EXPECT_EQ(a.net.reliability.retransmissions,
            b.net.reliability.retransmissions);
  EXPECT_EQ(a.final_view, b.final_view);
}

TEST(ChaosWarehouseCrash, RecoversMidChaosWithConsistentView) {
  // Full stack: seeded chaos (drops, dups, bursts, a partition, a source
  // crash) plus a warehouse crash/restart placed by the plan. Recovery
  // restores the checkpoint and replays the WAL while the session layer
  // heals the outage; the final view must still match ground truth.
  ScenarioConfig config = ChaoticConfig(Algorithm::kSweep, 5);
  ChaosSpec spec;
  spec.seed = 5;
  spec.drop_prob = 0.08;
  spec.dup_prob = 0.04;
  spec.burst_prob = 0.03;
  spec.burst_delay = 4'000;
  spec.num_partitions = 1;
  spec.partition_len = 6'000;
  spec.num_crashes = 1;
  spec.crash_len = 12'000;
  spec.num_relations = config.chain.num_relations;
  spec.horizon =
      static_cast<SimTime>(config.workload.total_txns *
                           config.workload.mean_interarrival);
  spec.query_timeout = 40'000;
  spec.query_retry_limit = 12;
  spec.num_warehouse_crashes = 1;
  config.fault_plan = MakeChaosPlan(spec);

  RunResult result = RunScenario(config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.warehouse_recoveries, 1);
  EXPECT_GT(result.checkpoints_taken, 0);
  EXPECT_TRUE(result.consistency.final_state_correct)
      << result.consistency.detail;
  EXPECT_EQ(result.final_view, result.expected_view);
}

}  // namespace
}  // namespace sweepmv
