#include "consistency/checker.h"

#include <gtest/gtest.h>

#include "consistency/replay.h"
#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;
using testing_util::System;

TEST(ReplayerTest, LocatesUpdatesAndAdvances) {
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(5000, 2, IntTuple({7, 8}));
  sys.Run();

  ViewDef view = PaperView();
  Replayer replay(&view, sys.SourceLogs());
  EXPECT_EQ(replay.TotalUpdates(0), 0u);
  EXPECT_EQ(replay.TotalUpdates(1), 1u);
  EXPECT_EQ(replay.TotalUpdates(2), 1u);

  auto [rel, pos] = replay.Locate(0);
  EXPECT_EQ(rel, 1);
  EXPECT_EQ(pos, 0u);

  // Initial view.
  Relation v0 = replay.CurrentView();
  EXPECT_EQ(v0.CountOf(IntTuple({7, 8})), 2);

  replay.AdvanceTo({0, 1, 0});
  Relation v1 = replay.CurrentView();
  EXPECT_EQ(v1.CountOf(IntTuple({5, 6})), 2);
  EXPECT_EQ(v1.CountOf(IntTuple({7, 8})), 2);

  replay.AdvanceTo({0, 1, 1});
  EXPECT_EQ(replay.CurrentView().CountOf(IntTuple({7, 8})), 0);
}

TEST(ReplayerTest, DeltaOf) {
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.Run();
  ViewDef view = PaperView();
  Replayer replay(&view, sys.SourceLogs());
  EXPECT_EQ(replay.DeltaOf(0).CountOf(IntTuple({3, 5})), 1);
}

TEST(CheckerTest, SweepRunClassifiesComplete) {
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(400, 2, IntTuple({7, 8}));
  sys.ScheduleDelete(500, 0, IntTuple({2, 3}));
  sys.Run();
  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
  EXPECT_TRUE(report.final_state_correct);
  EXPECT_EQ(report.installs, 3u);
  EXPECT_EQ(report.updates, 3u);
}

TEST(CheckerTest, BatchedRunClassifiesStrongNotComplete) {
  System sys(Algorithm::kStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleInsert(100, 0, IntTuple({9, 3}));
  sys.Run();
  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kStrong);
  EXPECT_FALSE(report.detail.empty());  // says why it is not complete
}

TEST(CheckerTest, EmptyRunIsVacuouslyComplete) {
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()));
  sys.Run();
  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete);
  EXPECT_TRUE(report.final_state_correct);
}

// A deliberately broken warehouse to exercise the checker's negative
// paths: it installs a WRONG delta for every update.
class BrokenWarehouse : public Warehouse {
 public:
  BrokenWarehouse(int site_id, ViewDef view_def, Network* network,
                  std::vector<int> source_sites)
      : Warehouse(site_id, std::move(view_def), network,
                  std::move(source_sites), Options{}) {}
  bool Busy() const override { return false; }
  std::string name() const override { return "Broken"; }

 protected:
  void HandleUpdateArrival() override {
    while (!mutable_queue().empty()) {
      Update u = std::move(mutable_queue().front());
      mutable_queue().pop_front();
      Relation bogus(view_def().view_schema());
      bogus.Add(IntTuple({777, 777}), 1);  // nonsense delta
      InstallViewDelta(bogus, {u.id});
    }
  }
};

TEST(CheckerTest, BogusInstallsClassifyInconsistent) {
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  Simulator sim;
  Network net(&sim, LatencyModel::Fixed(100), 1);
  UpdateIdGenerator ids;
  DataSource s0(1, 0, bases[0], &view, &net, 0, &ids);
  DataSource s1(2, 1, bases[1], &view, &net, 0, &ids);
  DataSource s2(3, 2, bases[2], &view, &net, 0, &ids);
  net.RegisterSite(1, &s0);
  net.RegisterSite(2, &s1);
  net.RegisterSite(3, &s2);
  BrokenWarehouse wh(0, view, &net, {1, 2, 3});
  net.RegisterSite(0, &wh);
  std::vector<const Relation*> rels{&bases[0], &bases[1], &bases[2]};
  wh.InitializeView(view.EvaluateFull(rels));

  sim.ScheduleAt(0, [&] { s1.ApplyInsert(IntTuple({3, 5})); });
  sim.Run();

  ConsistencyReport report =
      CheckConsistency(view, {&s0.log(), &s1.log(), &s2.log()}, wh);
  EXPECT_EQ(report.level, ConsistencyLevel::kInconsistent);
  EXPECT_FALSE(report.final_state_correct);
  EXPECT_FALSE(report.detail.empty());
}

// Installs the RIGHT final state but with a scrambled intermediate state:
// convergent, not strong.
class EventuallyRightWarehouse : public Warehouse {
 public:
  EventuallyRightWarehouse(int site_id, ViewDef view_def, Network* network,
                           std::vector<int> source_sites)
      : Warehouse(site_id, std::move(view_def), network,
                  std::move(source_sites), Options{}) {}
  bool Busy() const override { return false; }
  std::string name() const override { return "EventuallyRight"; }

 protected:
  void HandleUpdateArrival() override {
    while (!mutable_queue().empty()) {
      Update u = std::move(mutable_queue().front());
      mutable_queue().pop_front();
      if (first_) {
        // Garbage intermediate state...
        Relation bogus(view_def().view_schema());
        bogus.Add(IntTuple({777, 777}), 1);
        InstallViewDelta(bogus, {u.id});
        pending_fix_ = bogus.Negated();
        first_ = false;
      } else {
        // ...corrected on the last update so the run converges. The true
        // net view delta is precomputed by the test (which knows the
        // whole workload in advance).
        Relation fix = pending_fix_;
        fix.Merge(cheat_delta);
        InstallViewDelta(fix, {u.id});
      }
    }
  }

 public:
  Relation cheat_delta;

 private:
  bool first_ = true;
  Relation pending_fix_;
};

TEST(CheckerTest, WrongIntermediateRightFinalIsConvergent) {
  ViewDef view = PaperView();
  std::vector<Relation> bases = PaperBases(view);
  Simulator sim;
  Network net(&sim, LatencyModel::Fixed(100), 1);
  UpdateIdGenerator ids;
  DataSource s0(1, 0, bases[0], &view, &net, 0, &ids);
  DataSource s1(2, 1, bases[1], &view, &net, 0, &ids);
  DataSource s2(3, 2, bases[2], &view, &net, 0, &ids);
  net.RegisterSite(1, &s0);
  net.RegisterSite(2, &s1);
  net.RegisterSite(3, &s2);
  EventuallyRightWarehouse wh(0, view, &net, {1, 2, 3});
  net.RegisterSite(0, &wh);
  std::vector<const Relation*> rels{&bases[0], &bases[1], &bases[2]};
  Relation initial_view = view.EvaluateFull(rels);
  wh.InitializeView(initial_view);

  // Precompute the true net view delta of the whole (known) workload.
  {
    Relation r1 = bases[1];
    r1.Add(IntTuple({3, 5}), 1);
    Relation r2 = bases[2];
    r2.Add(IntTuple({7, 8}), -1);
    std::vector<const Relation*> after{&bases[0], &r1, &r2};
    Relation want = view.EvaluateFull(after);
    want.MergeNegated(initial_view);
    wh.cheat_delta = std::move(want);
  }

  sim.ScheduleAt(0, [&] { s1.ApplyInsert(IntTuple({3, 5})); });
  sim.ScheduleAt(5000, [&] { s2.ApplyDelete(IntTuple({7, 8})); });
  sim.Run();

  ConsistencyReport report =
      CheckConsistency(view, {&s0.log(), &s1.log(), &s2.log()}, wh);
  EXPECT_EQ(report.level, ConsistencyLevel::kConvergent);
  EXPECT_TRUE(report.final_state_correct);
}

}  // namespace
}  // namespace sweepmv
