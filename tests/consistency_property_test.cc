// Property-based sweep: for every algorithm, across random workloads,
// seeds, topologies and latency regimes, a finished run must
//   (1) end with the view exactly equal to the replayed ground truth, and
//   (2) classify at or above the consistency level Table 1 promises.
// This is the repository's strongest guard: any error in the relational
// algebra, the FIFO channels, the compensation logic, or the install
// bookkeeping surfaces here.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/scenario.h"

namespace sweepmv {
namespace {

struct LatencyCase {
  const char* name;
  LatencyModel model;
  double mean_interarrival;
};

using Param = std::tuple<Algorithm, LatencyCase, uint64_t /*seed*/>;

class ConsistencyProperty : public ::testing::TestWithParam<Param> {};

TEST_P(ConsistencyProperty, PromiseHolds) {
  const auto& [algorithm, latency_case, seed] = GetParam();

  ScenarioConfig config;
  config.algorithm = algorithm;
  config.chain.num_relations = 3 + static_cast<int>(seed % 3);  // 3..5
  config.chain.initial_tuples = 10;
  config.chain.join_domain = 4;
  config.chain.seed = seed * 7 + 1;
  config.workload.total_txns = 24;
  config.workload.insert_fraction = 0.6;
  config.workload.mean_interarrival = latency_case.mean_interarrival;
  config.workload.max_ops_per_txn = (seed % 2 == 0) ? 1 : 3;
  config.workload.seed = seed;
  config.latency = latency_case.model;
  config.network_seed = seed + 1000;

  RunResult result = RunScenario(config);

  EXPECT_EQ(result.final_view, result.expected_view)
      << result.algorithm_name << " seed=" << seed
      << " latency=" << latency_case.name << " : "
      << result.consistency.detail;
  EXPECT_TRUE(result.consistency.final_state_correct);
  EXPECT_GE(static_cast<int>(result.consistency.level),
            static_cast<int>(PromisedConsistency(algorithm)))
      << result.algorithm_name << " seed=" << seed
      << " latency=" << latency_case.name << " : "
      << result.consistency.detail;
}

const LatencyCase kLatencyCases[] = {
    // Sequential: updates far apart, no interference.
    {"sequential", LatencyModel::Fixed(200), 20000.0},
    // Moderate interference.
    {"moderate", LatencyModel::Fixed(1500), 3000.0},
    // Heavy interference: many updates per query round trip.
    {"heavy", LatencyModel::Fixed(4000), 1200.0},
    // Jittered links.
    {"jittered", LatencyModel::Jittered(800, 1200), 2500.0},
};

std::string ParamName(
    const ::testing::TestParamInfo<Param>& info) {
  const auto& [algorithm, latency_case, seed] = info.param;
  std::string name = AlgorithmName(algorithm);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + latency_case.name + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ConsistencyProperty,
    ::testing::Combine(
        ::testing::Values(Algorithm::kSweep, Algorithm::kNestedSweep,
                          Algorithm::kStrobe, Algorithm::kCStrobe,
                          Algorithm::kEca, Algorithm::kRecompute,
                          Algorithm::kParallelSweep,
                          Algorithm::kPipelinedSweep),
        ::testing::ValuesIn(kLatencyCases),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    ParamName);

// SWEEP-specific stronger property: complete consistency at every scale.
class SweepCompleteProperty
    : public ::testing::TestWithParam<std::tuple<int /*n*/, uint64_t>> {};

TEST_P(SweepCompleteProperty, CompleteAtEveryTopology) {
  const auto& [n, seed] = GetParam();
  ScenarioConfig config;
  config.algorithm = Algorithm::kSweep;
  config.chain.num_relations = n;
  config.chain.initial_tuples = 8;
  config.chain.join_domain = 3;
  config.chain.seed = seed;
  config.workload.total_txns = 18;
  config.workload.mean_interarrival = 900.0;
  config.workload.seed = seed + 50;
  config.latency = LatencyModel::Jittered(1000, 800);
  config.network_seed = seed;

  RunResult result = RunScenario(config);
  EXPECT_EQ(result.consistency.level, ConsistencyLevel::kComplete)
      << "n=" << n << " seed=" << seed << " : "
      << result.consistency.detail;
  // Exactly 2(n-1) maintenance messages per update, interference or not.
  EXPECT_DOUBLE_EQ(result.maintenance_msgs_per_update, 2.0 * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SweepCompleteProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(11u, 22u, 33u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// Nested SWEEP with a tight recursion budget must still meet its promise
// (the forced-termination modification keeps strong consistency).
class NestedBudgetProperty : public ::testing::TestWithParam<int> {};

TEST_P(NestedBudgetProperty, StrongUnderAnyBudget) {
  ScenarioConfig config;
  config.algorithm = Algorithm::kNestedSweep;
  config.chain.num_relations = 4;
  config.chain.initial_tuples = 10;
  config.workload.total_txns = 22;
  config.workload.mean_interarrival = 1000.0;
  config.latency = LatencyModel::Fixed(2500);
  config.warehouse.nested_max_recursion_depth = GetParam();

  RunResult result = RunScenario(config);
  EXPECT_EQ(result.final_view, result.expected_view)
      << result.consistency.detail;
  EXPECT_GE(static_cast<int>(result.consistency.level),
            static_cast<int>(ConsistencyLevel::kStrong))
      << "budget=" << GetParam() << " : " << result.consistency.detail;
}

INSTANTIATE_TEST_SUITE_P(Budgets, NestedBudgetProperty,
                         ::testing::Values(1, 2, 3, 8, 64),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "depth" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sweepmv
