// Contract enforcement: documented preconditions abort via SWEEP_CHECK
// rather than corrupting state silently. Death tests pin the contracts.

#include <gtest/gtest.h>

#include "relational/partial_delta.h"
#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;

// GTEST_FLAG_SET only exists from googletest 1.12; assign through the
// older GTEST_FLAG macro so the file builds against 1.11 as well.
void UseThreadsafeDeathTests() {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
}

TEST(ContractDeathTest, DeletingAbsentTupleAborts) {
  UseThreadsafeDeathTests();
  ViewDef view = PaperView();
  Simulator sim;
  Network net(&sim, LatencyModel::Fixed(10), 1);
  UpdateIdGenerator ids;
  DataSource source(1, 0, PaperBases(view)[0], &view, &net, 0, &ids);
  net.RegisterSite(1, &source);

  EXPECT_DEATH(source.ApplyDelete(IntTuple({999, 999})),
               "deleted a tuple that was not present");
}

TEST(ContractDeathTest, TupleSchemaMismatchAborts) {
  UseThreadsafeDeathTests();
  Relation r(Schema::AllInts({"A", "B"}));
  EXPECT_DEATH(r.Add(IntTuple({1, 2, 3}), 1),
               "does not match relation schema");
}

TEST(ContractDeathTest, ExtendPastChainEndAborts) {
  UseThreadsafeDeathTests();
  ViewDef view = PaperView();
  Relation delta(view.rel_schema(0));
  delta.Add(IntTuple({1, 3}), 1);
  PartialDelta pd = PartialDelta::ForRelation(view, 0, delta);
  Relation other(view.rel_schema(0));
  EXPECT_DEATH(ExtendLeft(view, other, pd),
               "no relation to the left");
}

TEST(ContractDeathTest, DuplicateSiteRegistrationAborts) {
  UseThreadsafeDeathTests();
  ViewDef view = PaperView();
  Simulator sim;
  Network net(&sim, LatencyModel::Fixed(10), 1);
  UpdateIdGenerator ids;
  DataSource source(1, 0, PaperBases(view)[0], &view, &net, 0, &ids);
  net.RegisterSite(1, &source);
  EXPECT_DEATH(net.RegisterSite(1, &source), "already registered");
}

TEST(ContractDeathTest, SendingToUnknownSiteAborts) {
  UseThreadsafeDeathTests();
  Simulator sim;
  Network net(&sim, LatencyModel::Fixed(10), 1);
  EXPECT_DEATH(net.Send(0, 42, SnapshotRequest{1}),
               "unknown destination site");
}

TEST(ContractDeathTest, MisroutedQueryAborts) {
  UseThreadsafeDeathTests();
  ViewDef view = PaperView();
  Simulator sim;
  Network net(&sim, LatencyModel::Fixed(10), 1);
  UpdateIdGenerator ids;
  DataSource source(1, 0, PaperBases(view)[0], &view, &net, 0, &ids);
  net.RegisterSite(1, &source);

  PartialDelta pd;
  pd.lo = 1;
  pd.hi = 1;
  pd.rel = Relation(view.rel_schema(1));
  pd.rel.Add(IntTuple({3, 5}), 1);
  // Target relation 2 does not live at site 1.
  net.Send(0, 1, QueryRequest{5, 2, true, pd});
  EXPECT_DEATH(sim.Run(), "wrong source");
}

TEST(ContractDeathTest, SchedulingInThePastAborts) {
  UseThreadsafeDeathTests();
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "cannot schedule in the past");
}

}  // namespace
}  // namespace sweepmv
