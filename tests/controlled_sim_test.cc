// Unit tests for the simulator's controlled mode (the Scheduler hook the
// schedule-space explorer drives): per-channel FIFO is inviolable, the
// ready set is exactly one head per non-empty channel, the clock is
// monotone even when the scheduler runs "late" events first, and
// time-ordered mode is untouched by the new machinery.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace sweepmv {
namespace {

EventLabel Delivery(int from, int to, const char* what = "msg") {
  return EventLabel{EventKind::kDelivery, from, to, what};
}

EventLabel Txn(int site) {
  return EventLabel{EventKind::kTxn, -1, site, "txn"};
}

// Always picks the candidate at a fixed position (clamped), recording
// every offered ready-set size.
class FixedPickScheduler : public Scheduler {
 public:
  explicit FixedPickScheduler(size_t position) : position_(position) {}

  size_t Pick(const std::vector<Candidate>& ready) override {
    ready_sizes_.push_back(ready.size());
    return position_ < ready.size() ? position_ : ready.size() - 1;
  }

  const std::vector<size_t>& ready_sizes() const { return ready_sizes_; }

 private:
  size_t position_;
  std::vector<size_t> ready_sizes_;
};

TEST(ControlledSimTest, PerLinkFifoSurvivesAnAdversarialScheduler) {
  // Three sends on link 1->0 plus one on 2->0. A scheduler that always
  // grabs the last candidate can interleave the links any way it likes,
  // but can never reorder within a link: only the head is ever offered.
  FixedPickScheduler last(100);
  Simulator sim;
  sim.SetScheduler(&last);

  std::string order;
  sim.ScheduleAt(30, Delivery(1, 0, "a"), [&] { order += 'a'; });
  sim.ScheduleAt(20, Delivery(1, 0, "b"), [&] { order += 'b'; });
  sim.ScheduleAt(10, Delivery(1, 0, "c"), [&] { order += 'c'; });
  sim.ScheduleAt(5, Delivery(2, 0, "x"), [&] { order += 'x'; });
  sim.Run();

  // Link 1->0 runs a,b,c in *send* order even though their timestamps
  // are inverted; 'x' lands wherever the scheduler put it.
  std::string on_link;
  for (char c : order) {
    if (c != 'x') on_link += c;
  }
  EXPECT_EQ(on_link, "abc");
  EXPECT_EQ(order.size(), 4u);
}

TEST(ControlledSimTest, ReadySetIsOneHeadPerChannel) {
  FixedPickScheduler first(0);
  Simulator sim;
  sim.SetScheduler(&first);

  sim.ScheduleAt(0, Delivery(1, 0), [] {});
  sim.ScheduleAt(0, Delivery(1, 0), [] {});
  sim.ScheduleAt(0, Delivery(2, 0), [] {});
  sim.ScheduleAt(0, Txn(1), [] {});
  sim.ScheduleAt(0, Txn(1), [] {});
  sim.ScheduleAt(0, [] {});  // unlabeled => internal channel

  // 6 pending events, 4 channels: link 1->0, link 2->0, txns@1, internal.
  EXPECT_EQ(sim.pending_events(), 6u);
  EXPECT_EQ(sim.Ready().size(), 4u);
}

TEST(ControlledSimTest, ClockNeverRunsBackwards) {
  // Run the late-stamped head of one link before the early-stamped head
  // of another; the clock clamps at the max executed timestamp.
  FixedPickScheduler last(100);
  Simulator sim;
  sim.SetScheduler(&last);

  std::vector<SimTime> clock;
  sim.ScheduleAt(10, Delivery(1, 0), [&] { clock.push_back(sim.now()); });
  sim.ScheduleAt(500, Delivery(2, 0), [&] { clock.push_back(sim.now()); });
  sim.Run();

  ASSERT_EQ(clock.size(), 2u);
  EXPECT_EQ(clock[0], 500);  // picked last channel first
  EXPECT_EQ(clock[1], 500);  // 10 < 500: clock holds, never rewinds
}

TEST(ControlledSimTest, HandlersMayScheduleInTheLogicalPast) {
  // A handler running at clamped time 500 schedules a follow-up at
  // now()+latency relative to its *original* stamp — in time-ordered
  // mode that'd be the past. Controlled mode must accept it.
  FixedPickScheduler last(100);
  Simulator sim;
  sim.SetScheduler(&last);

  bool follow_up_ran = false;
  sim.ScheduleAt(500, Delivery(2, 0), [] {});
  sim.ScheduleAt(10, Delivery(1, 0), [&] {
    sim.ScheduleAt(20, Delivery(0, 1), [&] { follow_up_ran = true; });
  });
  sim.Run();
  EXPECT_TRUE(follow_up_ran);
}

TEST(ControlledSimTest, TxnChannelRunsInTimeThenSeqOrder) {
  FixedPickScheduler first(0);
  Simulator sim;
  sim.SetScheduler(&first);

  std::string order;
  sim.ScheduleAt(50, Txn(1), [&] { order += 'b'; });
  sim.ScheduleAt(10, Txn(1), [&] { order += 'a'; });
  sim.ScheduleAt(50, Txn(1), [&] { order += 'c'; });
  sim.Run();
  EXPECT_EQ(order, "abc");
}

TEST(ControlledSimTest, SchedulerSeesEveryDecision) {
  FixedPickScheduler first(0);
  Simulator sim;
  sim.SetScheduler(&first);

  sim.ScheduleAt(0, Delivery(1, 0), [] {});
  sim.ScheduleAt(0, Delivery(2, 0), [] {});
  sim.Run();
  // Two picks: {2 ready}, then {1 ready}.
  ASSERT_EQ(first.ready_sizes().size(), 2u);
  EXPECT_EQ(first.ready_sizes()[0], 2u);
  EXPECT_EQ(first.ready_sizes()[1], 1u);
}

TEST(ControlledSimTest, TimeOrderedModeIgnoresLabels) {
  Simulator sim;
  std::string order;
  sim.ScheduleAt(30, Delivery(1, 0), [&] { order += 'c'; });
  sim.ScheduleAt(10, Delivery(1, 0), [&] { order += 'a'; });
  sim.ScheduleAt(20, Txn(1), [&] { order += 'b'; });
  sim.Run();
  EXPECT_EQ(order, "abc");
  EXPECT_EQ(sim.now(), 30);
}

}  // namespace
}  // namespace sweepmv
