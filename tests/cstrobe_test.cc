#include "core/cstrobe.h"

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;
using testing_util::System;

TEST(CStrobeTest, SingleInsert) {
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  EXPECT_EQ(sys.warehouse().install_log().size(), 1u);
}

TEST(CStrobeTest, PureDeleteInstallsImmediatelyWithoutMessages) {
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()));
  sys.ScheduleDelete(0, 2, IntTuple({7, 8}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  EXPECT_EQ(sys.network().stats().Of(MessageClass::kQueryRequest).messages,
            0);
  EXPECT_EQ(sys.warehouse().install_log().size(), 1u);
}

TEST(CStrobeTest, OneInstallPerUpdateInDeliveryOrder) {
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(400, 2, IntTuple({7, 8}));
  sys.ScheduleDelete(500, 0, IntTuple({2, 3}));
  sys.Run();

  const auto& installs = sys.warehouse().install_log();
  const auto& arrivals = sys.warehouse().arrival_log();
  ASSERT_EQ(installs.size(), arrivals.size());
  for (size_t i = 0; i < installs.size(); ++i) {
    ASSERT_EQ(installs[i].update_ids.size(), 1u);
    EXPECT_EQ(installs[i].update_ids[0], arrivals[i].first);
  }
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
}

TEST(CStrobeTest, CompleteConsistencyOnPaperScenario) {
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(400, 2, IntTuple({7, 8}));
  sys.ScheduleDelete(500, 0, IntTuple({2, 3}));
  sys.Run();
  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
}

TEST(CStrobeTest, ConcurrentInsertOffsetLocally) {
  // An insert lands while another insert's query is in flight: the error
  // term is removed locally (no extra queries for inserts).
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2000));
  sys.ScheduleInsert(0, 0, IntTuple({9, 3}));
  sys.ScheduleInsert(100, 1, IntTuple({3, 5}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  auto& cstrobe = dynamic_cast<CStrobeWarehouse&>(sys.warehouse());
  EXPECT_EQ(cstrobe.compensating_queries(), 0);
}

TEST(CStrobeTest, ConcurrentDeleteTriggersCompensatingQueries) {
  // A delete lands while an insert's query is in flight: C-Strobe must
  // dispatch compensating queries to re-fetch the missing term — the
  // remote compensation SWEEP avoids.
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));    // needs R3's (5,6)
  sys.ScheduleDelete(100, 2, IntTuple({5, 6}));  // concurrently deleted
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  auto& cstrobe = dynamic_cast<CStrobeWarehouse&>(sys.warehouse());
  EXPECT_GE(cstrobe.compensating_queries(), 1);

  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
}

TEST(CStrobeTest, InsertUnderInterferenceCostsMoreThanSweepPerUpdate) {
  // The paper's complexity argument is per-insert: an insert whose query
  // races concurrent deletes needs compensating queries, so its cost
  // exceeds the interference-free n-1; SWEEP's per-update cost stays at
  // n-1 regardless. (Pure deletes are free for C-Strobe — the key
  // assumption — so comparing whole-run totals on delete-heavy workloads
  // would be unfair to neither and meaningless to both.)
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(3000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(100, 2, IntTuple({7, 8}));
  sys.ScheduleDelete(200, 0, IntTuple({2, 3}));
  sys.ScheduleDelete(300, 2, IntTuple({5, 6}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());

  // All query traffic belongs to the single insert (deletes are local).
  const int n = sys.view_def().num_relations();
  int64_t insert_queries =
      sys.network().stats().Of(MessageClass::kQueryRequest).messages;
  EXPECT_GT(insert_queries, n - 1);  // SWEEP would pay exactly n-1.
}

TEST(CStrobeTest, JitteredStressStaysCompletelyConsistent) {
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Jittered(400, 600));
  sys.ScheduleInsert(0, 0, IntTuple({30, 5}));
  sys.ScheduleInsert(200, 1, IntTuple({5, 7}));
  sys.ScheduleDelete(400, 2, IntTuple({7, 8}));
  sys.ScheduleInsert(600, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(800, 0, IntTuple({1, 3}));
  sys.Run();
  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
}

TEST(CStrobeTest, MixedTransaction) {
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()));
  sys.ScheduleTxn(0, 1,
                  {UpdateOp::Delete(IntTuple({3, 7})),
                   UpdateOp::Insert(IntTuple({3, 5}))});
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  EXPECT_EQ(sys.warehouse().install_log().size(), 1u);
}

}  // namespace
}  // namespace sweepmv
