#include "relational/csv.h"

#include <gtest/gtest.h>

namespace sweepmv {
namespace {

TEST(CsvTest, ParseBasicInts) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A", "B"}),
                              "1,3\n2,3\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.relation.DistinctSize(), 2u);
  EXPECT_EQ(r.relation.CountOf(IntTuple({1, 3})), 1);
}

TEST(CsvTest, CommentsAndBlanksSkipped) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A"}),
                              "# header\n\n1\n   \n# tail\n2\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.relation.DistinctSize(), 2u);
}

TEST(CsvTest, CountsAndDeltas) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A", "B"}),
                              "7,8 @2\n5,6 @-1\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.relation.CountOf(IntTuple({7, 8})), 2);
  EXPECT_EQ(r.relation.CountOf(IntTuple({5, 6})), -1);
  EXPECT_TRUE(r.relation.HasNegative());
}

TEST(CsvTest, MixedTypes) {
  Schema schema(std::vector<Attribute>{{"name", ValueType::kString},
                                       {"score", ValueType::kDouble},
                                       {"id", ValueType::kInt}});
  CsvParseResult r = ParseCsv(schema, "west, 2.5, 7\n");
  ASSERT_TRUE(r.ok) << r.error;
  Tuple t{Value("west"), Value(2.5), Value(int64_t{7})};
  EXPECT_EQ(r.relation.CountOf(t), 1);
}

TEST(CsvTest, WhitespaceTrimmed) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A", "B"}),
                              "  1 ,\t3 \r\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.relation.Contains(IntTuple({1, 3})));
}

TEST(CsvTest, ErrorArityMismatch) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A", "B"}), "1,2,3\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("expected 2 cells"), std::string::npos);
}

TEST(CsvTest, ErrorBadInteger) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A"}), "xyz\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not an integer"), std::string::npos);
}

TEST(CsvTest, ErrorBadCount) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A"}), "1 @two\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("bad count"), std::string::npos);
}

TEST(CsvTest, ErrorReportsLineNumber) {
  CsvParseResult r = ParseCsv(Schema::AllInts({"A"}), "1\n2\nbad\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  Relation original(Schema::AllInts({"A", "B"}));
  original.Add(IntTuple({1, 3}), 1);
  original.Add(IntTuple({7, 8}), 2);
  original.Add(IntTuple({5, 6}), -1);

  CsvParseResult r =
      ParseCsv(original.schema(), FormatCsv(original));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.relation, original);
}

TEST(CsvTest, RoundTripMixedTypes) {
  Schema schema(std::vector<Attribute>{{"s", ValueType::kString},
                                       {"d", ValueType::kDouble}});
  Relation original(schema);
  original.Add(Tuple{Value("alpha"), Value(1.5)}, 3);
  original.Add(Tuple{Value("beta"), Value(-0.25)}, 1);

  CsvParseResult r = ParseCsv(schema, FormatCsv(original));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.relation, original);
}

TEST(CsvTest, FormatIncludesSchemaComment) {
  Relation rel(Schema::AllInts({"A"}));
  rel.Add(IntTuple({1}), 1);
  std::string text = FormatCsv(rel);
  EXPECT_EQ(text.rfind("# schema: [A:int]", 0), 0u);
}

}  // namespace
}  // namespace sweepmv
