#include "source/data_source.h"

#include <gtest/gtest.h>

#include "relational/partial_delta.h"
#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;

class SinkSite : public Site {
 public:
  void OnMessage(int from, Message msg) override {
    (void)from;
    messages.push_back(std::move(msg));
  }
  std::vector<Message> messages;
};

struct Fixture {
  Fixture()
      : view(PaperView()),
        network(&sim, LatencyModel::Fixed(10), 1),
        source(/*site_id=*/2, /*relation_index=*/1,
               PaperBases(view)[1], &view, &network, /*warehouse_site=*/0,
               &ids) {
    network.RegisterSite(0, &sink);
    network.RegisterSite(2, &source);
  }

  ViewDef view;
  Simulator sim;
  Network network;
  UpdateIdGenerator ids;
  SinkSite sink;
  DataSource source;
};

TEST(DataSourceTest, ApplyInsertUpdatesStateAndNotifiesWarehouse) {
  Fixture f;
  int64_t id = f.source.ApplyInsert(IntTuple({3, 5}));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(f.source.relation().CountOf(IntTuple({3, 5})), 1);

  f.sim.Run();
  ASSERT_EQ(f.sink.messages.size(), 1u);
  const auto* msg = std::get_if<UpdateMessage>(&f.sink.messages[0]);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->update.id, 0);
  EXPECT_EQ(msg->update.relation, 1);
  EXPECT_EQ(msg->update.delta.CountOf(IntTuple({3, 5})), 1);
}

TEST(DataSourceTest, ApplyDeleteShipsNegativeDelta) {
  Fixture f;
  f.source.ApplyDelete(IntTuple({3, 7}));
  EXPECT_TRUE(f.source.relation().Empty());
  f.sim.Run();
  const auto* msg = std::get_if<UpdateMessage>(&f.sink.messages[0]);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->update.delta.CountOf(IntTuple({3, 7})), -1);
  EXPECT_TRUE(msg->update.IsPureDelete());
}

TEST(DataSourceTest, TransactionIsAtomicSingleUnit) {
  // A modify (delete + insert) ships as ONE update message (Section 2:
  // "all the updates performed atomically at a data source are sent as a
  // single unit").
  Fixture f;
  f.source.ApplyTransaction({UpdateOp::Delete(IntTuple({3, 7})),
                             UpdateOp::Insert(IntTuple({3, 9}))});
  f.sim.Run();
  ASSERT_EQ(f.sink.messages.size(), 1u);
  const auto* msg = std::get_if<UpdateMessage>(&f.sink.messages[0]);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->update.delta.CountOf(IntTuple({3, 7})), -1);
  EXPECT_EQ(msg->update.delta.CountOf(IntTuple({3, 9})), 1);
  EXPECT_FALSE(msg->update.IsPureInsert());
  EXPECT_FALSE(msg->update.IsPureDelete());
}

TEST(DataSourceTest, NetNoOpTransactionNotShipped) {
  Fixture f;
  int64_t id = f.source.ApplyTransaction(
      {UpdateOp::Insert(IntTuple({9, 9})),
       UpdateOp::Delete(IntTuple({9, 9}))});
  EXPECT_EQ(id, -1);
  f.sim.Run();
  EXPECT_TRUE(f.sink.messages.empty());
}

TEST(DataSourceTest, AnswersExtendRightQuery) {
  Fixture f;
  // Partial ΔV spanning [0,0] = {(2,3)}; ask source of R2 (rel 1) to
  // extend right.
  PartialDelta pd;
  pd.lo = 0;
  pd.hi = 0;
  pd.rel = Relation(f.view.rel_schema(0));
  pd.rel.Add(IntTuple({2, 3}), 1);

  f.network.Send(0, 2, QueryRequest{77, 1, /*extend_left=*/false, pd});
  f.sim.Run();
  ASSERT_EQ(f.sink.messages.size(), 1u);
  const auto* ans = std::get_if<QueryAnswer>(&f.sink.messages[0]);
  ASSERT_NE(ans, nullptr);
  EXPECT_EQ(ans->query_id, 77);
  EXPECT_EQ(ans->partial.lo, 0);
  EXPECT_EQ(ans->partial.hi, 1);
  EXPECT_TRUE(ans->partial.rel.Contains(IntTuple({2, 3, 3, 7})));
  EXPECT_EQ(f.source.queries_answered(), 1);
}

TEST(DataSourceTest, AnswersExtendLeftQuery) {
  Fixture f;
  PartialDelta pd;
  pd.lo = 2;
  pd.hi = 2;
  pd.rel = Relation(f.view.rel_schema(2));
  pd.rel.Add(IntTuple({7, 8}), -1);

  f.network.Send(0, 2, QueryRequest{78, 1, /*extend_left=*/true, pd});
  f.sim.Run();
  const auto* ans = std::get_if<QueryAnswer>(&f.sink.messages[0]);
  ASSERT_NE(ans, nullptr);
  EXPECT_EQ(ans->partial.lo, 1);
  EXPECT_EQ(ans->partial.hi, 2);
  EXPECT_EQ(ans->partial.rel.CountOf(IntTuple({3, 7, 7, 8})), -1);
}

TEST(DataSourceTest, QueryReflectsCurrentStateNotSnapshot) {
  // The Figure 3 server joins against the *current* relation: an update
  // applied before the query arrives is visible in the answer.
  Fixture f;
  f.source.ApplyInsert(IntTuple({3, 5}));

  PartialDelta pd;
  pd.lo = 0;
  pd.hi = 0;
  pd.rel = Relation(f.view.rel_schema(0));
  pd.rel.Add(IntTuple({1, 3}), 1);
  f.network.Send(0, 2, QueryRequest{5, 1, false, pd});
  f.sim.Run();

  const QueryAnswer* ans = nullptr;
  for (const Message& m : f.sink.messages) {
    if (auto* a = std::get_if<QueryAnswer>(&m)) ans = a;
  }
  ASSERT_NE(ans, nullptr);
  EXPECT_TRUE(ans->partial.rel.Contains(IntTuple({1, 3, 3, 7})));
  EXPECT_TRUE(ans->partial.rel.Contains(IntTuple({1, 3, 3, 5})));
}

TEST(DataSourceTest, StateLogRecordsHistory) {
  Fixture f;
  f.source.ApplyInsert(IntTuple({3, 5}));
  f.source.ApplyDelete(IntTuple({3, 7}));
  const StateLog& log = f.source.log();
  EXPECT_EQ(log.initial().CountOf(IntTuple({3, 7})), 1);
  ASSERT_EQ(log.updates().size(), 2u);
  EXPECT_EQ(log.StateAfter(0), log.initial());
  EXPECT_EQ(log.StateAfter(2), f.source.relation());
  EXPECT_EQ(log.IndexOf(log.updates()[1].id), 1);
  EXPECT_EQ(log.IndexOf(9999), -1);
}

TEST(DataSourceTest, SnapshotRequestAnswered) {
  Fixture f;
  f.network.Send(0, 2, SnapshotRequest{11});
  f.sim.Run();
  const auto* snap = std::get_if<SnapshotAnswer>(&f.sink.messages[0]);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->relation, 1);
  EXPECT_EQ(snap->snapshot, f.source.relation());
}

}  // namespace
}  // namespace sweepmv
