#include "source/eca_source.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;

class SinkSite : public Site {
 public:
  void OnMessage(int from, Message msg) override {
    (void)from;
    messages.push_back(std::move(msg));
  }
  std::vector<Message> messages;
};

struct Fixture {
  Fixture()
      : view(PaperView()),
        network(&sim, LatencyModel::Fixed(10), 1),
        source(/*site_id=*/1, PaperBases(view), &view, &network,
               /*warehouse_site=*/0, &ids) {
    network.RegisterSite(0, &sink);
    network.RegisterSite(1, &source);
  }

  ViewDef view;
  Simulator sim;
  Network network;
  UpdateIdGenerator ids;
  SinkSite sink;
  EcaSource source;
};

TEST(EcaSourceTest, AppliesTransactionsPerRelation) {
  Fixture f;
  f.source.ApplyTransaction(1, {UpdateOp::Insert(IntTuple({3, 5}))});
  f.source.ApplyTransaction(0, {UpdateOp::Delete(IntTuple({2, 3}))});
  EXPECT_EQ(f.source.relation(1).CountOf(IntTuple({3, 5})), 1);
  EXPECT_EQ(f.source.relation(0).CountOf(IntTuple({2, 3})), 0);
  EXPECT_EQ(f.source.log(1).updates().size(), 1u);
  EXPECT_EQ(f.source.log(0).updates().size(), 1u);

  f.sim.Run();
  EXPECT_EQ(f.sink.messages.size(), 2u);
}

TEST(EcaSourceTest, EvaluatesBaseTerm) {
  Fixture f;
  // Term: ΔR2 = +(3,5), other positions from current relations.
  EcaTerm term;
  term.sign = 1;
  term.fixed.resize(3);
  Relation delta(f.view.rel_schema(1));
  delta.Add(IntTuple({3, 5}), 1);
  term.fixed[1] = delta;

  f.network.Send(0, 1, EcaQueryRequest{55, {term}});
  f.sim.Run();
  const auto* ans = std::get_if<EcaQueryAnswer>(&f.sink.messages[0]);
  ASSERT_NE(ans, nullptr);
  EXPECT_EQ(ans->query_id, 55);
  EXPECT_EQ(ans->result.DistinctSize(), 2u);
  EXPECT_TRUE(ans->result.Contains(IntTuple({1, 3, 3, 5, 5, 6})));
  EXPECT_TRUE(ans->result.Contains(IntTuple({2, 3, 3, 5, 5, 6})));
}

TEST(EcaSourceTest, SignedTermsSubtract) {
  Fixture f;
  Relation d1(f.view.rel_schema(0));
  d1.Add(IntTuple({2, 3}), 1);
  Relation d2(f.view.rel_schema(1));
  d2.Add(IntTuple({3, 7}), 1);

  // term1: ΔR1 ⋈ R2 ⋈ R3 (positive); term2: ΔR1 ⋈ ΔR2 ⋈ R3 (negative).
  EcaTerm t1;
  t1.sign = 1;
  t1.fixed.resize(3);
  t1.fixed[0] = d1;
  EcaTerm t2;
  t2.sign = -1;
  t2.fixed.resize(3);
  t2.fixed[0] = d1;
  t2.fixed[1] = d2;

  f.network.Send(0, 1, EcaQueryRequest{9, {t1, t2}});
  f.sim.Run();
  const auto* ans = std::get_if<EcaQueryAnswer>(&f.sink.messages[0]);
  ASSERT_NE(ans, nullptr);
  // R2 contains only (3,7), so term1 == term2's magnitude and the signed
  // sum cancels exactly.
  EXPECT_TRUE(ans->result.Empty());
}

TEST(EcaSourceTest, AtomicEvaluationSeesOneState) {
  // A query evaluates against the single site's consistent state: updates
  // applied before the query arrives are all visible, updates applied
  // after are all invisible.
  Fixture f;
  f.source.ApplyTransaction(2, {UpdateOp::Delete(IntTuple({7, 8}))});

  EcaTerm term;
  term.sign = 1;
  term.fixed.resize(3);
  Relation delta(f.view.rel_schema(0));
  delta.Add(IntTuple({9, 3}), 1);
  term.fixed[0] = delta;

  f.network.Send(0, 1, EcaQueryRequest{1, {term}});
  f.sim.Run();
  const EcaQueryAnswer* ans = nullptr;
  for (const Message& m : f.sink.messages) {
    if (auto* a = std::get_if<EcaQueryAnswer>(&m)) ans = a;
  }
  ASSERT_NE(ans, nullptr);
  // (9,3) joins (3,7) joins (7,8) — but (7,8) was deleted before the
  // query arrived, so only the (3,7)x(7,8) path is gone.
  EXPECT_FALSE(ans->result.Contains(IntTuple({9, 3, 3, 7, 7, 8})));
}

TEST(EcaSourceTest, SnapshotAnswersEveryRelation) {
  Fixture f;
  f.network.Send(0, 1, SnapshotRequest{4});
  f.sim.Run();
  ASSERT_EQ(f.sink.messages.size(), 3u);
  std::set<int> rels;
  for (const Message& m : f.sink.messages) {
    const auto* snap = std::get_if<SnapshotAnswer>(&m);
    ASSERT_NE(snap, nullptr);
    rels.insert(snap->relation);
  }
  EXPECT_EQ(rels, (std::set<int>{0, 1, 2}));
}

}  // namespace
}  // namespace sweepmv
