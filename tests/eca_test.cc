#include "core/eca.h"

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;
using testing_util::System;

TEST(EcaTest, SingleUpdateSingleQuery) {
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.Run();

  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  // O(1) messages per update: exactly one query, one answer.
  EXPECT_EQ(sys.network().stats().Of(MessageClass::kQueryRequest).messages,
            1);
  EXPECT_EQ(sys.network().stats().Of(MessageClass::kQueryAnswer).messages,
            1);
  auto& eca = dynamic_cast<EcaWarehouse&>(sys.warehouse());
  EXPECT_EQ(eca.max_query_terms(), 1);
}

TEST(EcaTest, PaperTwoUpdateCompensation) {
  // Section 3's canonical ECA scenario: ΔR1's query is in flight when ΔR2
  // arrives; Q2 must carry the offset term -(ΔR1 ⋈ ΔR2 ⋈ R3).
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1000));
  sys.ScheduleInsert(0, 0, IntTuple({9, 3}));    // ΔR1, arrives 1000
  sys.ScheduleInsert(500, 1, IntTuple({3, 5}));  // ΔR2, arrives 1500
  sys.Run();

  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  auto& eca = dynamic_cast<EcaWarehouse&>(sys.warehouse());
  EXPECT_EQ(eca.max_query_terms(), 2);  // base + one offset

  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_GE(static_cast<int>(report.level),
            static_cast<int>(ConsistencyLevel::kStrong))
      << report.detail;
}

TEST(EcaTest, ThreeWayInterferenceInclusionExclusion) {
  // Three mutually interfering updates across three relations: the last
  // query needs the second-order inclusion-exclusion term (4 terms).
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2000));
  sys.ScheduleInsert(0, 0, IntTuple({9, 3}));
  sys.ScheduleInsert(100, 1, IntTuple({3, 5}));
  sys.ScheduleInsert(200, 2, IntTuple({5, 9}));
  sys.Run();

  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  auto& eca = dynamic_cast<EcaWarehouse&>(sys.warehouse());
  EXPECT_EQ(eca.max_query_terms(), 4);
}

TEST(EcaTest, QuiescentBatchInstall) {
  // ECA accumulates answers and installs at quiescence (Table 1:
  // "Requires Quiescence").
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2000));
  sys.ScheduleInsert(0, 0, IntTuple({9, 3}));
  sys.ScheduleInsert(100, 1, IntTuple({3, 5}));
  sys.Run();
  auto& eca = dynamic_cast<EcaWarehouse&>(sys.warehouse());
  EXPECT_EQ(eca.batch_installs(), 1);
  EXPECT_EQ(sys.warehouse().install_log().size(), 1u);
}

TEST(EcaTest, DeletesAndInsertsMixed) {
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1500));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(300, 2, IntTuple({7, 8}));
  sys.ScheduleDelete(600, 0, IntTuple({2, 3}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  EXPECT_EQ(sys.warehouse().view().CountOf(IntTuple({5, 6})), 1);
}

TEST(EcaTest, SequentialUpdatesNeedNoOffsets) {
  // Far-apart updates: every query is a single base term.
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(100));
  sys.ScheduleInsert(0, 0, IntTuple({9, 3}));
  sys.ScheduleInsert(10000, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(20000, 2, IntTuple({7, 8}));
  sys.Run();
  auto& eca = dynamic_cast<EcaWarehouse&>(sys.warehouse());
  EXPECT_EQ(eca.max_query_terms(), 1);
  EXPECT_EQ(eca.total_query_terms(), 3);
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  ConsistencyReport report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_GE(static_cast<int>(report.level),
            static_cast<int>(ConsistencyLevel::kStrong))
      << report.detail;
}

TEST(EcaTest, BurstStressConverges) {
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(3000));
  sys.ScheduleInsert(0, 0, IntTuple({9, 3}));
  sys.ScheduleInsert(50, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(100, 2, IntTuple({7, 8}));
  sys.ScheduleInsert(150, 2, IntTuple({5, 9}));
  sys.ScheduleDelete(200, 0, IntTuple({1, 3}));
  sys.ScheduleInsert(250, 1, IntTuple({3, 9}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
}

}  // namespace
}  // namespace sweepmv
