// Targeted edge cases across the algorithms: interleavings and update
// shapes that stress specific branches of each protocol.

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "core/eca.h"
#include "test_util.h"

namespace sweepmv {
namespace {

using testing_util::PaperBases;
using testing_util::PaperView;
using testing_util::System;

TEST(EdgeCaseTest, DrainTheWholeDatabase) {
  // Delete every tuple everywhere; the view must reach empty through
  // consistent intermediate states.
  for (Algorithm a : {Algorithm::kSweep, Algorithm::kNestedSweep,
                      Algorithm::kCStrobe, Algorithm::kStrobe}) {
    System sys(a, PaperView(), PaperBases(PaperView()),
               LatencyModel::Fixed(700));
    sys.ScheduleDelete(0, 0, IntTuple({1, 3}));
    sys.ScheduleDelete(100, 0, IntTuple({2, 3}));
    sys.ScheduleDelete(200, 1, IntTuple({3, 7}));
    sys.ScheduleDelete(300, 2, IntTuple({5, 6}));
    sys.ScheduleDelete(400, 2, IntTuple({7, 8}));
    sys.Run();
    EXPECT_TRUE(sys.warehouse().view().Empty()) << AlgorithmName(a);
    EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView())
        << AlgorithmName(a);
  }
}

TEST(EdgeCaseTest, InsertThenImmediateDeleteOfSameTuple) {
  // Two separate updates: +t then -t from the same source, racing the
  // sweep of an unrelated update. Net effect zero; every algorithm must
  // agree.
  for (Algorithm a : {Algorithm::kSweep, Algorithm::kNestedSweep,
                      Algorithm::kParallelSweep,
                      Algorithm::kPipelinedSweep}) {
    System sys(a, PaperView(), PaperBases(PaperView()),
               LatencyModel::Fixed(1500));
    sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
    sys.ScheduleInsert(100, 0, IntTuple({9, 3}));
    sys.ScheduleDelete(200, 0, IntTuple({9, 3}));
    sys.Run();
    EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView())
        << AlgorithmName(a);
  }
}

TEST(EdgeCaseTest, StrobeTwoInflightInsertsOneDeleteMarksBoth) {
  // Two insert queries in flight when a delete lands: both pending
  // queries must scrub the deleted tuple's contributions.
  System sys(Algorithm::kStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2500));
  sys.ScheduleInsert(0, 0, IntTuple({8, 3}));    // will join via (3,*)
  sys.ScheduleInsert(100, 0, IntTuple({9, 3}));  // second in-flight query
  sys.ScheduleDelete(200, 2, IntTuple({5, 6}));  // invalidates both paths
  sys.ScheduleDelete(300, 1, IntTuple({3, 7}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
}

TEST(EdgeCaseTest, CStrobeConcurrentDeleteAtInsertsOwnRelation) {
  // A delete at the *same* relation as the in-flight insert needs no
  // compensating query (the position is pinned to the insert's delta) —
  // and the run must still be completely consistent.
  System sys(Algorithm::kCStrobe, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(100, 1, IntTuple({3, 7}));  // same relation
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  auto report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
}

TEST(EdgeCaseTest, EcaBackToBackUpdatesOnSameRelation) {
  // Two updates of the same relation with the first query in flight: the
  // second must NOT carry an offset for the first (same position is
  // always pinned), and the final state must be exact.
  System sys(Algorithm::kEca, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(2000));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleInsert(100, 1, IntTuple({3, 9}));
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  auto& eca = dynamic_cast<EcaWarehouse&>(sys.warehouse());
  EXPECT_EQ(eca.max_query_terms(), 1);  // no cross-offsets possible
}

TEST(EdgeCaseTest, UpdateWithMultiplicityGreaterThanOne) {
  // Bag semantics: the same tuple inserted twice in one transaction
  // (count 2). SWEEP's counting algebra must carry the multiplicity end
  // to end. (Strobe-family excluded: their key assumption forbids this.)
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()));
  sys.ScheduleTxn(0, 1,
                  {UpdateOp::Insert(IntTuple({3, 5})),
                   UpdateOp::Insert(IntTuple({3, 5}))});
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  EXPECT_EQ(sys.warehouse().view().CountOf(IntTuple({5, 6})), 4);
}

TEST(EdgeCaseTest, UpdateThatProducesNoViewChange) {
  // An insert that joins with nothing: the delta is empty after the
  // sweep, but the install must still happen (a state per update).
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()));
  sys.ScheduleInsert(0, 1, IntTuple({99, 98}));  // dangling both sides
  sys.Run();
  EXPECT_EQ(sys.warehouse().install_log().size(), 1u);
  EXPECT_EQ(sys.warehouse().view().CountOf(IntTuple({7, 8})), 2);
  auto report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
}

TEST(EdgeCaseTest, InterferenceByNoOpJoinUpdate) {
  // The interfering update joins with nothing: compensation computes an
  // empty error term; nothing breaks.
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1500));
  sys.ScheduleInsert(0, 1, IntTuple({3, 5}));
  sys.ScheduleInsert(100, 0, IntTuple({50, 51}));  // B=51 joins nothing
  sys.Run();
  EXPECT_EQ(sys.warehouse().view(), sys.ExpectedView());
  auto report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
}

TEST(EdgeCaseTest, SimultaneousArrivalTimestamps) {
  // Updates applied at the same virtual instant at different sources:
  // delivery order is still total (FIFO + deterministic tie-break) and
  // complete consistency must hold.
  System sys(Algorithm::kSweep, PaperView(), PaperBases(PaperView()),
             LatencyModel::Fixed(1000));
  sys.ScheduleInsert(500, 0, IntTuple({9, 3}));
  sys.ScheduleInsert(500, 1, IntTuple({3, 5}));
  sys.ScheduleDelete(500, 2, IntTuple({7, 8}));
  sys.Run();
  auto report =
      CheckConsistency(sys.view_def(), sys.SourceLogs(), sys.warehouse());
  EXPECT_EQ(report.level, ConsistencyLevel::kComplete) << report.detail;
}

}  // namespace
}  // namespace sweepmv
