// Refined independence (src/verify/effects.h): the statically inferred
// effect table grants commutes the site rule cannot — a controlled
// warehouse crash against a source transaction — and the runtime oracle
// certifies the table over-approximates every executed handler.
//
// The load-bearing assertions:
//   * the refined relation never changes a verdict — worst level,
//     violation count and exhaustion match the site-rule baseline on
//     every scenario, engine and thread count;
//   * it prunes strictly more schedules exactly where the table has
//     something to say (crash scenarios) and exactly nothing where it
//     does not (the fault-free worked example, whose only dependent
//     pairs are same-channel);
//   * the effect oracle — observed write set ⊆ static write footprint,
//     checked after every executed step — passes on every explored
//     schedule of the acceptance scenarios.

#include <gtest/gtest.h>

#include "verify/effects.h"
#include "verify/explorer.h"
#include "verify/scenarios.h"

namespace sweepmv {
namespace {

ExplorerConfig RefinedConfig(ControlledScenario scenario,
                             ConsistencyLevel required,
                             const EffectsIndex* effects,
                             bool oracle = false) {
  ExplorerConfig config{std::move(scenario), required,
                        /*sleep_sets=*/true,
                        /*max_schedules=*/200'000,
                        /*max_steps_per_run=*/10'000,
                        /*stop_at_first_violation=*/false,
                        /*minimize=*/false};
  config.effects = effects;
  config.effects_oracle = oracle;
  return config;
}

EventLabel CrashLabel() {
  return EventLabel{EventKind::kInternal, -1, 0, "warehouse-crash"};
}

EventLabel TxnLabel(int site) {
  return EventLabel{EventKind::kTxn, -1, site, "txn"};
}

// The verdict fields every relation refinement must leave untouched.
void ExpectSameVerdicts(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.worst, b.worst);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.exhausted, b.exhausted);
}

TEST(EffectsIndexTest, CrashCommutesWithSourceTransaction) {
  EffectsIndex index =
      EffectsIndex::ForScenario(FaultyPaperExampleScenario(Algorithm::kSweep));
  EXPECT_GT(index.num_rows(), 0);
  // The winning grant: the crash row touches only warehouse state and
  // global counters disjoint from a source's transaction footprint.
  EXPECT_TRUE(index.Commute(CrashLabel(), TxnLabel(1)));
  EXPECT_TRUE(index.Commute(TxnLabel(2), CrashLabel()));
  // One FIFO channel: two transactions at the same source never commute.
  EXPECT_FALSE(index.Commute(TxnLabel(1), TxnLabel(1)));
  // Deliveries are the site rule's territory; the table declines them.
  EventLabel deliver{EventKind::kDelivery, 1, 0, "message"};
  EXPECT_FALSE(index.Commute(deliver, TxnLabel(1)));
}

TEST(EffectsIndexTest, IndependentUnderCountsOnlyRefinedGrants) {
  EffectsIndex index =
      EffectsIndex::ForScenario(FaultyPaperExampleScenario(Algorithm::kSweep));
  int64_t grants = 0;
  // Different affected sites: the site rule grants this alone.
  EXPECT_TRUE(IndependentUnder(&index, TxnLabel(1), TxnLabel(2), &grants));
  EXPECT_EQ(grants, 0);
  // Internal vs txn: only the effect table can grant it.
  EXPECT_TRUE(IndependentUnder(&index, CrashLabel(), TxnLabel(1), &grants));
  EXPECT_EQ(grants, 1);
  // Null index degrades to the site rule.
  EXPECT_FALSE(IndependentUnder(nullptr, CrashLabel(), TxnLabel(1), &grants));
  EXPECT_EQ(grants, 1);
}

TEST(EffectsTest, RefinedPrunesStrictlyMoreOnCrashScenario) {
  ControlledScenario scenario =
      FaultyPaperExampleScenario(Algorithm::kSweep);
  EffectsIndex index = EffectsIndex::ForScenario(scenario);
  ExploreResult baseline = ExploreExhaustive(
      RefinedConfig(scenario, ConsistencyLevel::kComplete, nullptr));
  ExploreResult refined = ExploreExhaustive(
      RefinedConfig(scenario, ConsistencyLevel::kComplete, &index));
  ASSERT_TRUE(baseline.exhausted);
  ASSERT_TRUE(refined.exhausted);
  ExpectSameVerdicts(baseline, refined);
  EXPECT_EQ(refined.worst, ConsistencyLevel::kComplete);
  EXPECT_EQ(refined.violations, 0);
  // The crash/txn grants must actually buy pruning the site rule cannot:
  // strictly fewer explored schedules covering the same trace classes.
  // (sleep_pruned itself is not monotone — subtrees pruned earlier never
  // get visited, so their would-be prune events are never recorded.)
  EXPECT_GT(refined.refined_grants, 0);
  EXPECT_EQ(baseline.refined_grants, 0);
  EXPECT_LT(refined.schedules, baseline.schedules);
}

TEST(EffectsTest, RefinedIsZeroGainOnFaultFreeExample) {
  // The worked example's only site-rule-dependent pairs share a FIFO
  // channel, which no effect table may reorder: the refined search must
  // walk the identical tree and grant nothing.
  ControlledScenario scenario = PaperExampleScenario(Algorithm::kSweep);
  EffectsIndex index = EffectsIndex::ForScenario(scenario);
  ExploreResult baseline = ExploreExhaustive(
      RefinedConfig(scenario, ConsistencyLevel::kComplete, nullptr));
  ExploreResult refined = ExploreExhaustive(
      RefinedConfig(scenario, ConsistencyLevel::kComplete, &index));
  ASSERT_TRUE(refined.exhausted);
  ExpectSameVerdicts(baseline, refined);
  EXPECT_EQ(refined.refined_grants, 0);
  EXPECT_EQ(refined.schedules, baseline.schedules);
  EXPECT_EQ(refined.sleep_pruned, baseline.sleep_pruned);
}

TEST(EffectsTest, RefinedVerdictsIdenticalAcrossEngines) {
  // All three engines consult the table at their own call sites; the
  // refined schedule tree must be the same one regardless.
  ControlledScenario scenario =
      FaultyPaperExampleScenario(Algorithm::kSweep);
  EffectsIndex index = EffectsIndex::ForScenario(scenario);
  ExploreResult incremental = ExploreExhaustive(
      RefinedConfig(scenario, ConsistencyLevel::kComplete, &index));
  ExplorerConfig stateless =
      RefinedConfig(scenario, ConsistencyLevel::kComplete, &index);
  stateless.share_prefixes = false;
  ExploreResult replayed = ExploreExhaustive(stateless);
  ExplorerConfig parallel =
      RefinedConfig(scenario, ConsistencyLevel::kComplete, &index);
  parallel.threads = 4;
  parallel.dedup_states = true;
  ExploreResult threaded = ExploreExhaustive(parallel);
  ExpectSameVerdicts(incremental, replayed);
  ExpectSameVerdicts(incremental, threaded);
  EXPECT_EQ(incremental.schedules, replayed.schedules);
  EXPECT_EQ(incremental.schedules, threaded.schedules);
  EXPECT_EQ(incremental.sleep_pruned, replayed.sleep_pruned);
  EXPECT_EQ(incremental.refined_grants, replayed.refined_grants);
}

TEST(EffectsOracleTest, PassesOnEveryPaperExampleSchedule) {
  ControlledScenario scenario = PaperExampleScenario(Algorithm::kSweep);
  EffectsIndex index = EffectsIndex::ForScenario(scenario);
  ExploreResult result = ExploreExhaustive(RefinedConfig(
      scenario, ConsistencyLevel::kComplete, &index, /*oracle=*/true));
  // SWEEP_CHECK aborts inside the exploration if any executed step
  // writes outside its static footprint; surviving to here IS the pass.
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.violations, 0);
  EXPECT_GT(result.schedules, 10);
}

TEST(EffectsOracleTest, PassesOnEveryCrashSchedule) {
  // The crash handler's footprint is the table's riskiest row — it
  // rewrites the whole warehouse plus the recovery counters — and every
  // crash placement exercises it.
  ControlledScenario scenario =
      FaultyPaperExampleScenario(Algorithm::kSweep);
  EffectsIndex index = EffectsIndex::ForScenario(scenario);
  ExploreResult result = ExploreExhaustive(RefinedConfig(
      scenario, ConsistencyLevel::kComplete, &index, /*oracle=*/true));
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.violations, 0);
  EXPECT_GT(result.refined_grants, 0);
}

TEST(EffectsOracleTest, PassesOnGeneratedMultiViewSchedules) {
  // Two warehouses, two crash choice points: the multi-view row set plus
  // repeated crash/recovery churn. Crash recovery parks SWEEP at strong
  // consistency, mirroring the throughput bench's stress bar.
  ControlledScenario scenario = GeneratedMultiViewScenario(
      Algorithm::kSweep, Algorithm::kNestedSweep, /*updates=*/1,
      /*crash=*/true);
  EffectsIndex index = EffectsIndex::ForScenario(scenario);
  ExplorerConfig config = RefinedConfig(
      std::move(scenario), ConsistencyLevel::kStrong, &index,
      /*oracle=*/true);
  // The oracle drains observation probes after every step; cap the
  // schedule budget so the test stays seconds, not minutes. Every
  // schedule that does run is fully checked.
  config.max_schedules = 2'000;
  ExploreResult result = ExploreExhaustive(config);
  EXPECT_GT(result.schedules, 100);
  EXPECT_EQ(result.violations, 0);
  EXPECT_GT(result.refined_grants, 0);
}

TEST(EffectsOracleDeathTest, RequiresTheUndoEngine) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ControlledScenario scenario = PaperExampleScenario(Algorithm::kSweep);
  EffectsIndex index = EffectsIndex::ForScenario(scenario);
  ExplorerConfig config = RefinedConfig(
      std::move(scenario), ConsistencyLevel::kComplete, &index,
      /*oracle=*/true);
  config.use_undo = false;
  EXPECT_DEATH(ExploreExhaustive(config),
               "the effect oracle needs an effects index");
}

}  // namespace
}  // namespace sweepmv
