// Determinism of the explorer's execution engines (src/verify/).
//
// The explorer has three ways to cover the same schedule space: the
// stateless replay engine, the prefix-sharing snapshot engine, and the
// parallel frontier split over the work-stealing pool. All three must
// agree bit-for-bit on everything schedule-determined — schedule counts,
// verdicts, sleep-set pruning statistics, and the minimized
// counterexample — for any thread count and any steal interleaving.
// These comparisons are what makes the throughput bench's speedup claims
// meaningful: the fast engines answer the same question as the slow one.

#include <gtest/gtest.h>

#include "verify/explorer.h"
#include "verify/scenarios.h"

namespace sweepmv {
namespace {

ExplorerConfig BaseConfig(ControlledScenario scenario,
                          ConsistencyLevel required, bool sleep_sets) {
  ExplorerConfig config{std::move(scenario), required, sleep_sets,
                        /*max_schedules=*/200'000,
                        /*max_steps_per_run=*/10'000,
                        /*stop_at_first_violation=*/false,
                        /*minimize=*/true};
  return config;
}

// Everything schedule-determined must match; `executions` legitimately
// differs (it counts engine work, not coverage) and is deliberately
// excluded.
void ExpectSameVerdicts(const ExploreResult& a, const ExploreResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.schedules, b.schedules) << what;
  EXPECT_EQ(a.violations, b.violations) << what;
  EXPECT_EQ(a.worst, b.worst) << what;
  EXPECT_EQ(a.sleep_pruned, b.sleep_pruned) << what;
  EXPECT_EQ(a.sleep_blocked, b.sleep_blocked) << what;
  EXPECT_EQ(a.decision_points, b.decision_points) << what;
  EXPECT_EQ(a.max_ready, b.max_ready) << what;
  EXPECT_EQ(a.exhausted, b.exhausted) << what;
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value())
      << what;
  if (a.counterexample.has_value()) {
    EXPECT_EQ(a.counterexample->choices, b.counterexample->choices) << what;
    EXPECT_EQ(a.counterexample->trace.ToString(),
              b.counterexample->trace.ToString())
        << what;
    EXPECT_EQ(a.counterexample->report.level, b.counterexample->report.level)
        << what;
  }
}

TEST(ExplorerDeterminismTest, PrefixSharingMatchesStatelessBaseline) {
  for (bool sleep_sets : {true, false}) {
    ExplorerConfig shared = BaseConfig(EcaAnomalyScenario(false),
                                       ConsistencyLevel::kConvergent,
                                       sleep_sets);
    ExplorerConfig replay = shared;
    replay.share_prefixes = false;
    ExpectSameVerdicts(ExploreExhaustive(replay),
                       ExploreExhaustive(shared),
                       sleep_sets ? "eca POR" : "eca naive");
  }
}

TEST(ExplorerDeterminismTest, SweepVerdictsAreEngineInvariant) {
  ExplorerConfig shared = BaseConfig(PaperExampleScenario(Algorithm::kSweep),
                                     ConsistencyLevel::kComplete,
                                     /*sleep_sets=*/true);
  ExplorerConfig replay = shared;
  replay.share_prefixes = false;
  ExploreResult a = ExploreExhaustive(replay);
  ExploreResult b = ExploreExhaustive(shared);
  EXPECT_TRUE(a.exhausted);
  EXPECT_EQ(a.violations, 0);
  ExpectSameVerdicts(a, b, "sweep POR");
}

TEST(ExplorerDeterminismTest, ThreadCountNeverChangesTheAnswer) {
  for (bool sleep_sets : {true, false}) {
    ExplorerConfig sequential = BaseConfig(EcaAnomalyScenario(false),
                                           ConsistencyLevel::kConvergent,
                                           sleep_sets);
    ExploreResult baseline = ExploreExhaustive(sequential);
    ASSERT_GT(baseline.violations, 0);
    ASSERT_TRUE(baseline.counterexample.has_value());
    for (int threads : {2, 4, 8}) {
      ExplorerConfig parallel = sequential;
      parallel.threads = threads;
      ExpectSameVerdicts(
          baseline, ExploreExhaustive(parallel),
          std::string(sleep_sets ? "POR" : "naive") + " threads=" +
              std::to_string(threads));
    }
  }
}

TEST(ExplorerDeterminismTest, ParallelSweepExplorationIsExhaustive) {
  ExplorerConfig sequential = BaseConfig(
      PaperExampleScenario(Algorithm::kSweep), ConsistencyLevel::kComplete,
      /*sleep_sets=*/true);
  ExploreResult baseline = ExploreExhaustive(sequential);
  ASSERT_TRUE(baseline.exhausted);
  for (int threads : {2, 4, 8}) {
    ExplorerConfig parallel = sequential;
    parallel.threads = threads;
    ExploreResult result = ExploreExhaustive(parallel);
    EXPECT_TRUE(result.exhausted) << threads;
    ExpectSameVerdicts(baseline, result,
                       "sweep threads=" + std::to_string(threads));
  }
}

TEST(ExplorerDeterminismTest, ParallelRunsAreRepeatable) {
  // Two parallel runs with the same config — different steal orders at
  // the OS's whim — must agree with each other, counterexample included.
  ExplorerConfig config = BaseConfig(EcaAnomalyScenario(false),
                                     ConsistencyLevel::kConvergent,
                                     /*sleep_sets=*/true);
  config.threads = 4;
  ExploreResult first = ExploreExhaustive(config);
  ExploreResult second = ExploreExhaustive(config);
  ExpectSameVerdicts(first, second, "repeat threads=4");
  // Executions are also deterministic run-to-run for a fixed config: the
  // frontier split and per-task work don't depend on scheduling.
  EXPECT_EQ(first.executions, second.executions);
}

}  // namespace
}  // namespace sweepmv
